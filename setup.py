"""Setuptools shim for environments without the wheel package.

All metadata lives in pyproject.toml; this file only enables the legacy
``pip install -e . --no-build-isolation --no-use-pep517`` path used in
offline environments.
"""

from setuptools import setup

setup()
