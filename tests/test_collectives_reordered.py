"""Tests: software collectives and the reordered multicolor smoother."""

import numpy as np
import pytest

from repro.mg.reordered_gs import ReorderedMulticolorGS
from repro.mg.smoothers import MulticolorGS
from repro.parallel import run_spmd
from repro.parallel.collectives import (
    ALLREDUCE_ALGORITHMS,
    allreduce_recursive_doubling,
    allreduce_ring,
    message_counts,
    software_allreduce,
)
from repro.sparse.coloring import color_sets, structured_coloring8


class TestSoftwareAllreduce:
    @pytest.mark.parametrize("algorithm", sorted(ALLREDUCE_ALGORITHMS))
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_matches_rendezvous(self, algorithm, p):
        fn = ALLREDUCE_ALGORITHMS[algorithm]

        def worker(comm):
            rng = np.random.default_rng(comm.rank)
            local = rng.standard_normal(40)
            soft = fn(comm, local)
            hard = comm.allreduce(local)
            return float(np.abs(soft - hard).max())

        errs = run_spmd(p, worker)
        assert max(errs) < 1e-12

    @pytest.mark.parametrize("algorithm", sorted(ALLREDUCE_ALGORITHMS))
    def test_single_rank_identity(self, algorithm):
        fn = ALLREDUCE_ALGORITHMS[algorithm]

        def worker(comm):
            x = np.arange(5.0)
            return np.array_equal(fn(comm, x), x)

        assert run_spmd(1, worker) == [True]

    def test_ring_handles_uneven_chunks(self):
        """n not divisible by p (linspace chunking)."""

        def worker(comm):
            local = np.full(10, float(comm.rank + 1))  # 10 % 4 != 0
            out = allreduce_ring(comm, local)
            return np.allclose(out, 1 + 2 + 3 + 4)

        assert all(run_spmd(4, worker))

    def test_recursive_doubling_rejects_nonpower(self):
        def worker(comm):
            allreduce_recursive_doubling(comm, np.ones(4))

        with pytest.raises(RuntimeError, match="power-of-two"):
            run_spmd(3, worker)

    @pytest.mark.parametrize("algorithm", sorted(ALLREDUCE_ALGORITHMS))
    def test_dispatcher_falls_back_at_p3(self, algorithm):
        """The dispatcher serves non-power-of-two rank counts via the
        rendezvous all-reduce instead of erroring (a real MPI switches
        algorithms; it never fails the collective)."""

        def worker(comm):
            rng = np.random.default_rng(comm.rank)
            local = rng.standard_normal(24)
            soft = software_allreduce(comm, local, algorithm=algorithm)
            hard = comm.allreduce(local)
            return float(np.abs(soft - hard).max())

        errs = run_spmd(3, worker)
        assert max(errs) < 1e-12

    @pytest.mark.parametrize("p", [2, 4])
    def test_dispatcher_uses_algorithm_at_powers_of_two(self, p):
        """At power-of-two counts the dispatcher runs the requested
        algorithm (same pairing order => identical result)."""

        def worker(comm):
            rng = np.random.default_rng(comm.rank)
            local = rng.standard_normal(16)
            via_dispatch = software_allreduce(
                comm, local, algorithm="recursive_doubling"
            )
            direct = allreduce_recursive_doubling(comm, local)
            return bool(np.array_equal(via_dispatch, direct))

        assert all(run_spmd(p, worker))

    def test_dispatcher_unknown_algorithm(self):
        from repro.parallel import SerialComm

        with pytest.raises(ValueError, match="unknown algorithm"):
            software_allreduce(SerialComm(), np.ones(4), algorithm="nope")

    def test_all_ranks_identical_result(self):
        def worker(comm):
            rng = np.random.default_rng(comm.rank + 100)
            return allreduce_recursive_doubling(comm, rng.standard_normal(16))

        results = run_spmd(8, worker)
        for r in results[1:]:
            assert np.array_equal(r, results[0])


class TestCollectiveCostModel:
    def test_recursive_doubling_latency_optimal(self):
        rd = message_counts("recursive_doubling", 64)
        ring = message_counts("ring", 64)
        assert rd["messages"] < ring["messages"]

    def test_ring_bandwidth_optimal(self):
        rd = message_counts("recursive_doubling", 64)
        ring = message_counts("ring", 64)
        assert ring["volume"] < rd["volume"]

    def test_rabenseifner_best_of_both(self):
        """log messages AND (p-1)/p-scaled volume — why the network
        model's large-message formula uses it."""
        rab = message_counts("rabenseifner", 64)
        rd = message_counts("recursive_doubling", 64)
        ring = message_counts("ring", 64)
        assert rab["messages"] <= 2 * rd["messages"]
        assert rab["volume"] == pytest.approx(ring["volume"])

    def test_serial_free(self):
        for alg in ALLREDUCE_ALGORITHMS:
            c = message_counts(alg, 1)
            assert c["messages"] == 0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            message_counts("butterfly", 8)


class TestReorderedMulticolorGS:
    def make_pair(self, problem):
        A = problem.A
        sets = color_sets(structured_coloring8(problem.sub))
        plain = MulticolorGS(A, A.diagonal(), sets)
        reordered = ReorderedMulticolorGS(A, problem.sub)
        return plain, reordered

    def test_forward_agrees(self, problem8, rng):
        plain, reordered = self.make_pair(problem8)
        r = rng.standard_normal(problem8.nlocal)
        x1 = rng.standard_normal(problem8.nlocal)
        x2 = x1.copy()
        plain.forward(r, x1)
        reordered.forward(r, x2)
        np.testing.assert_allclose(x1, x2, rtol=1e-13, atol=1e-14)

    def test_backward_agrees(self, problem8, rng):
        plain, reordered = self.make_pair(problem8)
        r = rng.standard_normal(problem8.nlocal)
        x1 = rng.standard_normal(problem8.nlocal)
        x2 = x1.copy()
        plain.backward(r, x1)
        reordered.backward(r, x2)
        np.testing.assert_allclose(x1, x2, rtol=1e-13, atol=1e-14)

    def test_blocks_are_contiguous_partition(self, problem16):
        _, reordered = self.make_pair(problem16)
        cursor = 0
        for start, end in reordered.blocks:
            assert start == cursor
            assert end > start
            cursor = end
        assert cursor == problem16.nlocal

    def test_num_passes(self, problem16):
        _, reordered = self.make_pair(problem16)
        assert reordered.num_passes == 8

    def test_multiple_sweeps_converge(self, problem8):
        _, reordered = self.make_pair(problem8)
        A, b = problem8.A, problem8.b
        x = np.zeros(problem8.nlocal)
        for _ in range(6):
            reordered.forward(b, x)
        assert np.linalg.norm(b - A.spmv(x)) < 0.12 * np.linalg.norm(b)


class TestSurfaceToVolumeScaling:
    def test_comm_scales_as_two_thirds_power(self):
        """§2: local compute is O(nu), communication O(nu^(2/3)).

        Measured with real comm.stats over growing local boxes on a
        fixed 8-rank grid: bytes per exchange must scale like n^2 while
        rows scale like n^3.
        """
        from repro.geometry import BoxGrid, ProcessGrid, Subdomain
        from repro.parallel import HaloExchange
        from repro.stencil import generate_problem

        def measure(n):
            def worker(comm):
                pg = ProcessGrid.from_size(comm.size)
                sub = Subdomain(BoxGrid(n, n, n), pg, comm.rank)
                prob = generate_problem(sub)
                halo = HaloExchange(prob.halo, comm)
                xfull = halo.full_vector(np.ones(sub.nlocal))
                halo.exchange(xfull)
                return comm.stats.send_bytes

            return max(run_spmd(8, worker))

        b4, b8 = measure(4), measure(8)
        ratio = b8 / b4
        # Surface scaling: doubling n should ~quadruple bytes (x4),
        # far below the x8 volume scaling.
        assert 3.0 < ratio < 5.5
