"""The --distributed benchmark phase and its CI regression gate."""

import json
import sys

import numpy as np
import pytest

from repro.core import (
    BenchmarkConfig,
    parse_process_grid,
    run_distributed_phase,
)


class TestProcessGridParsing:
    @pytest.mark.parametrize(
        "spec,expected",
        [("2x1x1", (2, 1, 1)), ("2x2x1", (2, 2, 1)), ("1X1X1", (1, 1, 1))],
    )
    def test_valid(self, spec, expected):
        assert parse_process_grid(spec) == expected

    @pytest.mark.parametrize("spec", ["2x2", "2x2x2x2", "ax1x1", "0x1x1", ""])
    def test_invalid(self, spec):
        with pytest.raises(ValueError):
            parse_process_grid(spec)

    def test_config_validates_grid(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(distributed_grid="3x")
        cfg = BenchmarkConfig(distributed_grid="2x1x1")
        assert cfg.distributed_shape == (2, 1, 1)
        assert cfg.distributed_ranks == 2

    def test_config_validates_budget(self):
        with pytest.raises(ValueError, match="budget"):
            BenchmarkConfig(distributed_grid="2x1x1", distributed_budget_seconds=0)

    def test_config_validates_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            BenchmarkConfig(overlap="sometimes")

    def test_config_validates_rhs_panel(self):
        with pytest.raises(ValueError, match="rhs_panel"):
            BenchmarkConfig(rhs_panel=0)
        assert BenchmarkConfig(rhs_panel=8).rhs_panel == 8


class TestDistributedPhase:
    @pytest.fixture(scope="class")
    def phase(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            distributed_grid="2x1x1",
            distributed_budget_seconds=0.2,
            max_iters_per_solve=10,
        )
        return run_distributed_phase(cfg)

    def test_runs_to_budget(self, phase):
        assert phase.nranks == 2
        assert phase.grid == (2, 1, 1)
        assert phase.solves >= 1
        assert phase.iterations == phase.solves * 10
        assert phase.wall_seconds >= 0.2

    def test_comm_traffic_recorded(self, phase):
        # 2x1x1: one face neighbor per rank, fp32 inner + fp64 outer
        # exchanges every iteration — traffic must be visible.
        assert phase.send_bytes > 0
        assert phase.comm_bytes_per_iteration > 0
        assert phase.model_bytes_per_cycle > 0

    def test_motif_seconds_present(self, phase):
        assert phase.seconds_by_motif.get("spmv", 0) > 0
        assert phase.seconds_per_solve > 0

    def test_to_dict_round_trips_json(self, phase):
        rec = json.loads(json.dumps(phase.to_dict()))
        assert rec["nranks"] == 2
        assert rec["comm_bytes_per_iteration"] == pytest.approx(
            phase.comm_bytes_per_iteration
        )

    def test_requires_grid(self):
        with pytest.raises(ValueError, match="not set"):
            run_distributed_phase(BenchmarkConfig())

    def test_single_rank_grid_runs_serial(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            distributed_grid="1x1x1",
            distributed_budget_seconds=0.05,
            max_iters_per_solve=5,
        )
        phase = run_distributed_phase(cfg)
        assert phase.nranks == 1
        assert phase.send_bytes == 0  # no neighbors


class TestCLIDistributed:
    def test_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--distributed", "2x1x1", "--distributed-budget", "0.3",
             "--bench-out", "x.json", "--no-overlap", "--rhs-panel", "8"]
        )
        assert args.distributed == "2x1x1"
        assert args.distributed_budget == 0.3
        assert args.bench_out == "x.json"
        assert args.no_overlap
        assert args.rhs_panel == 8

    def test_run_with_distributed_and_bench_out(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "BENCH_ci.json"
        rc = main(
            [
                "run",
                "--local-nx", "16",
                "--max-iters", "5",
                "--validation-max-iters", "100",
                "--distributed", "2x1x1",
                "--distributed-budget", "0.1",
                "--bench-out", str(out),
            ]
        )
        assert rc == 0
        report = capsys.readouterr().out
        assert "[Phase: distributed]" in report
        rec = json.loads(out.read_text())
        assert rec["nranks"] == 2
        assert rec["comm_bytes_per_iteration"] > 0
        assert rec["config"]["grid"] == "2x1x1"


class TestCheckRegression:
    @pytest.fixture()
    def gate(self):
        sys.path.insert(0, "benchmarks")
        try:
            import check_regression
        finally:
            sys.path.pop(0)
        return check_regression

    def test_pass_within_threshold(self, gate):
        # Byte metrics are deterministic and gate at a tight 2%
        # regardless of the CLI threshold; wall clock rides the CLI's.
        base = {"comm_bytes_per_iteration": 100.0, "seconds_per_solve": 1.0}
        cur = {"comm_bytes_per_iteration": 101.0, "seconds_per_solve": 1.1}
        failures, _ = gate.compare(cur, base, threshold=0.2)
        assert failures == []

    def test_deterministic_bytes_gate_tightly(self, gate):
        base = {"comm_bytes_per_iteration": 100.0}
        cur = {"comm_bytes_per_iteration": 110.0}  # +10%: under the CLI
        failures, _ = gate.compare(cur, base, threshold=0.2)
        assert len(failures) == 1  # ... but over the 2% byte gate

    def test_fail_beyond_threshold(self, gate):
        base = {"comm_bytes_per_iteration": 100.0}
        cur = {"comm_bytes_per_iteration": 130.0}
        failures, _ = gate.compare(cur, base, threshold=0.2)
        assert len(failures) == 1
        assert "comm_bytes_per_iteration" in failures[0]

    def test_improvement_never_fails(self, gate):
        base = {"seconds_per_solve": 1.0}
        cur = {"seconds_per_solve": 0.2}
        failures, notes = gate.compare(cur, base, threshold=0.2)
        assert failures == []
        assert any("refreshing" in n for n in notes)

    def test_missing_metric_in_current_fails(self, gate):
        failures, _ = gate.compare({}, {"seconds_per_solve": 1.0}, 0.2)
        assert failures

    def test_bytes_per_rhs_gates_tightly(self, gate):
        base = {"bytes_per_rhs": 100.0}
        cur = {"bytes_per_rhs": 105.0}  # +5%: under the CLI threshold
        failures, _ = gate.compare(cur, base, threshold=0.2)
        assert len(failures) == 1  # ... but over the 2% byte gate
        assert "bytes_per_rhs" in failures[0]

    def test_panel_reuse_drop_fails(self, gate):
        # Higher-is-better: a reuse *drop* beyond 2% fails ...
        base = {"panel_matrix_reuse": 8.0}
        failures, _ = gate.compare({"panel_matrix_reuse": 7.0}, base, threshold=0.2)
        assert len(failures) == 1
        assert "higher is better" in failures[0]
        # ... while an increase only suggests a baseline refresh.
        failures, notes = gate.compare(
            {"panel_matrix_reuse": 16.0}, base, threshold=0.2
        )
        assert failures == []
        assert any("refreshing" in n for n in notes)

    def test_panel_metrics_absent_from_baseline_skip(self, gate):
        cur = {"bytes_per_rhs": 100.0, "panel_matrix_reuse": 8.0}
        failures, notes = gate.compare(cur, {}, threshold=0.2)
        assert failures == []
        assert any("skipped" in n for n in notes)

    def test_main_against_committed_baseline(self, gate, tmp_path):
        """The committed baseline gates a record identical to itself."""
        with open("benchmarks/BENCH_baseline.json") as f:
            baseline = json.load(f)
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(baseline))
        rc = gate.main(
            [str(cur), "--baseline", "benchmarks/BENCH_baseline.json"]
        )
        assert rc == 0


class TestBatchedPhase:
    """PR 6: the batched multi-RHS segment of the distributed phase."""

    @pytest.fixture(scope="class")
    def phase(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            distributed_grid="2x1x1",
            distributed_budget_seconds=0.1,
            max_iters_per_solve=5,
            rhs_panel=8,
        )
        return run_distributed_phase(cfg)

    def test_panel_metrics_recorded(self, phase):
        assert phase.rhs_panel == 8
        assert phase.panel_wall_seconds > 0
        # Lockstep panel steps stream the matrix once for all 8
        # columns: the measured reuse is exactly the panel width.
        assert phase.panel_matrix_reuse == pytest.approx(8.0)

    def test_modeled_bytes_per_rhs_amortizes(self, phase):
        assert phase.bytes_per_rhs > 0
        # Acceptance: matrix traffic amortized >= 2x by a panel of 8.
        assert phase.model_bytes_per_cycle / phase.bytes_per_rhs >= 2.0

    def test_setup_cache_counters_exported(self, phase):
        # The batched segment builds one solver cold (misses) and one
        # from the cache (hits): both counters must be visible.
        assert phase.panel_setup_cache_misses > 0
        assert phase.panel_setup_cache_hits == phase.panel_setup_cache_misses

    def test_panel_segment_does_not_pollute_timed_window(self, phase):
        # The timed window's comm counters are snapshotted before the
        # batched segment runs; per-iteration traffic must match the
        # unbatched phase (the committed baseline's value, ~5985 at
        # this config -- a panel leak would roughly double it).
        cfg = BenchmarkConfig(
            local_nx=16,
            distributed_grid="2x1x1",
            distributed_budget_seconds=0.1,
            max_iters_per_solve=5,
        )
        unbatched = run_distributed_phase(cfg)
        assert phase.comm_bytes_per_iteration == pytest.approx(
            unbatched.comm_bytes_per_iteration
        )

    def test_to_dict_round_trips_panel_fields(self, phase):
        rec = json.loads(json.dumps(phase.to_dict()))
        assert rec["rhs_panel"] == 8
        assert rec["panel_matrix_reuse"] == pytest.approx(8.0)
        assert rec["bytes_per_rhs"] == pytest.approx(phase.bytes_per_rhs)
        assert rec["panel_setup_cache_hits"] > 0

    def test_default_panel_of_one_skips_segment(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            distributed_grid="2x1x1",
            distributed_budget_seconds=0.05,
            max_iters_per_solve=5,
        )
        phase = run_distributed_phase(cfg)
        assert phase.rhs_panel == 1
        assert phase.panel_wall_seconds == 0.0
        assert phase.panel_matrix_reuse == 0.0
        # bytes_per_rhs at panel 1 is the whole cycle's bytes.
        assert phase.bytes_per_rhs == pytest.approx(phase.model_bytes_per_cycle)


class TestHaloByteModel:
    def test_halo_entry_scales_with_rung(self):
        """cycle_traffic_bytes charges halo bytes at each level's rung:
        the fp16 ladder ships fewer wire bytes than fp32 than fp64."""
        from repro.fp import DOUBLE_POLICY, MIXED_DS_POLICY
        from repro.fp.policy import PrecisionPolicy
        from repro.perf.scaling import ScalingModel

        model = ScalingModel()
        ladder = model.cycle_traffic_bytes(
            PrecisionPolicy.from_ladder("fp16:fp32:fp64")
        )
        fp32 = model.cycle_traffic_bytes(MIXED_DS_POLICY)
        fp64 = model.cycle_traffic_bytes(DOUBLE_POLICY)
        assert ladder["halo"] < fp32["halo"] < fp64["halo"]
        for rec in (ladder, fp32, fp64):
            assert rec["halo"] > 0
            assert rec["total"] == pytest.approx(
                sum(v for k, v in rec.items() if k != "total")
            )

    def test_halo_is_surface_not_volume(self):
        """Halo bytes grow ~quadratically with the box edge while HBM
        motifs grow cubically (the §2 surface-to-volume argument)."""
        from repro.fp import MIXED_DS_POLICY
        from repro.perf.scaling import ScalingModel

        small = ScalingModel(local_dims=(32, 32, 32)).cycle_traffic_bytes(
            MIXED_DS_POLICY
        )
        big = ScalingModel(local_dims=(64, 64, 64)).cycle_traffic_bytes(
            MIXED_DS_POLICY
        )
        halo_ratio = big["halo"] / small["halo"]
        hbm_ratio = big["mg"] / small["mg"]
        assert 3.0 < halo_ratio < 5.0  # ~x4 surface scaling
        assert 6.0 < hbm_ratio < 10.0  # ~x8 volume scaling

    def test_measured_comm_consistent_with_surface(self):
        """The measured per-iteration comm bytes of a 2x1x1 run match
        the hand-counted face exchange volume."""
        cfg = BenchmarkConfig(
            local_nx=16,
            distributed_grid="2x1x1",
            distributed_budget_seconds=0.1,
            max_iters_per_solve=5,
        )
        phase = run_distributed_phase(cfg)
        # Lower bound: each iteration exchanges at least the fine-level
        # face (16x16 points) once in fp32 and once in fp64.
        face = 16 * 16
        assert phase.comm_bytes_per_iteration > face * 4
        # Upper bound sanity: well below shipping the whole local box.
        assert phase.comm_bytes_per_iteration < 16**3 * 8 * np.float64(4)


class TestHaloMeasurement:
    """PR 4: measured halo counters and modeled-vs-measured reporting."""

    @pytest.fixture(scope="class")
    def phase(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            distributed_grid="2x1x1",
            distributed_budget_seconds=0.2,
            max_iters_per_solve=10,
        )
        return run_distributed_phase(cfg)

    def test_halo_counters_recorded(self, phase):
        assert phase.halo_seconds > 0
        assert phase.halo_exchanges > 0
        assert phase.send_messages > 0

    def test_modeled_vs_measured_halo_bytes(self, phase):
        assert phase.halo_bytes_measured_per_iteration > 0
        assert phase.halo_bytes_modeled_per_iteration > 0
        # The model assumes a 26-neighbor middle rank; a 2x1x1 face
        # exchange ships a fraction of that, never more.
        assert 0 < phase.halo_model_ratio < 1.5

    def test_motif_breakdown_in_record(self, phase):
        rec = phase.to_dict()
        motifs = rec["motif_seconds_per_solve"]
        assert set(motifs) == {"spmv", "symgs", "ortho", "halo"}
        assert motifs["spmv"] > 0
        assert motifs["halo"] > 0
        assert rec["halo_bytes_modeled_per_iteration"] == pytest.approx(
            phase.halo_bytes_modeled_per_iteration
        )

    def test_serial_grid_has_no_halo(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            distributed_grid="1x1x1",
            distributed_budget_seconds=0.05,
            max_iters_per_solve=5,
        )
        phase = run_distributed_phase(cfg)
        assert phase.halo_bytes_measured_per_iteration == 0
        assert phase.halo_bytes_modeled_per_iteration == 0
        assert phase.halo_model_ratio == 0


class TestMotifGate:
    @pytest.fixture()
    def gate(self):
        sys.path.insert(0, "benchmarks")
        try:
            import check_regression
        finally:
            sys.path.pop(0)
        return check_regression

    def test_motif_within_threshold_passes(self, gate):
        base = {"motif_seconds_per_solve": {"spmv": 0.1, "symgs": 0.2}}
        cur = {"motif_seconds_per_solve": {"spmv": 0.3, "symgs": 0.2}}
        failures, notes = gate.compare(cur, base, 0.2, motif_threshold=4.0)
        assert failures == []  # 3x is under the 5x motif gate

    def test_motif_catastrophe_fails(self, gate):
        base = {"motif_seconds_per_solve": {"halo": 0.01}}
        cur = {"motif_seconds_per_solve": {"halo": 0.2}}
        failures, _ = gate.compare(cur, base, 0.2, motif_threshold=4.0)
        assert len(failures) == 1
        assert "halo" in failures[0]

    def test_missing_motif_in_current_fails(self, gate):
        base = {"motif_seconds_per_solve": {"spmv": 0.1}}
        failures, _ = gate.compare({}, base, 0.2)
        assert any("spmv" in f for f in failures)

    def test_baseline_without_motifs_skips(self, gate):
        cur = {"motif_seconds_per_solve": {"spmv": 0.1}}
        failures, notes = gate.compare(cur, {}, 0.2)
        assert failures == []
        assert any("skipped" in n for n in notes)
