"""Unit tests for grids, processor grids, and subdomains."""

import numpy as np
import pytest

from repro.geometry import BoxGrid, ProcessGrid, Subdomain, factor3d


class TestBoxGrid:
    def test_npoints(self):
        assert BoxGrid(3, 4, 5).npoints == 60

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BoxGrid(0, 4, 5)

    def test_linear_index_roundtrip(self):
        g = BoxGrid(5, 7, 3)
        i = np.arange(g.npoints)
        ix, iy, iz = g.coords(i)
        assert np.array_equal(g.linear_index(ix, iy, iz), i)

    def test_x_fastest_convention(self):
        g = BoxGrid(4, 3, 2)
        # point (1, 0, 0) must be index 1; (0, 1, 0) index 4; (0,0,1) 12.
        assert g.linear_index(1, 0, 0) == 1
        assert g.linear_index(0, 1, 0) == 4
        assert g.linear_index(0, 0, 1) == 12

    def test_all_coords_order(self):
        g = BoxGrid(2, 2, 2)
        ix, iy, iz = g.all_coords()
        assert list(ix) == [0, 1, 0, 1, 0, 1, 0, 1]
        assert list(iz) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_contains(self):
        g = BoxGrid(4, 4, 4)
        assert g.contains(0, 0, 0)
        assert g.contains(3, 3, 3)
        assert not g.contains(-1, 0, 0)
        assert not g.contains(0, 4, 0)

    def test_contains_vectorized(self):
        g = BoxGrid(2, 2, 2)
        ix = np.array([-1, 0, 1, 2])
        res = g.contains(ix, np.zeros(4, int), np.zeros(4, int))
        assert list(res) == [False, True, True, False]

    def test_coarsen(self):
        assert BoxGrid(16, 8, 32).coarsen().shape == (8, 4, 16)

    def test_coarsen_rejects_odd(self):
        with pytest.raises(ValueError):
            BoxGrid(9, 8, 8).coarsen()

    def test_boundary_mask_counts(self):
        g = BoxGrid(4, 4, 4)
        # 4^3 - 2^3 interior = 56 boundary points.
        assert g.boundary_mask().sum() == 56


class TestFactor3D:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8, 12, 16, 27, 64, 100, 128])
    def test_product(self, p):
        px, py, pz = factor3d(p)
        assert px * py * pz == p

    def test_cube_counts_stay_cubic(self):
        assert sorted(factor3d(8)) == [2, 2, 2]
        assert sorted(factor3d(27)) == [3, 3, 3]
        assert sorted(factor3d(64)) == [4, 4, 4]

    def test_spread_is_minimal_for_12(self):
        dims = sorted(factor3d(12))
        assert dims[2] - dims[0] <= 2  # 2x2x3 is optimal

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factor3d(0)


class TestProcessGrid:
    def test_rank_coords_roundtrip(self):
        pg = ProcessGrid(2, 3, 4)
        for rank in range(pg.size):
            cx, cy, cz = pg.rank_coords(rank)
            assert pg.coords_rank(cx, cy, cz) == rank

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            ProcessGrid(2, 2, 2).rank_coords(8)

    def test_neighbor_interior(self):
        pg = ProcessGrid(3, 3, 3)
        center = pg.coords_rank(1, 1, 1)
        assert pg.neighbor(center, (1, 0, 0)) == pg.coords_rank(2, 1, 1)
        assert pg.neighbor(center, (-1, -1, -1)) == pg.coords_rank(0, 0, 0)

    def test_neighbor_at_edge_is_none(self):
        pg = ProcessGrid(2, 2, 2)
        assert pg.neighbor(0, (-1, 0, 0)) is None

    def test_middle_rank_has_26_neighbors(self):
        pg = ProcessGrid(3, 3, 3)
        center = pg.coords_rank(1, 1, 1)
        assert len(pg.neighbors(center)) == 26

    def test_corner_rank_has_7_neighbors(self):
        pg = ProcessGrid(2, 2, 2)
        assert len(pg.neighbors(0)) == 7

    def test_from_size(self):
        assert ProcessGrid.from_size(8).size == 8


class TestSubdomain:
    def test_global_grid(self):
        sub = Subdomain(BoxGrid(4, 4, 4), ProcessGrid(2, 3, 1), 0)
        assert sub.global_grid.shape == (8, 12, 4)

    def test_origin(self):
        pg = ProcessGrid(2, 2, 2)
        sub = Subdomain(BoxGrid(4, 4, 4), pg, pg.coords_rank(1, 0, 1))
        assert sub.origin == (4, 0, 4)

    def test_global_coords_cover_global_grid(self):
        pg = ProcessGrid(2, 2, 1)
        seen = set()
        for rank in range(pg.size):
            sub = Subdomain(BoxGrid(2, 2, 2), pg, rank)
            gx, gy, gz = sub.global_coords()
            gg = sub.global_grid
            seen.update(gg.linear_index(gx, gy, gz).tolist())
        assert seen == set(range(4 * 4 * 2))

    def test_owner_of_self(self):
        pg = ProcessGrid(2, 2, 2)
        for rank in range(8):
            sub = Subdomain(BoxGrid(3, 3, 3), pg, rank)
            gx, gy, gz = sub.global_coords()
            owners = sub.owner_of(gx, gy, gz)
            assert np.all(owners == rank)

    def test_owner_of_outside_domain(self):
        sub = Subdomain.serial(4)
        assert sub.owner_of(-1, 0, 0) == -1
        assert sub.owner_of(4, 0, 0) == -1

    def test_coarsen(self):
        sub = Subdomain.serial(16)
        assert sub.coarsen().local.shape == (8, 8, 8)
        assert sub.coarsen().rank == sub.rank

    def test_serial_helper(self):
        sub = Subdomain.serial(4, 5, 6)
        assert sub.nlocal == 120
        assert sub.proc.size == 1
