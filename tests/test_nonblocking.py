"""Tests for nonblocking point-to-point requests."""

import numpy as np
import pytest

from repro.parallel import SerialComm, run_spmd
from repro.parallel.comm import CompletedRequest


class TestRequests:
    def test_isend_completes_immediately(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(3.0), 1, tag=5)
                return req.test()
            comm.recv(0, tag=5)
            return True

        assert all(run_spmd(2, fn))

    def test_irecv_wait_returns_data(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.array([7.0, 8.0]), 1, tag=3)
                return None
            req = comm.irecv(0, tag=3)
            assert not req.test()  # not yet waited
            data = req.wait()
            assert req.test()
            return list(data)

        assert run_spmd(2, fn)[1] == [7.0, 8.0]

    def test_irecv_wait_idempotent(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.array([1.0]), 1, tag=1)
                return None
            req = comm.irecv(0, tag=1)
            a = req.wait()
            b = req.wait()  # second wait returns the same array
            return a is b

        assert run_spmd(2, fn)[1]

    def test_overlapped_exchange_pattern(self):
        """Post all irecvs, then isends, then wait — the textbook
        nonblocking halo pattern."""

        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            rreq = comm.irecv(left, tag=9)
            comm.isend(np.array([float(comm.rank)]), right, tag=9)
            return rreq.wait()[0]

        assert run_spmd(4, fn) == [3.0, 0.0, 1.0, 2.0]

    def test_completed_request(self):
        req = CompletedRequest("payload")
        assert req.test()
        assert req.wait() == "payload"

    def test_serial_isend_raises(self):
        with pytest.raises(RuntimeError):
            SerialComm().isend(np.ones(1), 0, tag=0)
