"""Tests for the programmatic figure-data API."""

import csv
import io

import pytest

from repro.analysis import (
    all_figures,
    fig4_weak_scaling,
    fig5_motif_speedups,
    fig6_k80_speedups,
    fig7_time_breakdown,
    fig8_roofline,
    fig9_overlap,
)


class TestFigureSeries:
    def test_csv_roundtrip(self):
        s = fig4_weak_scaling([1, 8])
        parsed = list(csv.reader(io.StringIO(s.to_csv())))
        assert parsed[0] == s.columns
        assert len(parsed) == len(s.rows) + 1

    def test_save(self, tmp_path):
        path = tmp_path / "fig4.csv"
        fig4_weak_scaling([1]).save(str(path))
        assert "nodes" in path.read_text()

    def test_column_extraction(self):
        s = fig4_weak_scaling([1, 8, 64])
        assert s.column("nodes") == [1, 8, 64]
        with pytest.raises(ValueError):
            s.column("nope")


class TestFigureContents:
    def test_fig4_anchor(self):
        s = fig4_weak_scaling([1, 9408])
        assert s.column("present_total_pflops")[-1] == pytest.approx(17.23, rel=0.05)
        # present beats xsdk everywhere.
        for p, x in zip(
            s.column("present_mxp_gflops_per_gcd"),
            s.column("xsdk_mxp_gflops_per_gcd"),
        ):
            assert p > x

    def test_fig5_total_near_1_6(self):
        s = fig5_motif_speedups([1])
        assert s.rows[0][-1] == pytest.approx(1.6, abs=0.07)

    def test_fig6_rows(self):
        s = fig6_k80_speedups()
        assert len(s.rows) == 3
        assert all(1.2 < r[-1] < 1.9 for r in s.rows)

    def test_fig7_fractions_sum_below_one(self):
        s = fig7_time_breakdown([1])
        for row in s.rows:
            assert 0.9 < sum(row[2:]) <= 1.0  # four main motifs dominate

    def test_fig8_ten_kernels_memory_bound(self):
        s = fig8_roofline()
        assert len(s.rows) == 10
        assert all(row[-1] for row in s.rows)

    def test_fig9_monotone_exposure(self):
        s = fig9_overlap()
        exposed = s.column("exposed_comm_us")
        assert exposed == sorted(exposed)
        assert s.rows[0][-1] and not s.rows[-1][-1]

    def test_all_figures_keys(self):
        figs = all_figures()
        assert set(figs) == {
            "fig4_weak_scaling",
            "fig5_motif_speedups",
            "fig6_k80_speedups",
            "fig7_time_breakdown",
            "fig8_roofline",
            "fig9_overlap",
        }
        assert all(s.rows for s in figs.values())
