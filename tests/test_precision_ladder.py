"""The precision-ladder subsystem: schedules, escalation, byte model.

Covers the ladder end-to-end: spec parsing and promotion algebra in
``repro.fp.ladder``, the per-MG-level schedule through the policy and
the multigrid hierarchy, the adaptive escalation controller inside
GMRES-IR (the acceptance case: an fp16 fine-level inner stage converges
to the fp64 baseline's outer tolerance, promoting at least once on an
ill-conditioned solve), and the per-level byte-traffic model.
"""

import numpy as np
import pytest

from repro.fp import (
    DOUBLE_POLICY,
    EscalationConfig,
    HALF_LADDER_POLICY,
    MIXED_DS_POLICY,
    NO_ESCALATION,
    Precision,
    PrecisionPolicy,
    format_ladder,
    next_rung,
    parse_ladder,
    schedule_for_levels,
)
from repro.geometry import Subdomain
from repro.parallel import SerialComm
from repro.solvers.gmres_ir import GMRESIRSolver
from repro.stencil import generate_problem


class TestLadder:
    def test_next_rung(self):
        assert next_rung("fp16") is Precision.SINGLE
        assert next_rung(Precision.SINGLE) is Precision.DOUBLE
        assert next_rung("fp64") is Precision.DOUBLE  # top is a fixpoint

    def test_parse_and_format_roundtrip(self):
        sched = parse_ladder("fp16:fp32:fp64")
        assert sched == (Precision.HALF, Precision.SINGLE, Precision.DOUBLE)
        assert format_ladder(sched) == "fp16:fp32:fp64"

    def test_parse_accepts_aliases_and_sequences(self):
        assert parse_ladder("half:single") == (
            Precision.HALF,
            Precision.SINGLE,
        )
        assert parse_ladder([Precision.HALF, "fp64"]) == (
            Precision.HALF,
            Precision.DOUBLE,
        )
        assert parse_ladder(Precision.DOUBLE) == (Precision.DOUBLE,)

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="empty"):
            parse_ladder("")
        with pytest.raises(ValueError, match="fp16"):
            parse_ladder("fp16:bf16")  # error names the valid rungs

    def test_schedule_extends_last_rung(self):
        assert schedule_for_levels("fp16:fp32", 4) == (
            Precision.HALF,
            Precision.SINGLE,
            Precision.SINGLE,
            Precision.SINGLE,
        )
        assert schedule_for_levels("fp32", 2) == (
            Precision.SINGLE,
            Precision.SINGLE,
        )
        # Longer than the hierarchy: truncated.
        assert schedule_for_levels("fp16:fp32:fp64", 2) == (
            Precision.HALF,
            Precision.SINGLE,
        )

    def test_escalation_config_validation(self):
        with pytest.raises(ValueError):
            EscalationConfig(stall_ratio=0.0)
        with pytest.raises(ValueError):
            EscalationConfig(min_cycles=0)
        assert not NO_ESCALATION.enabled


class TestPolicySchedule:
    def test_mg_levels_normalized_from_spec(self):
        p = PrecisionPolicy(mg_levels="fp16:fp32")
        assert p.mg_levels == (Precision.HALF, Precision.SINGLE)
        assert p.preconditioner is Precision.HALF  # fine level
        assert p.mg_level(0) is Precision.HALF
        assert p.mg_level(5) is Precision.SINGLE  # last entry extends
        assert p.mg_schedule(4) == (
            Precision.HALF,
            Precision.SINGLE,
            Precision.SINGLE,
            Precision.SINGLE,
        )

    def test_from_ladder_sets_fine_rung_everywhere(self):
        p = PrecisionPolicy.from_ladder("fp16:fp32:fp64")
        assert p.matrix is Precision.HALF
        assert p.krylov_basis is Precision.HALF
        assert p.orthogonalization is Precision.HALF
        assert p.mg_levels == (
            Precision.HALF,
            Precision.SINGLE,
            Precision.DOUBLE,
        )
        assert p.least_squares is Precision.DOUBLE
        assert p.residual_update is Precision.DOUBLE
        assert p.low is Precision.HALF

    def test_promote_climbs_one_rung(self):
        p = HALF_LADDER_POLICY.promote()
        assert p.matrix is Precision.SINGLE
        assert p.mg_levels == (
            Precision.SINGLE,
            Precision.DOUBLE,
            Precision.DOUBLE,
        )
        assert p.residual_update is Precision.DOUBLE
        p2 = p.promote()
        assert p2.is_uniform_double
        assert p2.promote() is p2  # top of the ladder

    def test_can_promote(self):
        assert HALF_LADDER_POLICY.can_promote
        assert MIXED_DS_POLICY.can_promote
        assert not DOUBLE_POLICY.can_promote

    def test_describe_shows_schedule(self):
        assert "mg=fp16:fp32:fp64" in HALF_LADDER_POLICY.describe()

    def test_low_spans_schedule(self):
        p = PrecisionPolicy(mg_levels=("fp64", "fp16"))
        assert p.low is Precision.HALF


class TestLadderHierarchy:
    def test_per_level_dtypes(self, problem16, comm):
        from repro.mg import MGConfig, MultigridPreconditioner

        mg = MultigridPreconditioner.build(
            problem16, comm, MGConfig(), precision="fp16:fp32:fp64"
        )
        assert [lv.A.dtype for lv in mg.levels] == [
            np.float16,
            np.float32,
            np.float64,
            np.float64,
        ]
        assert mg.describe_schedule() == "fp16:fp32:fp64:fp64"
        assert mg.precision is Precision.HALF
        # The defect buffer of each level lives on the *coarser* rung.
        assert mg.levels[0].r_c.dtype == np.float32
        assert mg.levels[1].r_c.dtype == np.float64
        dims = mg.level_dims()
        assert [d["value_bytes"] for d in dims] == [2, 4, 8, 8]

    def test_ladder_vcycle_tracks_fp64(self, problem16, comm):
        from repro.mg import MGConfig, MultigridPreconditioner

        mg = MultigridPreconditioner.build(
            problem16, comm, MGConfig(), precision="fp16:fp32:fp64"
        )
        mg64 = MultigridPreconditioner.build(
            problem16, comm, MGConfig(), precision="fp64"
        )
        z = mg.apply(problem16.b.astype(np.float16)).astype(np.float64)
        z64 = mg64.apply(problem16.b)
        rel = np.linalg.norm(z - z64) / np.linalg.norm(z64)
        assert rel < 5e-3  # fp16-roundoff-level agreement

    def test_levelsched_rejects_fp16_schedule(self, problem16, comm):
        from repro.mg import MGConfig, MultigridPreconditioner

        with pytest.raises(ValueError, match="multicolor"):
            MultigridPreconditioner.build(
                problem16,
                comm,
                MGConfig(smoother="levelsched"),
                precision="fp16:fp32",
            )


class TestEscalation:
    @pytest.fixture(scope="class")
    def hard_problem(self):
        """Ill-conditioned case: the near-singular stencil (interior row
        sums are exactly zero) with a generic rhs whose solution is not
        fp16-representable — the fp16 stage must hit its floor."""
        prob = generate_problem(Subdomain.serial(16, 16, 16))
        b = np.random.default_rng(7).standard_normal(prob.nlocal)
        return prob, b

    def test_fp16_ladder_reaches_fp64_tolerance(self, hard_problem):
        """Acceptance: fp16 fine-level inner stage converges to the
        fp64 baseline's outer tolerance via escalation, recording at
        least one promotion."""
        prob, b = hard_problem
        comm = SerialComm()
        tol = 1e-11

        baseline = GMRESIRSolver(prob, comm, policy=DOUBLE_POLICY)
        _, st64 = baseline.solve(b, tol=tol, maxiter=300)
        assert st64.converged

        solver = GMRESIRSolver(prob, comm, policy=HALF_LADDER_POLICY)
        assert solver.escalation.enabled  # default for fp16 rungs
        x, st = solver.solve(b, tol=tol, maxiter=300)
        assert st.converged
        assert st.final_relres <= tol
        assert len(st.promotions) >= 1
        promo = st.promotions[0]
        assert promo.from_low is Precision.HALF
        assert promo.to_low.bytes > Precision.HALF.bytes
        assert promo.reason in ("stall", "floor", "breakdown")
        # The promoted solver carries the higher rung.
        assert solver.policy.low.bytes > Precision.HALF.bytes

    def test_pinned_fp16_stalls(self, hard_problem):
        """Without escalation the same configuration cannot get there —
        the stall the controller exists to break."""
        prob, b = hard_problem
        solver = GMRESIRSolver(
            prob, SerialComm(), policy=HALF_LADDER_POLICY, escalation=False
        )
        _, st = solver.solve(b, tol=1e-11, maxiter=120)
        assert not st.converged
        assert not st.promotions

    def test_fixed_policies_never_promote(self, problem16, comm):
        """The paper's fp32 configuration keeps its fixed policy."""
        solver = GMRESIRSolver(problem16, comm, policy=MIXED_DS_POLICY)
        assert not solver.escalation.enabled  # default: fp32 stays fixed
        _, st = solver.solve(problem16.b, tol=1e-9, maxiter=300)
        assert st.converged and not st.promotions

    def test_promotions_in_timeline(self, hard_problem):
        from repro.trace import promotions_to_timeline

        prob, b = hard_problem
        solver = GMRESIRSolver(prob, SerialComm(), policy=HALF_LADDER_POLICY)
        _, st = solver.solve(b, tol=1e-11, maxiter=300)
        tl = promotions_to_timeline(st.promotions)
        assert len(tl.events) == len(st.promotions) >= 1
        ev = tl.events[0]
        assert ev.stream == "precision"
        assert "fp16" in ev.name and ev.start == st.promotions[0].iteration
        assert "promotion" in st.summary()


class TestByteTrafficModel:
    def test_ladder_strictly_below_fp32(self):
        """Acceptance: modeled bytes of the fp16 ladder < all-fp32."""
        from repro.perf.scaling import ScalingModel

        model = ScalingModel()
        ladder = model.cycle_traffic_bytes(HALF_LADDER_POLICY)
        fp32 = model.cycle_traffic_bytes(MIXED_DS_POLICY)
        fp64 = model.cycle_traffic_bytes(DOUBLE_POLICY)
        assert ladder["total"] < fp32["total"] < fp64["total"]
        # The win comes from the fine-level widths specifically.
        assert ladder["mg"] < fp32["mg"]
        assert ladder["spmv"] < fp32["spmv"]

    def test_per_level_widths_matter(self):
        """A coarse-only fp16 schedule saves less than a fine-level one
        (the fine level dominates the traffic)."""
        from repro.perf.scaling import ScalingModel

        model = ScalingModel()
        fine_low = model.mg_vcycle_bytes(
            PrecisionPolicy(mg_levels="fp16:fp32")
        )
        coarse_low = model.mg_vcycle_bytes(
            PrecisionPolicy(mg_levels="fp32:fp16")
        )
        uniform32 = model.mg_vcycle_bytes(PrecisionPolicy(mg_levels="fp32"))
        assert fine_low < coarse_low < uniform32

    def test_time_model_accepts_schedule(self):
        from repro.perf.scaling import ScalingModel

        base = ScalingModel()
        laddered = ScalingModel(mg_schedule="fp16:fp32:fp64")
        t_base = base.mg_vcycle_times(Precision.SINGLE, 8, 1.0)
        t_ladder = laddered.mg_vcycle_times(Precision.SINGLE, 8, 1.0)
        assert t_ladder["gs"] < t_base["gs"]

    def test_memory_model_per_level(self):
        from repro.core.memory import solver_footprint

        dims = (32, 32, 32)
        ladder = solver_footprint(dims, HALF_LADDER_POLICY)
        fp32 = solver_footprint(dims, MIXED_DS_POLICY)
        # The fine level (matrix copy, basis) dominates: fp16 there wins
        # overall even though the upward ladder's *coarse* levels sit
        # above fp32 (they are 64x smaller).
        assert ladder.matrix_low < fp32.matrix_low
        assert ladder.krylov_basis < fp32.krylov_basis
        assert ladder.mg_hierarchy > fp32.mg_hierarchy
        assert ladder.total < fp32.total
        # A coarse-down schedule shrinks the hierarchy itself.
        down = solver_footprint(
            dims, PrecisionPolicy(matrix=Precision.SINGLE, mg_levels="fp32:fp16")
        )
        assert down.mg_hierarchy < fp32.mg_hierarchy


class TestConfigAndCLI:
    def test_config_builds_ladder_policy(self):
        from repro.core import BenchmarkConfig

        cfg = BenchmarkConfig(precision_ladder="fp16:fp32:fp64")
        pol = cfg.mixed_policy()
        assert pol.matrix is Precision.HALF
        assert pol.mg_levels == (
            Precision.HALF,
            Precision.SINGLE,
            Precision.DOUBLE,
        )
        assert cfg.escalation_config().enabled

    def test_config_without_ladder_keeps_classic_policy(self):
        from repro.core import BenchmarkConfig

        cfg = BenchmarkConfig()
        assert cfg.mixed_policy() == MIXED_DS_POLICY
        assert not cfg.escalation_config().enabled

    def test_config_escalation_off(self):
        from repro.core import BenchmarkConfig

        cfg = BenchmarkConfig(
            precision_ladder="fp16:fp32", escalation=False
        )
        assert not cfg.escalation_config().enabled

    def test_config_fp16_free_ladder_stays_fixed(self):
        """An fp32:fp64 ladder is a fixed configuration (no fp16 rung),
        matching the solver's own escalation default."""
        from repro.core import BenchmarkConfig

        cfg = BenchmarkConfig(precision_ladder="fp32:fp64")
        assert not cfg.escalation_config().enabled

    def test_shared_precond_replaced_on_promotion(self, comm):
        """A caller-supplied preconditioner on the old rung must not
        survive a promotion (it is the stalling component)."""
        from repro.mg import MGConfig, MultigridPreconditioner

        prob = generate_problem(Subdomain.serial(16, 16, 16))
        b = np.random.default_rng(11).standard_normal(prob.nlocal)
        shared = MultigridPreconditioner.build(
            prob, comm, MGConfig(), precision="fp16:fp32:fp64"
        )
        solver = GMRESIRSolver(
            prob, comm, policy=HALF_LADDER_POLICY, precond=shared
        )
        _, st = solver.solve(b, tol=1e-11, maxiter=300)
        assert st.converged and st.promotions
        assert solver.M is not shared
        assert solver.M.precision is solver.policy.preconditioner

    def test_config_rejects_bad_ladder(self):
        from repro.core import BenchmarkConfig

        with pytest.raises(ValueError, match="fp16"):
            BenchmarkConfig(precision_ladder="fp16:bf16")

    def test_cli_accepts_ladder_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--precision-ladder", "fp16:fp32:fp64", "--no-escalation"]
        )
        assert args.precision_ladder == "fp16:fp32:fp64"
        assert args.no_escalation
