"""Shared helpers for the partitioned-format / overlap test suites."""

import numpy as np

#: Rung-appropriate comparison tolerances (relative, absolute) for
#: checking low-precision distributed SpMV against the fp64 reference.
RUNG_TOLS = {
    "fp64": (1e-13, 1e-13),
    "fp32": (1e-5, 1e-5),
    "fp16": (2e-2, 5e-2),
}


def smooth_vector(sub) -> np.ndarray:
    """An fp16-representable test vector keyed to global coordinates."""
    gx, gy, gz = sub.global_coords()
    gg = sub.global_grid
    return 0.5 + (gx + 2.0 * gy + 3.0 * gz) / (gg.nx + 2 * gg.ny + 3 * gg.nz)
