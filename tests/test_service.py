"""Solver service (PR 8): coalescing, admission control, lifecycle.

Acceptance: ≥ 8 concurrent clients through the asyncio front end, each
coalesced request's solution **bitwise-equal** to the same solve run
solo (double and mixed-ladder); a compatible burst executes as one
panel solve whose every matrix pass serves the whole panel
(``rhs_columns == N × matrix_passes``); full queues and exhausted
arena pools reject with retry-after instead of buffering; timeouts and
cancellation deflate the in-flight column without perturbing its
companions or leaking the batch's arena lease.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.backends.workspace import WorkspacePool
from repro.fp.policy import DOUBLE_POLICY, PrecisionPolicy
from repro.mg import MGConfig
from repro.parallel import SerialComm
from repro.service import (
    ServiceClosedError,
    ServiceOverloadedError,
    SolveRequest,
    SolveTimeoutError,
    SolverService,
)
from repro.solvers import GMRESIRSolver

LADDER = "fp32:fp64"


def make_service(**kw) -> SolverService:
    """Service with test-sized solver knobs (2-level MG, restart 10)."""
    kw.setdefault("batch_window", 0.05)
    kw.setdefault("max_panel", 8)
    kw.setdefault("mg_config", MGConfig(nlevels=2))
    kw.setdefault("restart", 10)
    return SolverService(**kw)


def solo_solve(problem, b, ladder=None, tol=0.0, maxiter=20):
    """The reference solo solve a coalesced request must match bitwise
    (identical construction knobs; cache/arena/coalescing must all be
    arithmetic-invisible per the PR 6 panel contract)."""
    policy = PrecisionPolicy.from_ladder(ladder) if ladder else DOUBLE_POLICY
    solver = GMRESIRSolver(
        problem,
        SerialComm(),
        policy=policy,
        mg_config=MGConfig(nlevels=2),
        restart=10,
        ortho="cgs2",
        matrix_format="ell",
    )
    return solver.solve(b, tol=tol, maxiter=maxiter)


def rhs(b: np.ndarray, j: int) -> np.ndarray:
    return b * (1.0 + 0.5 * j)


class TestCoalescedParity:
    """The tentpole contract: coalescing is arithmetic-invisible."""

    @pytest.mark.parametrize("ladder", [None, LADDER])
    def test_eight_clients_bitwise_equal_solo(self, problem16, ladder):
        nclients = 8

        async def drive():
            async with make_service() as svc:
                fp = svc.register_operator(problem16)
                return await asyncio.gather(
                    *(
                        svc.solve(
                            SolveRequest(
                                operator=fp,
                                b=rhs(problem16.b, j),
                                ladder=ladder,
                                tol=0.0,
                                maxiter=20,
                            )
                        )
                        for j in range(nclients)
                    )
                ), svc

        responses, svc = asyncio.run(drive())
        assert len(responses) == nclients
        for j, resp in enumerate(responses):
            x_solo, s_solo = solo_solve(problem16, rhs(problem16.b, j), ladder=ladder)
            assert np.array_equal(resp.x, x_solo), f"client {j} diverged"
            assert resp.stats.iterations == s_solo.iterations
            assert resp.stats.final_relres == s_solo.final_relres
        # The burst coalesced into one panel solve...
        assert svc.metrics.batches == 1
        assert svc.metrics.coalesce_width == nclients
        assert all(r.coalesce_width == nclients for r in responses)
        # ...and every matrix pass served the whole panel: N columns
        # per pass, i.e. per single panel-wide pass the operators
        # booked matrix_passes == 1 and rhs_columns == N.
        assert svc.metrics.matrix_passes > 0
        assert svc.metrics.rhs_columns == nclients * svc.metrics.matrix_passes
        assert svc.metrics.panel_matrix_reuse == nclients

    def test_incompatible_knobs_split_into_separate_batches(self, problem16):
        async def drive():
            async with make_service() as svc:
                fp = svc.register_operator(problem16)
                reqs = [
                    SolveRequest(
                        operator=fp,
                        b=rhs(problem16.b, j),
                        # Two compatibility classes: uniform double and
                        # the mixed ladder.  They must not share a panel
                        # (different arithmetic), but both still batch
                        # within their own class.
                        ladder=None if j % 2 == 0 else LADDER,
                        tol=0.0,
                        maxiter=10,
                    )
                    for j in range(6)
                ]
                resps = await asyncio.gather(*(svc.solve(q) for q in reqs))
                return resps, svc

        resps, svc = asyncio.run(drive())
        assert svc.metrics.batches == 2
        assert sorted(svc.metrics.widths) == [3, 3]
        for j, resp in enumerate(resps):
            ladder = None if j % 2 == 0 else LADDER
            x_solo, _ = solo_solve(
                problem16, rhs(problem16.b, j), ladder=ladder, maxiter=10
            )
            assert np.array_equal(resp.x, x_solo)

    def test_wide_burst_chunks_to_max_panel(self, problem16):
        async def drive():
            async with make_service(max_panel=4) as svc:
                fp = svc.register_operator(problem16)
                resps = await asyncio.gather(
                    *(
                        svc.solve(
                            SolveRequest(
                                operator=fp,
                                b=rhs(problem16.b, j),
                                tol=0.0,
                                maxiter=5,
                            )
                        )
                        for j in range(8)
                    )
                )
                return resps, svc

        resps, svc = asyncio.run(drive())
        assert svc.metrics.batches == 2
        assert all(w <= 4 for w in svc.metrics.widths)
        assert len(resps) == 8


class TestAdmissionControl:
    def test_full_queue_rejects_with_retry_after(self, problem16):
        async def drive():
            async with make_service(max_pending=1, retry_after=0.125) as svc:
                fp = svc.register_operator(problem16)
                req = SolveRequest(operator=fp, b=problem16.b, tol=0.0, maxiter=2)
                # Two synchronous submits with no intervening await:
                # the batcher cannot drain between them, so the second
                # must bounce off the bounded queue.
                fut = svc.submit(req)
                with pytest.raises(ServiceOverloadedError) as ei:
                    svc.submit(req)
                assert ei.value.retry_after == 0.125
                assert "max_pending" in str(ei.value)
                await fut
                return svc

        svc = asyncio.run(drive())
        assert svc.metrics.rejected == 1
        assert svc.metrics.completed == 1

    def test_pool_exhaustion_rejects_and_recovers(self, problem16):
        pool = WorkspacePool("service-test", max_arenas=1)

        async def drive():
            async with make_service(pool=pool, retry_after=0.25) as svc:
                fp = svc.register_operator(problem16)
                req = SolveRequest(operator=fp, b=problem16.b, tol=0.0, maxiter=2)
                hog = pool.acquire()  # every arena leased out
                with pytest.raises(ServiceOverloadedError) as ei:
                    await svc.solve(req)
                assert ei.value.retry_after == 0.25
                assert "arenas leased" in str(ei.value)
                pool.release(hog)
                resp = await svc.solve(req)  # recovered
                return resp, svc

        resp, svc = asyncio.run(drive())
        assert svc.metrics.rejected == 1
        assert svc.metrics.completed == 1
        assert pool.exhaustions == 1
        assert pool.leased == 0  # no lease leaked by the rejected batch
        x_solo, _ = solo_solve(problem16, problem16.b, maxiter=2)
        assert np.array_equal(resp.x, x_solo)

    def test_submit_validates_operator_and_shape(self, problem16):
        async def drive():
            async with make_service() as svc:
                fp = svc.register_operator(problem16)
                with pytest.raises(KeyError, match="unknown operator"):
                    svc.submit(SolveRequest(operator="nope", b=problem16.b))
                with pytest.raises(ValueError, match="rhs shape"):
                    svc.submit(SolveRequest(operator=fp, b=problem16.b[:-1]))

        asyncio.run(drive())

    def test_closed_service_rejects_submit(self, problem16):
        async def drive():
            svc = make_service()
            fp = None
            async with svc:
                fp = svc.register_operator(problem16)
            with pytest.raises(ServiceClosedError):
                svc.submit(SolveRequest(operator=fp, b=problem16.b))

        asyncio.run(drive())

    def test_stop_fails_queued_requests(self, problem16):
        async def drive():
            svc = make_service(batch_window=5.0)
            await svc.start()
            fp = svc.register_operator(problem16)
            fut = svc.submit(
                SolveRequest(operator=fp, b=problem16.b, tol=0.0, maxiter=2)
            )
            # One tick: the batcher pops the request and sits in its
            # (long) window; stop() must still resolve the future.
            await asyncio.sleep(0)
            await svc.stop()
            with pytest.raises(ServiceClosedError):
                await fut

        asyncio.run(drive())


class TestTimeoutsAndCancellation:
    def test_timeout_fails_request_and_releases_lease(self, problem16):
        async def drive():
            async with make_service() as svc:
                fp = svc.register_operator(problem16)
                with pytest.raises(SolveTimeoutError) as ei:
                    await svc.solve(
                        SolveRequest(
                            operator=fp,
                            b=problem16.b,
                            tol=0.0,
                            maxiter=300,  # far beyond the deadline
                            timeout=0.05,
                        )
                    )
                assert ei.value.timeout == 0.05
                return svc

        svc = asyncio.run(drive())
        assert svc.metrics.timed_out == 1
        assert svc.metrics.completed == 0
        assert svc.pool.leased == 0  # the batch's arena came back

    def test_cancel_mid_solve_spares_companions(self, problem16):
        """A cancelled column deflates at a restart boundary; its
        companion's arithmetic and the pool's lease are untouched."""

        async def drive():
            async with make_service() as svc:
                fp = svc.register_operator(problem16)
                make = lambda j: SolveRequest(  # noqa: E731
                    operator=fp,
                    b=rhs(problem16.b, j),
                    tol=0.0,
                    maxiter=300,  # long enough to be cancelled mid-run
                )
                fut0 = svc.submit(make(0))
                fut1 = svc.submit(make(1))
                await asyncio.sleep(0.2)  # batch launched, solve running
                fut0.cancel()
                resp1 = await fut1
                with pytest.raises(asyncio.CancelledError):
                    await fut0
                return resp1, svc

        resp1, svc = asyncio.run(drive())
        assert svc.metrics.cancelled == 1
        assert svc.metrics.completed == 1
        assert svc.pool.leased == 0  # cancelled request leaked no lease
        x_solo, _ = solo_solve(problem16, rhs(problem16.b, 1), maxiter=300)
        assert np.array_equal(resp1.x, x_solo)

    def test_cancel_queued_request_never_launches(self, problem16):
        async def drive():
            async with make_service(batch_window=0.25) as svc:
                fp = svc.register_operator(problem16)
                fut = svc.submit(
                    SolveRequest(operator=fp, b=problem16.b, tol=0.0, maxiter=5)
                )
                fut.cancel()  # before the window closes
                await asyncio.sleep(0.4)
                return svc

        svc = asyncio.run(drive())
        assert svc.metrics.cancelled == 1
        assert svc.metrics.batches == 0  # the lone request never solved
        assert svc.pool.acquires == 0


class TestServicePhase:
    """The CI-gated benchmark phase built on the service."""

    def test_deterministic_phase_metrics(self):
        from repro.core import BenchmarkConfig, run_service_phase

        cfg = BenchmarkConfig(
            local_nx=16,
            max_iters_per_solve=5,
            service_clients=4,
            service_rounds=3,
        )
        m = run_service_phase(cfg)
        assert m.completed == 12
        assert m.batches == 3
        assert m.coalesce_width == 4.0
        assert m.max_coalesce_width == 4
        # Round 1 builds the setup products, rounds 2..R hit the cache.
        assert m.setup_cache_hit_rate == pytest.approx(2 / 3)
        assert m.panel_matrix_reuse == 4.0
        assert m.bitwise_parity is True
        d = m.to_dict()
        for key in (
            "coalesce_width",
            "setup_cache_hit_rate",
            "panel_matrix_reuse",
            "bitwise_parity",
        ):
            assert key in d

    def test_config_validation(self):
        from repro.core import BenchmarkConfig

        with pytest.raises(ValueError, match="service_clients"):
            BenchmarkConfig(service_clients=-1)
        with pytest.raises(ValueError, match="service_rounds"):
            BenchmarkConfig(service_clients=2, service_rounds=0)
        with pytest.raises(ValueError, match="service_batch_window"):
            BenchmarkConfig(service_clients=2, service_batch_window=0.0)
        with pytest.raises(ValueError, match="service_max_arenas"):
            BenchmarkConfig(service_clients=2, service_max_arenas=0)


class TestServiceGate:
    """check_regression.py's service block (nested, higher-is-better)."""

    @pytest.fixture()
    def gate(self):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            import check_regression
        finally:
            sys.path.pop(0)
        return check_regression

    def test_service_drop_fails(self, gate):
        base = {
            "service": {
                "coalesce_width": 8.0,
                "setup_cache_hit_rate": 0.5,
                "panel_matrix_reuse": 8.0,
                "bitwise_parity": True,
            }
        }
        cur = {
            "service": {
                "coalesce_width": 1.0,  # batcher stopped coalescing
                "setup_cache_hit_rate": 0.5,
                "panel_matrix_reuse": 8.0,
                "bitwise_parity": True,
            }
        }
        failures, _ = gate.compare(cur, base, 0.2)
        assert any("service.coalesce_width" in f for f in failures)

    def test_service_equal_passes(self, gate):
        block = {
            "coalesce_width": 8.0,
            "setup_cache_hit_rate": 0.5,
            "panel_matrix_reuse": 8.0,
            "bitwise_parity": True,
        }
        failures, _ = gate.compare(
            {"service": dict(block)}, {"service": dict(block)}, 0.2
        )
        assert failures == []

    def test_parity_break_fails(self, gate):
        block = {
            "coalesce_width": 8.0,
            "setup_cache_hit_rate": 0.5,
            "panel_matrix_reuse": 8.0,
        }
        cur = {"service": {**block, "bitwise_parity": False}}
        base = {"service": {**block, "bitwise_parity": True}}
        failures, _ = gate.compare(cur, base, 0.2)
        assert any("bitwise_parity" in f for f in failures)

    def test_missing_service_key_in_current_fails(self, gate):
        base = {"service": {"coalesce_width": 8.0}}
        failures, _ = gate.compare({"service": {}}, base, 0.2)
        assert any("coalesce_width" in f for f in failures)

    def test_pre_service_baseline_skips(self, gate):
        failures, _ = gate.compare({"service": {"coalesce_width": 8.0}}, {}, 0.2)
        assert failures == []
