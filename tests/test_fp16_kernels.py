"""fp16 kernels: fp32 accumulation, row-equilibrated storage, transfers.

The fp16 registrations in the NumPy backend must (a) beat native-fp16
arithmetic by accumulating in fp32/fp64, (b) fold the row-equilibration
scale of :class:`~repro.sparse.scaled.ScaledELLMatrix` back into their
output so callers see the original operator, and (c) accept ``out``
buffers in *other* precisions at ladder level boundaries.
"""

import numpy as np
import pytest

from repro.backends import Workspace, dispatch
from repro.sparse import (
    ScaledELLMatrix,
    equilibrated_half,
    row_equilibration_scales,
    to_format,
    to_precision,
)


@pytest.fixture(scope="module")
def A16(problem16):
    return equilibrated_half(problem16.A)


@pytest.fixture(scope="module")
def x16(problem16, rng):
    return rng.standard_normal(problem16.A.ncols).astype(np.float16)


class TestScaledStorage:
    def test_scales_are_powers_of_two(self, A16):
        exps = np.log2(A16.row_scale.astype(np.float64))
        np.testing.assert_array_equal(exps, np.round(exps))

    def test_stencil_values_exact(self, problem16, A16):
        """Power-of-two equilibration of the stencil is lossless: the
        unscaled values reconstruct bit-exactly."""
        rebuilt = A16.vals.astype(np.float64) * A16.row_scale[:, None]
        np.testing.assert_array_equal(rebuilt, problem16.A.vals)

    def test_diagonal_is_unscaled(self, problem16, A16):
        np.testing.assert_allclose(
            A16.diagonal().astype(np.float64),
            problem16.A.diagonal(),
            rtol=1e-3,
        )

    def test_astype_promotes_unequilibrated(self, problem16, A16):
        back = A16.astype("fp64")
        assert not isinstance(back, ScaledELLMatrix)
        np.testing.assert_array_equal(back.vals, problem16.A.vals)

    def test_to_precision_routes_half_to_scaled(self, problem16):
        assert isinstance(to_precision(problem16.A, "fp16"), ScaledELLMatrix)
        assert to_precision(problem16.A, "fp32").dtype == np.float32
        # CSR has no scaled path; plain cast (stencil entries are exact
        # in fp16 anyway).
        csr16 = to_precision(problem16.A.to_csr(), "fp16")
        assert csr16.data.dtype == np.float16

    def test_row_scales_handle_zero_rows(self):
        s = row_equilibration_scales(np.array([0.0, 26.0, 1e-4]))
        assert s[0] == 1.0 and s[1] == 32.0

    def test_format_name_stays_ell(self, A16):
        assert dispatch.matrix_format(A16) == "ell"


class TestFp16SpMV:
    @pytest.mark.parametrize("use_ws", [False, True])
    def test_ell_scaled_matches_fp64(self, problem16, A16, x16, use_ws):
        ws = Workspace() if use_ws else None
        y = dispatch.spmv(A16, x16, ws=ws)
        assert y.dtype == np.float16
        ref = problem16.A.spmv(x16.astype(np.float64))
        scale = np.abs(ref).max()
        np.testing.assert_allclose(
            y.astype(np.float64) / scale, ref / scale, atol=4e-3
        )

    def test_ell_out_in_fp32(self, A16, x16, problem16):
        """Ladder boundaries hand higher-precision out buffers in."""
        out = np.empty(A16.nrows, dtype=np.float32)
        dispatch.spmv(A16, x16, out=out)
        ref = problem16.A.spmv(x16.astype(np.float64))
        np.testing.assert_allclose(out, ref, atol=4e-3 * np.abs(ref).max())

    @pytest.mark.parametrize("fmt", ["csr", "ell", "sellcs"])
    def test_unscaled_formats_match_fp64(self, problem16, x16, fmt):
        A = to_format(problem16.A, fmt).astype("fp16")
        y = dispatch.spmv(A, x16)
        ref = problem16.A.spmv(x16.astype(np.float64))
        scale = np.abs(ref).max()
        np.testing.assert_allclose(
            y.astype(np.float64) / scale, ref / scale, atol=4e-3
        )

    @pytest.mark.parametrize("fmt", ["csr", "ell", "sellcs"])
    def test_spmv_rows_subset(self, problem16, x16, fmt, rng):
        A = to_format(problem16.A, fmt).astype("fp16")
        rows = np.sort(
            rng.choice(problem16.A.nrows, size=200, replace=False)
        ).astype(np.int64)
        y = dispatch.spmv_rows(A, rows, x16)
        ref = problem16.A.spmv(x16.astype(np.float64))[rows]
        np.testing.assert_allclose(
            y.astype(np.float64), ref, atol=4e-3 * np.abs(ref).max()
        )

    def test_spmv_rows_scaled(self, problem16, A16, x16, rng):
        rows = np.arange(0, A16.nrows, 7)
        ws = Workspace()
        out = np.empty(len(rows), dtype=np.float32)
        dispatch.spmv_rows(A16, rows, x16, out=out, ws=ws)
        ref = problem16.A.spmv(x16.astype(np.float64))[rows]
        np.testing.assert_allclose(out, ref, atol=4e-3 * np.abs(ref).max())

    def test_fp32_accumulation_beats_fp16(self, rng):
        """A long near-cancelling dot in fp16 loses the answer; the
        registered fp16 dot (fp64 accumulation) keeps it."""
        n = 50000
        a = np.full(n, 0.25, dtype=np.float16)
        b = np.ones(n, dtype=np.float16)
        exact = 0.25 * n
        assert dispatch.dot(a, b) == pytest.approx(exact)
        naive = np.float16(0.0)
        for chunk in np.split(a * b, 100):
            naive = np.float16(naive + chunk.sum(dtype=np.float16))
        assert abs(float(naive) - exact) > 1.0  # fp16 saturates


class TestFp16VectorOps:
    def test_waxpby(self, rng):
        x = rng.standard_normal(64).astype(np.float16)
        y = rng.standard_normal(64).astype(np.float16)
        got = dispatch.waxpby(2.0, x, -0.5, y)
        expect = 2.0 * x.astype(np.float64) - 0.5 * y.astype(np.float64)
        np.testing.assert_allclose(got.astype(np.float64), expect, atol=1e-2)

    @pytest.mark.parametrize("use_ws", [False, True])
    def test_waxpby_aliased(self, rng, use_ws):
        ws = Workspace() if use_ws else None
        x = rng.standard_normal(64).astype(np.float16)
        y = rng.standard_normal(64).astype(np.float16)
        expect = 1.0 * x.astype(np.float64) + 0.5 * y.astype(np.float64)
        got = dispatch.waxpby(1.0, x, 0.5, y, out=y, ws=ws)
        assert got is y
        np.testing.assert_allclose(got.astype(np.float64), expect, atol=1e-2)

    def test_gemv_gemvT(self, rng):
        Q = rng.standard_normal((200, 6)).astype(np.float16)
        coef = rng.standard_normal(4).astype(np.float16)
        got = dispatch.gemv(Q, 4, coef)
        expect = Q[:, :4].astype(np.float64) @ coef.astype(np.float64)
        np.testing.assert_allclose(got.astype(np.float64), expect, atol=5e-2)
        w = rng.standard_normal(200).astype(np.float16)
        h = dispatch.gemvT(Q, 4, w)
        # Coefficients stay fp32 — they feed the double Hessenberg.
        assert h.dtype == np.float32
        expect_h = Q[:, :4].astype(np.float64).T @ w.astype(np.float64)
        np.testing.assert_allclose(h.astype(np.float64), expect_h, rtol=2e-3)

    def test_dot_does_not_overflow(self):
        a = np.full(100000, 8.0, dtype=np.float16)
        assert dispatch.dot(a, a) == pytest.approx(6400000.0)


class TestFp16Transfers:
    def test_fused_restrict_cross_precision_out(self, problem16, A16, rng):
        """fp16 fine level restricting into an fp32 coarse buffer."""
        xfull = rng.standard_normal(A16.ncols).astype(np.float16)
        r = rng.standard_normal(A16.nrows).astype(np.float16)
        f_c = np.arange(0, A16.nrows, 8)
        out = np.empty(len(f_c), dtype=np.float32)
        ws = Workspace()
        dispatch.fused_restrict(A16, r, xfull, f_c, out=out, ws=ws)
        ref = (
            r.astype(np.float64)
            - problem16.A.spmv(xfull.astype(np.float64))
        )[f_c]
        np.testing.assert_allclose(out, ref, atol=4e-3 * max(np.abs(ref).max(), 1))

    @pytest.mark.parametrize("use_ws", [False, True])
    def test_prolong_fp16(self, rng, use_ws):
        ws = Workspace() if use_ws else None
        xfull = rng.standard_normal(40).astype(np.float16)
        z_c = rng.standard_normal(5).astype(np.float32)
        f_c = np.array([3, 9, 14, 22, 37])
        expect = xfull.astype(np.float64)
        expect[f_c] += z_c
        dispatch.prolong(xfull, z_c, f_c, ws=ws)
        np.testing.assert_allclose(
            xfull.astype(np.float64), expect, atol=1e-2
        )

    def test_generic_fused_restrict_cross_precision(self, problem16, rng):
        """fp32 fine level into an fp64 coarse buffer (generic kernel)."""
        A = problem16.A.astype("fp32")
        xfull = rng.standard_normal(A.ncols).astype(np.float32)
        r = rng.standard_normal(A.nrows).astype(np.float32)
        f_c = np.arange(0, A.nrows, 8)
        out = np.empty(len(f_c), dtype=np.float64)
        ws = Workspace()
        dispatch.fused_restrict(A, r, xfull, f_c, out=out, ws=ws)
        ref = (
            r.astype(np.float64)
            - problem16.A.spmv(xfull.astype(np.float64))
        )[f_c]
        np.testing.assert_allclose(out, ref, atol=1e-4 * max(np.abs(ref).max(), 1))


class TestFp16Smoother:
    def test_gs_sweep_reduces_residual(self, problem16):
        from repro.sparse.coloring import color_sets, structured_coloring8
        from repro.mg.smoothers import MulticolorGS

        A16 = equilibrated_half(problem16.A)
        sets = color_sets(structured_coloring8(problem16.sub))
        gs = MulticolorGS(A16, A16.diagonal(), sets, ws=Workspace())
        r = problem16.b.astype(np.float16)
        x = np.zeros(problem16.A.ncols, dtype=np.float16)
        gs.forward(r, x)
        res = problem16.b - problem16.A.spmv(x.astype(np.float64))
        assert np.linalg.norm(res) < 0.7 * np.linalg.norm(problem16.b)

    def test_levelsched_rejects_fp16(self, problem16):
        from repro.mg.smoothers import LevelScheduledGS

        with pytest.raises(ValueError, match="multicolor"):
            LevelScheduledGS(problem16.A.astype("fp16"))


class TestNumbaFp16Parity:
    """The JIT backend's fp16 SpMV coverage (ELL *and* CSR).

    Per-ingredient fp16 schedules must not silently fall back to the
    NumPy reference kernels on the JIT leg: where numba (with CPU
    float16 support) is installed, both formats register an
    fp32-accumulating fp16 SpMV whose results match the NumPy fp16
    path to fp16 roundoff.  Skipped where numba is absent (the
    offline container); the CI numba matrix leg executes it.
    """

    @pytest.fixture(scope="class")
    def numba_kernels(self):
        from repro.backends.numba_backend import HAVE_NUMBA
        from repro.backends.registry import (
            KernelNotFoundError,
            registry,
        )

        if not HAVE_NUMBA:
            pytest.skip("numba not installed")
        kernels = {}
        for fmt in ("ell", "csr"):
            try:
                fn = registry.lookup("spmv", fmt, "fp16", backend="numba")
            except KernelNotFoundError:
                pytest.skip("numba lacks a CPU float16 SpMV")
            if "numba" not in fn.__name__:
                pytest.skip(f"no numba fp16 {fmt} registration")
            kernels[fmt] = fn
        return kernels

    def test_csr_matches_numpy_fp16_path(self, problem16, x16, numba_kernels):
        from repro.backends.registry import registry

        A = to_precision(to_format(problem16.A, "csr"), "fp16")
        ref_kernel = registry.lookup("spmv", "csr", "fp16", backend="numpy")
        ref = ref_kernel(A, x16)
        jit = numba_kernels["csr"](A, x16)
        assert jit.dtype == ref.dtype
        np.testing.assert_allclose(
            jit.astype(np.float64), ref.astype(np.float64), rtol=2e-3
        )

    def test_ell_scaled_matches_numpy_fp16_path(self, A16, x16, numba_kernels):
        from repro.backends.registry import registry

        ref_kernel = registry.lookup("spmv", "ell", "fp16", backend="numpy")
        ref = ref_kernel(A16, x16)
        jit = numba_kernels["ell"](A16, x16)
        np.testing.assert_allclose(
            jit.astype(np.float64), ref.astype(np.float64), rtol=2e-3
        )

    def test_csr_out_contract(self, problem16, x16, numba_kernels):
        A = to_precision(to_format(problem16.A, "csr"), "fp16")
        out = np.zeros(A.nrows, dtype=np.float16)
        res = numba_kernels["csr"](A, x16, out=out)
        assert res is out
        assert np.abs(out.astype(np.float64)).sum() > 0
