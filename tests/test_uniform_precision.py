"""Tests for the uniform-precision counter-example solver.

These encode the benchmark's *raison d'être*: without the double outer
updates of Algorithm 3, a low-precision GMRES cannot deliver the nine
orders of residual reduction — which is exactly why HPG-MxP mandates
lines 7 and 47 in double.
"""

import numpy as np
import pytest

from repro.fp import MIXED_DS_POLICY
from repro.parallel import SerialComm
from repro.solvers import gmres_solve, uniform_precision_gmres
from repro.stencil import generate_problem
from repro.geometry import Subdomain


class TestUniformFP32:
    @pytest.fixture(scope="class")
    def stalled(self, problem16):
        return uniform_precision_gmres(
            problem16, SerialComm(), precision="fp32", tol=1e-9, maxiter=300
        )

    def test_does_not_reach_1e9(self, stalled):
        _, stats = stalled
        assert not stats.converged
        assert stats.residual_floor > 1e-8

    def test_does_reach_fp32_level(self, stalled):
        """It is not broken — it converges to the fp32 floor."""
        _, stats = stalled
        assert stats.residual_floor < 1e-4

    def test_solution_accurate_to_fp32_level(self, stalled):
        x, _ = stalled
        err = np.abs(x.astype(np.float64) - 1.0).max()
        assert 1e-8 < err < 1e-3

    def test_gmres_ir_succeeds_where_uniform_fails(self, problem16, comm):
        """The head-to-head that motivates the benchmark."""
        _, uniform = uniform_precision_gmres(
            problem16, SerialComm(), precision="fp32", tol=1e-9, maxiter=300
        )
        _, ir = gmres_solve(
            problem16, comm, policy=MIXED_DS_POLICY, tol=1e-9, maxiter=300
        )
        assert not uniform.converged
        assert ir.converged
        assert ir.final_relres < 1e-9 < uniform.final_relres

    def test_uniform_fp64_converges(self, problem16):
        """In fp64 the 'uniform' solver is just GMRES and must work."""
        x, stats = uniform_precision_gmres(
            problem16, SerialComm(), precision="fp64", tol=1e-9, maxiter=300
        )
        assert stats.converged
        assert np.abs(x - 1.0).max() < 1e-6

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_uniform_fp16_cannot_truly_reach_1e9(self):
        """fp16 without safeguards overflows, stalls, or *falsely*
        converges (the fp16 residual rounds to zero while the true
        fp64 residual is far above 1e-9) — why the paper calls fp16
        use 'strategic' future work.  Judge by the fp64 residual.

        Uses a random rhs: the standard all-ones solution is *exactly
        representable* in fp16, and the fp32-accumulating fp16 kernels
        are good enough to snap onto it — a generic solution is not,
        and there the iterate itself (held in fp16, ~3 decimal digits)
        bounds the reachable residual far above 1e-9.
        """
        prob = generate_problem(Subdomain.serial(16, 16, 16))
        b64 = prob.b.copy()
        prob.b[:] = np.random.default_rng(5).standard_normal(prob.nlocal)
        try:
            x, stats = uniform_precision_gmres(
                prob, SerialComm(), precision="fp16", tol=1e-9, maxiter=100
            )
            r = prob.b - prob.A.spmv(x.astype(np.float64))
            true_relres = np.linalg.norm(r) / np.linalg.norm(prob.b)
        finally:
            prob.b[:] = b64
        assert not np.isfinite(true_relres) or true_relres > 1e-7

    def test_zero_rhs(self):
        prob = generate_problem(Subdomain.serial(8, 8, 8))
        prob.b[:] = 0.0
        x, stats = uniform_precision_gmres(
            prob, SerialComm(), precision="fp32", tol=1e-9, maxiter=10
        )
        assert stats.converged
        assert np.all(x == 0)
        prob.b[:] = prob.A.vals.sum(axis=1)  # restore for other tests
