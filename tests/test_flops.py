"""Unit tests for the flop-count model."""

import pytest

from repro.core.flops import (
    LevelDims,
    flops_dot,
    flops_fused_restrict,
    flops_gmres_cycle_overhead,
    flops_gmres_iteration,
    flops_gmres_solve,
    flops_gs_sweep,
    flops_mg_vcycle,
    flops_ortho_step,
    flops_pcg_iteration,
    flops_prolong,
    flops_spmv,
    flops_unfused_restrict,
    flops_waxpby,
    hierarchy_dims,
    stencil27_nnz,
    total_flops,
)
from repro.mg.multigrid import MGConfig


class TestStencilNNZ:
    def test_1x1x1(self):
        assert stencil27_nnz(1, 1, 1) == 1

    def test_2x2x2(self):
        # Every point couples to all 8 points: 8 * 8.
        assert stencil27_nnz(2, 2, 2) == 64

    def test_matches_generated(self, problem16, problem_rect):
        assert stencil27_nnz(16, 16, 16) == problem16.A.nnz
        assert stencil27_nnz(5, 7, 4) == problem_rect.A.nnz

    def test_large_limit(self):
        """nnz/n -> 27 as the box grows."""
        n = 100
        assert stencil27_nnz(n, n, n) / n**3 == pytest.approx(27.0, rel=0.1)


class TestHierarchyDims:
    def test_halving(self):
        dims = hierarchy_dims(32, 32, 32, 4)
        assert [d.n for d in dims] == [32768, 4096, 512, 64]

    def test_row_width(self):
        assert all(d.row_width == 27 for d in hierarchy_dims(16, 16, 16, 3))


class TestElementaryCounts:
    def test_spmv(self):
        assert flops_spmv(100) == 200

    def test_gs(self):
        assert flops_gs_sweep(100, 10) == 220

    def test_dot_waxpby(self):
        assert flops_dot(10) == 20
        assert flops_waxpby(10) == 30

    def test_ortho_cgs2_double_of_cgs(self):
        n, k = 1000, 5
        cgs2 = flops_ortho_step(n, k, "cgs2")
        cgs = flops_ortho_step(n, k, "cgs")
        assert cgs2 - 3 * n == 2 * (cgs - 3 * n)

    def test_fused_much_smaller_than_unfused(self):
        """The §3.2.4 optimization: restrict work drops ~8x."""
        nnz, n = 27 * 32**3, 32**3
        fused = flops_fused_restrict(27, n // 8)
        unfused = flops_unfused_restrict(nnz, n)
        assert fused < unfused / 6

    def test_prolong(self):
        assert flops_prolong(64) == 64


class TestComposite:
    def setup_method(self):
        self.dims = hierarchy_dims(16, 16, 16, 4)
        self.cfg = MGConfig()

    def test_mg_vcycle_keys(self):
        mg = flops_mg_vcycle(self.dims, self.cfg)
        assert set(mg) == {"gs", "restrict", "prolong"}
        assert all(v > 0 for v in mg.values())

    def test_symmetric_sweep_doubles_gs(self):
        fwd = flops_mg_vcycle(self.dims, MGConfig())["gs"]
        sym = flops_mg_vcycle(self.dims, MGConfig(sweep="symmetric"))["gs"]
        assert sym == 2 * fwd

    def test_gs_dominated_by_fine_level(self):
        mg = flops_mg_vcycle(self.dims, self.cfg)
        fine_sweeps = 2 * flops_gs_sweep(self.dims[0].nnz, self.dims[0].n)
        assert mg["gs"] < 1.25 * fine_sweeps

    def test_iteration_ortho_grows_with_k(self):
        f1 = flops_gmres_iteration(self.dims, self.cfg, 1)
        f9 = flops_gmres_iteration(self.dims, self.cfg, 9)
        assert f9["ortho"] > f1["ortho"]
        assert f9["gs"] == f1["gs"]
        assert f9["spmv"] == f1["spmv"]

    def test_solve_total_consistency(self):
        """Total of a 2-cycle solve = sum of its parts."""
        cycles = [3, 2]
        totals = flops_gmres_solve(self.dims, self.cfg, cycles)
        manual = {m: 0 for m in totals}
        for klen in cycles:
            for k in range(1, klen + 1):
                for m, f in flops_gmres_iteration(self.dims, self.cfg, k).items():
                    manual[m] += f
            for m, f in flops_gmres_cycle_overhead(self.dims, self.cfg, klen).items():
                manual[m] += f
        assert totals == manual

    def test_empty_solve(self):
        assert total_flops(flops_gmres_solve(self.dims, self.cfg, [])) == 0

    def test_pcg_iteration(self):
        pcg = flops_pcg_iteration(self.dims, MGConfig(sweep="symmetric"))
        assert pcg["dot"] == 3 * flops_dot(self.dims[0].n)
        assert pcg["waxpby"] == 3 * flops_waxpby(self.dims[0].n)
        assert pcg["spmv"] == flops_spmv(self.dims[0].nnz)

    def test_hpcg_flops_magnitude(self):
        """HPCG model: ~(2+8+2)*nnz + O(n) per iteration; sanity check
        the per-iteration total against a hand estimate."""
        dims = hierarchy_dims(32, 32, 32, 4)
        per_iter = total_flops(flops_pcg_iteration(dims, MGConfig(sweep="symmetric")))
        nnz = dims[0].nnz
        # SpMV 2nnz + symGS 4nnz * (2 sweeps + coarse, over levels ~1.14)
        assert 6 * nnz < per_iter < 13 * nnz
