"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["run"],
            ["hpcg"],
            ["validate"],
            ["project"],
            ["roofline"],
            ["trace"],
            ["ablation"],
            ["memory"],
            ["energy"],
            ["fit"],
        ],
    )
    def test_all_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.fn)

    @pytest.mark.parametrize("fmt", ["auto", "csr", "ell", "sellcs"])
    def test_format_flag_parses(self, fmt):
        args = build_parser().parse_args(["run", "--format", fmt])
        assert args.matrix_format == fmt

    def test_format_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--format", "coo"])


class TestCommands:
    def test_validate(self, capsys):
        rc = main(
            ["validate", "--local-nx", "16", "--validation-max-iters", "200"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "n_d" in out and "penalty" in out

    def test_run_json(self, capsys):
        rc = main(
            [
                "run", "--local-nx", "16", "--max-iters", "8",
                "--validation-max-iters", "60", "--json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mxp"]["iterations"] == 8
        assert 0 < data["validation"]["penalty"] <= 1

    def test_run_precision_ladder(self, capsys):
        """An fp16-laddered mxp phase runs end-to-end from the CLI."""
        rc = main(
            [
                "run", "--local-nx", "16", "--max-iters", "4",
                "--validation-max-iters", "60",
                "--precision-ladder", "fp16:fp32:fp64", "--json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["config"]["precision_ladder"] == "fp16:fp32:fp64"
        assert data["mxp"]["iterations"] == 4

    def test_run_sellcs_format(self, capsys):
        rc = main(
            [
                "run", "--local-nx", "16", "--max-iters", "4",
                "--validation-max-iters", "40", "--format", "sellcs",
                "--json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["config"]["matrix_format"] == "sellcs"

    def test_run_report(self, capsys):
        rc = main(
            [
                "run", "--local-nx", "16", "--max-iters", "5",
                "--validation-max-iters", "60",
            ]
        )
        assert rc == 0
        assert "HPG-MxP Benchmark" in capsys.readouterr().out

    def test_hpcg(self, capsys):
        rc = main(["hpcg", "--local-nx", "16", "--max-iters", "4"])
        assert rc == 0
        assert "GFLOP/s" in capsys.readouterr().out

    def test_project(self, capsys):
        rc = main(["project", "--nodes", "1", "9408"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "17.2" in out  # total PF at 9408
        assert "fp16" in out

    def test_project_k80(self, capsys):
        rc = main(["project", "--machine", "k80", "--nodes", "1", "4"])
        assert rc == 0
        assert "k80" in capsys.readouterr().out

    def test_roofline(self, capsys):
        rc = main(["roofline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ortho_cgs2_fp64" in out

    def test_trace_with_export(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        rc = main(["trace", "--size", "40", "--out", str(out_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "exposed" in out  # 40^3 is the coarse, exposed case
        assert json.loads(out_file.read_text())["traceEvents"]

    def test_trace_fine_overlapped(self, capsys):
        rc = main(["trace", "--size", "320"])
        assert rc == 0
        assert "fully overlapped" in capsys.readouterr().out

    def test_ablation(self, capsys):
        rc = main(["ablation"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "level-scheduled GS" in out

    def test_memory(self, capsys):
        rc = main(["memory", "--local-nx", "32"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mxp/double memory ratio" in out
        assert "matrix-free" in out

    def test_energy(self, capsys):
        rc = main(["energy"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "energy saving" in out

    def test_fit(self, capsys):
        rc = main(["fit", "--sizes", "16", "24"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "iters ~" in out

    def test_compliance_scaled_config(self, capsys):
        rc = main(["compliance", "--local-nx", "16"])
        out = capsys.readouterr().out
        assert rc == 1  # deviations -> nonzero exit
        assert "deviations" in out

    def test_save_results_document(self, capsys, tmp_path):
        path = tmp_path / "out.yaml"
        rc = main(
            [
                "run", "--local-nx", "16", "--max-iters", "5",
                "--validation-max-iters", "60", "--save", str(path),
            ]
        )
        assert rc == 0
        assert "Final Summary" in path.read_text()

    def test_figures_export(self, capsys, tmp_path):
        rc = main(["figures", "--outdir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig4_weak_scaling.csv").exists()
        assert (tmp_path / "fig9_overlap.csv").exists()
