"""DispatchPlan semantics: lookup, consensus, parity, serialization.

The plan is the autotuner's contract with the rest of the stack: the
registry consults ``backend_for`` at dispatch time, the solver adopts
the solver-wide consensus only when unanimous, ``assert_parity`` keeps
non-bitwise variants out, and the aggregate probe speedup is >= 1.0 by
construction because the untuned default always competes.
"""

import pytest

from repro.fp.precision import Precision
from repro.tune import DispatchPlan, PlanChoice, PlanParityError, ProbeRecord
from repro.tune.plan import FUSED_OPS, MATRIX_OPS, PLAN_VERSION


def choice(
    fmt="ell",
    params=(),
    backend="numpy",
    fused=True,
    seconds=1.0,
    baseline_seconds=2.0,
    parity=True,
):
    return PlanChoice(
        fmt=fmt,
        fmt_params=params,
        backend=backend,
        fused=fused,
        seconds=seconds,
        baseline_seconds=baseline_seconds,
        parity=parity,
    )


def plan(entries, **kw):
    defaults = dict(
        operator_fingerprint="op-fp",
        machine_fingerprint="mach-fp",
        baseline_format="ell",
        baseline_params=(),
        baseline_fusion=True,
        baseline_backend="numpy",
    )
    defaults.update(kw)
    return DispatchPlan(entries=entries, **defaults)


class TestLookup:
    def test_choice_by_rung_string_and_precision(self):
        p = plan({("spmv", "fp64"): choice(backend="numba")})
        assert p.choice("spmv", "fp64").backend == "numba"
        assert p.choice("spmv", Precision.DOUBLE).backend == "numba"
        assert p.choice("spmv", "fp32") is None
        assert p.choice("spmv", None) is None

    def test_backend_for_untuned_op_is_none(self):
        p = plan({("spmv", "fp64"): choice(backend="numba")})
        assert p.backend_for("spmv", "fp64", "ell") == "numba"
        assert p.backend_for("symgs_sweep", "fp64", "ell") is None

    def test_backend_for_requires_matching_format(self):
        """Parity was verified only for the chosen format — a lookup
        under any other format (e.g. levelsched MG forcing ELL while
        the plan chose CSR) must fall back to untuned dispatch."""
        p = plan({("spmv", "fp64"): choice(fmt="csr", backend="numba")})
        assert p.backend_for("spmv", "fp64", "csr") == "numba"
        assert p.backend_for("spmv", "fp64", "ell") is None
        assert p.backend_for("spmv", "fp64", None) is None

    def test_backend_for_requires_matching_sell_params(self):
        params = (("chunk", 32), ("sigma", 128))
        p = plan(
            {
                ("spmv", "fp64"): choice(
                    fmt="sellcs", params=params, backend="numba"
                )
            }
        )
        assert p.backend_for("spmv", "fp64", "sellcs", params) == "numba"
        other = (("chunk", 16), ("sigma", 64))
        assert p.backend_for("spmv", "fp64", "sellcs", other) is None
        assert p.backend_for("spmv", "fp64", "sellcs") is None

    def test_backend_for_vector_op_matches_format_free_lookup(self):
        """Format-agnostic ops are probed (and dispatched) at
        ``fmt=None``; the recorded fmt is just the baseline placeholder."""
        p = plan({("waxpby_dot", "fp64"): choice(backend="numba")})
        assert p.backend_for("waxpby_dot", "fp64", None) == "numba"
        assert p.backend_for("waxpby_dot", "fp64", "ell") is None

    def test_fused_for_falls_back_to_default(self):
        p = plan({("spmv_dot", "fp64"): choice(fused=False)})
        assert p.fused_for("spmv_dot", "fp64", default=True) is False
        assert p.fused_for("waxpby_dot", "fp64", default=True) is True


class TestConsensus:
    def test_unanimous_format_is_adopted(self):
        entries = {
            (op, "fp64"): choice(fmt="csr") for op in sorted(MATRIX_OPS)
        }
        p = plan(entries)
        assert p.solver_format() == "csr"

    def test_split_format_keeps_baseline(self):
        ops = sorted(MATRIX_OPS)
        entries = {(ops[0], "fp64"): choice(fmt="csr")}
        entries.update({(op, "fp64"): choice(fmt="ell") for op in ops[1:]})
        p = plan(entries)
        assert p.solver_format() == "ell"

    def test_format_params_ride_the_consensus(self):
        params = (("chunk", 16), ("sigma", 64))
        entries = {
            (op, "fp64"): choice(fmt="sellcs", params=params)
            for op in sorted(MATRIX_OPS)
        }
        p = plan(entries)
        assert p.solver_format() == "sellcs"
        assert p.solver_format_params() == params

    def test_unanimous_unfused_flips_fusion(self):
        entries = {
            (op, "fp64"): choice(fused=False) for op in sorted(FUSED_OPS)
        }
        p = plan(entries)
        assert p.solver_fusion() is False

    def test_split_fusion_keeps_baseline(self):
        ops = sorted(FUSED_OPS)
        entries = {(ops[0], "fp64"): choice(fused=False)}
        entries.update({(op, "fp64"): choice(fused=True) for op in ops[1:]})
        p = plan(entries)
        assert p.solver_fusion() is True

    def test_applies_to_baseline_and_tuned_triples_only(self):
        entries = {
            (op, "fp64"): choice(fmt="csr", fused=True)
            for op in sorted(MATRIX_OPS)
        }
        p = plan(entries)
        assert p.applies_to("ell", (), True)  # the tuned-from baseline
        assert p.applies_to("csr", (), True)  # the tuned consensus
        assert not p.applies_to("sellcs", (("chunk", 32),), True)
        assert not p.applies_to("ell", (), False)


class TestInvariants:
    def test_assert_parity_rejects_non_bitwise_choice(self):
        p = plan({("spmv", "fp64"): choice(parity=False)})
        with pytest.raises(PlanParityError):
            p.assert_parity()

    def test_assert_parity_passes_clean_plan(self):
        p = plan({("spmv", "fp64"): choice()})
        p.assert_parity()

    def test_speedup_is_summed_ratio(self):
        p = plan(
            {
                ("spmv", "fp64"): choice(seconds=1.0, baseline_seconds=2.0),
                ("symgs_sweep", "fp64"): choice(
                    seconds=1.0, baseline_seconds=1.0
                ),
            }
        )
        assert p.speedup() == pytest.approx(3.0 / 2.0)
        assert plan({}).speedup() == 1.0

    def test_speedup_is_unclamped_so_the_ci_floor_can_fire(self):
        """A plan violating the selection invariant (chosen slower than
        baseline) must report < 1.0, not be masked by a clamp — the
        check_regression.py floor gate depends on it."""
        p = plan(
            {("spmv", "fp64"): choice(seconds=2.0, baseline_seconds=1.0)}
        )
        assert p.speedup() == pytest.approx(0.5)


class TestSerialization:
    def test_round_trip_preserves_entries_and_probes(self):
        rec = ProbeRecord(
            op="spmv",
            rung="fp64",
            fmt="sellcs",
            fmt_params=(("chunk", 16), ("sigma", 64)),
            backend="numpy",
            fused=True,
            seconds=1.5e-4,
            parity=True,
            selected=True,
        )
        p = plan(
            {("spmv", "fp64"): choice(fmt="sellcs", params=rec.fmt_params)},
            probes=(rec,),
            machine={"fingerprint": "mach-fp"},
        )
        back = DispatchPlan.from_dict(p.to_dict())
        assert back.operator_fingerprint == p.operator_fingerprint
        assert back.machine_fingerprint == p.machine_fingerprint
        assert back.entries == p.entries
        assert back.probes == p.probes
        assert back.machine == p.machine

    def test_probes_can_be_dropped_from_the_dict(self):
        p = plan({("spmv", "fp64"): choice()})
        assert "probes" not in p.to_dict(probes=False)
        assert p.to_dict()["version"] == PLAN_VERSION

    def test_version_mismatch_is_rejected(self):
        d = plan({("spmv", "fp64"): choice()}).to_dict()
        d["version"] = PLAN_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            DispatchPlan.from_dict(d)


class TestReport:
    def test_table_lists_variants_and_marks_selection(self):
        rec = ProbeRecord(
            op="spmv",
            rung="fp64",
            fmt="sellcs",
            fmt_params=(("chunk", 16),),
            backend="numpy",
            fused=False,
            seconds=1.0e-4,
            parity=True,
            selected=True,
        )
        p = plan({}, probes=(rec,))
        text = p.table()
        assert "sellcs[chunk=16]/numpy/unfused" in text
        assert "*" in text

    def test_variant_label(self):
        rec = ProbeRecord(
            op="spmv",
            rung="fp32",
            fmt="ell",
            fmt_params=(),
            backend="numpy",
            fused=True,
            seconds=1.0,
            parity=True,
        )
        assert rec.variant == "ell/numpy/fused"
