"""Integration tests: halo exchange and the distributed operator."""

import numpy as np

from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.parallel import HaloExchange, run_spmd
from repro.solvers import DistributedOperator
from repro.stencil import generate_problem


def global_test_vector(sub):
    """A vector whose value encodes the global coordinate."""
    gx, gy, gz = sub.global_coords()
    return (gx + 100.0 * gy + 10000.0 * gz).astype(np.float64)


class TestHaloExchange:
    def test_ghosts_receive_global_values(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            halo = HaloExchange(prob.halo, comm)
            xfull = halo.full_vector(global_test_vector(sub))
            halo.exchange(xfull)
            # Check each ghost block holds the neighbor's boundary data.
            ok = True
            n = sub.nlocal
            for d in prob.halo.directions:
                off = prob.halo.ghost_offsets[d]
                cnt = prob.halo.ghost_counts[d]
                got = xfull[n + off : n + off + cnt]
                from repro.geometry.halo import opposite_direction

                nb = prob.halo.neighbor_ranks[d]
                nb_sub = Subdomain(BoxGrid(4, 4, 4), pg, nb)
                nb_x = global_test_vector(nb_sub)
                nb_halo = generate_problem(nb_sub).halo
                expected = nb_x[nb_halo.send_indices[opposite_direction(d)]]
                ok &= np.array_equal(got, expected)
            return ok

        assert all(run_spmd(8, fn))

    def test_exchange_counts_messages(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            halo = HaloExchange(prob.halo, comm)
            xfull = halo.full_vector(np.ones(sub.nlocal))
            halo.exchange(xfull)
            return (comm.stats.sends, comm.stats.recvs, halo.num_neighbors)

        for sends, recvs, nbrs in run_spmd(8, fn):
            assert sends == recvs == nbrs == 7  # 2x2x2 corner ranks

    def test_serial_exchange_is_noop(self):
        from repro.parallel import SerialComm

        prob = generate_problem(Subdomain.serial(4))
        halo = HaloExchange(prob.halo, SerialComm())
        xfull = halo.full_vector(np.ones(64))
        halo.exchange(xfull)  # must not raise
        assert halo.num_neighbors == 0

    def test_exchange_bytes_accounting(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            halo = HaloExchange(prob.halo, comm)
            xfull = halo.full_vector(np.ones(sub.nlocal))
            halo.exchange(xfull)
            return comm.stats.send_bytes == halo.exchange_bytes(8)

        assert all(run_spmd(8, fn))

    def test_fp32_exchange(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            halo = HaloExchange(prob.halo, comm)
            x32 = global_test_vector(sub).astype(np.float32)
            xfull = halo.full_vector(x32)
            halo.exchange(xfull)
            return xfull.dtype == np.float32 and np.isfinite(xfull).all()

        assert all(run_spmd(8, fn))


class TestDistributedOperator:
    def test_matches_serial_spmv(self):
        serial = generate_problem(Subdomain.serial(8, 8, 8))
        x_serial = global_test_vector(serial.sub)
        y_serial = serial.A.spmv(x_serial)

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            op = DistributedOperator(prob.A, prob.halo, comm)
            y = op.matvec(global_test_vector(sub))
            gx, gy, gz = sub.global_coords()
            gids = sub.global_grid.linear_index(gx, gy, gz)
            return np.allclose(y, y_serial[gids], rtol=1e-13)

        assert all(run_spmd(8, fn))

    def test_split_matches_plain(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            op = DistributedOperator(prob.A, prob.halo, comm)
            x = global_test_vector(sub)
            return np.allclose(op.matvec(x), op.matvec_split(x), rtol=1e-14)

        assert all(run_spmd(8, fn))

    def test_csr_operator_matches_ell(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            op_ell = DistributedOperator(prob.A, prob.halo, comm)
            op_csr = DistributedOperator(prob.A.to_csr(), prob.halo, comm)
            x = global_test_vector(sub)
            return np.allclose(op_ell.matvec(x), op_csr.matvec(x), rtol=1e-13)

        assert all(run_spmd(2, fn))

    def test_residual(self, problem16, comm):
        op = DistributedOperator(problem16.A, problem16.halo, comm)
        r = op.residual(problem16.b, np.ones(problem16.nlocal))
        np.testing.assert_allclose(r, 0.0, atol=1e-12)

    def test_nonuniform_process_grid(self):
        """1D strip decomposition exercises face-only halos."""
        serial = generate_problem(Subdomain.serial(12, 4, 4))
        x_serial = global_test_vector(serial.sub)
        y_serial = serial.A.spmv(x_serial)

        def fn(comm):
            pg = ProcessGrid(3, 1, 1)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            op = DistributedOperator(prob.A, prob.halo, comm)
            y = op.matvec(global_test_vector(sub))
            gx, gy, gz = sub.global_coords()
            gids = sub.global_grid.linear_index(gx, gy, gz)
            return np.allclose(y, y_serial[gids], rtol=1e-13)

        assert all(run_spmd(3, fn))
