"""Shared fixtures: cached problems and communicators.

Problem generation is deterministic, so module-scope caching keeps the
suite fast without coupling tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.partition import Subdomain
from repro.parallel.comm import SerialComm
from repro.stencil.poisson27 import ProblemSpec, generate_problem


@pytest.fixture(scope="session")
def problem8():
    """Serial 8^3 problem (512 rows) — smallest 4-level-unfriendly box."""
    return generate_problem(Subdomain.serial(8, 8, 8))

@pytest.fixture(scope="session")
def problem16():
    """Serial 16^3 problem (4096 rows) — supports a 4-level hierarchy."""
    return generate_problem(Subdomain.serial(16, 16, 16))


@pytest.fixture(scope="session")
def problem_nonsym16():
    return generate_problem(
        Subdomain.serial(16, 16, 16), spec=ProblemSpec(kind="nonsymmetric")
    )


@pytest.fixture(scope="session")
def problem_rect():
    """Non-cubic box to catch x/y/z index transpositions."""
    return generate_problem(Subdomain.serial(5, 7, 4))


@pytest.fixture()
def comm():
    return SerialComm()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)
