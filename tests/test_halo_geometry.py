"""Unit tests for halo patterns (ghost layout and overlap split)."""

import numpy as np
import pytest

from repro.geometry import (
    DIRECTIONS,
    BoxGrid,
    ProcessGrid,
    Subdomain,
    build_halo_pattern,
    direction_index,
    opposite_direction,
)
from repro.geometry.halo import CENTER_SLOT, STENCIL_OFFSETS


class TestDirections:
    def test_26_directions(self):
        assert len(DIRECTIONS) == 26
        assert (0, 0, 0) not in DIRECTIONS

    def test_27_stencil_offsets(self):
        assert len(STENCIL_OFFSETS) == 27
        assert STENCIL_OFFSETS[CENTER_SLOT] == (0, 0, 0)

    def test_opposite(self):
        assert opposite_direction((1, -1, 0)) == (-1, 1, 0)

    def test_direction_index_roundtrip(self):
        for i, d in enumerate(DIRECTIONS):
            assert direction_index(d) == i


def middle_subdomain(local=4):
    pg = ProcessGrid(3, 3, 3)
    return Subdomain(BoxGrid(local, local, local), pg, pg.coords_rank(1, 1, 1))


class TestHaloPattern:
    def test_serial_has_no_ghosts(self):
        pat = build_halo_pattern(Subdomain.serial(4))
        assert pat.n_ghost == 0
        assert pat.directions == []
        assert len(pat.boundary_rows) == 0
        assert len(pat.interior_rows) == 64

    def test_middle_rank_26_neighbors(self):
        pat = build_halo_pattern(middle_subdomain())
        assert len(pat.neighbor_ranks) == 26

    def test_ghost_count_middle(self):
        n = 4
        pat = build_halo_pattern(middle_subdomain(n))
        expected = 6 * n * n + 12 * n + 8  # faces + edges + corners
        assert pat.n_ghost == expected

    def test_send_counts_match_block_dims(self):
        n = 4
        pat = build_halo_pattern(middle_subdomain(n))
        for d in pat.directions:
            nz_axes = sum(1 for c in d if c != 0)
            expected = n ** (3 - nz_axes)
            assert len(pat.send_indices[d]) == expected
            assert pat.ghost_counts[d] == expected

    def test_ghost_offsets_are_contiguous(self):
        pat = build_halo_pattern(middle_subdomain(4))
        cursor = 0
        for d in pat.directions:
            assert pat.ghost_offsets[d] == cursor
            cursor += pat.ghost_counts[d]
        assert cursor == pat.n_ghost

    def test_send_indices_sorted(self):
        pat = build_halo_pattern(middle_subdomain(4))
        for d in pat.directions:
            idx = pat.send_indices[d]
            assert np.all(np.diff(idx) > 0)

    def test_boundary_plus_interior_partition(self):
        pat = build_halo_pattern(middle_subdomain(4))
        all_rows = np.sort(np.concatenate([pat.boundary_rows, pat.interior_rows]))
        assert np.array_equal(all_rows, np.arange(64))

    def test_middle_rank_interior_is_strict_interior(self):
        n = 4
        pat = build_halo_pattern(middle_subdomain(n))
        assert len(pat.interior_rows) == (n - 2) ** 3

    def test_corner_rank_overlap_split(self):
        pg = ProcessGrid(2, 2, 2)
        sub = Subdomain(BoxGrid(4, 4, 4), pg, 0)  # corner of proc grid
        pat = build_halo_pattern(sub)
        # Only the three high faces have neighbors.
        assert len(pat.neighbor_ranks) == 7
        assert len(pat.boundary_rows) == 64 - 27  # 3^3 rows untouched

    def test_ghost_columns_inside_box(self):
        pat = build_halo_pattern(middle_subdomain(4))
        lx = np.array([1, 2])
        cols = pat.ghost_columns(lx, lx, lx)
        expected = pat.sub.local.linear_index(lx, lx, lx)
        assert np.array_equal(cols, expected)

    def test_ghost_columns_outside_box_in_range(self):
        pat = build_halo_pattern(middle_subdomain(4))
        cols = pat.ghost_columns(np.array([-1]), np.array([0]), np.array([0]))
        assert cols[0] >= pat.nlocal
        assert cols[0] < pat.ncols

    def test_ghost_columns_unique_across_layer(self):
        """Every ghost coordinate maps to a distinct ghost slot."""
        n = 4
        pat = build_halo_pattern(middle_subdomain(n))
        coords = []
        for x in range(-1, n + 1):
            for y in range(-1, n + 1):
                for z in range(-1, n + 1):
                    if not (0 <= x < n and 0 <= y < n and 0 <= z < n):
                        coords.append((x, y, z))
        arr = np.array(coords)
        cols = pat.ghost_columns(arr[:, 0], arr[:, 1], arr[:, 2])
        assert len(np.unique(cols)) == len(coords)
        assert cols.min() == pat.nlocal
        assert cols.max() == pat.ncols - 1

    def test_ghost_columns_raises_on_missing_neighbor(self):
        pat = build_halo_pattern(Subdomain.serial(4))
        with pytest.raises(ValueError):
            pat.ghost_columns(np.array([-1]), np.array([0]), np.array([0]))

    def test_face_rank_fewer_neighbors(self):
        pg = ProcessGrid(3, 1, 1)
        sub = Subdomain(BoxGrid(4, 4, 4), pg, 1)  # middle of a 1D strip
        pat = build_halo_pattern(sub)
        assert len(pat.neighbor_ranks) == 2  # +x and -x only
