"""Unit tests for Givens QR and orthogonalization kernels."""

import numpy as np
import pytest

from repro.parallel import SerialComm
from repro.solvers import GivensQR, cgs, cgs2, givens_coefficients, mgs
from repro.solvers.ortho import orthogonality_loss


class TestGivensCoefficients:
    def test_annihilates_b(self):
        c, s, r = givens_coefficients(3.0, 4.0)
        assert -s * 3.0 + c * 4.0 == pytest.approx(0.0, abs=1e-15)
        assert c * 3.0 + s * 4.0 == pytest.approx(r)
        assert r == pytest.approx(5.0)

    def test_b_zero(self):
        assert givens_coefficients(2.0, 0.0) == (1.0, 0.0, 2.0)

    def test_a_zero(self):
        assert givens_coefficients(0.0, 2.0) == (0.0, 1.0, 2.0)

    def test_norm_preserved(self):
        c, s, r = givens_coefficients(-1.7, 2.9)
        assert c * c + s * s == pytest.approx(1.0)
        assert abs(r) == pytest.approx(np.hypot(1.7, 2.9))


class TestGivensQR:
    def build_hessenberg(self, m, seed=0):
        rng = np.random.default_rng(seed)
        H = np.zeros((m + 1, m))
        for j in range(m):
            H[: j + 2, j] = rng.standard_normal(j + 2)
        return H

    def test_implicit_residual_matches_lstsq(self):
        """|t_{k+1}| must equal the least-squares residual norm."""
        m, beta = 6, 2.3
        H = self.build_hessenberg(m)
        qr = GivensQR(m)
        qr.start(beta)
        for j in range(m):
            rho = qr.add_column(H[: j + 2, j])
            e1 = np.zeros(j + 2)
            e1[0] = beta
            _, res, *_ = np.linalg.lstsq(H[: j + 2, : j + 1], e1, rcond=None)
            expected = np.sqrt(res[0]) if len(res) else np.linalg.norm(
                e1
                - H[: j + 2, : j + 1]
                @ np.linalg.lstsq(H[: j + 2, : j + 1], e1, rcond=None)[0]
            )
            assert rho == pytest.approx(expected, rel=1e-10, abs=1e-12)

    def test_solve_matches_lstsq(self):
        m, beta = 5, 1.0
        H = self.build_hessenberg(m, seed=3)
        qr = GivensQR(m)
        qr.start(beta)
        for j in range(m):
            qr.add_column(H[: j + 2, j])
        y = qr.solve()
        e1 = np.zeros(m + 1)
        e1[0] = beta
        y_ref = np.linalg.lstsq(H, e1, rcond=None)[0]
        np.testing.assert_allclose(y, y_ref, rtol=1e-10)

    def test_partial_solve(self):
        m = 5
        H = self.build_hessenberg(m, seed=4)
        qr = GivensQR(m)
        qr.start(1.0)
        for j in range(3):
            qr.add_column(H[: j + 2, j])
        y = qr.solve(3)
        e1 = np.zeros(4)
        e1[0] = 1.0
        y_ref = np.linalg.lstsq(H[:4, :3], e1, rcond=None)[0]
        np.testing.assert_allclose(y, y_ref, rtol=1e-10)

    def test_zero_column_solve(self):
        qr = GivensQR(3)
        qr.start(1.0)
        assert qr.solve(0).size == 0

    def test_overflow_cycle_rejected(self):
        qr = GivensQR(1)
        qr.start(1.0)
        qr.add_column(np.array([1.0, 0.5]))
        with pytest.raises(RuntimeError):
            qr.add_column(np.array([1.0, 0.5, 0.2]))

    def test_wrong_column_length(self):
        qr = GivensQR(3)
        qr.start(1.0)
        with pytest.raises(ValueError):
            qr.add_column(np.array([1.0]))


class TestOrthogonalization:
    def setup_basis(self, n=200, k=8, dtype=np.float64, seed=0):
        rng = np.random.default_rng(seed)
        Q = np.linalg.qr(rng.standard_normal((n, k + 1)))[0].astype(dtype)
        w = rng.standard_normal(n).astype(dtype)
        return Q.copy(), w

    @pytest.mark.parametrize("method", [cgs, cgs2, mgs])
    def test_orthogonalizes(self, method):
        Q, w = self.setup_basis()
        comm = SerialComm()
        method(comm, Q, 8, w)
        # After projection, w is orthogonal to the basis columns.
        assert np.abs(Q[:, :8].T @ w).max() < 1e-12

    @pytest.mark.parametrize("method", [cgs, cgs2, mgs])
    def test_coefficients_match_projection(self, method):
        Q, w = self.setup_basis(seed=5)
        w0 = w.copy()
        comm = SerialComm()
        h = method(comm, Q, 8, w)
        np.testing.assert_allclose(h, Q[:, :8].T @ w0, rtol=1e-10, atol=1e-12)

    def test_cgs2_beats_cgs_in_fp32(self):
        """The benchmark's motivation: CGS loses orthogonality in low
        precision; CGS2's reorthogonalization restores it."""
        n, m = 400, 25
        rng = np.random.default_rng(42)
        # An ill-conditioned Krylov-ish sequence of vectors.
        base = rng.standard_normal(n).astype(np.float32)
        comm = SerialComm()

        def run(method):
            Q = np.zeros((n, m + 1), dtype=np.float32)
            v = base / np.linalg.norm(base)
            Q[:, 0] = v
            M = rng.standard_normal((n, n)).astype(np.float32) * 0.01 + np.eye(
                n, dtype=np.float32
            )
            for k in range(1, m + 1):
                w = M @ Q[:, k - 1]
                method(comm, Q, k, w)
                nw = np.linalg.norm(w)
                Q[:, k] = w / nw
            return orthogonality_loss(Q, m + 1)

        loss_cgs = run(cgs)
        loss_cgs2 = run(cgs2)
        assert loss_cgs2 < loss_cgs
        assert loss_cgs2 < 1e-5

    def test_orthogonality_loss_of_identityish(self):
        Q, _ = self.setup_basis()
        assert orthogonality_loss(Q, 8) < 1e-14


class TestFusedCGS2:
    """PR 6 satellite: the fused projection+norm motif is bitwise-equal
    to the unfused CGS2 followed by a local dot."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.float16])
    def test_fused_matches_unfused_bitwise(self, dtype):
        from repro.backends.workspace import Workspace
        from repro.solvers.ortho import cgs2_fused

        n, k = 200, 8
        rng = np.random.default_rng(3)
        Q = np.linalg.qr(rng.standard_normal((n, k + 1)))[0].astype(dtype)
        w0 = rng.standard_normal(n).astype(dtype)
        comm = SerialComm()

        from repro.backends.dispatch import dot

        w_ref = w0.copy()
        h_ref = cgs2(comm, Q.copy(), k, w_ref, ws=Workspace())
        # The unfused sequence ends with the registry's local dot (the
        # rung's own accumulation) — the fused motif must match *that*.
        local_ref = dot(w_ref, w_ref)

        w_fused = w0.copy()
        h_fused, local = cgs2_fused(comm, Q.copy(), k, w_fused, ws=Workspace())
        assert np.array_equal(w_fused, w_ref)
        assert np.array_equal(h_fused, h_ref)
        assert local == local_ref

    def test_fused_without_workspace(self):
        from repro.backends.dispatch import dot
        from repro.solvers.ortho import cgs2_fused

        n, k = 64, 4
        rng = np.random.default_rng(7)
        Q = np.linalg.qr(rng.standard_normal((n, k + 1)))[0]
        w = rng.standard_normal(n)
        w_ref = w.copy()
        h_ref = cgs2(SerialComm(), Q.copy(), k, w_ref)
        h, local = cgs2_fused(SerialComm(), Q.copy(), k, w)
        assert np.array_equal(w, w_ref)
        assert np.array_equal(h, h_ref)
        assert local == dot(w_ref, w_ref)
