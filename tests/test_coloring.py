"""Unit tests for multicoloring and reordering."""

import numpy as np
import pytest

from repro.geometry import Subdomain
from repro.sparse import (
    color_sets,
    coloring_permutation,
    greedy_coloring,
    inverse_permutation,
    jpl_coloring,
    permute_symmetric,
    rcm_ordering,
    structured_coloring8,
    validate_coloring,
)
from repro.sparse.reorder import permute_vector, unpermute_vector
from repro.stencil import generate_problem


class TestStructuredColoring:
    def test_exactly_8_colors(self, problem16):
        colors = structured_coloring8(problem16.sub)
        assert colors.max() == 7
        assert colors.min() == 0

    def test_valid_on_27pt_stencil(self, problem16):
        colors = structured_coloring8(problem16.sub)
        assert validate_coloring(problem16.A, colors)

    def test_valid_on_rectangular_box(self, problem_rect):
        colors = structured_coloring8(problem_rect.sub)
        assert validate_coloring(problem_rect.A, colors)

    def test_balanced_on_even_box(self, problem16):
        colors = structured_coloring8(problem16.sub)
        counts = np.bincount(colors)
        assert np.all(counts == problem16.nlocal // 8)

    def test_paper_2d_analog_uses_4_colors(self):
        """Figure 2: the 9-point stencil in 2D needs 4 independent sets.

        A 'flat' 3D box (nz=1) reduces the 27-point stencil to 9-point.
        """
        prob = generate_problem(Subdomain.serial(6, 6, 1))
        colors = structured_coloring8(prob.sub)
        assert len(np.unique(colors)) == 4
        assert validate_coloring(prob.A, colors)


class TestJPLColoring:
    def test_valid(self, problem16):
        colors = jpl_coloring(problem16.A)
        assert validate_coloring(problem16.A, colors)

    def test_all_colored(self, problem16):
        colors = jpl_coloring(problem16.A)
        assert colors.min() >= 0

    def test_at_most_degree_plus_one_colors(self, problem16):
        colors = jpl_coloring(problem16.A)
        assert colors.max() + 1 <= 27  # degree 26 graph

    def test_deterministic_for_seed(self, problem16):
        c1 = jpl_coloring(problem16.A, seed=42)
        c2 = jpl_coloring(problem16.A, seed=42)
        assert np.array_equal(c1, c2)

    def test_different_seeds_differ(self, problem16):
        c1 = jpl_coloring(problem16.A, seed=1)
        c2 = jpl_coloring(problem16.A, seed=2)
        assert not np.array_equal(c1, c2)


class TestGreedyColoring:
    def test_valid_and_8_colors_lexicographic(self, problem8):
        colors = greedy_coloring(problem8.A)
        assert validate_coloring(problem8.A, colors)
        # First-fit in lexicographic order reproduces the structured 8.
        assert colors.max() + 1 == 8

    def test_matches_structured_on_stencil(self, problem8):
        greedy = greedy_coloring(problem8.A)
        structured = structured_coloring8(problem8.sub)
        assert np.array_equal(greedy, structured)

    def test_custom_order_still_valid(self, problem8, rng):
        order = rng.permutation(problem8.nlocal)
        colors = greedy_coloring(problem8.A, order=order)
        assert validate_coloring(problem8.A, colors)


class TestColorSets:
    def test_partition(self, problem16):
        colors = structured_coloring8(problem16.sub)
        sets = color_sets(colors)
        assert len(sets) == 8
        combined = np.sort(np.concatenate(sets))
        assert np.array_equal(combined, np.arange(problem16.nlocal))

    def test_sets_sorted(self, problem16):
        for s in color_sets(structured_coloring8(problem16.sub)):
            assert np.all(np.diff(s) > 0)

    def test_empty(self):
        assert color_sets(np.array([], dtype=np.int32)) == []


class TestPermutation:
    def test_inverse(self, rng):
        p = rng.permutation(50)
        inv = inverse_permutation(p)
        assert np.array_equal(p[inv], np.arange(50))

    def test_coloring_permutation_groups_colors(self, problem8):
        colors = structured_coloring8(problem8.sub)
        old_of_new, new_of_old = coloring_permutation(colors)
        reordered = colors[old_of_new]
        assert np.all(np.diff(reordered) >= 0)  # non-decreasing colors
        assert np.array_equal(inverse_permutation(old_of_new), new_of_old)

    def test_permute_symmetric_preserves_operator(self, problem8, rng):
        """P A P^T x' where x' = P x must equal P (A x)."""
        A = problem8.A
        n = A.nrows
        colors = structured_coloring8(problem8.sub)
        _, new_of_old = coloring_permutation(colors)
        B = permute_symmetric(A, new_of_old)
        x = rng.standard_normal(n)
        y_ref = A.spmv(x)
        y_perm = B.spmv(permute_vector(x, new_of_old))
        np.testing.assert_allclose(
            unpermute_vector(y_perm, new_of_old), y_ref, rtol=1e-13
        )

    def test_permute_vector_roundtrip(self, rng):
        x = rng.standard_normal(20)
        p = rng.permutation(20)
        assert np.allclose(unpermute_vector(permute_vector(x, p), p), x)

    def test_permute_wrong_length(self, problem8):
        with pytest.raises(ValueError):
            permute_symmetric(problem8.A, np.arange(3))

    def test_rcm_is_permutation(self, problem8):
        perm = rcm_ordering(problem8.A)
        assert np.array_equal(np.sort(perm), np.arange(problem8.nlocal))
