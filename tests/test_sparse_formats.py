"""Unit tests for ELL and CSR formats and their kernels."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import CSRMatrix, ELLMatrix


def random_sparse(nrows, ncols, density, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    m = sp.random(nrows, ncols, density=density, random_state=rng, format="csr")
    m.data = rng.standard_normal(len(m.data)) + 2.0  # keep away from zero
    return CSRMatrix.from_scipy(m.astype(dtype))


class TestCSR:
    def test_spmv_matches_scipy(self, rng):
        A = random_sparse(50, 60, 0.1)
        x = rng.standard_normal(60)
        np.testing.assert_allclose(A.spmv(x), A.to_scipy() @ x, rtol=1e-13)

    def test_spmv_empty_rows(self):
        m = sp.csr_matrix(
            (np.array([1.0]), np.array([0]), np.array([0, 0, 1, 1])), shape=(3, 2)
        )
        A = CSRMatrix.from_scipy(m)
        y = A.spmv(np.array([2.0, 3.0]))
        np.testing.assert_allclose(y, [0.0, 2.0, 0.0])

    def test_spmv_all_empty(self):
        A = CSRMatrix(np.zeros(4, np.int64), np.zeros(0, np.int32), np.zeros(0), 5)
        np.testing.assert_allclose(A.spmv(np.ones(5)), np.zeros(3))

    def test_spmv_wrong_length_raises(self):
        A = random_sparse(5, 5, 0.5)
        with pytest.raises(ValueError):
            A.spmv(np.ones(4))

    def test_spmv_rows_subset(self, rng):
        A = random_sparse(40, 40, 0.15, seed=3)
        x = rng.standard_normal(40)
        rows = np.array([0, 7, 13, 39])
        np.testing.assert_allclose(
            A.spmv_rows(rows, x), (A.to_scipy() @ x)[rows], rtol=1e-13
        )

    def test_spmv_rows_empty(self):
        A = random_sparse(5, 5, 0.5)
        assert A.spmv_rows(np.array([], dtype=int), np.ones(5)).size == 0

    def test_diagonal(self):
        m = sp.diags([1.0, 2.0, 3.0]).tocsr()
        A = CSRMatrix.from_scipy(m)
        np.testing.assert_allclose(A.diagonal(), [1, 2, 3])

    def test_astype(self):
        A = random_sparse(10, 10, 0.3)
        B = A.astype("fp32")
        assert B.data.dtype == np.float32
        assert B.nnz == A.nnz

    def test_out_parameter(self, rng):
        A = random_sparse(20, 20, 0.2, seed=5)
        x = rng.standard_normal(20)
        out = np.zeros(20)
        ret = A.spmv(x, out=out)
        assert ret is out
        np.testing.assert_allclose(out, A.to_scipy() @ x)

    def test_memory_bytes(self):
        A = random_sparse(10, 10, 0.3)
        assert A.memory_bytes() == A.nnz * 8 + A.nnz * 4 + 11 * 8


class TestELL:
    def test_roundtrip_csr_ell_csr(self):
        A = random_sparse(30, 35, 0.12, seed=7)
        B = A.to_ell().to_csr()
        assert (A.to_scipy() != B.to_scipy()).nnz == 0

    def test_spmv_matches_scipy(self, rng):
        A = random_sparse(50, 60, 0.1, seed=9).to_ell()
        x = rng.standard_normal(60)
        np.testing.assert_allclose(A.spmv(x), A.to_scipy() @ x, rtol=1e-13)

    def test_spmv_rows(self, rng):
        A = random_sparse(40, 40, 0.15, seed=11).to_ell()
        x = rng.standard_normal(40)
        rows = np.array([1, 2, 38])
        np.testing.assert_allclose(
            A.spmv_rows(rows, x), (A.to_scipy() @ x)[rows], rtol=1e-13
        )

    def test_width_is_max_row_nnz(self):
        A = random_sparse(30, 30, 0.2, seed=13)
        ell = A.to_ell()
        assert ell.width == int(A.row_nnz().max())

    def test_padding_is_harmless(self, problem_rect):
        """Padded slots (col 0, val 0) must not contribute."""
        A = problem_rect.A
        x = np.zeros(A.ncols)
        x[0] = 1e30  # huge value at the padding column target
        y = A.spmv(x)
        assert np.all(np.isfinite(y))

    def test_diagonal_stencil(self, problem16):
        np.testing.assert_allclose(problem16.A.diagonal(), 26.0)

    def test_nnz_matches_csr(self, problem16):
        assert problem16.A.nnz == problem16.A.to_csr().nnz

    def test_astype_keeps_structure(self, problem16):
        A32 = problem16.A.astype("fp32")
        assert A32.vals.dtype == np.float32
        assert A32.cols is problem16.A.cols or np.array_equal(
            A32.cols, problem16.A.cols
        )

    def test_astype_roundtrip_values(self, problem16):
        A32 = problem16.A.astype("fp32")
        # Stencil values (26, -1) are exactly representable in fp32.
        np.testing.assert_array_equal(
            A32.vals.astype(np.float64), problem16.A.vals
        )

    def test_to_dense(self):
        A = random_sparse(8, 8, 0.4, seed=17).to_ell()
        np.testing.assert_allclose(A.to_dense(), A.to_scipy().toarray())

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ELLMatrix(np.zeros((3, 2), np.int32), np.zeros((3, 3)), 3)

    def test_memory_bytes_no_row_pointers(self, problem16):
        A = problem16.A
        expected = A.vals.size * 8 + A.cols.size * 4
        assert A.memory_bytes() == expected

    def test_pad_fraction(self, problem16):
        assert 0.0 < problem16.A.pad_fraction < 0.25

    def test_spmv_fp32(self, problem16, rng):
        A32 = problem16.A.astype("fp32")
        x = rng.standard_normal(A32.ncols).astype(np.float32)
        y32 = A32.spmv(x)
        y64 = problem16.A.spmv(x.astype(np.float64))
        assert y32.dtype == np.float32
        np.testing.assert_allclose(y32, y64, rtol=2e-5, atol=1e-4)
