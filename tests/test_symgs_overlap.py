"""Communication-overlapped multicolor SymGS + fused-motif pipeline (PR 5).

Acceptance (ISSUE 5): the overlapped SymGS — halo posted, every
color's dependency-closed interior block swept, ghosts landed, every
color's boundary block finished — is bitwise-equal to the sequential
sweep at fp64 and rung-tolerance-equal at fp16/fp32, for all three
storage formats at 1/2/8 ranks; the overlapped smoother path is
zero-allocation after warmup; and the fused ``spmv_dot`` /
``waxpby_dot`` motifs are bitwise-identical to their unfused call
sequences end to end.

Rank counts come from ``REPRO_RANKS`` (the CI distributed matrix legs
set 1, 2 and 8), defaulting to ``1,2,4`` locally.
"""

import os

import numpy as np
import pytest
from helpers_distributed import RUNG_TOLS as TOLS
from helpers_distributed import smooth_vector

from repro.backends.dispatch import (
    dot,
    spmv,
    spmv_dot,
    symgs_boundary,
    symgs_interior,
    symgs_sweep,
    waxpby,
    waxpby_dot,
)
from repro.backends.workspace import Workspace
from repro.fp import MIXED_DS_POLICY
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.mg import MGConfig
from repro.mg.reordered_gs import ReorderedMulticolorGS
from repro.mg.smoothers import MulticolorGS, smooth_distributed
from repro.parallel import HaloExchange, SerialComm, run_spmd
from repro.solvers import GMRESIRSolver
from repro.sparse import to_format, to_precision
from repro.sparse.coloring import color_sets, structured_coloring8
from repro.sparse.partitioned import (
    _local_adjacency_csr,
    partition_colors,
    sweep_overlap_split,
)
from repro.stencil import generate_problem


def spmd_rank_counts() -> list[int]:
    env = os.environ.get("REPRO_RANKS", "").strip()
    if env:
        return [int(tok) for tok in env.replace(",", " ").split()]
    return [1, 2, 4]


RANKS = spmd_rank_counts()


def run_ranks(nranks: int, fn, *args) -> list:
    if nranks == 1:
        return [fn(SerialComm(), *args)]
    return run_spmd(nranks, fn, *args)


def build_smoothers(comm, fmt, prec, local=(8, 8, 8)):
    """(plain smoother, partitioned smoother, halo pair, problem)."""
    pg = ProcessGrid.from_size(comm.size)
    sub = Subdomain(BoxGrid(*local), pg, comm.rank)
    prob = generate_problem(sub)
    A = to_precision(to_format(prob.A, fmt), prec)
    diag = A.diagonal()
    sets = color_sets(structured_coloring8(sub))
    P = partition_colors(A, prob.halo, sets, diag=diag)
    plain = MulticolorGS(A, diag, sets)
    part = MulticolorGS(A, diag, sets, partition=P)
    halos = (HaloExchange(prob.halo, comm), HaloExchange(prob.halo, comm))
    return plain, part, halos, prob, A


class TestSweepSplit:
    """The dependency-closed classification itself."""

    def test_split_partitions_each_color(self):
        pg = ProcessGrid(2, 1, 1)
        sub = Subdomain(BoxGrid(8, 8, 8), pg, 0)
        prob = generate_problem(sub)
        sets = color_sets(structured_coloring8(sub))
        mask = np.zeros(prob.nlocal, bool)
        mask[prob.halo.interior_rows] = True
        split = sweep_overlap_split(prob.A, sets, mask)
        for (early, late), rows in zip(split, sets):
            merged = np.sort(np.concatenate([early, late]))
            np.testing.assert_array_equal(merged, np.sort(rows))
            assert mask[early].all()  # early rows never touch a ghost

    def test_split_is_dependency_closed(self):
        """No early row has a non-early earlier-order neighbor — the
        invariant that makes the overlapped schedule bitwise-equal."""
        pg = ProcessGrid(2, 1, 1)
        sub = Subdomain(BoxGrid(8, 8, 8), pg, 0)
        prob = generate_problem(sub)
        sets = color_sets(structured_coloring8(sub))
        mask = np.zeros(prob.nlocal, bool)
        mask[prob.halo.interior_rows] = True
        for order in (list(range(8)), list(reversed(range(8)))):
            split = sweep_overlap_split(prob.A, sets, mask, order)
            pos = np.empty(8, np.int64)
            for p, c in enumerate(order):
                pos[c] = p
            row_pos = np.empty(prob.nlocal, np.int64)
            early = np.zeros(prob.nlocal, bool)
            for c, rows in enumerate(sets):
                row_pos[rows] = pos[c]
            for c, (e, _) in enumerate(split):
                early[e] = True
            indptr, nbr = _local_adjacency_csr(prob.A, prob.nlocal)
            for i in np.nonzero(early)[0]:
                nbrs = nbr[indptr[i] : indptr[i + 1]]
                bad = (row_pos[nbrs] < row_pos[i]) & ~early[nbrs]
                assert not bad.any()

    def test_serial_box_is_fully_interior(self):
        prob = generate_problem(Subdomain.serial(8, 8, 8))
        sets = color_sets(structured_coloring8(prob.sub))
        P = partition_colors(prob.A, prob.halo, sets)
        assert P.interior_fraction("forward") == 1.0
        assert P.interior_fraction("backward") == 1.0

    def test_partition_rejects_shape_mismatch(self):
        prob8 = generate_problem(Subdomain.serial(8, 8, 8))
        prob4 = generate_problem(Subdomain.serial(4, 4, 4))
        sets = color_sets(structured_coloring8(prob4.sub))
        with pytest.raises(ValueError, match="does not match"):
            partition_colors(prob4.A, prob8.halo, sets)

    def test_schedule_rejects_bad_direction(self):
        prob = generate_problem(Subdomain.serial(8, 8, 8))
        sets = color_sets(structured_coloring8(prob.sub))
        P = partition_colors(prob.A, prob.halo, sets)
        with pytest.raises(ValueError, match="direction"):
            P.schedule("sideways")


class TestOverlappedSymGS:
    """Cross-rank parity: overlapped vs the sequential sweep."""

    @pytest.mark.parametrize("nranks", RANKS)
    @pytest.mark.parametrize("direction", ["forward", "backward", "symmetric"])
    def test_fp64_bitwise_equal_to_sequential(self, nranks, direction):
        """Default-format (ELL) sweeps: bitwise at every rank count."""

        def fn(comm):
            plain, part, (h1, h2), prob, A = build_smoothers(comm, "ell", "fp64")
            rng = np.random.default_rng(5 + comm.rank)
            r = rng.standard_normal(prob.nlocal)
            x1 = np.zeros(A.ncols)
            x1[: prob.nlocal] = rng.standard_normal(prob.nlocal)
            x2 = x1.copy()
            smooth_distributed(plain, h1, r, x1, direction)
            smooth_distributed(part, h2, r, x2, direction, overlap=True)
            return bool(np.array_equal(x1, x2))

        assert all(run_ranks(nranks, fn))

    @pytest.mark.parametrize("nranks", RANKS)
    @pytest.mark.parametrize("fmt", ["csr", "ell", "sellcs"])
    @pytest.mark.parametrize("prec", ["fp64", "fp32", "fp16"])
    def test_cross_rank_parity_all_formats_and_rungs(self, nranks, fmt, prec):
        """Overlapped vs sequential at rung tolerance for every format
        and rung (bitwise for ELL/CSR at fp64; SELL-C-σ re-chunks per
        region, so only summation-order roundoff may differ — exactly
        the PR 3 SpMV-partition contract)."""

        def fn(comm):
            plain, part, (h1, h2), prob, A = build_smoothers(comm, fmt, prec)
            x0 = smooth_vector(prob.sub).astype(A.dtype)
            r = (0.5 * smooth_vector(prob.sub)).astype(A.dtype)
            x1 = np.zeros(A.ncols, dtype=A.dtype)
            x1[: prob.nlocal] = x0
            x2 = x1.copy()
            for d in ("forward", "backward"):
                smooth_distributed(plain, h1, r, x1, d)
                smooth_distributed(part, h2, r, x2, d, overlap=True)
            return (
                np.asarray(x1[: prob.nlocal], dtype=np.float64),
                np.asarray(x2[: prob.nlocal], dtype=np.float64),
            )

        rtol, atol = TOLS[prec]
        for seq, ov in run_ranks(nranks, fn):
            np.testing.assert_allclose(ov, seq, rtol=rtol, atol=atol)
            if prec == "fp64" and fmt in ("csr", "ell"):
                np.testing.assert_array_equal(ov, seq)

    @pytest.mark.parametrize("nranks", RANKS)
    @pytest.mark.parametrize("fmt", ["csr", "ell", "sellcs"])
    def test_overlap_bitwise_vs_partitioned_sequential(self, nranks, fmt):
        """On the *same* partitioned layout, the overlapped split
        (all interiors, then all boundaries) and the interleaved
        sequential schedule are bitwise-equal for every format — the
        dependency-closure guarantee itself."""

        def fn(comm):
            _, part, (h1, h2), prob, A = build_smoothers(comm, fmt, "fp64")
            P = part.partition
            rng = np.random.default_rng(11 + comm.rank)
            r = rng.standard_normal(prob.nlocal)
            x1 = np.zeros(A.ncols)
            x1[: prob.nlocal] = rng.standard_normal(prob.nlocal)
            x2 = x1.copy()
            # Sequential on the partition: interleaved block schedule.
            h1.exchange(x1)
            symgs_sweep(P, r, x1, None, None, "forward")
            # Overlapped: both halves around the landing.
            pending = h2.exchange_begin(x2)
            symgs_interior(P, r, x2, "forward")
            h2.exchange_finish(pending, x2)
            symgs_boundary(P, r, x2, "forward")
            return bool(np.array_equal(x1, x2))

        assert all(run_ranks(nranks, fn))

    @pytest.mark.parametrize("nranks", RANKS[:2])
    def test_reordered_smoother_overlap_bitwise(self, nranks):
        """The physically-reordered smoother's overlapped sweep equals
        its sequential exchange-then-sweep bitwise."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            sm1 = ReorderedMulticolorGS(prob.A, sub)
            sm2 = ReorderedMulticolorGS(prob.A, sub, halo=prob.halo)
            assert not sm1.supports_overlap and sm2.supports_overlap
            h1 = HaloExchange(prob.halo, comm)
            h2 = HaloExchange(prob.halo, comm)
            rng = np.random.default_rng(2 + comm.rank)
            r = rng.standard_normal(prob.nlocal)
            x1 = np.zeros(prob.A.ncols)
            x1[: prob.nlocal] = rng.standard_normal(prob.nlocal)
            x2 = x1.copy()
            ok = True
            for d in ("forward", "backward"):
                smooth_distributed(sm1, h1, r, x1, d)
                sm2.sweep_overlapped(h2, r, x2, d)
                ok &= bool(np.array_equal(x1, x2))
            return ok

        assert all(run_ranks(nranks, fn))


class TestOverlappedSolver:
    @pytest.mark.parametrize("nranks", RANKS)
    def test_solver_bitwise_with_and_without_symgs_overlap(self, nranks):
        """End-to-end GMRES-IR: the smoother overlap changes only the
        communication scheduling, so the solve is bitwise-identical."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            kwargs = dict(policy=MIXED_DS_POLICY, mg_config=MGConfig(nlevels=2))
            s_ov = GMRESIRSolver(prob, comm, overlap_symgs=True, **kwargs)
            x_ov, st_ov = s_ov.solve(prob.b, tol=1e-9, maxiter=300)
            s_no = GMRESIRSolver(prob, comm, overlap_symgs=False, **kwargs)
            x_no, st_no = s_no.solve(prob.b, tol=1e-9, maxiter=300)
            return (
                st_ov.converged,
                st_no.converged,
                st_ov.iterations == st_no.iterations,
                bool(np.array_equal(x_ov, x_no)),
            )

        for rec in run_ranks(nranks, fn):
            assert rec == (True, True, True, True)

    @pytest.mark.parametrize("nranks", RANKS[:2])
    def test_solver_bitwise_with_and_without_fusion(self, nranks):
        """The fused residual check composes the registry's kernels
        operation-for-operation: bitwise-identical solves."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            kwargs = dict(policy=MIXED_DS_POLICY, mg_config=MGConfig(nlevels=2))
            s_f = GMRESIRSolver(prob, comm, fusion=True, **kwargs)
            x_f, st_f = s_f.solve(prob.b, tol=1e-9, maxiter=300)
            s_u = GMRESIRSolver(prob, comm, fusion=False, **kwargs)
            x_u, st_u = s_u.solve(prob.b, tol=1e-9, maxiter=300)
            return (
                st_f.converged,
                st_f.iterations == st_u.iterations,
                bool(np.array_equal(x_f, x_u)),
            )

        for rec in run_ranks(nranks, fn):
            assert rec == (True, True, True)

    def test_symmetric_sweep_config_overlaps_both_directions(self):
        """HPCG-shaped symmetric sweeps build both directional
        schedules and still solve bitwise-identically."""
        prob = generate_problem(Subdomain.serial(8, 8, 8))
        cfg = MGConfig(nlevels=2, sweep="symmetric")
        kwargs = dict(policy=MIXED_DS_POLICY, mg_config=cfg)
        s_ov = GMRESIRSolver(prob, SerialComm(), overlap_symgs=True, **kwargs)
        x_ov, _ = s_ov.solve(prob.b, tol=1e-9, maxiter=200)
        s_no = GMRESIRSolver(prob, SerialComm(), overlap_symgs=False, **kwargs)
        x_no, _ = s_no.solve(prob.b, tol=1e-9, maxiter=200)
        assert np.array_equal(x_ov, x_no)


class TestExposedCommCounters:
    def test_blocking_exchange_is_fully_exposed(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            ex = HaloExchange(prob.halo, comm)
            xf = np.zeros(prob.A.ncols)
            ex.exchange(xf)
            return ex.seconds, ex.exposed_seconds, ex.exchanges

        for secs, exposed, n in run_spmd(2, fn):
            assert n == 1
            assert secs > 0
            assert exposed == secs  # nothing hid it

    def test_split_exchange_exposes_only_the_landing(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            ex = HaloExchange(prob.halo, comm)
            xf = np.zeros(prob.A.ncols)
            pending = ex.exchange_begin(xf)
            posted = ex.seconds
            ex.exchange_finish(pending, xf)
            return posted, ex.seconds, ex.exposed_seconds

        for posted, total, exposed in run_spmd(2, fn):
            assert 0 < exposed < total  # the posting half is hidden
            assert exposed == pytest.approx(total - posted)

    def test_counters_reset(self):
        prob = generate_problem(Subdomain.serial(4, 4, 4))
        ex = HaloExchange(prob.halo, SerialComm())
        ex.exposed_seconds = 1.0
        ex.reset_counters()
        assert ex.exposed_seconds == 0.0

    @pytest.mark.parametrize("nranks", RANKS[:2])
    def test_solver_reports_exposed_fraction_and_levels(self, nranks):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            solver = GMRESIRSolver(
                prob,
                comm,
                policy=MIXED_DS_POLICY,
                mg_config=MGConfig(nlevels=2),
            )
            solver.solve(prob.b, tol=0.0, maxiter=5)
            per_level = solver.exposed_comm_seconds_by_level()
            return (
                solver.halo_exposed_seconds(),
                solver.halo_seconds(),
                len(per_level),
            )

        for exposed, total, nlevels in run_ranks(nranks, fn):
            assert nlevels == 2
            assert 0 <= exposed <= total + 1e-12


class TestOverlappedSmootherAllocations:
    """ISSUE 5 satellite: zero-allocation overlapped smoother path."""

    @pytest.mark.parametrize("nranks", RANKS)
    def test_workspace_arena_stable_after_warmup(self, nranks):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            solver = GMRESIRSolver(
                prob,
                comm,
                policy=MIXED_DS_POLICY,
                mg_config=MGConfig(nlevels=2),
                overlap=True,
                overlap_symgs=True,
            )
            assert solver.M.overlap
            solver.solve(prob.b, tol=0.0, maxiter=10)  # warmup
            misses0 = solver.ws.misses
            hits0 = solver.ws.hits
            solver.solve(prob.b, tol=0.0, maxiter=32)
            return solver.ws.misses - misses0, solver.ws.hits - hits0

        for dmiss, dhits in run_ranks(nranks, fn):
            assert dmiss == 0
            assert dhits > 0

    def test_overlapped_smoother_tracemalloc_across_ranks(self):
        """tracemalloc across a 2-rank overlapped-smoother solve: no
        allocation site grows beyond a few vectors after warmup (all
        rank threads inside the measurement window)."""
        import gc
        import tracemalloc

        vector_bytes_8 = 512 * 8

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            solver = GMRESIRSolver(
                prob,
                comm,
                policy=MIXED_DS_POLICY,
                mg_config=MGConfig(nlevels=2),
                overlap=True,
                overlap_symgs=True,
            )
            solver.solve(prob.b, tol=0.0, maxiter=10)  # warmup
            comm.barrier()
            snap1 = None
            if comm.rank == 0:
                gc.collect()
                tracemalloc.start(10)
                snap1 = tracemalloc.take_snapshot()
            comm.barrier()
            solver.solve(prob.b, tol=0.0, maxiter=32)
            comm.barrier()
            if comm.rank != 0:
                return []
            snap2 = tracemalloc.take_snapshot()
            tracemalloc.stop()
            diff = snap2.compare_to(snap1, "traceback")
            return [
                f"{d.size_diff / 1024:.1f} KB (+{d.count_diff}) at "
                + " <- ".join(d.traceback.format()[-2:])
                for d in diff
                if d.size_diff > 4 * vector_bytes_8
            ]

        offenders = run_spmd(2, fn)[0]
        assert not offenders, (
            "overlapped smoother loop grew vector-sized allocation "
            "sites:\n" + "\n".join(offenders)
        )


class TestFusedMotifs:
    @pytest.mark.parametrize("fmt", ["csr", "ell", "sellcs"])
    def test_spmv_dot_matches_unfused_bitwise(self, fmt):
        prob = generate_problem(Subdomain.serial(8, 8, 8))
        A = to_format(prob.A, fmt)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(A.ncols)
        b = rng.standard_normal(A.nrows)
        ws = Workspace()
        r_f = np.empty(A.nrows)
        _, local = spmv_dot(A, x, b, out=r_f, ws=ws)
        r_u = b - spmv(A, x)
        assert np.array_equal(r_f, r_u)
        assert local == dot(r_u, r_u)

    def test_spmv_dot_pools_its_scratch(self):
        prob = generate_problem(Subdomain.serial(8, 8, 8))
        rng = np.random.default_rng(0)
        x = rng.standard_normal(prob.A.ncols)
        ws = Workspace()
        out = np.empty(prob.nlocal)
        spmv_dot(prob.A, x, prob.b, out=out, ws=ws)  # warmup
        misses0 = ws.misses
        for _ in range(3):
            spmv_dot(prob.A, x, prob.b, out=out, ws=ws)
        assert ws.misses == misses0

    def test_waxpby_dot_matches_unfused_bitwise(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(512)
        y = rng.standard_normal(512)
        ws = Workspace()
        out = np.empty(512)
        _, local = waxpby_dot(-0.37, x, 1.0, y, out=out, ws=ws)
        ref = waxpby(-0.37, x, 1.0, y.copy(), out=y.copy(), ws=Workspace())
        assert np.array_equal(out, ref)
        assert local == dot(ref, ref)

    def test_waxpby_dot_aliasing_safe(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(128)
        y = rng.standard_normal(128)
        ref = waxpby(2.0, x, 1.0, y.copy(), out=y.copy())
        w, local = waxpby_dot(2.0, x, 1.0, y, out=y)
        assert w is y
        assert np.array_equal(w, ref)
        assert local == dot(ref, ref)

    def test_fp16_spmv_dot_resolves_rung_kernels(self):
        """The wildcard fused kernel re-dispatches per precision: an
        fp16 matrix streams through the fp32-accumulating SpMV and the
        fp64-accumulating dot."""
        prob = generate_problem(Subdomain.serial(8, 8, 8))
        A = to_precision(prob.A, "fp16")
        x = smooth_vector(prob.sub).astype(np.float16)
        xf = np.zeros(A.ncols, dtype=np.float16)
        xf[: prob.nlocal] = x
        b = np.asarray(smooth_vector(prob.sub) * 0.5, dtype=np.float64)
        r, local = spmv_dot(A, xf, b)
        ref = b - np.asarray(spmv(A, xf), dtype=np.float64)
        np.testing.assert_allclose(r, ref, rtol=2e-2, atol=5e-2)
        assert local >= 0

    def test_cg_uses_fused_update(self):
        """PCG converges identically through the fused residual-update
        + norm (bitwise vs the historical two-call sequence is covered
        by construction; here: it still converges)."""
        from repro.solvers.cg import pcg_solve

        prob = generate_problem(Subdomain.serial(16, 16, 16))
        x, stats = pcg_solve(prob, SerialComm(), tol=1e-8, maxiter=100)
        assert stats.converged


class TestHaloSplitModel:
    def test_split_sums_to_halo_total(self):
        from repro.perf.scaling import ScalingModel

        for kwargs in ({}, {"overlap": False}, {"overlap_symgs": False}):
            model = ScalingModel(**kwargs)
            split = model.halo_traffic_split(MIXED_DS_POLICY)
            assert split["overlapped"] + split["exposed"] == pytest.approx(
                model.halo_traffic_bytes(MIXED_DS_POLICY)
            )

    def test_overlap_flags_move_bytes_between_buckets(self):
        from repro.perf.scaling import ScalingModel

        full = ScalingModel().halo_traffic_split(MIXED_DS_POLICY)
        no_sym_model = ScalingModel(overlap_symgs=False)
        no_sym = no_sym_model.halo_traffic_split(MIXED_DS_POLICY)
        none = ScalingModel(overlap=False).halo_traffic_split(MIXED_DS_POLICY)
        assert full["exposed"] == 0.0  # everything scheduled over compute
        assert no_sym["exposed"] > 0.0  # the sweeps' exchanges exposed
        assert none["overlapped"] == 0.0
        assert none["exposed"] > no_sym["exposed"]

    def test_fused_residual_models_fewer_outer_bytes(self):
        from repro.fp.precision import Precision
        from repro.perf.kernels import KernelModel

        km = KernelModel()
        n = 32**3
        fused = km.spmv_dot(n, Precision.DOUBLE).nbytes
        unfused = (
            km.spmv(n, Precision.DOUBLE).nbytes
            + km.waxpby(n, Precision.DOUBLE).nbytes
            + km.dot(n, Precision.DOUBLE).nbytes
        )
        assert fused < unfused
        assert km.waxpby_dot(n, Precision.DOUBLE).nbytes < (
            km.waxpby(n, Precision.DOUBLE).nbytes
            + km.dot(n, Precision.DOUBLE).nbytes
        )


class TestConfigAndCLI:
    def test_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--no-overlap-symgs", "--no-fusion"]
        )
        assert args.no_overlap_symgs
        assert args.no_fusion

    def test_config_validates_overlap_symgs(self):
        from repro.core import BenchmarkConfig

        with pytest.raises(ValueError, match="overlap_symgs"):
            BenchmarkConfig(overlap_symgs="sometimes")
        cfg = BenchmarkConfig(overlap_symgs=False, fusion=False)
        assert cfg.overlap_symgs is False
        assert not cfg.fusion

    def test_solver_auto_follows_overlap(self):
        prob = generate_problem(Subdomain.serial(8, 8, 8))
        s = GMRESIRSolver(
            prob, SerialComm(), mg_config=MGConfig(nlevels=2), overlap=True
        )
        assert s.overlap_symgs  # auto follows overlap
        s2 = GMRESIRSolver(
            prob,
            SerialComm(),
            mg_config=MGConfig(nlevels=2),
            overlap=True,
            overlap_symgs=False,
        )
        assert s2.overlap and not s2.overlap_symgs


class TestNumbaWidenedOps:
    """The JIT backend's new op coverage (ISSUE 5 satellite).

    Where numba is installed the registry must resolve JIT kernels for
    ``symgs_sweep`` (fp32/fp64 and — with CPU float16 support — the
    fp16 rung's fp32-accumulating sweep), ``fused_restrict`` and the
    fused ``spmv_dot``/``waxpby_dot``, each parity-checked against the
    NumPy reference path.  Skipped where numba is absent (the offline
    container); the CI numba matrix leg executes it.
    """

    @pytest.fixture(scope="class")
    def numba_ready(self):
        from repro.backends.numba_backend import HAVE_NUMBA

        if not HAVE_NUMBA:
            pytest.skip("numba not installed")
        from repro.backends.registry import registry

        return registry

    @pytest.fixture(scope="class")
    def gs_fixture(self):
        prob = generate_problem(Subdomain.serial(8, 8, 8))
        sets = color_sets(structured_coloring8(prob.sub))
        rng = np.random.default_rng(4)
        r = rng.standard_normal(prob.nlocal)
        x0 = rng.standard_normal(prob.nlocal)
        return prob, sets, r, x0

    @pytest.mark.parametrize("prec", ["fp32", "fp64"])
    def test_symgs_sweep_matches_numpy(self, numba_ready, gs_fixture, prec):
        prob, sets, r, x0 = gs_fixture
        A = to_precision(prob.A, prec)
        diag = A.diagonal()
        diag_sets = [diag[rows] for rows in sets]
        jit = numba_ready.lookup("symgs_sweep", "ell", prec, backend="numba")
        ref = numba_ready.lookup("symgs_sweep", "ell", prec, backend="numpy")
        assert jit is not ref
        rp = r.astype(A.dtype)
        x1 = x0.astype(A.dtype)
        x2 = x1.copy()
        for d in ("forward", "backward"):
            jit(A, rp, x1, sets, diag_sets, direction=d)
            ref(A, rp, x2, sets, diag_sets, direction=d)
        tol = 1e-13 if prec == "fp64" else 1e-5
        np.testing.assert_allclose(
            x1.astype(np.float64), x2.astype(np.float64), rtol=tol, atol=tol
        )

    def test_symgs_sweep_fp16_matches_numpy(self, numba_ready, gs_fixture):
        from repro.backends.registry import KernelNotFoundError

        prob, sets, _, _ = gs_fixture
        try:
            jit = numba_ready.lookup(
                "symgs_sweep", "ell", "fp16", backend="numba"
            )
        except KernelNotFoundError:
            pytest.skip("numba lacks a CPU float16 GS pass")
        if "numba" not in jit.__module__:
            pytest.skip("no numba fp16 symgs registration")
        ref = numba_ready.lookup("symgs_sweep", "ell", "fp16", backend="numpy")
        A = to_precision(prob.A, "fp16")  # row-equilibrated storage
        diag = A.diagonal()
        diag_sets = [diag[rows] for rows in sets]
        r = smooth_vector(prob.sub).astype(np.float16)
        x1 = np.zeros(A.ncols, dtype=np.float16)
        x1[: prob.nlocal] = (0.25 * smooth_vector(prob.sub)).astype(np.float16)
        x2 = x1.copy()
        jit(A, r, x1, sets, diag_sets, direction="forward")
        ref(A, r, x2, sets, diag_sets, direction="forward")
        rtol, atol = TOLS["fp16"]
        np.testing.assert_allclose(
            x1.astype(np.float64), x2.astype(np.float64), rtol=rtol, atol=atol
        )

    @pytest.mark.parametrize("prec", ["fp32", "fp64"])
    def test_fused_restrict_matches_numpy(self, numba_ready, gs_fixture, prec):
        prob, _, r, x0 = gs_fixture
        A = to_precision(prob.A, prec)
        coarse = prob.sub.coarsen()
        from repro.mg.restriction import coarse_to_fine_map

        f_c = coarse_to_fine_map(prob.sub, coarse)
        jit = numba_ready.lookup("fused_restrict", "ell", prec, backend="numba")
        ref = numba_ready.lookup(
            "fused_restrict", "ell", prec, backend="numpy"
        )
        assert jit is not ref
        xf = x0.astype(A.dtype)
        rp = r.astype(A.dtype)
        tol = 1e-13 if prec == "fp64" else 1e-5
        np.testing.assert_allclose(
            np.asarray(jit(A, rp, xf, f_c), dtype=np.float64),
            np.asarray(ref(A, rp, xf, f_c), dtype=np.float64),
            rtol=tol,
            atol=tol,
        )

    def test_spmv_dot_matches_composed_numba_spmv(
        self, numba_ready, gs_fixture
    ):
        prob, _, r, x0 = gs_fixture
        A = prob.A
        jit = numba_ready.lookup("spmv_dot", "ell", "fp64", backend="numba")
        nspmv = numba_ready.lookup("spmv", "ell", "fp64", backend="numba")
        res, local = jit(A, x0, r)
        ref = r - nspmv(A, x0)
        np.testing.assert_array_equal(res, ref)
        assert local == float(np.dot(ref, ref))

    def test_waxpby_dot_matches_numpy_bitwise(self, numba_ready):
        jit = numba_ready.lookup("waxpby_dot", None, "fp64", backend="numba")
        rng = np.random.default_rng(9)
        x = rng.standard_normal(256)
        y = rng.standard_normal(256)
        out = np.empty(256)
        w, local = jit(-0.5, x, 1.0, y, out=out)
        ref = y - 0.5 * x
        np.testing.assert_allclose(w, ref, rtol=1e-15)
        assert local == float(np.dot(w, w))


class TestRegressionGateMetrics:
    @pytest.fixture()
    def gate(self):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            import check_regression
        finally:
            sys.path.pop(0)
        return check_regression

    def test_symgs_bytes_and_exposed_fraction_gated(self, gate):
        # Both gate at their own tight overrides (2% bytes, 1.5%
        # fraction) regardless of the generous CLI threshold — the
        # fraction is bounded at 1.0, so a wide ratio gate could
        # never fire on a near-1 baseline.
        base = {
            "model_symgs_bytes_per_cycle": 100.0,
            "exposed_comm_fraction": 0.96,
        }
        ok = {
            "model_symgs_bytes_per_cycle": 100.5,
            "exposed_comm_fraction": 0.965,
        }
        failures, _ = gate.compare(ok, base, threshold=0.2)
        assert failures == []
        bad = {
            "model_symgs_bytes_per_cycle": 105.0,
            "exposed_comm_fraction": 0.99,  # a lost overlap fits under 1.0
        }
        failures, _ = gate.compare(bad, base, threshold=0.2)
        assert len(failures) == 2
