"""Tests for calibration utilities."""

import pytest

from repro.perf.calibrate import (
    AnchorReport,
    calibrate_host,
    measure_dispatch_latency,
    measure_stream_bandwidth,
    paper_anchor_report,
)


class TestPaperAnchors:
    report = paper_anchor_report()

    def test_one_node_rating(self):
        assert self.report.gflops_per_gcd_1node_mxp == pytest.approx(
            AnchorReport.PAPER["gflops_per_gcd_1node_mxp"], rel=0.03
        )

    def test_efficiency(self):
        assert self.report.efficiency_9408 == pytest.approx(
            AnchorReport.PAPER["efficiency_9408"], abs=0.02
        )

    def test_total_pflops(self):
        assert self.report.total_pflops_9408 == pytest.approx(
            AnchorReport.PAPER["total_pflops_9408"], rel=0.05
        )

    def test_speedup(self):
        assert self.report.speedup_1node == pytest.approx(
            AnchorReport.PAPER["speedup_1node"], abs=0.08
        )

    def test_double_below_mxp(self):
        assert (
            self.report.gflops_per_gcd_1node_double
            < self.report.gflops_per_gcd_1node_mxp
        )


class TestHostCalibration:
    def test_bandwidth_positive_and_sane(self):
        bw = measure_stream_bandwidth(nbytes=1 << 22, repeats=2)
        assert 1e8 < bw < 1e13  # between 100 MB/s and 10 TB/s

    def test_dispatch_latency_sane(self):
        lat = measure_dispatch_latency(repeats=200)
        assert 1e-8 < lat < 1e-3

    def test_calibrate_host_spec(self):
        spec = calibrate_host()
        assert spec.gcds_per_node == 1
        assert spec.effective_bw > 0
        # The host spec must be usable by the kernel-time model.
        t = spec.kernel_time(1e6, 1e3, "fp64")
        assert t > 0


class TestNetworkFit:
    """PR 4: alpha-beta fit folded from measured halo counters."""

    def test_recovers_synthetic_alpha_beta(self):
        from repro.perf.calibrate import fit_alpha_beta

        alpha, beta = 5e-6, 1e-9  # 5 us/message, 1 GB/s
        samples = [
            (m, b, alpha * m + beta * b)
            for m, b in [(100, 1e6), (1000, 2e6), (50, 8e6), (400, 5e5)]
        ]
        fit = fit_alpha_beta(samples)
        assert fit.alpha == pytest.approx(alpha, rel=1e-6)
        assert fit.beta == pytest.approx(beta, rel=1e-6)
        assert fit.bandwidth == pytest.approx(1e9, rel=1e-6)
        assert fit.residual < 1e-9
        assert fit.nsamples == 4
        assert fit.time(100, 1e6) == pytest.approx(alpha * 100 + beta * 1e6)

    def test_single_sample_degenerates_to_bandwidth(self):
        from repro.perf.calibrate import fit_alpha_beta

        fit = fit_alpha_beta([(10, 1e6, 2e-3)])
        assert fit.alpha == 0.0
        assert fit.beta == pytest.approx(2e-9)

    def test_empty_samples_rejected(self):
        from repro.perf.calibrate import fit_alpha_beta

        with pytest.raises(ValueError, match="sample"):
            fit_alpha_beta([])

    def test_samples_from_benchmark_records(self):
        from repro.perf.calibrate import (
            fit_network_from_records,
            halo_samples_from_records,
        )

        records = [
            {"send_messages": 100, "send_bytes": 1e6, "halo_seconds": 2e-3},
            {"send_messages": 0, "send_bytes": 0, "halo_seconds": 0.0},
            {"send_messages": 400, "send_bytes": 8e6, "halo_seconds": 1e-2},
        ]
        samples = halo_samples_from_records(records)
        assert len(samples) == 2  # the serial record is skipped
        fit = fit_network_from_records(records)
        assert fit.nsamples == 2
        with pytest.raises(ValueError, match="halo"):
            fit_network_from_records([records[1]])

    def test_measured_phase_record_feeds_the_fit(self):
        """End-to-end: a real distributed run's counters fit."""
        from repro.core import BenchmarkConfig, run_distributed_phase
        from repro.perf.calibrate import fit_network_from_records

        phase = run_distributed_phase(
            BenchmarkConfig(
                local_nx=16,
                distributed_grid="2x1x1",
                distributed_budget_seconds=0.1,
                max_iters_per_solve=5,
            )
        )
        fit = fit_network_from_records([phase, phase.to_dict()])
        assert fit.beta > 0
        assert fit.bandwidth > 0

    def test_machine_with_network_fit(self):
        from repro.perf.calibrate import (
            NetworkFit,
            machine_with_network_fit,
        )
        from repro.perf.machine import FRONTIER_GCD

        fit = NetworkFit(alpha=3e-6, beta=2e-9, residual=0.0, nsamples=4)
        spec = machine_with_network_fit(FRONTIER_GCD, fit)
        assert spec.net_latency == pytest.approx(3e-6)
        assert spec.nic_bw == pytest.approx(5e8)
        # Degenerate fit keeps the spec's latency.
        lone = NetworkFit(alpha=0.0, beta=2e-9, residual=0.0, nsamples=1)
        spec2 = machine_with_network_fit(FRONTIER_GCD, lone)
        assert spec2.net_latency == FRONTIER_GCD.net_latency
