"""Tests for calibration utilities."""

import pytest

from repro.perf.calibrate import (
    AnchorReport,
    calibrate_host,
    measure_dispatch_latency,
    measure_stream_bandwidth,
    paper_anchor_report,
)


class TestPaperAnchors:
    report = paper_anchor_report()

    def test_one_node_rating(self):
        assert self.report.gflops_per_gcd_1node_mxp == pytest.approx(
            AnchorReport.PAPER["gflops_per_gcd_1node_mxp"], rel=0.03
        )

    def test_efficiency(self):
        assert self.report.efficiency_9408 == pytest.approx(
            AnchorReport.PAPER["efficiency_9408"], abs=0.02
        )

    def test_total_pflops(self):
        assert self.report.total_pflops_9408 == pytest.approx(
            AnchorReport.PAPER["total_pflops_9408"], rel=0.05
        )

    def test_speedup(self):
        assert self.report.speedup_1node == pytest.approx(
            AnchorReport.PAPER["speedup_1node"], abs=0.08
        )

    def test_double_below_mxp(self):
        assert (
            self.report.gflops_per_gcd_1node_double
            < self.report.gflops_per_gcd_1node_mxp
        )


class TestHostCalibration:
    def test_bandwidth_positive_and_sane(self):
        bw = measure_stream_bandwidth(nbytes=1 << 22, repeats=2)
        assert 1e8 < bw < 1e13  # between 100 MB/s and 10 TB/s

    def test_dispatch_latency_sane(self):
        lat = measure_dispatch_latency(repeats=200)
        assert 1e-8 < lat < 1e-3

    def test_calibrate_host_spec(self):
        spec = calibrate_host()
        assert spec.gcds_per_node == 1
        assert spec.effective_bw > 0
        # The host spec must be usable by the kernel-time model.
        t = spec.kernel_time(1e6, 1e3, "fp64")
        assert t > 0
