"""Unit tests for the kernel-backend layer (registry, dispatch, arenas)."""

import numpy as np
import pytest

from repro.backends import (
    KernelNotFoundError,
    Workspace,
    active_backend,
    available_backends,
    registered_formats,
)
from repro.backends.registry import KernelRegistry
from repro.backends import dispatch
from repro.fp.precision import Precision
from repro.sparse import CSRMatrix, ELLMatrix, SELLCSMatrix


class TestRegistry:
    def make_registry(self):
        reg = KernelRegistry()
        reg.register_backend("numpy", priority=0)
        return reg

    def test_register_and_lookup(self):
        reg = self.make_registry()

        @reg.register("spmv", fmt="ell")
        def k(*a, **kw):
            return "ell-any"

        assert reg.lookup("spmv", "ell", "fp64") is k
        assert reg.lookup("spmv", "ell", "fp32") is k

    def test_specific_precision_wins(self):
        reg = self.make_registry()

        @reg.register("spmv", fmt="ell")
        def generic(*a, **kw):
            pass

        @reg.register("spmv", fmt="ell", precision="fp32")
        def fp32_kernel(*a, **kw):
            pass

        assert reg.lookup("spmv", "ell", Precision.SINGLE) is fp32_kernel
        assert reg.lookup("spmv", "ell", Precision.DOUBLE) is generic

    def test_wildcard_format_fallback(self):
        reg = self.make_registry()

        @reg.register("dot")
        def generic(*a, **kw):
            pass

        assert reg.lookup("dot", "sellcs", "fp64") is generic

    def test_backend_fallback_to_numpy(self):
        reg = self.make_registry()

        @reg.register("spmv", fmt="csr")
        def numpy_kernel(*a, **kw):
            pass

        reg.register_backend("fancy", priority=5)

        @reg.register("spmv", fmt="ell", backend="fancy")
        def fancy_ell(*a, **kw):
            pass

        reg.set_backend("fancy")
        # fancy has no csr kernel -> falls back to numpy's.
        assert reg.lookup("spmv", "csr", "fp64") is numpy_kernel
        assert reg.lookup("spmv", "ell", "fp64") is fancy_ell

    def test_missing_kernel_error_lists_registered(self):
        reg = self.make_registry()

        @reg.register("spmv", fmt="ell")
        def k(*a, **kw):
            pass

        with pytest.raises(KernelNotFoundError, match="ell"):
            reg.lookup("frobnicate", "ell", "fp64")

    def test_unknown_backend_raises(self):
        reg = self.make_registry()
        with pytest.raises(KernelNotFoundError, match="numpy"):
            reg.set_backend("gpu")

    def test_autoselect_honors_env(self, monkeypatch):
        reg = self.make_registry()
        reg.register_backend("fast", priority=99)
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert reg.autoselect_backend() == "numpy"
        monkeypatch.delenv("REPRO_BACKEND")
        assert reg.autoselect_backend() == "fast"

    def test_resolution_precedence_full_chain(self):
        """Most-specific key wins: (fmt, prec) beats (fmt, None) beats
        (None, prec) beats the full wildcard."""
        reg = self.make_registry()

        @reg.register("spmv")
        def full_wildcard(*a, **kw):
            pass

        @reg.register("spmv", precision="fp16")
        def prec_wildcard(*a, **kw):
            pass

        @reg.register("spmv", fmt="ell")
        def fmt_wildcard(*a, **kw):
            pass

        @reg.register("spmv", fmt="ell", precision="fp16")
        def exact(*a, **kw):
            pass

        assert reg.lookup("spmv", "ell", "fp16") is exact
        assert reg.lookup("spmv", "ell", "fp64") is fmt_wildcard
        assert reg.lookup("spmv", "csr", "fp16") is prec_wildcard
        assert reg.lookup("spmv", "csr", "fp64") is full_wildcard
        assert reg.lookup("spmv", None, None) is full_wildcard

    def test_format_wildcard_beats_precision_wildcard(self):
        """When both partial wildcards match, the format-specific
        registration wins (it sits earlier in the chain)."""
        reg = self.make_registry()

        @reg.register("spmv", fmt="ell")
        def fmt_wildcard(*a, **kw):
            pass

        @reg.register("spmv", precision="fp16")
        def prec_wildcard(*a, **kw):
            pass

        assert reg.lookup("spmv", "ell", "fp16") is fmt_wildcard

    def test_env_override_beats_priority_autodetection(self, monkeypatch):
        """REPRO_BACKEND wins over priority-based auto-detection even
        when a much higher-priority backend is registered."""
        reg = self.make_registry()
        reg.register_backend("turbo", priority=1000)
        reg.register_backend("slowpoke", priority=-5)
        monkeypatch.setenv("REPRO_BACKEND", "slowpoke")
        assert reg.autoselect_backend() == "slowpoke"
        assert reg.active_backend == "slowpoke"
        monkeypatch.setenv("REPRO_BACKEND", "missing")
        with pytest.raises(KernelNotFoundError, match="missing"):
            reg.autoselect_backend()

    def test_fp16_kernels_registered_in_process_registry(self):
        """The fp16 rung resolves precision-specific kernels for every
        storage format (not the generic wildcard)."""
        from repro.backends.registry import registry as proc_reg
        from repro.backends import numpy_backend

        for fmt, expected in [
            ("ell", numpy_backend.spmv_ell_fp16),
            ("csr", numpy_backend.spmv_csr_fp16),
            ("sellcs", numpy_backend.spmv_sellcs_fp16),
        ]:
            assert (
                proc_reg.lookup("spmv", fmt, "fp16", backend="numpy")
                is expected
            )

    def test_process_registry_has_all_formats(self):
        assert set(registered_formats()) >= {"csr", "ell", "sellcs"}
        assert "numpy" in available_backends()
        assert active_backend() in available_backends()

    def test_panel_ops_resolve_for_every_format(self):
        """PR 6: every panel motif resolves from the process registry
        for every storage format at every rung (reference fallback)."""
        from repro.backends.registry import registry as proc_reg

        for op in ("spmv_multi", "symgs_sweep_multi", "spmv_dot_multi"):
            for fmt in ("csr", "ell", "sellcs"):
                for prec in ("fp64", "fp32", "fp16"):
                    assert proc_reg.lookup(op, fmt, prec) is not None
        for op in ("waxpby_multi", "dot_multi", "waxpby_dot_multi", "gemv_sub_dot"):
            for prec in ("fp64", "fp32", "fp16"):
                assert proc_reg.lookup(op, None, prec) is not None

    def test_numba_panel_registrations_gated(self):
        """The JIT panel and overlapped-smoother kernels register iff
        numba imported; absent, the numba chain falls back to the
        reference registrations instead of erroring."""
        from repro.backends import numba_backend
        from repro.backends.registry import registry as proc_reg

        for op, fmt in (
            ("spmv_multi", "ell"),
            ("spmv_multi", "csr"),
            ("symgs_interior", "color_partitioned"),
            ("symgs_boundary", "color_partitioned"),
        ):
            fn = proc_reg.lookup(op, fmt, "fp64", backend="numba")
            if numba_backend.HAVE_NUMBA:
                assert fn.__module__ == "repro.backends.numba_backend"
            else:
                assert fn.__module__ != "repro.backends.numba_backend"


class TestWorkspace:
    def test_reuse_and_counters(self):
        ws = Workspace("t")
        a = ws.get("buf", 16, np.float64)
        b = ws.get("buf", 16, np.float64)
        assert a is b
        assert ws.misses == 1 and ws.hits == 1

    def test_distinct_keys(self):
        ws = Workspace()
        a = ws.get("buf", 16, np.float64)
        assert ws.get("buf", 16, np.float32) is not a
        assert ws.get("buf", 17, np.float64) is not a
        assert ws.get("other", 16, np.float64) is not a
        assert ws.nbuffers == 4

    def test_zeros(self):
        ws = Workspace()
        a = ws.zeros("z", 8, np.float64)
        a += 5.0
        assert ws.zeros("z", 8, np.float64).sum() == 0.0

    def test_nbytes_and_clear(self):
        ws = Workspace()
        ws.get("a", 10, np.float64)
        assert ws.nbytes == 80
        ws.clear()
        assert ws.nbuffers == 0 and ws.nbytes == 0


class TestDispatch:
    def test_matrix_format_of_all_classes(self, problem16):
        A = problem16.A
        assert dispatch.matrix_format(A) == "ell"
        assert dispatch.matrix_format(A.to_csr()) == "csr"
        assert dispatch.matrix_format(A.to_sellcs()) == "sellcs"

    def test_matrix_format_rejects_unknown(self):
        with pytest.raises(TypeError, match="registered formats"):
            dispatch.matrix_format(np.zeros(3))

    def test_spmv_matches_method(self, problem16, rng):
        x = rng.standard_normal(problem16.A.ncols)
        np.testing.assert_array_equal(
            dispatch.spmv(problem16.A, x), problem16.A.spmv(x)
        )

    def test_waxpby_fresh_out(self, rng):
        x = rng.standard_normal(32)
        y = rng.standard_normal(32)
        out = np.empty(32)
        dispatch.waxpby(2.0, x, -3.0, y, out=out)
        np.testing.assert_allclose(out, 2.0 * x - 3.0 * y)

    @pytest.mark.parametrize("use_ws", [False, True])
    def test_waxpby_aliased_out(self, rng, use_ws):
        ws = Workspace() if use_ws else None
        x = rng.standard_normal(32)
        for alpha, beta in [(2.0, 1.0), (1.0, 0.5), (0.25, -1.5)]:
            y = rng.standard_normal(32)
            expect = alpha * x + beta * y
            got = dispatch.waxpby(alpha, x, beta, y, out=y, ws=ws)
            assert got is y
            np.testing.assert_allclose(got, expect)
            # out aliasing x instead of y
            x2 = x.copy()
            y2 = rng.standard_normal(32)
            expect = alpha * x2 + beta * y2
            got = dispatch.waxpby(alpha, x2, beta, y2, out=x2, ws=ws)
            np.testing.assert_allclose(got, expect)

    def test_gemv_gemvT_with_out(self, rng):
        Q = rng.standard_normal((50, 8))
        coef = rng.standard_normal(5)
        out = np.empty(50)
        dispatch.gemv(Q, 5, coef, out=out)
        np.testing.assert_allclose(out, Q[:, :5] @ coef)
        w = rng.standard_normal(50)
        h = np.empty(5)
        dispatch.gemvT(Q, 5, w, out=h)
        np.testing.assert_allclose(h, Q[:, :5].T @ w)

    def test_dot(self, rng):
        a = rng.standard_normal(64)
        b = rng.standard_normal(64)
        assert dispatch.dot(a, b) == pytest.approx(float(a @ b))

    @pytest.mark.parametrize("use_ws", [False, True])
    def test_prolong(self, rng, use_ws):
        ws = Workspace() if use_ws else None
        xfull = rng.standard_normal(40)
        z_c = rng.standard_normal(5)
        f_c = np.array([3, 9, 14, 22, 37])
        expect = xfull.copy()
        expect[f_c] += z_c
        dispatch.prolong(xfull, z_c, f_c, ws=ws)
        np.testing.assert_allclose(xfull, expect)

    @pytest.mark.parametrize("fmt", ["csr", "ell", "sellcs"])
    def test_fused_restrict_out_ws(self, problem16, rng, fmt):
        from repro.sparse import to_format

        A = to_format(problem16.A, fmt)
        xfull = rng.standard_normal(A.ncols)
        r = rng.standard_normal(A.nrows)
        f_c = np.arange(0, A.nrows, 8)
        expect = r[f_c] - (problem16.A.to_csr().to_scipy() @ xfull)[f_c]
        ws = Workspace()
        out = np.empty(len(f_c))
        dispatch.fused_restrict(A, r, xfull, f_c, out=out, ws=ws)
        np.testing.assert_allclose(out, expect, rtol=1e-12)
        np.testing.assert_allclose(
            dispatch.fused_restrict(A, r, xfull, f_c), expect, rtol=1e-12
        )
