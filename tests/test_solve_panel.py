"""Batched ``solve_panel`` parity with sequential solves (PR 6).

Acceptance: an 8-wide ``solve_panel`` must return, per column, the
bitwise-identical iterate a sequential ``solve`` of that column
produces (fp64 policy; rung-tolerance for the mixed ladder), at 1, 2
and 8 SPMD ranks — all while the operator streams its matrix once per
panel step (the measured ``rhs_columns / matrix_passes``
amortization).
"""

import os

import numpy as np
import pytest

from repro.fp import DOUBLE_POLICY, MIXED_DS_POLICY
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.mg import MGConfig
from repro.parallel import SerialComm, run_spmd
from repro.solvers import GMRESIRSolver
from repro.stencil import generate_problem


def spmd_rank_counts() -> list[int]:
    env = os.environ.get("REPRO_RANKS", "").strip()
    if env:
        return [int(tok) for tok in env.replace(",", " ").split()]
    return [1, 2, 4]


RANKS = spmd_rank_counts()


def run_ranks(nranks: int, fn) -> list:
    if nranks == 1:
        return [fn(SerialComm())]
    return run_spmd(nranks, fn)


def make_rhs_panel(b: np.ndarray, ncol: int) -> np.ndarray:
    """Panel of scaled copies of the stencil RHS (fp64-exact scales)."""
    B = np.empty((b.shape[0], ncol), order="F")
    for j in range(ncol):
        np.multiply(b, 1.0 + 0.5 * j, out=B[:, j])
    return B


def _solver(prob, comm, policy, **kw):
    return GMRESIRSolver(
        prob,
        comm,
        policy=policy,
        mg_config=MGConfig(nlevels=2),
        restart=10,
        **kw,
    )


class TestPanelParitySerial:
    @pytest.mark.parametrize("policy", [DOUBLE_POLICY, MIXED_DS_POLICY])
    def test_panel_bitwise_equals_sequential(self, problem16, policy):
        ncol = 8
        B = make_rhs_panel(problem16.b, ncol)
        pan = _solver(problem16, SerialComm(), policy)
        X, stats = pan.solve_panel(B, tol=0.0, maxiter=20)
        assert X.shape == (problem16.nlocal, ncol)
        assert len(stats) == ncol
        for j in range(ncol):
            seq = _solver(problem16, SerialComm(), policy)
            xj, sj = seq.solve(B[:, j].copy(), tol=0.0, maxiter=20)
            assert np.array_equal(X[:, j], xj), f"column {j} diverged"
            assert stats[j].iterations == sj.iterations
            assert stats[j].final_relres == sj.final_relres

    def test_deflation_converged_columns_leave_the_panel(self, problem16):
        # Column 0 is all-zero: it converges immediately (rho0 == 0)
        # and must not perturb the others.
        ncol = 4
        B = make_rhs_panel(problem16.b, ncol)
        B[:, 0] = 0.0
        pan = _solver(problem16, SerialComm(), DOUBLE_POLICY)
        X, stats = pan.solve_panel(B, tol=1e-8, maxiter=60)
        assert stats[0].converged and stats[0].iterations == 0
        assert np.array_equal(X[:, 0], np.zeros(problem16.nlocal))
        for j in range(1, ncol):
            seq = _solver(problem16, SerialComm(), DOUBLE_POLICY)
            xj, sj = seq.solve(B[:, j].copy(), tol=1e-8, maxiter=60)
            assert np.array_equal(X[:, j], xj)
            assert stats[j].converged == sj.converged

    def test_panel_amortizes_matrix_passes(self, problem16):
        ncol = 8
        B = make_rhs_panel(problem16.b, ncol)
        pan = _solver(problem16, SerialComm(), DOUBLE_POLICY)
        X, _ = pan.solve_panel(B, tol=0.0, maxiter=20)
        for op in {id(pan.op64): pan.op64, id(pan.op_inner): pan.op_inner}.values():
            if op.matrix_passes:
                reuse = op.rhs_columns / op.matrix_passes
                assert reuse == pytest.approx(ncol), (
                    f"panel booked {reuse:.2f} columns/pass, expected {ncol}"
                )

    def test_rejects_wrong_shape(self, problem16):
        pan = _solver(problem16, SerialComm(), DOUBLE_POLICY)
        with pytest.raises(ValueError, match="nlocal"):
            pan.solve_panel(np.zeros((7, 2)))
        with pytest.raises(ValueError, match="nlocal"):
            pan.solve_panel(problem16.b)  # 1-D is not a panel


class TestPanelParityDistributed:
    @pytest.mark.parametrize("nranks", RANKS)
    def test_fp64_bitwise_across_ranks(self, nranks):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            ncol = 8
            B = make_rhs_panel(prob.b, ncol)
            pan = _solver(prob, comm, DOUBLE_POLICY)
            X, _ = pan.solve_panel(B, tol=0.0, maxiter=10)
            ok = True
            for j in range(ncol):
                seq = _solver(prob, comm, DOUBLE_POLICY)
                xj, _ = seq.solve(B[:, j].copy(), tol=0.0, maxiter=10)
                ok = ok and np.array_equal(X[:, j], xj)
            return bool(ok)

        assert all(run_ranks(nranks, fn))

    @pytest.mark.parametrize("nranks", RANKS)
    def test_mixed_ladder_rung_tolerance_across_ranks(self, nranks):
        # The mixed ladder's panel sequence is still bitwise-equal to
        # the sequential one under the reference backend; assert the
        # strict contract and keep the rung-tolerance bound as the
        # documented acceptance floor.
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            ncol = 4
            B = make_rhs_panel(prob.b, ncol)
            pan = _solver(prob, comm, MIXED_DS_POLICY)
            X, _ = pan.solve_panel(B, tol=0.0, maxiter=10)
            ok = True
            for j in range(ncol):
                seq = _solver(prob, comm, MIXED_DS_POLICY)
                xj, _ = seq.solve(B[:, j].copy(), tol=0.0, maxiter=10)
                ok = ok and np.array_equal(X[:, j], xj)
                ok = ok and np.allclose(X[:, j], xj, rtol=1e-5, atol=1e-5)
            return bool(ok)

        assert all(run_ranks(nranks, fn))
