"""Deeper tests of the scaling model's configuration space."""

import pytest

from repro.perf import NVIDIA_K80
from repro.perf.scaling import ScalingModel


class TestGeometryVariants:
    def test_level_dims_halve(self):
        m = ScalingModel(local_dims=(64, 32, 16), nlevels=3)
        assert m.level_local_dims(0) == (64, 32, 16)
        assert m.level_local_dims(1) == (32, 16, 8)
        assert m.level_local_dims(2) == (16, 8, 4)

    def test_interior_fraction(self):
        assert ScalingModel._interior_fraction((4, 4, 4)) == pytest.approx(8 / 64)
        assert ScalingModel._interior_fraction((2, 2, 2)) == 0.0

    def test_flop_dims_match_core(self):
        from repro.core.flops import stencil27_nnz

        m = ScalingModel(local_dims=(32, 32, 32))
        dims = m.level_dims_for_flops()
        assert dims[0].nnz == stencil27_nnz(32, 32, 32)
        assert dims[1].n == 16**3


class TestModeVariants:
    def test_three_modes_ordered(self):
        """half < single < double in cycle time."""
        m = ScalingModel()
        t16 = m.cycle_profile("mxp-half", 8).total_seconds
        t32 = m.cycle_profile("mxp", 8).total_seconds
        t64 = m.cycle_profile("double", 8).total_seconds
        assert t16 < t32 < t64

    def test_flops_identical_across_modes(self):
        """Precisions counted equally: same flop model for all modes."""
        m = ScalingModel()
        f32 = m.cycle_profile("mxp", 8).total_flops
        f64 = m.cycle_profile("double", 8).total_flops
        assert f32 == f64

    def test_gflops_per_gcd_rating_order(self):
        m = ScalingModel()
        assert m.gflops_per_gcd("mxp", 8) > m.gflops_per_gcd("double", 8)

    def test_comm_seconds_grow_with_ranks(self):
        m = ScalingModel()
        c1 = m.cycle_profile("mxp", 8).comm_seconds
        c2 = m.cycle_profile("mxp", 9408 * 8).comm_seconds
        assert c2 > c1


class TestRestartSensitivity:
    def test_longer_restart_higher_ortho_share(self):
        short = ScalingModel(restart=10)
        long = ScalingModel(restart=50)
        b_s = short.time_breakdown("mxp", 8)
        b_l = long.time_breakdown("mxp", 8)
        assert b_l["ortho"] > b_s["ortho"]

    def test_rating_changes_smoothly(self):
        g = [ScalingModel(restart=m).gflops_per_gcd("mxp", 8) for m in (10, 30, 50)]
        assert all(v > 0 for v in g)
        # Longer cycles amortize outer overhead but grow ortho: ratings
        # stay within a sane band.
        assert max(g) / min(g) < 1.6


class TestAblationFlags:
    def test_each_flag_independent(self):
        base = ScalingModel().gflops_per_gcd("mxp", 8)
        for kwargs in (
            {"matrix_format": "csr"},
            {"smoother": "levelsched"},
            {"fused_restrict": False},
            {"overlap": False},
            {"host_mixed_ops": True},
        ):
            g = ScalingModel(**kwargs).gflops_per_gcd("mxp", 8)
            assert g < base, kwargs

    def test_overlap_matters_only_with_ranks(self):
        """Without neighbors there is no communication to hide.

        The smoother layout is held fixed (``overlap_symgs=True``
        keeps the color-partitioned blocks): the layout's byte model
        differs even serial, the *overlap* itself must not.
        """
        on = ScalingModel(overlap=True).gflops_per_gcd("mxp", 1)
        model_off = ScalingModel(overlap=False, overlap_symgs=True)
        off = model_off.gflops_per_gcd("mxp", 1)
        assert on == pytest.approx(off)

    def test_symgs_layout_charges_indirection_serial(self):
        """The index-set layout streams row indices + staging; the
        color-partitioned layout (the overlapped smoother's) does not
        — visible in the byte model even without ranks."""
        from repro.fp import MIXED_DS_POLICY

        blocks = ScalingModel(overlap_symgs=True)
        indexed = ScalingModel(overlap_symgs=False)
        policy = MIXED_DS_POLICY
        assert blocks.cycle_symgs_bytes(policy) < indexed.cycle_symgs_bytes(policy)

    def test_host_mixed_ops_leaves_double_untouched(self):
        a = ScalingModel().cycle_profile("double", 8).total_seconds
        b = ScalingModel(host_mixed_ops=True).cycle_profile("double", 8).total_seconds
        assert a == pytest.approx(b)

    def test_invalid_flags(self):
        with pytest.raises(ValueError):
            ScalingModel(matrix_format="coo")
        with pytest.raises(ValueError):
            ScalingModel(smoother="jacobi")


class TestHPCGModel:
    def test_symmetric_sweep_slower_than_forward(self):
        fwd = ScalingModel().hpcg_iteration_profile(8).total_seconds
        sym = ScalingModel(sweep="symmetric").hpcg_iteration_profile(8).total_seconds
        assert sym > fwd

    def test_hpcg_below_hpgmxp_rating(self):
        hpcg = ScalingModel(sweep="symmetric").hpcg_gflops_per_gcd(8)
        mxp = ScalingModel().gflops_per_gcd("mxp", 8)
        assert hpcg < mxp

    def test_hpcg_efficiency_declines(self):
        m = ScalingModel(sweep="symmetric")
        g1 = m.hpcg_gflops_per_gcd(8)
        g2 = m.hpcg_gflops_per_gcd(9408 * 8)
        assert g2 < g1


class TestK80WeakScaling:
    def test_monotone_efficiency(self):
        m = ScalingModel(machine=NVIDIA_K80, local_dims=(128,) * 3)
        rows = m.weak_scaling_series([1, 2, 4, 8])
        effs = [r["efficiency"] for r in rows]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_rating_far_below_frontier(self):
        k80 = ScalingModel(machine=NVIDIA_K80, local_dims=(128,) * 3)
        frontier = ScalingModel()
        assert (
            k80.gflops_per_gcd("mxp", 4)
            < 0.25 * frontier.gflops_per_gcd("mxp", 8)
        )
