"""End-to-end autotuner integration: probe -> plan -> dispatch -> solve.

The contract under test is the tentpole invariant: a tuned dispatch
plan changes *which* registered kernel runs, never the bits it
produces.  A solver adopting a plan through the shared setup cache must
therefore solve bitwise-identically to the untuned default, and the
benchmark's recorded ``autotune_speedup`` can never drop below 1.0
because the untuned baseline always competes in the probe.
"""

import numpy as np
import pytest

from repro.backends.registry import KernelRegistry, registry
from repro.fp import MIXED_DS_POLICY
from repro.mg.multigrid import MGConfig
from repro.parallel.comm import SerialComm
from repro.solvers.gmres_ir import GMRESIRSolver
from repro.solvers.setup_cache import SetupCache, operator_fingerprint
from repro.tune import (
    DispatchPlan,
    OperatorProber,
    PlanCache,
    PlanChoice,
    apply_plan_to_config,
    autotune_operator,
    config_rungs,
    representative_slice,
    tune_for_config,
)
from repro.tune.plan import FUSED_OPS


@pytest.fixture(scope="module")
def plan8(problem8):
    """One real probe session over the 8^3 operator (fp64 only,
    single repeat — the suite tests plumbing, not timing quality)."""
    plan, hit = autotune_operator(
        problem8.A, baseline_format="ell", rungs=("fp64",), repeats=1
    )
    assert not hit  # no cache passed
    return plan


class TestProbe:
    def test_representative_slice_is_principal_square(self, problem8):
        s = representative_slice(problem8.A, max_rows=100)
        assert (s.nrows, s.ncols) == (100, 100)

    def test_slice_of_small_operator_is_whole(self, problem8):
        s = representative_slice(problem8.A, max_rows=10**6)
        assert s.nrows == problem8.A.to_csr().nrows

    def test_prober_baseline_always_has_parity(self, problem8):
        prober = OperatorProber(
            problem8.A, baseline_format="ell", rungs=("fp64",), repeats=1
        )
        entries, records = prober.probe_all()
        assert entries  # something was tuned
        for rec in records:
            if rec.selected:
                assert rec.parity
        # Every probed (op, rung) has at least one parity-true record
        # (the untuned default itself).
        for op, rung in {(r.op, r.rung) for r in records}:
            assert any(
                r.parity for r in records if (r.op, r.rung) == (op, rung)
            )


class TestPlanFromProbe:
    def test_entries_cover_fp64(self, plan8):
        assert plan8.entries
        assert all(rung == "fp64" for _, rung in plan8.entries)

    def test_parity_asserted(self, plan8):
        plan8.assert_parity()

    def test_speedup_floor(self, plan8):
        assert plan8.speedup() >= 1.0

    def test_fingerprints_bound_to_operator_and_machine(
        self, plan8, problem8
    ):
        from repro.perf.machine import machine_fingerprint

        assert plan8.operator_fingerprint == operator_fingerprint(problem8.A)
        assert plan8.machine_fingerprint == machine_fingerprint()

    def test_cache_round_trip_hits(self, problem8, tmp_path):
        cache = PlanCache(str(tmp_path / "cache.json"))
        plan, hit = autotune_operator(
            problem8.A, rungs=("fp64",), repeats=1, cache=cache
        )
        assert not hit
        again, hit = autotune_operator(
            problem8.A, rungs=("fp64",), repeats=1, cache=cache
        )
        assert hit
        assert again.entries == plan.entries


class TestRegistryPlanDispatch:
    def test_plan_backend_preference_wins_dispatch(self):
        reg = KernelRegistry()

        @reg.register("spmv", backend="numpy")
        def spmv_ref():
            return "ref"

        @reg.register("spmv", backend="alt")
        def spmv_alt():
            return "alt"

        class StubPlan:
            def backend_for(self, op, prec, fmt=None, fmt_params=None):
                return "alt" if op == "spmv" else None

        assert reg.lookup("spmv", "ell", "fp64")() == "ref"
        reg.set_plan(StubPlan())
        assert reg.lookup("spmv", "ell", "fp64")() == "alt"
        # An explicit backend request still overrides the plan.
        assert reg.lookup("spmv", "ell", "fp64", backend="numpy")() == "ref"
        reg.set_plan(None)
        assert reg.lookup("spmv", "ell", "fp64")() == "ref"

    def test_plan_does_not_steer_mismatched_format_lookups(self):
        """The reviewed invariant hole: a plan that chose (csr, alt)
        must not route an ELL lookup (e.g. from the level-scheduled
        smoother, which forces ELL) to the alt backend — that
        combination's parity was never verified."""
        reg = KernelRegistry()

        @reg.register("spmv", backend="numpy")
        def spmv_ref():
            return "ref"

        @reg.register("spmv", backend="alt")
        def spmv_alt():
            return "alt"

        entry = PlanChoice(
            fmt="csr",
            fmt_params=(),
            backend="alt",
            fused=True,
            seconds=1.0,
            baseline_seconds=2.0,
        )
        plan = DispatchPlan(
            operator_fingerprint="op",
            machine_fingerprint="mach",
            baseline_format="ell",
            baseline_params=(),
            baseline_fusion=True,
            baseline_backend="numpy",
            entries={("spmv", "fp64"): entry},
        )
        reg.set_plan(plan)
        try:
            assert reg.lookup("spmv", "csr", "fp64")() == "alt"
            assert reg.lookup("spmv", "ell", "fp64")() == "ref"
        finally:
            reg.set_plan(None)

    def test_global_registry_set_plan_round_trip(self, plan8):
        try:
            registry.set_plan(plan8)
            assert registry.plan is plan8
            registry.lookup("spmv", "ell", "fp64")  # resolves under plan
        finally:
            registry.set_plan(None)
        assert registry.plan is None

    def test_available_variants_lists_registrations(self):
        variants = registry.available_variants("spmv")
        assert ("ell", None, "numpy") in variants
        assert ("csr", None, "numpy") in variants


class TestSolverAdoption:
    def test_solver_adopts_plan_from_setup_cache(self, problem8, plan8):
        cache = SetupCache()
        cache.store_plan(operator_fingerprint(problem8.A), plan8)
        solver = GMRESIRSolver(
            problem8,
            SerialComm(),
            policy=MIXED_DS_POLICY,
            mg_config=MGConfig(nlevels=2),
            matrix_format="ell",
            setup_cache=cache,
        )
        assert solver.dispatch_plan is plan8

    def test_mismatched_baseline_is_not_adopted(self, problem8, plan8):
        cache = SetupCache()
        cache.store_plan(operator_fingerprint(problem8.A), plan8)
        solver = GMRESIRSolver(
            problem8,
            SerialComm(),
            policy=MIXED_DS_POLICY,
            mg_config=MGConfig(nlevels=2),
            matrix_format="csr",  # plan was tuned from the ell baseline
            setup_cache=cache,
        )
        assert solver.dispatch_plan is None

    def test_tuned_solve_is_bitwise_equal_to_untuned(self, problem8, plan8):
        kw = dict(
            policy=MIXED_DS_POLICY,
            mg_config=MGConfig(nlevels=2),
            restart=10,
            matrix_format="ell",
        )
        plain = GMRESIRSolver(problem8, SerialComm(), **kw)
        x_plain, _ = plain.solve(problem8.b, tol=0.0, maxiter=10)

        cache = SetupCache()
        cache.store_plan(operator_fingerprint(problem8.A), plan8)
        tuned = GMRESIRSolver(
            problem8, SerialComm(), setup_cache=cache, **kw
        )
        assert tuned.dispatch_plan is plan8
        try:
            registry.set_plan(plan8)  # the benchmark driver's install
            x_tuned, _ = tuned.solve(problem8.b, tol=0.0, maxiter=10)
        finally:
            registry.set_plan(None)
        assert np.array_equal(x_tuned, x_plain)


class TestConfigPlumbing:
    def test_config_rungs_follow_the_ladder(self):
        from repro.core.config import BenchmarkConfig

        assert config_rungs(BenchmarkConfig(impl="reference")) == ("fp64",)
        assert config_rungs(BenchmarkConfig(impl="optimized")) == (
            "fp64",
            "fp32",
        )
        cfg = BenchmarkConfig(precision_ladder="fp16:fp32:fp64")
        assert config_rungs(cfg) == ("fp64", "fp32")  # fp16 not probed

    def test_apply_plan_noop_when_consensus_is_baseline(self):
        from repro.core.config import BenchmarkConfig

        cfg = BenchmarkConfig()
        plan = DispatchPlan(
            operator_fingerprint="op",
            machine_fingerprint="mach",
            baseline_format=cfg.matrix_format,
            baseline_params=(),
            baseline_fusion=True,
            baseline_backend="numpy",
        )
        assert apply_plan_to_config(cfg, plan) is cfg

    def test_apply_plan_folds_unanimous_fusion(self):
        from repro.core.config import BenchmarkConfig

        cfg = BenchmarkConfig()
        entries = {
            (op, "fp64"): PlanChoice(
                fmt="ell",
                fmt_params=(),
                backend="numpy",
                fused=False,
                seconds=1.0,
                baseline_seconds=2.0,
            )
            for op in sorted(FUSED_OPS)
        }
        plan = DispatchPlan(
            operator_fingerprint="op",
            machine_fingerprint="mach",
            baseline_format=cfg.matrix_format,
            baseline_params=(),
            baseline_fusion=True,
            baseline_backend="numpy",
            entries=entries,
        )
        assert apply_plan_to_config(cfg, plan).fusion is False

    def test_tune_for_config_uses_the_cache(self, tmp_path):
        from repro.core.config import BenchmarkConfig

        cfg = BenchmarkConfig(local_nx=8, nlevels=2, impl="reference")
        cache = PlanCache(str(tmp_path / "cache.json"))
        _, hit = tune_for_config(cfg, cache=cache)
        assert not hit
        _, hit = tune_for_config(cfg, cache=cache)
        assert hit


class TestBenchmarkAutotune:
    def test_distributed_phase_records_the_plan(self, tmp_path):
        from repro.core.benchmark import run_distributed_phase
        from repro.core.config import BenchmarkConfig

        cfg = BenchmarkConfig(
            local_nx=8,
            nlevels=2,
            impl="reference",
            max_iters_per_solve=2,
            distributed_grid="1x1x1",
            distributed_budget_seconds=0.05,
            rhs_panel=2,
            autotune="on",
            tune_cache=str(tmp_path / "cache.json"),
        )
        metrics = run_distributed_phase(cfg)
        assert metrics.autotune_speedup >= 1.0
        assert metrics.autotune["enabled"]
        assert metrics.autotune["plan"]["entries"]
        assert registry.plan is None  # uninstalled after the phase
        # The record the CI gate consumes is JSON-clean.
        import json

        json.dumps(metrics.to_dict())

    def test_autotune_off_records_nothing(self):
        from repro.core.benchmark import run_distributed_phase
        from repro.core.config import BenchmarkConfig

        cfg = BenchmarkConfig(
            local_nx=8,
            nlevels=2,
            impl="reference",
            max_iters_per_solve=2,
            distributed_grid="1x1x1",
            distributed_budget_seconds=0.05,
        )
        metrics = run_distributed_phase(cfg)
        assert metrics.autotune_speedup == 1.0
        assert metrics.autotune == {}
