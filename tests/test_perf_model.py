"""Tests for the performance model: machine, kernels, network, scaling.

These encode the paper's quantitative claims as assertions — the model
must *generate* the anchor numbers, not just run.
"""

import numpy as np
import pytest

from repro.fp.precision import Precision
from repro.perf import (
    FRONTIER_GCD,
    MACHINES,
    NVIDIA_K80,
    KernelModel,
    MachineSpec,
    ScalingModel,
    allreduce_time,
    halo_exchange_time,
)
from repro.perf.network import halo_message_counts, imbalance_factor
from repro.perf.scaling import PAPER_PENALTY, paper_node_counts


class TestMachineSpec:
    def test_effective_bw(self):
        assert FRONTIER_GCD.effective_bw == pytest.approx(
            FRONTIER_GCD.mem_bw * FRONTIER_GCD.mem_eff
        )

    def test_peak_flops_lookup(self):
        assert FRONTIER_GCD.peak_flops("fp64") == FRONTIER_GCD.flops_fp64
        assert NVIDIA_K80.peak_flops("fp32") > NVIDIA_K80.peak_flops("fp64")

    def test_kernel_time_memory_bound(self):
        # 1 GB at ~1 TB/s ~ 1 ms, far above the flop time.
        t = FRONTIER_GCD.kernel_time(1e9, 1e6, "fp64", launches=0)
        assert t == pytest.approx(1e9 / FRONTIER_GCD.effective_bw)

    def test_kernel_time_compute_bound(self):
        t = FRONTIER_GCD.kernel_time(8.0, 1e12, "fp64", launches=0)
        assert t == pytest.approx(1e12 / FRONTIER_GCD.flops_fp64)

    def test_launch_latency_added(self):
        t0 = FRONTIER_GCD.kernel_time(1e6, 1e3, "fp64", launches=0)
        t8 = FRONTIER_GCD.kernel_time(1e6, 1e3, "fp64", launches=8)
        assert t8 - t0 == pytest.approx(8 * FRONTIER_GCD.launch_latency)

    def test_registry(self):
        assert MACHINES["frontier"] is FRONTIER_GCD
        assert MACHINES["k80"] is NVIDIA_K80

    def test_with_updates(self):
        s = FRONTIER_GCD.with_updates(mem_eff=0.5)
        assert s.mem_eff == 0.5
        assert FRONTIER_GCD.mem_eff != 0.5


class TestKernelModel:
    km = KernelModel()

    def test_spmv_fp32_byte_ratio_below_2(self):
        """Index arrays dilute the fp32 advantage (§4.1)."""
        n = 10000
        b64 = self.km.spmv(n, Precision.DOUBLE).nbytes
        b32 = self.km.spmv(n, Precision.SINGLE).nbytes
        assert 1.3 < b64 / b32 < 1.7

    def test_ortho_fp32_byte_ratio_is_2(self):
        """Pure FP streaming: the ideal 2x (the paper's 'perfect
        speedup of the orthogonalization phase')."""
        n, k = 10000, 10
        b64 = self.km.ortho_cgs2_step(n, k, Precision.DOUBLE).nbytes
        b32 = self.km.ortho_cgs2_step(n, k, Precision.SINGLE).nbytes
        assert b64 / b32 == pytest.approx(2.0)

    def test_csr_has_row_pointer_overhead(self):
        n = 10000
        ell = self.km.spmv(n, Precision.DOUBLE, "ell").nbytes
        csr = self.km.spmv(n, Precision.DOUBLE, "csr").nbytes
        assert csr - ell == pytest.approx((n + 1) * 8)

    def test_gs_one_matrix_pass_levelsched_two(self):
        n = 10000
        mc = self.km.gs_sweep(n, Precision.DOUBLE)
        ls = self.km.gs_levelscheduled(n, Precision.DOUBLE, 100)
        assert ls.nbytes > mc.nbytes * 1.5  # two matrix passes (§3.1)

    def test_gs_launches_per_color(self):
        assert self.km.gs_sweep(1000, Precision.DOUBLE, num_colors=8).launches == 8

    def test_levelsched_launches_per_wavefront(self):
        assert self.km.gs_levelscheduled(1000, Precision.DOUBLE, 500).launches == 501

    def test_fused_restrict_cheaper_than_unfused(self):
        n = 32**3
        fused = self.km.fused_spmv_restrict(n // 8, Precision.DOUBLE)
        unfused = self.km.unfused_residual_restrict(n, n // 8, Precision.DOUBLE)
        assert fused.nbytes < unfused.nbytes / 4

    def test_flops_match_core_model(self):
        """The byte model's flop counts agree with the official model."""
        from repro.core.flops import flops_ortho_step, flops_spmv, stencil27_nnz

        n = 64**3
        spmv = self.km.spmv(n, Precision.DOUBLE)
        # The byte model charges the padded 27/row; the exact count is
        # boundary-trimmed (a ~3% effect at 64^3, <1% at the official
        # 320^3). Within 5%.
        assert spmv.flops == pytest.approx(
            flops_spmv(stencil27_nnz(64, 64, 64)), rel=0.05
        )
        ortho = self.km.ortho_cgs2_step(n, 7, Precision.SINGLE)
        assert ortho.flops == flops_ortho_step(n, 7, "cgs2")

    def test_arithmetic_intensity(self):
        c = self.km.dot(1000, Precision.DOUBLE)
        assert c.arithmetic_intensity == pytest.approx(2 / 16, rel=1e-6)


class TestNetwork:
    def test_halo_counts(self):
        c = halo_message_counts((4, 4, 4))
        assert c["messages"] == 26
        assert c["points"] == 6 * 16 + 12 * 4 + 8

    def test_halo_time_scales_with_surface(self):
        t1 = halo_exchange_time(FRONTIER_GCD, (32, 32, 32), 8)
        t2 = halo_exchange_time(FRONTIER_GCD, (64, 64, 64), 8)
        assert t2 > t1

    def test_halo_fp32_cheaper(self):
        t64 = halo_exchange_time(FRONTIER_GCD, (64, 64, 64), 8)
        t32 = halo_exchange_time(FRONTIER_GCD, (64, 64, 64), 4)
        assert t32 < t64

    def test_staging_costs_extra(self):
        t_staged = halo_exchange_time(FRONTIER_GCD, (64,) * 3, 8, staged=True)
        t_direct = halo_exchange_time(FRONTIER_GCD, (64,) * 3, 8, staged=False)
        assert t_staged > t_direct

    def test_allreduce_serial_free(self):
        assert allreduce_time(FRONTIER_GCD, 8, 1) == 0.0

    def test_allreduce_grows_with_ranks(self):
        t8 = allreduce_time(FRONTIER_GCD, 8, 8)
        t75k = allreduce_time(FRONTIER_GCD, 8, 75264)
        assert t75k > 10 * t8

    def test_congestion_beyond_saturation(self):
        base = allreduce_time(FRONTIER_GCD, 8, 4096)
        big = allreduce_time(FRONTIER_GCD, 8, 8192)
        # More than the pure log2 growth factor.
        assert big / base > np.log2(8192) / np.log2(4096) * 1.2

    def test_imbalance_factor(self):
        assert imbalance_factor(FRONTIER_GCD, 1) == 1.0
        assert imbalance_factor(FRONTIER_GCD, 9408) > 1.0


class TestScalingModelAnchors:
    """The paper's headline numbers, generated by the model."""

    model = ScalingModel()

    def test_1node_per_gcd_rating(self):
        g = self.model.gflops_per_gcd("mxp", 8)
        assert g == pytest.approx(293.6, rel=0.03)

    def test_full_system_17_pflops(self):
        rows = self.model.weak_scaling_series([1, 9408])
        assert rows[1]["total_pflops"] == pytest.approx(17.23, rel=0.05)

    def test_weak_scaling_efficiency_78pct(self):
        rows = self.model.weak_scaling_series([1, 9408])
        assert rows[1]["efficiency"] == pytest.approx(0.78, abs=0.02)

    def test_efficiency_monotonically_decreases(self):
        rows = self.model.weak_scaling_series(paper_node_counts())
        effs = [r["efficiency"] for r in rows]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_speedup_1node_near_1_6(self):
        assert self.model.speedup_overall(8) == pytest.approx(1.6, abs=0.07)

    def test_ortho_speedup_near_2_at_small_scale(self):
        s = self.model.motif_speedups(8)
        assert s["ortho"] == pytest.approx(1.94, abs=0.08)

    def test_gs_spmv_speedups_below_ortho(self):
        """Index traffic drags sparse motifs below the dense one."""
        s = self.model.motif_speedups(8)
        assert s["gs"] < s["ortho"]
        assert s["spmv"] < s["ortho"]
        assert 1.3 < s["gs"] < 1.65
        assert 1.3 < s["spmv"] < 1.65

    def test_ortho_speedup_drops_at_scale(self):
        """All-reduce latency erodes the ortho speedup (§4.1)."""
        s1 = self.model.motif_speedups(8)
        s9408 = self.model.motif_speedups(9408 * 8)
        assert s9408["ortho"] < s1["ortho"] - 0.2

    def test_ortho_share_grows_at_scale(self):
        """Fig. 7: orthogonalization takes a larger share at scale."""
        b1 = self.model.time_breakdown("mxp", 8)
        b9408 = self.model.time_breakdown("mxp", 9408 * 8)
        assert b9408["ortho"] > b1["ortho"]

    def test_gs_is_largest_motif(self):
        """Fig. 7: the smoother dominates at small scale."""
        b = self.model.time_breakdown("mxp", 8)
        assert b["gs"] == max(b.values())

    def test_mxp_spends_smaller_ortho_share_than_double(self):
        """Fig. 7: 'the mixed-precision variant spends less time in
        orthogonalization'."""
        m = self.model.time_breakdown("mxp", 8)
        d = self.model.time_breakdown("double", 8)
        assert m["ortho"] < d["ortho"]

    def test_penalty_default_is_papers(self):
        assert PAPER_PENALTY == pytest.approx(2305 / 2382)


class TestReferenceImplementation:
    opt = ScalingModel()
    ref = ScalingModel(impl="reference")

    def test_reference_much_slower(self):
        """Fig. 4: 'present' far above 'xsdk'."""
        g_opt = self.opt.gflops_per_gcd("mxp", 8)
        g_ref = self.ref.gflops_per_gcd("mxp", 8)
        assert g_opt > 4 * g_ref

    def test_reference_speedup_lower(self):
        """Fig. 5: reference mxp speedup well below the optimized one."""
        assert self.ref.speedup_overall(8) < self.opt.speedup_overall(8) - 0.2

    def test_reference_flat_scaling(self):
        """'Since the reference implementation achieves much lower
        performance in general, it does not see this effect.'"""
        rows = self.ref.weak_scaling_series([1, 1024])
        assert rows[1]["efficiency"] > 0.8

    def test_rejects_unknown_impl(self):
        with pytest.raises(ValueError):
            ScalingModel(impl="magic")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            self.opt.cycle_profile("fp8", 8)


class TestK80Model:
    """Fig. 6: similar speedups on the NVIDIA K80 cluster."""

    model = ScalingModel(machine=NVIDIA_K80, local_dims=(128, 128, 128))

    def test_overall_speedup_similar(self):
        s = self.model.speedup_overall(4)
        assert 1.3 < s < 1.8

    def test_ortho_best_motif(self):
        s = self.model.motif_speedups(4)
        assert s["ortho"] == max(s[m] for m in ("gs", "ortho", "spmv", "restrict"))
