"""Operator-keyed setup cache (PR 6): hit/miss/invalidation semantics.

The cache keys every derived setup product (format conversion,
low-precision copy, partition, MG hierarchy) by a content fingerprint
of the source matrix, so a second solver bound to the same operator
reuses everything while an in-place mutation — a new fingerprint —
misses cleanly.
"""

import numpy as np
import pytest

from repro.fp import MIXED_DS_POLICY
from repro.geometry import Subdomain
from repro.mg import MGConfig
from repro.parallel import SerialComm
from repro.solvers import GMRESIRSolver
from repro.solvers.cg import PCGSolver
from repro.solvers.setup_cache import (
    SetupCache,
    default_setup_cache,
    operator_fingerprint,
)
from repro.stencil import generate_problem


@pytest.fixture()
def problem():
    return generate_problem(Subdomain.serial(8, 8, 8))


class TestFingerprint:
    def test_stable_and_content_addressed(self, problem):
        f1 = operator_fingerprint(problem.A)
        assert f1 == operator_fingerprint(problem.A)
        # A rebuilt-but-equal operator collides on purpose.
        other = generate_problem(Subdomain.serial(8, 8, 8))
        assert operator_fingerprint(other.A) == f1

    def test_mutation_changes_fingerprint(self, problem):
        f1 = operator_fingerprint(problem.A)
        prob2 = generate_problem(Subdomain.serial(8, 8, 8))
        prob2.A.vals[0, 0] += 1.0
        assert operator_fingerprint(prob2.A) != f1

    def test_different_shape_differs(self, problem):
        other = generate_problem(Subdomain.serial(4, 4, 4))
        assert operator_fingerprint(other.A) != operator_fingerprint(problem.A)


class TestSetupCacheMechanics:
    def test_get_or_build_hits_and_misses(self):
        cache = SetupCache()
        built = []

        def builder():
            built.append(1)
            return object()

        v1 = cache.get_or_build("fp", "mg", (1,), builder)
        v2 = cache.get_or_build("fp", "mg", (1,), builder)
        assert v1 is v2
        assert built == [1]
        assert (cache.hits, cache.misses) == (1, 1)
        # Different params: a distinct product.
        cache.get_or_build("fp", "mg", (2,), builder)
        assert cache.misses == 2

    def test_invalidate_by_fingerprint(self):
        cache = SetupCache()
        cache.get_or_build("a", "mg", (), lambda: 1)
        cache.get_or_build("a", "part", (), lambda: 2)
        cache.get_or_build("b", "mg", (), lambda: 3)
        assert cache.invalidate("a") == 2
        assert cache.entries == 1
        assert cache.invalidate() == 1
        assert cache.entries == 0

    def test_fifo_eviction_is_bounded(self):
        cache = SetupCache(max_entries=2)
        cache.get_or_build("a", "k", (), lambda: 1)
        cache.get_or_build("b", "k", (), lambda: 2)
        cache.get_or_build("c", "k", (), lambda: 3)
        assert cache.entries == 2
        # "a" (the oldest) was evicted: rebuilding it misses.
        cache.get_or_build("a", "k", (), lambda: 4)
        assert cache.misses == 4

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            SetupCache(max_entries=0)

    def test_default_cache_is_shared(self):
        assert default_setup_cache() is default_setup_cache()


class TestSolverIntegration:
    def test_second_solver_reuses_every_product(self, problem):
        cache = SetupCache()
        kw = dict(policy=MIXED_DS_POLICY, mg_config=MGConfig(nlevels=2), restart=10)
        GMRESIRSolver(problem, SerialComm(), setup_cache=cache, **kw)
        misses_after_first = cache.misses
        assert cache.hits == 0 and misses_after_first > 0
        s2 = GMRESIRSolver(problem, SerialComm(), setup_cache=cache, **kw)
        assert cache.misses == misses_after_first  # nothing rebuilt
        assert cache.hits == misses_after_first  # every product reused
        # The reused pieces still solve.
        x, stats = s2.solve(problem.b, tol=0.0, maxiter=5)
        assert np.isfinite(x).all()
        assert stats.setup_cache_hits == cache.hits
        assert stats.setup_cache_misses == cache.misses

    def test_cached_solver_matches_uncached_bitwise(self, problem):
        kw = dict(policy=MIXED_DS_POLICY, mg_config=MGConfig(nlevels=2), restart=10)
        cache = SetupCache()
        GMRESIRSolver(problem, SerialComm(), setup_cache=cache, **kw)
        cached = GMRESIRSolver(problem, SerialComm(), setup_cache=cache, **kw)
        plain = GMRESIRSolver(problem, SerialComm(), **kw)
        xc, _ = cached.solve(problem.b, tol=0.0, maxiter=10)
        xp, _ = plain.solve(problem.b, tol=0.0, maxiter=10)
        assert np.array_equal(xc, xp)

    def test_mutated_operator_misses(self, problem):
        cache = SetupCache()
        kw = dict(policy=MIXED_DS_POLICY, mg_config=MGConfig(nlevels=2), restart=10)
        GMRESIRSolver(problem, SerialComm(), setup_cache=cache, **kw)
        misses1 = cache.misses
        mutated = generate_problem(Subdomain.serial(8, 8, 8))
        mutated.A.vals[0, 0] += 1.0
        GMRESIRSolver(mutated, SerialComm(), setup_cache=cache, **kw)
        assert cache.hits == 0  # new fingerprint: no stale reuse
        assert cache.misses == 2 * misses1

    def test_different_config_params_do_not_collide(self, problem):
        cache = SetupCache()
        kw = dict(policy=MIXED_DS_POLICY, mg_config=MGConfig(nlevels=2))
        GMRESIRSolver(problem, SerialComm(), restart=10, setup_cache=cache, **kw)
        misses1 = cache.misses
        GMRESIRSolver(
            problem,
            SerialComm(),
            restart=10,
            matrix_format="csr",
            setup_cache=cache,
            **kw,
        )
        # Every product key carries its derivation params (the MG key
        # includes the matrix format), so the csr solver must never be
        # served an ell-keyed entry: no hits, only fresh misses.
        assert cache.hits == 0
        assert cache.misses == 2 * misses1

    def test_pcg_reuses_mg_hierarchy(self, problem):
        cache = SetupCache()
        s1 = PCGSolver(
            problem,
            SerialComm(),
            mg_config=MGConfig(nlevels=2),
            setup_cache=cache,
        )
        assert cache.misses == 1 and cache.hits == 0
        s2 = PCGSolver(
            problem,
            SerialComm(),
            mg_config=MGConfig(nlevels=2),
            setup_cache=cache,
        )
        assert cache.hits == 1
        assert s2.M is s1.M
        x, stats = s2.solve(problem.b, tol=1e-8, maxiter=20)
        assert stats.setup_cache_hits == 1
        assert np.isfinite(x).all()
