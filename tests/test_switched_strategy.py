"""Tests for the switched-precision strategy and §2's difficulty claim."""

import numpy as np
import pytest

from repro.fp import DOUBLE_POLICY, MIXED_DS_POLICY
from repro.parallel import SerialComm
from repro.solvers import SwitchedGMRESSolver, gmres_solve
from repro.stencil import ProblemSpec, generate_problem
from repro.geometry import Subdomain


class TestSwitchedGMRES:
    def test_converges_to_full_accuracy(self, problem16, comm):
        solver = SwitchedGMRESSolver(problem16, comm)
        x, stats = solver.solve(problem16.b, tol=1e-9, maxiter=1000)
        assert stats.converged
        assert stats.final_relres < 1e-9
        assert np.abs(x - 1.0).max() < 1e-6

    def test_two_stages_both_contribute(self, problem16, comm):
        solver = SwitchedGMRESSolver(problem16, comm)
        _, stats = solver.solve(problem16.b, tol=1e-9, maxiter=1000)
        assert stats.low_stage.iterations > 0
        assert stats.high_stage.iterations > 0
        assert stats.iterations == (
            stats.low_stage.iterations + stats.high_stage.iterations
        )

    def test_switch_happens_near_fp32_floor(self, problem16, comm):
        solver = SwitchedGMRESSolver(problem16, comm)
        _, stats = solver.solve(problem16.b, tol=1e-9, maxiter=1000)
        # The handover point sits around 100 * eps_fp32 ~ 1e-5.
        assert stats.switch_relres < 1e-3

    def test_custom_switch_tol(self, problem16, comm):
        solver = SwitchedGMRESSolver(problem16, comm, switch_tol=1e-2)
        _, stats = solver.solve(problem16.b, tol=1e-9, maxiter=1000)
        assert stats.switch_relres <= 1e-2 * 1.5
        assert stats.converged

    def test_comparable_to_gmres_ir(self, problem16, comm):
        """Both strategies reach 1e-9; total iterations are similar —
        the design-space comparison behind the benchmark's choice."""
        solver = SwitchedGMRESSolver(problem16, comm)
        _, sw = solver.solve(problem16.b, tol=1e-9, maxiter=1000)
        _, ir = gmres_solve(
            problem16, comm, policy=MIXED_DS_POLICY, tol=1e-9, maxiter=1000
        )
        assert sw.converged and ir.converged
        assert sw.iterations < 3 * ir.iterations
        assert ir.iterations < 3 * sw.iterations

    def test_fp16_low_stage(self, problem8, comm):
        policy = DOUBLE_POLICY.with_low("fp16")
        solver = SwitchedGMRESSolver(problem8, comm, low_policy=policy)
        x, stats = solver.solve(problem8.b, tol=1e-9, maxiter=1000)
        assert stats.converged
        assert np.abs(x - 1.0).max() < 1e-6


class TestSymmetricVsNonsymmetric:
    def test_difficulty_comparable_for_gmres(self, comm):
        """Yamazaki et al. prefer the symmetric matrix, observing it
        takes at least as many GMRES iterations as *their* nonsymmetric
        variant.  The paper does not specify that variant's entries, so
        our skewed construction need not reproduce the exact ordering —
        but both problems must converge and sit in the same difficulty
        band (at large skew ours is indeed easier than symmetric)."""
        sub = Subdomain.serial(24, 24, 24)
        sym = generate_problem(sub)
        _, s_sym = gmres_solve(sym, comm, tol=1e-9, maxiter=2000)
        for delta, expect_easier in ((0.3, False), (0.5, True)):
            spec = ProblemSpec(kind="nonsymmetric", nonsym_delta=delta)
            nonsym = generate_problem(sub, spec=spec)
            _, s_non = gmres_solve(nonsym, comm, tol=1e-9, maxiter=2000)
            assert s_non.converged
            assert 0.6 < s_non.iterations / s_sym.iterations < 1.5
            if expect_easier:
                assert s_non.iterations <= s_sym.iterations
