"""Resilience subsystem: injection, detection, recovery (PR 10).

Acceptance contracts under test:

- every ABFT-covered SpMV corruption is detected and the replayed
  solve still converges (detection rate exactly 1.0 on covered sites);
- resilience enabled with zero injected faults is bitwise-identical to
  a resilience-off solve, serially and on the SPMD runtime;
- non-finite residual state raises a typed
  ``NumericalBreakdownError`` instead of burning to ``maxiter``;
- the service absorbs injected transient faults through its
  retry/degradation path, and ``solve_with_retry`` backs off on
  admission-control rejections.

Rank counts come from ``REPRO_RANKS`` (the CI resilience matrix legs
set 1, 2 and 8), defaulting to ``1,2,4`` for local runs.
"""

import asyncio
import os
import random

import numpy as np
import pytest

from repro.backends.registry import registry
from repro.backends.workspace import WorkspacePool
from repro.core import BenchmarkConfig, run_fault_inject_phase
from repro.fp import DOUBLE_POLICY, MIXED_DS_POLICY
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.mg import MGConfig
from repro.parallel import SerialComm, run_spmd
from repro.resilience import (
    ABFTCheck,
    FaultDetectedError,
    NumericalBreakdownError,
    ResilienceConfig,
    abft_checksums,
    parse_fault_spec,
)
from repro.resilience.abft import abft_rel_tol
from repro.service import ServiceOverloadedError, SolveRequest, SolverService
from repro.solvers import GMRESIRSolver
from repro.solvers.operator import DistributedOperator
from repro.stencil import generate_problem


def spmd_rank_counts() -> list[int]:
    """Rank counts under test (``REPRO_RANKS`` env override)."""
    env = os.environ.get("REPRO_RANKS", "").strip()
    if env:
        return [int(tok) for tok in env.replace(",", " ").split()]
    return [1, 2, 4]


RANKS = spmd_rank_counts()


def run_ranks(nranks: int, fn) -> list:
    """Run ``fn(comm)`` on the SPMD runtime (serial comm at p=1)."""
    if nranks == 1:
        return [fn(SerialComm())]
    return run_spmd(nranks, fn)


class TestSpecParsing:
    def test_basic_spec(self):
        plan = parse_fault_spec("spmv:bitflip:2;halo:drop;seed=9")
        assert plan.seed == 9
        assert plan.sites == (("spmv", "bitflip", 2), ("halo", "drop", 1))
        assert not plan.empty

    def test_empty_spec(self):
        assert parse_fault_spec("").empty
        assert parse_fault_spec("seed=3").empty

    @pytest.mark.parametrize(
        "spec",
        [
            "bogus:drop",  # unknown site
            "spmv:drop",  # mode belongs to another site
            "spmv:bitflip:x",  # non-integer count
            "spmv:bitflip:0",  # count below 1
            "spmv",  # missing mode
            "seed=abc",  # malformed seed
            "spmv:bitflip:1:extra",  # too many fields
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    def test_benchmark_config_fails_fast(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(fault_inject="spmv:bogus")
        with pytest.raises(ValueError):
            BenchmarkConfig(fault_inject="seed=3")  # no fault clauses
        cfg = BenchmarkConfig(fault_inject="spmv:nan:1")
        assert cfg.fault_inject == "spmv:nan:1"


class TestInjectorSchedule:
    def test_fire_consumes_clauses_in_spec_order(self):
        inj = parse_fault_spec("spmv:bitflip:2;spmv:nan").injector()
        assert inj.remaining() == 3
        assert [inj.fire("spmv") for _ in range(4)] == [
            "bitflip",
            "bitflip",
            "nan",
            None,
        ]
        assert inj.exhausted
        assert inj.stats.injected == {"spmv:bitflip": 2, "spmv:nan": 1}

    def test_mode_filter_preserves_other_budgets(self):
        inj = parse_fault_spec("halo:drop;halo:straggle").injector()
        # A collective is a straggle site but never a drop site.
        assert inj.fire("halo", modes=("straggle",)) == "straggle"
        assert inj.remaining("halo") == 1
        assert inj.fire("halo", modes=("drop", "corrupt", "delay")) == "drop"

    def test_halo_faults_fire_on_victim_rank_only(self):
        plan = parse_fault_spec("halo:drop")
        assert plan.injector(rank=1).fire("halo") is None
        assert plan.injector(rank=0).fire("halo") == "drop"

    def test_corruption_is_deterministic_per_seed(self):
        rng = np.random.default_rng(5)
        base = rng.standard_normal(64)
        outs = []
        for _ in range(2):
            inj = parse_fault_spec("spmv:nan;seed=11").injector()
            arr = base.copy()
            inj.corrupt_value(arr, "nan")
            outs.append(arr)
        assert np.array_equal(outs[0], outs[1], equal_nan=True)
        assert np.isnan(outs[0]).sum() == 1

    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.float16])
    def test_bitflip_always_detectable(self, dtype):
        inj = parse_fault_spec("spmv:bitflip;seed=2").injector()
        arr = np.linspace(0.1, 1.0, 16).astype(dtype)
        before = arr.copy()
        inj.corrupt_value(arr, "bitflip")
        (idx,) = np.flatnonzero(arr != before)
        # The exponent-bit model at least doubles the magnitude (or
        # saturates), so the corruption can never hide under a
        # 128*eps checksum tolerance.
        assert (
            not np.isfinite(arr[idx])
            or abs(float(arr[idx])) >= 2 * abs(float(before[idx]))
        )


class TestABFTCheck:
    def test_clean_matvec_passes(self, problem16):
        c, cabs = abft_checksums(problem16.A)
        check = ABFTCheck(c, cabs, abft_rel_tol(np.float64))
        op = DistributedOperator(problem16.A, problem16.halo, SerialComm())
        op.attach_abft(check)
        x = np.linspace(0.0, 1.0, problem16.nlocal)
        y = op.matvec(x)  # raises on a false positive
        assert check.checks > 0
        assert np.all(np.isfinite(y))

    @pytest.mark.parametrize("mode", ["bitflip", "nan"])
    def test_corrupted_output_is_detected(self, problem16, mode):
        c, cabs = abft_checksums(problem16.A)
        check = ABFTCheck(c, cabs, abft_rel_tol(np.float64))
        op = DistributedOperator(problem16.A, problem16.halo, SerialComm())
        x = np.linspace(0.0, 1.0, problem16.nlocal)
        y = op.matvec(x)
        parse_fault_spec(f"spmv:{mode};seed=4").injector().corrupt_value(
            y, mode
        )
        with pytest.raises(FaultDetectedError):
            check.verify(x, y)


def _campaign(problem, policy, spec, tol=1e-8, maxiter=400):
    """Drive one kernel fault campaign; every scheduled spmv fault
    fires inside an ABFT-covered dispatch and must be detected."""
    injector = parse_fault_spec(spec).injector()
    injector.cover()
    budget = injector.remaining("spmv")
    solver = GMRESIRSolver(
        problem, SerialComm(), policy, resilience=ResilienceConfig()
    )
    detected = replays = faulted = recovered = 0
    registry.set_wrapper(injector.kernel_wrapper())
    try:
        for _ in range(budget + 4):
            before = injector.remaining("spmv")
            if before == 0:
                break
            _, st = solver.solve(problem.b, tol=tol, maxiter=maxiter)
            assert st.converged
            rs = st.resilience
            detected += rs.detected
            replays += rs.replays
            if injector.remaining("spmv") < before:
                faulted += 1
                if st.converged:
                    recovered += 1
                    assert rs.recovered == 1
    finally:
        registry.set_wrapper(None)
    injected = budget - injector.remaining("spmv")
    return injected, detected, replays, faulted, recovered


class TestKernelCampaign:
    """Acceptance: every covered SpMV corruption is detected and the
    replayed solve converges."""

    @pytest.mark.parametrize(
        "policy", [DOUBLE_POLICY, MIXED_DS_POLICY], ids=["double", "mixed"]
    )
    def test_bitflips_all_detected_and_recovered(self, problem16, policy):
        injected, detected, replays, faulted, recovered = _campaign(
            problem16, policy, "spmv:bitflip:3;seed=7"
        )
        assert injected == 3
        assert detected == 3  # detection rate exactly 1.0
        assert replays >= detected
        assert recovered == faulted >= 1

    def test_nan_faults_detected_at_low_precision(self, problem16):
        injected, detected, _, faulted, recovered = _campaign(
            problem16, MIXED_DS_POLICY, "spmv:nan:2;seed=13"
        )
        assert injected == 2
        assert detected == 2
        assert recovered == faulted

    def test_replay_budget_escape_hatch(self, problem16):
        # With a zero replay budget the typed detection error must
        # propagate instead of silently replaying.
        injector = parse_fault_spec("spmv:bitflip;seed=1").injector()
        injector.cover()
        solver = GMRESIRSolver(
            problem16,
            SerialComm(),
            MIXED_DS_POLICY,
            resilience=ResilienceConfig(max_replays=0),
        )
        registry.set_wrapper(injector.kernel_wrapper())
        try:
            with pytest.raises(FaultDetectedError):
                solver.solve(problem16.b, tol=1e-8, maxiter=400)
        finally:
            registry.set_wrapper(None)


class TestZeroOverheadParity:
    """Acceptance: resilience on + zero faults == resilience off,
    bitwise, serially and across SPMD rank counts."""

    @pytest.mark.parametrize(
        "policy", [DOUBLE_POLICY, MIXED_DS_POLICY], ids=["double", "mixed"]
    )
    def test_serial_bitwise_parity(self, problem16, policy):
        x_off, s_off = GMRESIRSolver(
            problem16, SerialComm(), policy
        ).solve(problem16.b, tol=1e-8, maxiter=400)
        x_on, s_on = GMRESIRSolver(
            problem16, SerialComm(), policy, resilience=ResilienceConfig()
        ).solve(problem16.b, tol=1e-8, maxiter=400)
        assert np.array_equal(x_off, x_on)
        assert s_on.iterations == s_off.iterations
        assert s_on.final_relres == s_off.final_relres
        rs = s_on.resilience
        assert rs is not None
        assert (rs.detected, rs.replays, rs.breakdowns) == (0, 0, 0)

    @pytest.mark.parametrize("nranks", RANKS)
    def test_spmd_bitwise_parity(self, nranks):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            mg = MGConfig(nlevels=2)
            x_off, _ = GMRESIRSolver(
                prob, comm, MIXED_DS_POLICY, mg_config=mg
            ).solve(prob.b, tol=1e-8, maxiter=300)
            x_on, st = GMRESIRSolver(
                prob,
                comm,
                MIXED_DS_POLICY,
                mg_config=mg,
                resilience=ResilienceConfig(),
            ).solve(prob.b, tol=1e-8, maxiter=300)
            rs = st.resilience
            return bool(np.array_equal(x_off, x_on)) and (
                rs.detected == 0 and rs.replays == 0
            )

        assert all(run_ranks(nranks, fn))


class TestFiniteGuards:
    def _poisoned(self, problem16):
        b = problem16.b.copy()
        b[0] = np.nan
        return b

    def test_typed_breakdown_without_resilience(self, problem16):
        # The guard is unconditional: even a resilience-off solve gets
        # the typed error instead of burning to maxiter on NaNs.
        solver = GMRESIRSolver(problem16, SerialComm(), MIXED_DS_POLICY)
        with pytest.raises(NumericalBreakdownError) as exc_info:
            solver.solve(self._poisoned(problem16), tol=1e-8, maxiter=50)
        assert "residual" in str(exc_info.value)

    def test_persistent_breakdown_exhausts_replay_budget(self, problem16):
        # The NaN source survives checkpoint replay (it is in b), so
        # the replay budget drains and the typed error escapes.
        solver = GMRESIRSolver(
            problem16,
            SerialComm(),
            MIXED_DS_POLICY,
            resilience=ResilienceConfig(max_replays=2),
        )
        with pytest.raises(NumericalBreakdownError):
            solver.solve(self._poisoned(problem16), tol=1e-8, maxiter=50)

    def test_finite_guards_off_raises_immediately(self, problem16):
        solver = GMRESIRSolver(
            problem16,
            SerialComm(),
            MIXED_DS_POLICY,
            resilience=ResilienceConfig(finite_guards=False),
        )
        with pytest.raises(NumericalBreakdownError):
            solver.solve(self._poisoned(problem16), tol=1e-8, maxiter=50)


class TestServiceResilience:
    def test_transient_faults_retry_then_degrade(self, problem16):
        injector = parse_fault_spec("service:transient:2;seed=1").injector()

        async def drive():
            svc = SolverService(
                resilience=ResilienceConfig(), injector=injector
            )
            async with svc:
                fp = svc.register_operator(problem16)
                resp = await svc.solve(
                    SolveRequest(operator=fp, b=problem16.b, maxiter=200)
                )
            return resp, svc

        resp, svc = asyncio.run(drive())
        assert resp.stats.converged
        assert injector.exhausted
        # Transient 1 -> in-place retry; transient 2 -> degraded final
        # attempt (untuned, non-overlapped) that completes the batch.
        assert svc.metrics.transient_faults == 2
        assert svc.metrics.fault_retries == 1
        assert svc.metrics.degradations == 1

    def test_solve_with_retry_backs_off_on_overload(self, problem16):
        pool = WorkspacePool("retry-test", max_arenas=1)

        async def drive():
            svc = SolverService(pool=pool, retry_after=0.01)
            async with svc:
                fp = svc.register_operator(problem16)
                # Every arena is leased out, so the first attempt must
                # bounce; the lease is released mid-backoff and the
                # resubmission lands.
                hog = pool.acquire()
                asyncio.get_running_loop().call_later(
                    0.03, pool.release, hog
                )
                resp = await svc.solve_with_retry(
                    SolveRequest(operator=fp, b=problem16.b, maxiter=60),
                    base_delay=0.02,
                    rng=random.Random(0),
                )
            return resp, svc

        resp, svc = asyncio.run(drive())
        assert resp.stats.converged
        assert svc.metrics.retries >= 1
        assert svc.metrics.retry_giveups == 0

    def test_retry_gives_up_after_max_attempts(self, problem16):
        pool = WorkspacePool("giveup-test", max_arenas=1)

        async def drive():
            svc = SolverService(pool=pool, retry_after=0.001)
            async with svc:
                fp = svc.register_operator(problem16)
                hog = pool.acquire()  # never released: a hard wall
                with pytest.raises(ServiceOverloadedError):
                    await svc.solve_with_retry(
                        SolveRequest(operator=fp, b=problem16.b, maxiter=60),
                        max_attempts=2,
                        base_delay=0.0005,
                        max_delay=0.001,
                        rng=random.Random(0),
                    )
                pool.release(hog)
            return svc

        svc = asyncio.run(drive())
        assert svc.metrics.retries == 1
        assert svc.metrics.retry_giveups == 1


class TestResiliencePhase:
    SPEC = "spmv:bitflip:2;spmv:nan:1;service:transient:1;seed=7"

    def _run(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            max_iters_per_solve=10,
            validation_max_iters=200,
            fault_inject=self.SPEC,
        )
        return run_fault_inject_phase(cfg)

    def test_phase_invariants(self):
        m = self._run()
        assert m.clean_parity
        assert m.detection_rate == 1.0
        assert m.unfired == 0
        assert m.recovered_converged
        assert m.injected_total == 4
        assert m.service_transients == 1

    def test_phase_is_deterministic(self):
        a, b = self._run().to_dict(), self._run().to_dict()
        a.pop("wall_seconds"), b.pop("wall_seconds")
        assert a == b
