"""Unit tests for Gauss-Seidel smoothers."""

import numpy as np
import pytest

from repro.mg.smoothers import (
    LevelScheduledGS,
    MulticolorGS,
    make_smoother,
    smooth_distributed,
)
from repro.parallel import HaloExchange, SerialComm
from repro.sparse.coloring import color_sets, structured_coloring8


def sequential_gs_forward(A_dense, diag, r, x0):
    """Ground-truth lexicographic forward GS."""
    x = x0.copy()
    n = len(r)
    for i in range(n):
        s = A_dense[i] @ x - diag[i] * x[i]
        x[i] = (r[i] - s) / diag[i]
    return x


def sequential_gs_backward(A_dense, diag, r, x0):
    x = x0.copy()
    n = len(r)
    for i in range(n - 1, -1, -1):
        s = A_dense[i] @ x - diag[i] * x[i]
        x[i] = (r[i] - s) / diag[i]
    return x


@pytest.fixture(scope="module")
def gs_setup(problem8, rng):
    A = problem8.A
    diag = A.diagonal()
    r = np.random.default_rng(7).standard_normal(A.nrows)
    x0 = np.random.default_rng(8).standard_normal(A.nrows)
    return A, diag, r, x0


class TestLevelScheduledGS:
    def test_forward_matches_sequential(self, problem8, gs_setup):
        A, diag, r, x0 = gs_setup
        sm = LevelScheduledGS(A)
        xfull = x0.copy()
        sm.forward(r, xfull)
        ref = sequential_gs_forward(A.to_dense(), diag, r, x0)
        # Dense reference sums each row in a different association order
        # than the sparse kernel; allow summation-order roundoff.
        np.testing.assert_allclose(xfull[: A.nrows], ref, rtol=1e-9, atol=1e-12)

    def test_backward_matches_sequential(self, problem8, gs_setup):
        A, diag, r, x0 = gs_setup
        sm = LevelScheduledGS(A)
        xfull = x0.copy()
        sm.backward(r, xfull)
        ref = sequential_gs_backward(A.to_dense(), diag, r, x0)
        np.testing.assert_allclose(xfull[: A.nrows], ref, rtol=1e-9, atol=1e-12)

    def test_exact_on_exact_rhs(self, problem8):
        """GS from the exact solution stays at the exact solution."""
        A, b = problem8.A, problem8.b
        sm = LevelScheduledGS(A)
        xfull = np.ones(A.nrows)
        sm.forward(b, xfull)
        np.testing.assert_allclose(xfull, 1.0, rtol=1e-12)


class TestMulticolorGS:
    def make(self, problem):
        A = problem.A
        sets = color_sets(structured_coloring8(problem.sub))
        return MulticolorGS(A, A.diagonal(), sets)

    def test_reduces_error(self, problem8):
        A, b = problem8.A, problem8.b
        sm = self.make(problem8)
        xfull = np.zeros(A.nrows)
        err0 = np.linalg.norm(b - A.spmv(xfull))
        for _ in range(3):
            sm.forward(b, xfull)
        err = np.linalg.norm(b - A.spmv(xfull))
        assert err < 0.2 * err0

    def test_exact_on_exact_rhs(self, problem8):
        A, b = problem8.A, problem8.b
        sm = self.make(problem8)
        xfull = np.ones(A.nrows)
        sm.forward(b, xfull)
        np.testing.assert_allclose(xfull, 1.0, rtol=1e-12)

    def test_matches_gs_on_permuted_order(self, problem8, gs_setup):
        """Multicolor GS equals sequential GS in color-sorted row order."""
        A, diag, r, x0 = gs_setup
        sm = self.make(problem8)
        xfull = x0.copy()
        sm.forward(r, xfull)
        # Sequential ground truth, visiting rows color set by color set.
        order = np.concatenate(sm.sets)
        x_ref = x0.copy()
        A_dense = A.to_dense()
        for i in order:
            s = A_dense[i] @ x_ref - diag[i] * x_ref[i]
            x_ref[i] = (r[i] - s) / diag[i]
        np.testing.assert_allclose(xfull[: A.nrows], x_ref, rtol=1e-12)

    def test_num_passes(self, problem8):
        assert self.make(problem8).num_passes == 8

    def test_backward_reverses_colors(self, problem8, gs_setup):
        A, diag, r, x0 = gs_setup
        sm = self.make(problem8)
        xfull = x0.copy()
        sm.backward(r, xfull)
        order = np.concatenate(list(reversed(sm.sets)))
        x_ref = x0.copy()
        A_dense = A.to_dense()
        for i in order:
            s = A_dense[i] @ x_ref - diag[i] * x_ref[i]
            x_ref[i] = (r[i] - s) / diag[i]
        np.testing.assert_allclose(xfull[: A.nrows], x_ref, rtol=1e-12)

    def test_symmetric_sweep(self, problem8, gs_setup):
        A, diag, r, x0 = gs_setup
        sm = self.make(problem8)
        xf = x0.copy()
        sm.symmetric(r, xf)
        xf2 = x0.copy()
        sm.forward(r, xf2)
        sm.backward(r, xf2)
        np.testing.assert_allclose(xf, xf2)

    def test_convergence_slightly_worse_than_lexicographic(self, problem16):
        """The paper: multicolor ordering may degrade convergence a bit.

        Compare error contraction of 10 sweeps; multicolor should
        converge, and lexicographic should be at least as good.
        """
        A, b = problem16.A, problem16.b
        mc = self.make(problem16)
        lex = LevelScheduledGS(A)
        x_mc = np.zeros(A.nrows)
        x_lex = np.zeros(A.nrows)
        for _ in range(10):
            mc.forward(b, x_mc)
            lex.forward(b, x_lex)
        err_mc = np.linalg.norm(b - A.spmv(x_mc))
        err_lex = np.linalg.norm(b - A.spmv(x_lex))
        assert err_lex <= err_mc * 1.05


class TestFactoryAndDistributed:
    def test_factory_multicolor_requires_sets(self, problem8):
        with pytest.raises(ValueError):
            make_smoother(problem8.A, "multicolor")

    def test_factory_unknown(self, problem8):
        with pytest.raises(ValueError):
            make_smoother(problem8.A, "jacobi")

    def test_smooth_distributed_serial(self, problem8):
        A, b = problem8.A, problem8.b
        sm = LevelScheduledGS(A)
        halo = HaloExchange(problem8.halo, SerialComm())
        xfull = np.zeros(A.nrows)
        smooth_distributed(sm, halo, b, xfull, "forward")
        assert np.linalg.norm(b - A.spmv(xfull)) < np.linalg.norm(b)

    def test_smooth_distributed_bad_direction(self, problem8):
        sm = LevelScheduledGS(problem8.A)
        halo = HaloExchange(problem8.halo, SerialComm())
        with pytest.raises(ValueError):
            smooth_distributed(sm, halo, problem8.b, np.zeros(512), "sideways")
