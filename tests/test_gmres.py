"""Tests for GMRES / GMRES-IR solvers (serial and distributed)."""

import numpy as np
import pytest

from repro.fp import DOUBLE_POLICY, MIXED_DS_POLICY
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.mg import MGConfig
from repro.parallel import SerialComm, run_spmd
from repro.solvers import GMRESIRSolver, gmres_solve
from repro.stencil import ProblemSpec, generate_problem
from repro.util.timers import MotifTimers


class TestDoubleGMRES:
    def test_converges_to_exact_solution(self, problem16, comm):
        x, stats = gmres_solve(problem16, comm, tol=1e-9, maxiter=500)
        assert stats.converged
        assert np.abs(x - 1.0).max() < 1e-6

    def test_final_relres_below_tol(self, problem16, comm):
        _, stats = gmres_solve(problem16, comm, tol=1e-9, maxiter=500)
        assert stats.final_relres < 1e-9

    def test_implicit_history_decreases(self, problem16, comm):
        _, stats = gmres_solve(problem16, comm, tol=1e-9, maxiter=500)
        h = np.array(stats.implicit_history)
        assert h[-1] < h[0]
        assert np.all(np.diff(np.minimum.accumulate(h)) <= 0)

    def test_iteration_cap(self, problem16, comm):
        _, stats = gmres_solve(problem16, comm, tol=1e-30, maxiter=7)
        assert stats.iterations == 7
        assert not stats.converged

    def test_restart_respected(self, problem16, comm):
        _, stats = gmres_solve(problem16, comm, restart=5, tol=1e-9, maxiter=200)
        assert stats.converged
        assert max(stats.cycle_lengths) <= 5
        assert stats.restarts == len(stats.cycle_lengths)

    def test_nonsymmetric_problem(self, problem_nonsym16, comm):
        x, stats = gmres_solve(problem_nonsym16, comm, tol=1e-9, maxiter=500)
        assert stats.converged
        assert np.abs(x - 1.0).max() < 1e-6

    def test_x0_nonzero(self, problem16, comm):
        solver = GMRESIRSolver(problem16, comm)
        x0 = np.full(problem16.nlocal, 0.5)
        x, stats = solver.solve(problem16.b, x0=x0, tol=1e-9, maxiter=500)
        assert stats.converged
        assert np.abs(x - 1.0).max() < 1e-6

    def test_zero_rhs(self, problem16, comm):
        solver = GMRESIRSolver(problem16, comm)
        x, stats = solver.solve(np.zeros(problem16.nlocal))
        assert stats.converged
        np.testing.assert_array_equal(x, 0.0)

    def test_solver_reusable(self, problem16, comm):
        solver = GMRESIRSolver(problem16, comm)
        _, s1 = solver.solve(problem16.b, tol=1e-9, maxiter=500)
        _, s2 = solver.solve(problem16.b, tol=1e-9, maxiter=500)
        assert s1.iterations == s2.iterations  # deterministic repeats

    def test_mgs_and_cgs_variants_converge(self, problem16, comm):
        for ortho in ("mgs", "cgs"):
            _, stats = gmres_solve(problem16, comm, tol=1e-9, maxiter=500, ortho=ortho)
            assert stats.converged, ortho

    def test_unknown_ortho_rejected(self, problem16, comm):
        with pytest.raises(ValueError):
            GMRESIRSolver(problem16, comm, ortho="householder")

    def test_unknown_format_rejected(self, problem16, comm):
        with pytest.raises(ValueError):
            GMRESIRSolver(problem16, comm, matrix_format="coo")

    def test_csr_format_same_iterations(self, problem16, comm):
        _, s_ell = gmres_solve(problem16, comm, tol=1e-9, maxiter=500)
        solver = GMRESIRSolver(problem16, comm, matrix_format="csr")
        _, s_csr = solver.solve(problem16.b, tol=1e-9, maxiter=500)
        assert s_ell.iterations == s_csr.iterations

    def test_levelsched_mg_comparable_iterations(self, problem16, comm):
        """Multicolor vs lexicographic GS smoothing (§3.2.1).

        The paper notes multicolor ordering "sometimes suffers" relative
        to lexicographic GS but that this matters little inside a
        multigrid preconditioner — on this model problem the two must
        land within a small factor of each other (8-color GS actually
        has the *better* smoothing factor for the Poisson stencil).
        """
        _, s_mc = gmres_solve(problem16, comm, tol=1e-9, maxiter=500)
        _, s_ls = gmres_solve(
            problem16,
            comm,
            tol=1e-9,
            maxiter=500,
            mg_config=MGConfig(smoother="levelsched"),
        )
        assert s_mc.converged and s_ls.converged
        ratio = s_ls.iterations / s_mc.iterations
        assert 0.5 <= ratio <= 2.0


class TestMixedGMRESIR:
    def test_reaches_double_accuracy(self, problem16, comm):
        """The IR structure recovers fp64-level solutions (the point of
        the benchmark's 'somewhat close' requirement)."""
        x, stats = gmres_solve(
            problem16, comm, policy=MIXED_DS_POLICY, tol=1e-9, maxiter=500
        )
        assert stats.converged
        assert stats.final_relres < 1e-9
        assert np.abs(x - 1.0).max() < 1e-5

    def test_keeps_low_precision_copy(self, problem16, comm):
        solver = GMRESIRSolver(problem16, comm, policy=MIXED_DS_POLICY)
        assert solver.A_low.vals.dtype == np.float32
        assert solver.op64.A.vals.dtype == np.float64
        assert solver.Q.dtype == np.float32

    def test_double_policy_shares_matrix(self, problem16, comm):
        solver = GMRESIRSolver(problem16, comm, policy=DOUBLE_POLICY)
        assert solver.op_inner is solver.op64

    def test_iteration_penalty_is_small(self, problem16, comm):
        _, s_d = gmres_solve(problem16, comm, tol=1e-9, maxiter=500)
        _, s_m = gmres_solve(
            problem16, comm, policy=MIXED_DS_POLICY, tol=1e-9, maxiter=500
        )
        assert s_m.iterations >= s_d.iterations  # fp32 never helps here
        assert s_m.iterations <= 2.5 * s_d.iterations  # but penalty bounded

    def test_mixed_beats_pure_fp32_accuracy(self, problem16, comm):
        """Without the fp64 outer updates, fp32 GMRES stalls well above
        1e-9; GMRES-IR must not."""
        _, s_m = gmres_solve(
            problem16, comm, policy=MIXED_DS_POLICY, tol=1e-9, maxiter=500
        )
        assert s_m.final_relres < 1e-9

    def test_half_precision_policy_runs(self, problem8, comm):
        """FP16 (the paper's future work) at loose tolerance."""
        policy = DOUBLE_POLICY.with_low("fp16")
        x, stats = gmres_solve(
            problem8, comm, policy=policy, tol=1e-4, maxiter=500
        )
        assert stats.converged
        assert stats.final_relres < 1e-4

    def test_target_residual_mode(self, problem16, comm):
        """Full-scale validation converges to an absolute residual."""
        solver = GMRESIRSolver(problem16, comm, policy=MIXED_DS_POLICY)
        _, ref = solver.solve(problem16.b, tol=1e-6, maxiter=500)
        achieved = ref.final_relres * ref.rho0
        _, stats = solver.solve(
            problem16.b, tol=0.0, maxiter=500, target_residual=achieved * 1.5
        )
        assert stats.converged
        assert stats.final_relres * stats.rho0 <= achieved * 1.5

    def test_timers_populated(self, problem16, comm):
        timers = MotifTimers()
        solver = GMRESIRSolver(
            problem16, comm, policy=MIXED_DS_POLICY, timers=timers
        )
        solver.solve(problem16.b, tol=1e-9, maxiter=100)
        assert timers.seconds["gs"] > 0
        assert timers.seconds["ortho"] > 0
        assert timers.seconds["spmv"] > 0
        assert timers.seconds["restrict"] > 0


class TestDistributedGMRES:
    def test_distributed_matches_serial_iterations(self):
        """Same global 16^3 problem on 1 and 8 ranks: identical math up
        to reduction order, so iteration counts must match."""
        serial_prob = generate_problem(Subdomain.serial(16, 16, 16))
        _, s_serial = gmres_solve(
            serial_prob, SerialComm(), tol=1e-9, maxiter=500,
            mg_config=MGConfig(nlevels=2),
        )

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            _, stats = gmres_solve(
                prob, comm, tol=1e-9, maxiter=500, mg_config=MGConfig(nlevels=2)
            )
            return stats.iterations, stats.converged

        results = run_spmd(8, fn)
        iters = {r[0] for r in results}
        assert all(r[1] for r in results)
        assert len(iters) == 1
        # Distributed GS is block-Jacobi across ranks: a slightly weaker
        # preconditioner, so allow a modest iteration increase.
        assert s_serial.iterations <= iters.pop() <= int(s_serial.iterations * 1.8) + 5

    def test_distributed_mixed_converges(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            x, stats = gmres_solve(
                prob, comm, policy=MIXED_DS_POLICY, tol=1e-9, maxiter=500,
                mg_config=MGConfig(nlevels=2),
            )
            return stats.converged, float(np.abs(x - 1.0).max())

        for converged, err in run_spmd(8, fn):
            assert converged
            assert err < 1e-5
