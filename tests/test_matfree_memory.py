"""Tests for the matrix-free operator and the memory model (§5)."""

import numpy as np
import pytest

from repro.core.memory import (
    equalized_double_mesh,
    memory_overhead_ratio,
    solver_footprint,
)
from repro.fp import DOUBLE_POLICY, MIXED_DS_POLICY
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.parallel import SerialComm, run_spmd
from repro.stencil import MatrixFreeStencilOperator, ProblemSpec, generate_problem


class TestMatrixFreeOperator:
    def test_matches_assembled_spmv(self, problem16, rng):
        comm = SerialComm()
        op = MatrixFreeStencilOperator(problem16, comm)
        x = rng.standard_normal(problem16.nlocal)
        np.testing.assert_allclose(
            op.matvec(x), problem16.A.spmv(x), rtol=1e-13
        )

    def test_fp32_application(self, problem16, rng):
        comm = SerialComm()
        op = MatrixFreeStencilOperator(problem16, comm, precision="fp32")
        x = rng.standard_normal(problem16.nlocal).astype(np.float32)
        y = op.matvec(x)
        assert y.dtype == np.float32
        ref = problem16.A.spmv(x.astype(np.float64))
        np.testing.assert_allclose(y, ref, rtol=1e-4, atol=1e-3)

    def test_nonsymmetric_variant(self, problem_nonsym16, rng):
        comm = SerialComm()
        op = MatrixFreeStencilOperator(problem_nonsym16, comm)
        x = rng.standard_normal(problem_nonsym16.nlocal)
        np.testing.assert_allclose(
            op.matvec(x), problem_nonsym16.A.spmv(x), rtol=1e-13
        )

    def test_residual(self, problem16):
        op = MatrixFreeStencilOperator(problem16, SerialComm())
        r = op.residual(problem16.b, np.ones(problem16.nlocal))
        np.testing.assert_allclose(r, 0.0, atol=1e-12)

    def test_memory_far_below_assembled(self, problem16):
        op = MatrixFreeStencilOperator(problem16, SerialComm())
        assembled = problem16.A.memory_bytes()
        assert op.memory_bytes() < 0.7 * assembled

    def test_distributed_matches(self):
        serial = generate_problem(Subdomain.serial(8, 8, 8))
        x_serial = np.arange(512, dtype=np.float64)
        y_serial = serial.A.spmv(x_serial)

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            op = MatrixFreeStencilOperator(prob, comm)
            gx, gy, gz = sub.global_coords()
            gids = sub.global_grid.linear_index(gx, gy, gz)
            y = op.matvec(x_serial[gids].astype(np.float64))
            return np.allclose(y, y_serial[gids], rtol=1e-13)

        assert all(run_spmd(8, fn))

    def test_usable_in_gmres(self, problem16):
        """Drop-in for the inner operator: solve with a matrix-free A."""
        from repro.fp import MIXED_DS_POLICY
        from repro.solvers import GMRESIRSolver

        comm = SerialComm()
        solver = GMRESIRSolver(problem16, comm, policy=MIXED_DS_POLICY)
        solver.op_inner = MatrixFreeStencilOperator(
            problem16, comm, precision="fp32"
        )
        x, stats = solver.solve(problem16.b, tol=1e-9, maxiter=500)
        assert stats.converged
        assert np.abs(x - 1.0).max() < 1e-5


class TestMemoryModel:
    DIMS = (32, 32, 32)

    def test_mixed_uses_more_memory(self):
        """§5: GMRES-IR's memory exceeds double GMRES's."""
        ratio = memory_overhead_ratio(self.DIMS, MIXED_DS_POLICY, DOUBLE_POLICY)
        assert ratio > 1.0

    def test_low_matrix_copy_is_the_overhead(self):
        mxp = solver_footprint(self.DIMS, MIXED_DS_POLICY)
        dbl = solver_footprint(self.DIMS, DOUBLE_POLICY)
        assert mxp.matrix_low > 0
        assert dbl.matrix_low == 0
        # The matrix copy outweighs the basis/hierarchy savings.
        savings = (dbl.krylov_basis - mxp.krylov_basis) + (
            dbl.mg_hierarchy - mxp.mg_hierarchy
        )
        assert mxp.matrix_low > savings

    def test_matrix_free_removes_overhead(self):
        """§5: with the matrix-free variant the ratio drops below 1."""
        ratio = memory_overhead_ratio(
            self.DIMS, MIXED_DS_POLICY, DOUBLE_POLICY, matrix_free_inner=True
        )
        assert ratio < 1.0

    def test_breakdown_sums(self):
        fp = solver_footprint(self.DIMS, MIXED_DS_POLICY)
        assert sum(fp.breakdown().values()) == fp.total

    def test_basis_scales_with_restart(self):
        small = solver_footprint(self.DIMS, DOUBLE_POLICY, restart=10)
        big = solver_footprint(self.DIMS, DOUBLE_POLICY, restart=50)
        assert big.krylov_basis > 4 * small.krylov_basis

    def test_equalized_mesh_at_paper_scale(self):
        """At 320^3 the double solver can afford a slightly larger box
        (the paper's proposed modification); at 32^3 the divisibility
        step is too coarse to grow."""
        eq_small = equalized_double_mesh(self.DIMS, MIXED_DS_POLICY, DOUBLE_POLICY)
        assert eq_small == self.DIMS
        eq_paper = equalized_double_mesh(
            (320, 320, 320), MIXED_DS_POLICY, DOUBLE_POLICY
        )
        assert eq_paper > (320, 320, 320)
        # And it must still satisfy the 4-level divisibility.
        assert all(d % 8 == 0 for d in eq_paper)

    def test_solver_shares_fine_matrix_with_mg(self, problem16):
        """The implementation matches the accounting: one fp32 copy."""
        from repro.solvers import GMRESIRSolver

        solver = GMRESIRSolver(problem16, SerialComm(), policy=MIXED_DS_POLICY)
        assert solver.M.levels[0].A is solver.A_low
