"""Machine probes and fingerprints (repro.perf.machine).

The fingerprint keys the tuning cache, so it must be stable across
calls within one machine and overridable for tests; the STREAM-style
probes feed the benchmark JSON's machine block and the network fit's
bandwidth prior.
"""

import json

import pytest

from repro.perf.calibrate import fit_alpha_beta
from repro.perf.machine import machine_fingerprint, probe_machine


class TestFingerprint:
    def test_stable_across_calls(self):
        assert machine_fingerprint() == machine_fingerprint()

    def test_is_short_hex(self):
        fp = machine_fingerprint()
        assert len(fp) == 16
        int(fp, 16)  # raises if not hex

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE_ID", "ci-runner-42")
        fp = machine_fingerprint()
        monkeypatch.setenv("REPRO_MACHINE_ID", "ci-runner-43")
        assert machine_fingerprint() != fp
        monkeypatch.delenv("REPRO_MACHINE_ID")
        assert machine_fingerprint() == machine_fingerprint()


class TestProbe:
    @pytest.fixture(scope="class")
    def probe(self):
        # Small buffers keep the suite fast; the bandwidth figures are
        # then cache-resident, which is fine — the tests check
        # plausibility and plumbing, not STREAM accuracy.
        return probe_machine(nbytes=1 << 18, repeats=2)

    def test_bandwidths_positive(self, probe):
        assert probe.triad_bandwidth > 0
        assert probe.copy_bandwidth > 0
        assert probe.dispatch_latency > 0
        assert probe.cpu_count >= 1

    def test_fingerprint_matches_module(self, probe):
        assert probe.fingerprint == machine_fingerprint()

    def test_to_dict_is_json_serializable(self, probe):
        d = probe.to_dict()
        back = json.loads(json.dumps(d))
        assert back["fingerprint"] == probe.fingerprint
        assert back["copy_bandwidth"] == pytest.approx(probe.copy_bandwidth)


class TestBandwidthPrior:
    def test_single_sample_without_prior_is_degenerate(self):
        fit = fit_alpha_beta([(10.0, 1e6, 0.01)])
        assert fit.alpha == 0.0
        assert fit.beta == pytest.approx(0.01 / 1e6)

    def test_single_sample_with_prior_recovers_latency(self):
        # 10 messages, 1 MB, 10 ms total; at 1 GB/s the bytes cost
        # 1 ms, so the remaining 9 ms are latency: 0.9 ms/message.
        fit = fit_alpha_beta([(10.0, 1e6, 0.01)], bandwidth_prior=1e9)
        assert fit.beta == pytest.approx(1e-9)
        assert fit.alpha == pytest.approx(9e-4)

    def test_prior_never_produces_negative_alpha(self):
        # Measured time below what the prior bandwidth alone implies:
        # alpha clamps to zero rather than going negative.
        fit = fit_alpha_beta([(10.0, 1e6, 1e-5)], bandwidth_prior=1e9)
        assert fit.alpha == 0.0

    def test_multi_sample_fit_ignores_unneeded_prior(self):
        # Two well-separated samples resolve alpha and beta on their
        # own; the prior must not override a non-degenerate fit.
        samples = [
            (10.0, 1e6, 10 * 1e-4 + 1e6 * 1e-9),
            (100.0, 1e6, 100 * 1e-4 + 1e6 * 1e-9),
        ]
        fit = fit_alpha_beta(samples, bandwidth_prior=1e3)
        assert fit.alpha == pytest.approx(1e-4, rel=1e-6)
        assert fit.beta == pytest.approx(1e-9, rel=1e-3)
