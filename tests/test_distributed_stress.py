"""Stress and odd-shape tests of the distributed stack."""

import numpy as np
import pytest

from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.mg import MGConfig
from repro.parallel import HaloExchange, run_spmd
from repro.solvers import DistributedOperator, gmres_solve
from repro.stencil import generate_problem


def spmv_check(comm, proc, local_dims, serial_dims):
    """Distributed SpMV vs serial, returns per-rank bool."""
    sub = Subdomain(BoxGrid(*local_dims), proc, comm.rank)
    prob = generate_problem(sub)
    op = DistributedOperator(prob.A, prob.halo, comm)
    gx, gy, gz = sub.global_coords()
    x = (gx * 1.0 + 100.0 * gy + 10000.0 * gz).astype(np.float64)
    y = op.matvec(x)

    serial = generate_problem(Subdomain.serial(*serial_dims))
    sgx, sgy, sgz = serial.sub.global_coords()
    xs = (sgx * 1.0 + 100.0 * sgy + 10000.0 * sgz).astype(np.float64)
    ys = serial.A.spmv(xs)
    gids = sub.global_grid.linear_index(gx, gy, gz)
    return bool(np.allclose(y, ys[gids], rtol=1e-13))


class TestOddRankCounts:
    def test_3_ranks_strip(self):
        proc = ProcessGrid.from_size(3)

        def fn(comm):
            return spmv_check(comm, proc, (4, 4, 4),
                              (4 * proc.px, 4 * proc.py, 4 * proc.pz))

        assert all(run_spmd(3, fn))

    def test_6_ranks(self):
        proc = ProcessGrid.from_size(6)

        def fn(comm):
            return spmv_check(comm, proc, (4, 4, 4),
                              (4 * proc.px, 4 * proc.py, 4 * proc.pz))

        assert all(run_spmd(6, fn))

    def test_12_ranks(self):
        proc = ProcessGrid.from_size(12)

        def fn(comm):
            return spmv_check(comm, proc, (3, 3, 3),
                              (3 * proc.px, 3 * proc.py, 3 * proc.pz))

        assert all(run_spmd(12, fn))

    def test_27_ranks_middle_has_26_neighbors(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(3, 3, 3), pg, comm.rank)
            prob = generate_problem(sub)
            halo = HaloExchange(prob.halo, comm)
            xfull = halo.full_vector(np.ones(sub.nlocal))
            halo.exchange(xfull)
            return halo.num_neighbors

        counts = run_spmd(27, fn)
        # 3x3x3 grid: the center rank talks to all 26 neighbors.
        assert max(counts) == 26
        assert counts.count(7) == 8  # corners


class TestAnisotropicBoxes:
    def test_rectangular_local_box(self):
        proc = ProcessGrid(2, 1, 1)

        def fn(comm):
            return spmv_check(comm, proc, (4, 6, 2), (8, 6, 2))

        assert all(run_spmd(2, fn))

    def test_anisotropic_solve(self):
        prob = generate_problem(Subdomain.serial(16, 8, 24))
        from repro.parallel import SerialComm

        x, stats = gmres_solve(
            prob, SerialComm(), tol=1e-9, maxiter=500,
            mg_config=MGConfig(nlevels=2),
        )
        assert stats.converged
        assert np.abs(x - 1.0).max() < 1e-6


class TestConcurrentSolves:
    def test_interleaved_collectives_and_p2p(self):
        """Two different tag spaces and reductions interleave safely."""

        def fn(comm):
            rng = np.random.default_rng(comm.rank)
            total = 0.0
            for round_ in range(5):
                # Ring p2p with round-specific tags.
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                comm.send(np.array([float(comm.rank + round_)]), right, tag=round_)
                got = comm.recv(left, tag=round_)
                total += comm.allreduce(float(got[0]))
            return total

        results = run_spmd(4, fn)
        assert len(set(results)) == 1

    def test_repeated_spmd_runs_isolated(self):
        """Back-to-back SPMD executions don't leak state."""
        for trial in range(3):
            res = run_spmd(4, lambda comm: comm.allreduce(1.0))
            assert res == [4.0] * 4

    def test_large_rank_count_collectives(self):
        res = run_spmd(16, lambda comm: comm.allreduce(float(comm.rank)))
        assert res == [120.0] * 16


class TestMGLevelVariants:
    @pytest.mark.parametrize("nlevels", [1, 2, 3, 4])
    def test_solver_converges_any_depth(self, nlevels, problem16, comm):
        _, stats = gmres_solve(
            problem16, comm, tol=1e-9, maxiter=1500,
            mg_config=MGConfig(nlevels=nlevels),
        )
        assert stats.converged, nlevels

    def test_deeper_hierarchy_fewer_iterations(self, problem16, comm):
        """More levels = stronger preconditioner on this problem."""
        iters = {}
        for nlevels in (1, 4):
            _, stats = gmres_solve(
                problem16, comm, tol=1e-9, maxiter=1500,
                mg_config=MGConfig(nlevels=nlevels),
            )
            iters[nlevels] = stats.iterations
        assert iters[4] < iters[1]

    def test_extra_smoothing_helps_or_equal(self, problem16, comm):
        _, s1 = gmres_solve(
            problem16, comm, tol=1e-9, maxiter=1500,
            mg_config=MGConfig(npre=1, npost=1),
        )
        _, s2 = gmres_solve(
            problem16, comm, tol=1e-9, maxiter=1500,
            mg_config=MGConfig(npre=2, npost=2),
        )
        assert s2.iterations <= s1.iterations

    def test_coarse_sweeps_config(self, problem16, comm):
        _, stats = gmres_solve(
            problem16, comm, tol=1e-9, maxiter=1500,
            mg_config=MGConfig(coarse_sweeps=3),
        )
        assert stats.converged
