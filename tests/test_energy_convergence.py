"""Tests for the energy model and the iteration-scaling fit."""

import numpy as np
import pytest

from repro.core.convergence import (
    fit_iteration_scaling,
    measure_iteration_scaling,
)
from repro.perf.energy import DEFAULT_ENERGY, EnergyModel, EnergySpec
from repro.perf.scaling import ScalingModel


class TestEnergyModel:
    model = EnergyModel()

    def test_components_positive(self):
        prof = self.model.cycle_energy("mxp", 8)
        for k, v in prof.breakdown().items():
            assert v >= 0, k
        assert prof.total_j > 0

    def test_mixed_precision_saves_energy(self):
        """The intro's motivation: lower precision saves energy."""
        saving = self.model.mixed_precision_saving(8)
        assert saving > 1.2

    def test_saving_tracks_speedup(self):
        """Bandwidth-bound: energy saving ~ byte ratio ~ speedup."""
        saving = self.model.mixed_precision_saving(8)
        speedup = ScalingModel().motif_speedups(8)["total"] / ScalingModel().penalty
        assert abs(saving - speedup) < 0.35

    def test_energy_per_gflop_lower_for_mxp(self):
        e_m = self.model.energy_per_gflop("mxp", 8)
        e_d = self.model.energy_per_gflop("double", 8)
        assert e_m < e_d

    def test_static_power_dominates_at_these_rates(self):
        """With ~1 TB/s at 60 pJ/B, static power is a large share —
        the well-known reason speedups translate to energy savings."""
        prof = self.model.cycle_energy("double", 8)
        assert prof.static_j > prof.compute_j

    def test_custom_spec(self):
        spec = EnergySpec(static_watts=0.0)
        model = EnergyModel(energy=spec)
        prof = model.cycle_energy("mxp", 8)
        assert prof.static_j == 0.0

    def test_pj_per_flop_lookup(self):
        assert DEFAULT_ENERGY.pj_per_flop("fp64") > DEFAULT_ENERGY.pj_per_flop("fp32")
        assert DEFAULT_ENERGY.pj_per_flop("fp32") > DEFAULT_ENERGY.pj_per_flop("fp16")


class TestIterationScalingFit:
    def test_perfect_power_law_recovered(self):
        sizes = [1000, 8000, 64000, 512000]
        iters = [round(2.0 * s**0.333) for s in sizes]
        fit = fit_iteration_scaling(sizes, iters)
        assert fit.alpha == pytest.approx(0.333, abs=0.02)
        assert fit.c == pytest.approx(2.0, rel=0.1)
        assert fit.r_squared > 0.999

    def test_predict(self):
        fit = fit_iteration_scaling([1000, 8000], [10, 20])
        assert fit.predict(8000) == pytest.approx(20, rel=0.01)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_iteration_scaling([100], [5])

    def test_describe(self):
        fit = fit_iteration_scaling([1000, 8000], [10, 20])
        assert "N^" in fit.describe()

    def test_real_measurement_exponent_near_third(self):
        """Real solves: iterations grow ~ N^(1/3) (fixed-depth MG)."""
        fit = measure_iteration_scaling(box_sizes=[16, 24, 32])
        assert 0.2 < fit.alpha < 0.45
        assert fit.r_squared > 0.95
        # The paper's validation run lies far above our extrapolation's
        # floor but the growth direction must be right.
        assert fit.predict_paper_validation() > fit.iterations[-1]

    def test_mixed_measurement_runs(self):
        fit = measure_iteration_scaling(box_sizes=[16, 24], mixed=True)
        assert fit.iterations[0] > 0


class TestHalfPrecisionProjection:
    def test_fp16_speedup_exceeds_fp32(self):
        """§5: strategic fp16 should give 'an even higher speedup'."""
        model = ScalingModel()
        s32 = model.motif_speedups(8)["total"]
        s16 = model.half_precision_projection(8)["total"]
        assert s16 > s32

    def test_fp16_below_4x(self):
        """Index traffic bounds fp16 gains well below the 4x ideal."""
        model = ScalingModel()
        s16 = model.half_precision_projection(8)
        assert s16["total"] < 3.0
        assert s16["ortho"] > s16["spmv"]

    def test_mxp_half_mode_profile(self):
        model = ScalingModel()
        prof = model.cycle_profile("mxp-half", 8)
        prof32 = model.cycle_profile("mxp", 8)
        assert prof.total_seconds < prof32.total_seconds
