"""Unit tests for grid transfers and the multigrid preconditioner."""

import numpy as np
import pytest

from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.mg import (
    MGConfig,
    MultigridPreconditioner,
    coarse_to_fine_map,
    fused_residual_restrict,
    prolong_correct,
    unfused_residual_restrict,
)
from repro.mg.restriction import restrict_vector
from repro.parallel import SerialComm, run_spmd
from repro.stencil import generate_problem


class TestCoarseFineMap:
    def test_map_targets_even_coords(self, problem16):
        coarse = problem16.sub.coarsen()
        f_c = coarse_to_fine_map(problem16.sub, coarse)
        ix, iy, iz = problem16.sub.local.coords(f_c)
        assert np.all(ix % 2 == 0)
        assert np.all(iy % 2 == 0)
        assert np.all(iz % 2 == 0)

    def test_map_is_injective(self, problem16):
        coarse = problem16.sub.coarsen()
        f_c = coarse_to_fine_map(problem16.sub, coarse)
        assert len(np.unique(f_c)) == coarse.nlocal

    def test_rank_mismatch_rejected(self):
        pg = ProcessGrid(2, 1, 1)
        a = Subdomain(BoxGrid(8, 8, 8), pg, 0)
        b = Subdomain(BoxGrid(4, 4, 4), pg, 1)
        with pytest.raises(ValueError):
            coarse_to_fine_map(a, b)


class TestRestriction:
    def test_fused_equals_unfused(self, problem16, rng):
        """The paper's optimization must be numerically identical."""
        A = problem16.A
        coarse = problem16.sub.coarsen()
        f_c = coarse_to_fine_map(problem16.sub, coarse)
        r = rng.standard_normal(A.nrows)
        xfull = rng.standard_normal(A.ncols)
        fused = fused_residual_restrict(A, r, xfull, f_c)
        unfused = unfused_residual_restrict(A, r, xfull, f_c)
        np.testing.assert_allclose(fused, unfused, rtol=1e-13)

    def test_restrict_vector_is_injection(self, problem16, rng):
        coarse = problem16.sub.coarsen()
        f_c = coarse_to_fine_map(problem16.sub, coarse)
        v = rng.standard_normal(problem16.nlocal)
        np.testing.assert_array_equal(restrict_vector(v, f_c), v[f_c])

    def test_prolong_is_restriction_transpose(self, problem16, rng):
        """<R v, w>_coarse == <v, P w>_fine (P = R^T)."""
        coarse = problem16.sub.coarsen()
        f_c = coarse_to_fine_map(problem16.sub, coarse)
        v = rng.standard_normal(problem16.nlocal)
        w = rng.standard_normal(len(f_c))
        lhs = restrict_vector(v, f_c) @ w
        pv = np.zeros(problem16.nlocal)
        prolong_correct(pv, w, f_c)
        rhs = v @ pv
        np.testing.assert_allclose(lhs, rhs, rtol=1e-13)

    def test_prolong_adds_in_place(self, problem16):
        coarse = problem16.sub.coarsen()
        f_c = coarse_to_fine_map(problem16.sub, coarse)
        x = np.ones(problem16.nlocal)
        prolong_correct(x, np.ones(len(f_c)), f_c)
        assert x[f_c[0]] == 2.0
        assert x.sum() == problem16.nlocal + len(f_c)


class TestMGConfig:
    def test_defaults_match_spec(self):
        cfg = MGConfig()
        assert cfg.nlevels == 4
        assert cfg.sweep == "forward"
        assert cfg.fused_restrict

    def test_rejects_bad_smoother(self):
        with pytest.raises(ValueError):
            MGConfig(smoother="ilu")

    def test_rejects_bad_sweep(self):
        with pytest.raises(ValueError):
            MGConfig(sweep="diagonal")

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            MGConfig(nlevels=0)


class TestMultigridPreconditioner:
    def test_level_sizes(self, problem16, comm):
        mg = MultigridPreconditioner.build(problem16, comm)
        assert [lv.nlocal for lv in mg.levels] == [4096, 512, 64, 8]

    def test_apply_reduces_residual(self, problem16, comm):
        mg = MultigridPreconditioner.build(problem16, comm)
        b = problem16.b
        z = mg.apply(b)
        r_after = b - problem16.A.spmv(z)
        assert np.linalg.norm(r_after) < np.linalg.norm(b)

    def test_richardson_converges(self, problem16, comm):
        mg = MultigridPreconditioner.build(problem16, comm)
        A, b = problem16.A, problem16.b
        x = np.zeros(problem16.nlocal)
        norms = []
        for _ in range(10):
            r = b - A.spmv(x)
            norms.append(np.linalg.norm(r))
            x += mg.apply(r)
        assert norms[-1] < 0.35 * norms[0]

    def test_apply_is_linear(self, problem16, comm, rng):
        mg = MultigridPreconditioner.build(problem16, comm)
        u = rng.standard_normal(problem16.nlocal)
        v = rng.standard_normal(problem16.nlocal)
        lhs = mg.apply(2.0 * u + 3.0 * v)
        rhs = 2.0 * mg.apply(u) + 3.0 * mg.apply(v)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-12)

    def test_symmetric_sweep_gives_symmetric_preconditioner(self, problem8, comm):
        """HPCG needs M symmetric: <M r, s> == <r, M s>."""
        mg = MultigridPreconditioner.build(
            problem8, comm, MGConfig(nlevels=2, sweep="symmetric")
        )
        rng = np.random.default_rng(0)
        r = rng.standard_normal(problem8.nlocal)
        s = rng.standard_normal(problem8.nlocal)
        np.testing.assert_allclose(mg.apply(r) @ s, r @ mg.apply(s), rtol=1e-9)

    def test_fp32_build(self, problem16, comm):
        mg = MultigridPreconditioner.build(problem16, comm, precision="fp32")
        z = mg.apply(problem16.b)
        assert z.dtype == np.float32
        assert np.isfinite(z).all()

    def test_fp32_close_to_fp64(self, problem16, comm):
        mg64 = MultigridPreconditioner.build(problem16, comm)
        mg32 = MultigridPreconditioner.build(problem16, comm, precision="fp32")
        z64 = mg64.apply(problem16.b)
        z32 = mg32.apply(problem16.b).astype(np.float64)
        rel = np.linalg.norm(z64 - z32) / np.linalg.norm(z64)
        assert rel < 1e-5

    def test_levelsched_smoother_config(self, problem16, comm):
        mg = MultigridPreconditioner.build(
            problem16, comm, MGConfig(smoother="levelsched", fused_restrict=False)
        )
        z = mg.apply(problem16.b)
        assert np.isfinite(z).all()

    def test_fused_vs_unfused_identical_cycle(self, problem16, comm):
        """Fused restriction must not change the preconditioner."""
        mg_f = MultigridPreconditioner.build(
            problem16, comm, MGConfig(fused_restrict=True)
        )
        mg_u = MultigridPreconditioner.build(
            problem16, comm, MGConfig(fused_restrict=False)
        )
        z_f = mg_f.apply(problem16.b)
        z_u = mg_u.apply(problem16.b)
        np.testing.assert_allclose(z_f, z_u, rtol=1e-12)

    def test_build_requires_divisible_dims(self, comm):
        prob = generate_problem(Subdomain.serial(12, 12, 12))  # 12 % 8 != 0
        with pytest.raises(ValueError):
            MultigridPreconditioner.build(prob, comm, MGConfig(nlevels=4))

    def test_level_dims_introspection(self, problem16, comm):
        mg = MultigridPreconditioner.build(problem16, comm)
        dims = mg.level_dims()
        assert dims[0]["nlocal"] == 4096
        assert dims[0]["num_colors"] == 8
        assert dims[-1]["nlocal"] == 8

    def test_distributed_matches_replicated_subdomains(self):
        """Each rank's V-cycle on identical data gives identical results.

        With a 2x2x2 processor grid and a symmetric global problem, the
        preconditioner output must be deterministic and consistent with
        the operator's distribution (checked via a Richardson step that
        must reduce the global residual).
        """

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            mg = MultigridPreconditioner.build(prob, comm, MGConfig(nlevels=2))
            from repro.parallel.distributed import dnorm2
            from repro.solvers import DistributedOperator

            op = DistributedOperator(prob.A, prob.halo, comm)
            x = np.zeros(prob.nlocal)
            r = prob.b - op.matvec(x)
            n0 = dnorm2(comm, r)
            for _ in range(5):
                x += mg.apply(r).astype(np.float64)
                r = prob.b - op.matvec(x)
            return dnorm2(comm, r) / n0

        ratios = run_spmd(8, fn)
        assert all(r < 0.5 for r in ratios)
        assert len(set(ratios)) == 1  # bitwise identical on all ranks
