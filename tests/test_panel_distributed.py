"""Panel-native distributed pipeline (PR 7).

Acceptance: the panel-overlapped schedule — one *wide* halo exchange
per round carrying every RHS column, hidden behind whole-panel
interior compute — must be bitwise-per-column equal to the looped
PR 6 schedule at 1, 2 and 8 SPMD ranks for every matrix format and
ladder rung; the halo message count per solve must drop ~N× (measured
counters, bytes unchanged); ``solve_panel``'s restart-boundary
collectives must be O(1) in the panel width; and the wide-exchange
loop must stay allocation-free after warmup.

Rank counts come from ``REPRO_RANKS`` (the CI distributed matrix legs
set 1, 2 and 8), defaulting to ``1,2,4`` locally.
"""

import gc
import os
import tracemalloc

import numpy as np
import pytest
from helpers_distributed import RUNG_TOLS as TOLS
from helpers_distributed import smooth_vector as smooth_local_vector

from repro.fp import DOUBLE_POLICY, MIXED_DS_POLICY
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.mg import MGConfig
from repro.parallel import SerialComm, run_spmd
from repro.parallel.distributed import (
    dnorm2_from_local,
    dnorm2_panel_from_local,
)
from repro.solvers import GMRESIRSolver
from repro.solvers.operator import DistributedOperator
from repro.sparse import to_format, to_precision
from repro.stencil import generate_problem


def spmd_rank_counts() -> list[int]:
    env = os.environ.get("REPRO_RANKS", "").strip()
    if env:
        return [int(tok) for tok in env.replace(",", " ").split()]
    return [1, 2, 4]


RANKS = spmd_rank_counts()


def run_ranks(nranks: int, fn) -> list:
    if nranks == 1:
        return [fn(SerialComm())]
    return run_spmd(nranks, fn)


def make_rhs_panel(b: np.ndarray, ncol: int) -> np.ndarray:
    B = np.empty((b.shape[0], ncol), order="F")
    for j in range(ncol):
        np.multiply(b, 1.0 + 0.5 * j, out=B[:, j])
    return B


def _solver(prob, comm, policy, **kw):
    return GMRESIRSolver(
        prob,
        comm,
        policy=policy,
        mg_config=MGConfig(nlevels=2),
        restart=10,
        **kw,
    )


class TestWideExchangeMatvecPanel:
    @pytest.mark.parametrize("nranks", RANKS)
    @pytest.mark.parametrize("fmt", ["csr", "ell", "sellcs"])
    @pytest.mark.parametrize("prec", ["fp64", "fp32", "fp16"])
    def test_panel_bitwise_equals_per_column_matvec(self, nranks, fmt, prec):
        """``matvec_panel`` behind one wide exchange == looping
        ``matvec`` (its own per-column exchanges), bitwise, for every
        format and rung."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            A = to_precision(to_format(prob.A, fmt), prec)
            op = DistributedOperator(A, prob.halo, comm, overlap=True)
            x = smooth_local_vector(sub).astype(A.dtype)
            X = np.empty((x.shape[0], 4), dtype=A.dtype, order="F")
            for j in range(4):
                X[:, j] = (1 + j) * x
            Y = np.array(op.matvec_panel(X), copy=True)
            ok = True
            for j in range(4):
                ok = ok and np.array_equal(Y[:, j], op.matvec(X[:, j].copy()))
            return bool(ok)

        assert all(run_ranks(nranks, fn))

    @pytest.mark.parametrize("nranks", RANKS)
    def test_overlapped_equals_sequential_panel(self, nranks):
        """The overlapped panel schedule == the non-overlapped one
        (full wide exchange, then ``spmv_multi``), bitwise at fp64."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            ov = DistributedOperator(prob.A, prob.halo, comm, overlap=True)
            no = DistributedOperator(prob.A, prob.halo, comm, overlap=False)
            X = make_rhs_panel(smooth_local_vector(sub), 4)
            Y_ov = np.array(ov.matvec_panel(X), copy=True)
            Y_no = np.array(no.matvec_panel(X), copy=True)
            return bool(np.array_equal(Y_ov, Y_no))

        assert all(run_ranks(nranks, fn))


class TestPanelOverlapSolverParity:
    @pytest.mark.parametrize("nranks", RANKS)
    @pytest.mark.parametrize("fmt", ["csr", "ell", "sellcs"])
    @pytest.mark.parametrize("policy", [DOUBLE_POLICY, MIXED_DS_POLICY])
    def test_panel_overlap_bitwise_vs_looped_schedule(
        self, nranks, fmt, policy
    ):
        """End-to-end ``solve_panel`` == the looped per-column solve,
        bitwise, on *both* the panel-overlapped and the non-overlapped
        schedule, for every format × rung × rank count.  (The two
        schedules are not compared to each other: SELL-C-σ's
        color-partitioned overlap layout legitimately reorders the
        smoother's accumulation versus the plain sweep.)"""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            ncol = 4
            B = make_rhs_panel(prob.b, ncol)
            kw = {"matrix_format": fmt}
            ok = True
            rtol, atol = TOLS["fp16" if policy is MIXED_DS_POLICY else "fp64"]
            for overlap in (True, False):
                pan = _solver(prob, comm, policy, overlap=overlap, **kw)
                X, _ = pan.solve_panel(B, tol=0.0, maxiter=10)
                for j in range(ncol):
                    seq = _solver(prob, comm, policy, overlap=overlap, **kw)
                    xj, _ = seq.solve(B[:, j].copy(), tol=0.0, maxiter=10)
                    ok = ok and np.array_equal(X[:, j], xj)
                    ok = ok and np.allclose(X[:, j], xj, rtol=rtol, atol=atol)
            return ok

        assert all(run_ranks(nranks, fn))


class TestBatchedCollectives:
    def test_panel_norm_is_one_allreduce(self):
        """``dnorm2_panel_from_local`` reduces the whole N-vector of
        local squares in a single all-reduce, bitwise-equal per entry
        to the per-column scalar chain."""

        def fn(comm):
            locals_sq = (1.0 + comm.rank) * np.arange(1.0, 9.0)
            before = comm.stats.allreduces
            batched = dnorm2_panel_from_local(comm, locals_sq)
            calls = comm.stats.allreduces - before
            looped = np.array(
                [dnorm2_from_local(comm, v) for v in locals_sq]
            )
            return calls, bool(np.array_equal(batched, looped))

        for calls, bitwise in run_spmd(3, fn):
            assert calls == 1
            assert bitwise

    def test_panel_norm_explicit_algorithms(self):
        """The software-collective routing stays available and agrees
        with the rendezvous default to fp64 rounding."""
        from repro.parallel.collectives import ALLREDUCE_ALGORITHMS

        def fn(comm):
            locals_sq = (1.0 + comm.rank) * np.arange(1.0, 5.0)
            ref = dnorm2_panel_from_local(comm, locals_sq)
            ok = True
            for alg in ALLREDUCE_ALGORITHMS:
                got = dnorm2_panel_from_local(comm, locals_sq, algorithm=alg)
                ok = ok and np.allclose(got, ref, rtol=1e-13)
            return ok

        assert all(run_spmd(4, fn))

    def test_restart_boundary_collectives_scale_affinely(self):
        """Total all-reduce count is affine in the panel width: each
        extra column adds only its own inner-loop reductions — the
        restart-boundary checks batch into width-independent calls."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            counts = {}
            for ncol in (2, 4, 8):
                B = make_rhs_panel(prob.b, ncol)
                solver = _solver(prob, comm, DOUBLE_POLICY)
                comm.stats.reset()
                solver.solve_panel(B, tol=0.0, maxiter=10)
                counts[ncol] = comm.stats.allreduces
            return counts

        counts = run_spmd(2, fn)[0]
        per_column = (counts[4] - counts[2]) / 2
        assert counts[8] - counts[4] == 4 * per_column
        # The width-independent share (rho0, restart-boundary norms,
        # final checks ride single batched calls) is real and positive.
        assert counts[2] - 2 * per_column > 0


class TestHaloMessageReduction:
    def test_wide_exchange_cuts_messages_n_times(self):
        """A panel solve posts exactly 1/N the halo messages of the
        looped per-column schedule while shipping identical wire bytes
        in the same number of exchange rounds per column."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            ncol = 4
            B = make_rhs_panel(prob.b, ncol)
            pan = _solver(prob, comm, MIXED_DS_POLICY, overlap=True)
            pan.reset_halo_counters()
            pan.solve_panel(B, tol=0.0, maxiter=10)
            panel = (
                pan.halo_message_count(),
                pan.halo_sent_bytes(),
                pan.halo_exchange_count(),
            )
            looped = [0, 0, 0]
            for j in range(ncol):
                seq = _solver(prob, comm, MIXED_DS_POLICY, overlap=True)
                seq.reset_halo_counters()
                seq.solve(B[:, j].copy(), tol=0.0, maxiter=10)
                looped[0] += seq.halo_message_count()
                looped[1] += seq.halo_sent_bytes()
                looped[2] += seq.halo_exchange_count()
            return ncol, panel, tuple(looped)

        for ncol, panel, looped in run_spmd(2, fn):
            messages, nbytes, exchanges = panel
            assert messages > 0
            assert messages * ncol == looped[0]
            assert nbytes == looped[1]  # bytes unchanged, coalesced
            assert exchanges * ncol == looped[2]


class TestWideExchangeAllocations:
    def test_panel_halo_loop_no_vector_growth(self):
        """tracemalloc across a 2-rank panel-overlapped solve: the
        wide-exchange loop (panel packing, transport, ghost-tail
        landings) allocates nothing vector-sized after warmup."""
        vector_bytes_8 = 512 * 8

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            solver = _solver(prob, comm, MIXED_DS_POLICY, overlap=True)
            B = make_rhs_panel(prob.b, 4)
            solver.solve_panel(B, tol=0.0, maxiter=10)  # warmup
            misses0 = solver.ws.misses
            comm.barrier()
            snap1 = None
            if comm.rank == 0:
                gc.collect()
                tracemalloc.start(10)
                snap1 = tracemalloc.take_snapshot()
            comm.barrier()
            solver.solve_panel(B, tol=0.0, maxiter=10)
            comm.barrier()
            if comm.rank != 0:
                return solver.ws.misses - misses0, []
            snap2 = tracemalloc.take_snapshot()
            tracemalloc.stop()
            diff = snap2.compare_to(snap1, "traceback")
            offenders = [
                f"{d.size_diff / 1024:.1f} KB (+{d.count_diff}) at "
                + " <- ".join(d.traceback.format()[-2:])
                for d in diff
                if d.size_diff > 4 * vector_bytes_8
            ]
            return solver.ws.misses - misses0, offenders

        for dmiss, offenders in run_spmd(2, fn):
            assert dmiss == 0, "panel loop allocated new arena buffers"
            assert not offenders, (
                "wide-exchange loop grew vector-sized allocation sites:\n"
                + "\n".join(offenders)
            )


class TestMessageModelAndGate:
    def test_cycle_halo_messages_panel_independent(self):
        from repro.perf.network import halo_message_counts
        from repro.perf.scaling import ScalingModel

        model = ScalingModel()
        per_round = halo_message_counts(model.level_local_dims(0))["messages"]
        base = model.cycle_halo_messages()
        assert base == model.cycle_halo_exchanges() * per_round
        # The wide exchange coalesces columns: the cycle count does not
        # scale with the panel, so per-RHS messages drop exactly N×.
        assert model.cycle_halo_messages(panel=8) == base
        assert model.cycle_halo_messages(panel=8) / 8 == base / 8
        # Bytes, by contrast, do scale with the panel (same ghosts per
        # column on the wire).
        policy = MIXED_DS_POLICY
        assert model.cycle_traffic_bytes(policy, panel=8)["halo"] == (
            8 * model.cycle_traffic_bytes(policy, panel=1)["halo"]
        )

    def test_benchmark_record_carries_message_metric(self):
        from repro.core.benchmark import DistributedPhaseMetrics

        rec = DistributedPhaseMetrics(
            grid=(2, 1, 1),
            nranks=2,
            wall_seconds=1.0,
            solves=1,
            iterations=10,
            seconds_by_motif={},
            send_bytes=0,
            allreduce_bytes=0,
            comm_bytes_per_iteration=0.0,
            model_bytes_per_cycle=0.0,
            halo_messages_per_rhs=123.0,
            panel_halo_messages=7,
            panel_halo_bytes=512,
            panel_halo_seconds=0.25,
        ).to_dict()
        assert rec["halo_messages_per_rhs"] == 123.0
        assert rec["panel_halo_messages"] == 7
        assert rec["panel_halo_bytes"] == 512

    def test_gate_fires_on_message_regression(self):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "check_regression",
            pathlib.Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "check_regression.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        baseline = {"halo_messages_per_rhs": 100.0}
        failures, _ = mod.compare(
            {"halo_messages_per_rhs": 101.0}, baseline, 0.2
        )
        assert not failures  # +1% rides under the 2% deterministic gate
        failures, _ = mod.compare(
            {"halo_messages_per_rhs": 400.0}, baseline, 0.2
        )
        assert any("halo_messages_per_rhs" in f for f in failures)

    def test_network_fit_separates_latency_from_panel_sample(self):
        """The batched segment's message-lean window gives the
        alpha-beta fit the second mix it needs to resolve a positive
        per-message latency out of one benchmark record."""
        from repro.perf.calibrate import (
            fit_alpha_beta,
            halo_samples_from_records,
        )

        rec = {
            "send_messages": 1000,
            "send_bytes": 1.0e6,
            "halo_seconds": 0.5,
            "panel_halo_messages": 125,
            "panel_halo_bytes": 1.0e6,
            "panel_halo_seconds": 0.2,
        }
        samples = halo_samples_from_records([rec])
        assert len(samples) == 2
        fit = fit_alpha_beta(samples)
        assert fit.nsamples == 2
        assert fit.alpha > 0 and fit.beta > 0
        assert fit.residual == pytest.approx(0.0, abs=1e-12)

    def test_records_without_panel_counters_keep_one_sample(self):
        from repro.perf.calibrate import halo_samples_from_records

        rec = {"send_messages": 10, "send_bytes": 100.0, "halo_seconds": 0.1}
        assert len(halo_samples_from_records([rec])) == 1
