"""Unit tests for the 27-point problem generator."""

import numpy as np
import pytest

from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.sparse.stats import (
    is_numerically_symmetric,
    is_structurally_symmetric,
    matrix_stats,
)
from repro.stencil import ProblemSpec, generate_problem, stencil_apply_dense
from repro.core.flops import stencil27_nnz


class TestSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ProblemSpec(kind="weird")

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            ProblemSpec(nonsym_delta=1.5)


class TestSymmetricMatrix:
    def test_diag_26_offdiag_minus1(self, problem16):
        s = matrix_stats(problem16.A)
        assert s.diag_min == s.diag_max == 26.0
        vals = problem16.A.vals
        off = vals[(vals != 0) & (vals != 26.0)]
        assert np.all(off == -1.0)

    def test_interior_rows_27_nnz(self, problem16):
        s = matrix_stats(problem16.A)
        assert s.max_row_nnz == 27
        assert s.min_row_nnz == 8  # corner: 2x2x2 neighborhood

    def test_weakly_diagonally_dominant(self, problem16):
        assert matrix_stats(problem16.A).weakly_diagonally_dominant

    def test_interior_row_sums_zero(self, problem16):
        """Interior rows: 26 - 26*1 = 0 (the Poisson-like null row sum)."""
        b = problem16.b
        interior = ~problem16.sub.local.boundary_mask()
        np.testing.assert_allclose(b[interior], 0.0, atol=1e-14)

    def test_boundary_rhs_positive(self, problem16):
        b = problem16.b
        boundary = problem16.sub.local.boundary_mask()
        assert np.all(b[boundary] > 0)

    def test_symmetry(self, problem16):
        assert is_structurally_symmetric(problem16.A)
        assert is_numerically_symmetric(problem16.A)

    def test_exact_solution_is_ones(self, problem16):
        np.testing.assert_allclose(
            problem16.A.spmv(np.ones(problem16.nlocal)), problem16.b
        )

    def test_nnz_formula(self, problem16):
        assert problem16.A.nnz == stencil27_nnz(16, 16, 16)

    def test_nnz_formula_rect(self, problem_rect):
        assert problem_rect.A.nnz == stencil27_nnz(5, 7, 4)

    def test_spmv_matches_matrix_free(self, problem_rect, rng):
        x = rng.standard_normal(problem_rect.nlocal)
        y1 = problem_rect.A.spmv(x)
        y2 = stencil_apply_dense(problem_rect.sub.global_grid, x)
        # atol floor scaled to the output: an individual entry may be a
        # near-complete cancellation, where elementwise rtol alone is
        # unsatisfiable at any summation order.
        np.testing.assert_allclose(
            y1, y2, rtol=1e-13, atol=1e-13 * np.abs(y2).max()
        )

    def test_spd(self, problem8):
        """The symmetric matrix is positive definite (CG's requirement)."""
        dense = problem8.A.to_dense()[:, : problem8.nlocal]
        eigs = np.linalg.eigvalsh(dense)
        assert eigs.min() > 0


class TestNonsymmetricMatrix:
    def test_not_symmetric(self, problem_nonsym16):
        assert is_structurally_symmetric(problem_nonsym16.A)  # same pattern
        assert not is_numerically_symmetric(problem_nonsym16.A, tol=1e-12)

    def test_still_weakly_dominant(self, problem_nonsym16):
        assert matrix_stats(problem_nonsym16.A).weakly_diagonally_dominant

    def test_lower_upper_values(self, problem_nonsym16):
        vals = problem_nonsym16.A.vals
        off = vals[(vals != 0) & (vals != 26.0)]
        assert set(np.round(np.unique(off), 10)) == {-1.3, -0.7}

    def test_matches_matrix_free(self, rng):
        spec = ProblemSpec(kind="nonsymmetric", nonsym_delta=0.25)
        prob = generate_problem(Subdomain.serial(6, 5, 4), spec=spec)
        x = rng.standard_normal(prob.nlocal)
        np.testing.assert_allclose(
            prob.A.spmv(x),
            stencil_apply_dense(prob.sub.global_grid, x, spec=spec),
            rtol=1e-13,
        )


class TestDistributedGeneration:
    def test_local_blocks_tile_serial_matrix(self, rng):
        """Distributed row blocks must equal the serial matrix's rows."""
        pg = ProcessGrid(2, 2, 2)
        serial = generate_problem(Subdomain.serial(8, 8, 8))
        x_serial = rng.standard_normal(512)
        y_serial = serial.A.spmv(x_serial)
        x3d = x_serial  # index by global linear id

        for rank in range(8):
            sub = Subdomain(BoxGrid(4, 4, 4), pg, rank)
            prob = generate_problem(sub)
            # Build the full local vector (owned + ghost) from x_serial.
            n = prob.nlocal
            xfull = np.zeros(prob.A.ncols)
            gx, gy, gz = sub.global_coords()
            gids = sub.global_grid.linear_index(gx, gy, gz)
            xfull[:n] = x3d[gids]
            # Fill ghosts by enumerating each direction block.
            for d in prob.halo.directions:
                nb = prob.halo.neighbor_ranks[d]
                nb_sub = Subdomain(BoxGrid(4, 4, 4), pg, nb)
                send_idx = prob.halo.send_indices[
                    d
                ]  # what *we* send; neighbor sends its opposite list
                from repro.geometry.halo import opposite_direction

                nb_halo_idx = generate_problem(nb_sub).halo.send_indices[
                    opposite_direction(d)
                ]
                ngx, ngy, ngz = nb_sub.global_coords()
                nb_gids = nb_sub.global_grid.linear_index(ngx, ngy, ngz)
                off = prob.halo.ghost_offsets[d]
                cnt = prob.halo.ghost_counts[d]
                xfull[n + off : n + off + cnt] = x3d[nb_gids[nb_halo_idx]]
            y_local = prob.A.spmv(xfull)
            np.testing.assert_allclose(y_local, y_serial[gids], rtol=1e-13)

    def test_rhs_globally_consistent(self):
        pg = ProcessGrid(2, 1, 1)
        serial = generate_problem(Subdomain.serial(8, 4, 4))
        for rank in range(2):
            sub = Subdomain(BoxGrid(4, 4, 4), pg, rank)
            prob = generate_problem(sub)
            gx, gy, gz = sub.global_coords()
            gids = sub.global_grid.linear_index(gx, gy, gz)
            np.testing.assert_allclose(prob.b, serial.b[gids])

    def test_dtype_option(self):
        prob = generate_problem(Subdomain.serial(4), dtype="fp32")
        assert prob.A.vals.dtype == np.float32
