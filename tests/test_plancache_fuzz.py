"""Plan-cache corruption fuzzing: damaged files never raise.

The cache's failure policy — a corrupted file is a logged warning plus
a miss, and the caller falls back to untuned dispatch — is fuzzed here
beyond the targeted corruption cases in ``test_tune_cache.py``:
truncations at every prefix length, random byte mutations, torn
concurrent writes, wrong schema versions, and non-UTF-8 garbage.  The
invariant under test is blunt: ``load`` returns a plan or ``None`` and
``store`` heals the file; neither ever propagates an exception.
"""

import json
import logging
import os

import numpy as np
import pytest

from repro.tune import DispatchPlan, PlanCache, PlanChoice
from repro.tune.cache import CACHE_VERSION


def make_plan(op_fp="op-a", mach_fp="mach-a", seconds=1.0):
    return DispatchPlan(
        operator_fingerprint=op_fp,
        machine_fingerprint=mach_fp,
        baseline_format="ell",
        baseline_params=(),
        baseline_fusion=True,
        baseline_backend="numpy",
        entries={
            ("spmv", "fp64"): PlanChoice(
                fmt="ell",
                fmt_params=(),
                backend="numpy",
                fused=True,
                seconds=seconds,
                baseline_seconds=2.0,
            )
        },
    )


def valid_cache_bytes(tmp_path) -> bytes:
    path = str(tmp_path / "seed_cache.json")
    PlanCache(path).store(make_plan())
    with open(path, "rb") as fh:
        return fh.read()


def load_never_raises(path: str):
    """The blunt invariant: a plan, or None — never an exception."""
    cache = PlanCache(path)
    result = cache.load("op-a", "mach-a")
    assert result is None or isinstance(result, DispatchPlan)
    return result, cache


class TestTruncation:
    def test_every_prefix_length_is_safe(self, tmp_path):
        """Cut the file at every byte offset (a crashed writer without
        the atomic rename, a partial copy, a full disk)."""
        raw = valid_cache_bytes(tmp_path)
        path = str(tmp_path / "cache.json")
        for cut in range(len(raw) + 1):
            with open(path, "wb") as fh:
                fh.write(raw[:cut])
            result, cache = load_never_raises(path)
            if cut == len(raw):
                assert result is not None  # intact file round-trips
            else:
                assert result is None
                assert cache.corrupt >= 1

    def test_truncated_file_heals_on_store(self, tmp_path):
        raw = valid_cache_bytes(tmp_path)
        path = str(tmp_path / "cache.json")
        with open(path, "wb") as fh:
            fh.write(raw[: len(raw) // 2])
        cache = PlanCache(path)
        cache.store(make_plan(op_fp="op-b"))  # must not raise
        assert PlanCache(path).load("op-b", "mach-a") is not None


class TestRandomMutation:
    def test_byte_flips_never_raise(self, tmp_path):
        raw = bytearray(valid_cache_bytes(tmp_path))
        path = str(tmp_path / "cache.json")
        rng = np.random.default_rng(20260808)
        for _ in range(64):
            bad = bytearray(raw)
            for _ in range(int(rng.integers(1, 4))):
                pos = int(rng.integers(len(bad)))
                bad[pos] ^= 1 << int(rng.integers(8))
            with open(path, "wb") as fh:
                fh.write(bytes(bad))
            load_never_raises(path)

    def test_random_slice_deletions_never_raise(self, tmp_path):
        raw = valid_cache_bytes(tmp_path)
        path = str(tmp_path / "cache.json")
        rng = np.random.default_rng(7)
        for _ in range(32):
            a = int(rng.integers(len(raw)))
            b = int(rng.integers(a, len(raw) + 1))
            with open(path, "wb") as fh:
                fh.write(raw[:a] + raw[b:])
            load_never_raises(path)

    def test_non_utf8_garbage_warns_and_misses(self, tmp_path, caplog):
        path = str(tmp_path / "cache.json")
        with open(path, "wb") as fh:
            fh.write(bytes(range(256)) * 4)  # invalid UTF-8
        with caplog.at_level(logging.WARNING):
            result, cache = load_never_raises(path)
        assert result is None
        assert cache.corrupt == 1
        assert "falling back to untuned dispatch" in caplog.text


class TestTornWrites:
    def test_interleaved_writer_fragments(self, tmp_path):
        """Two writers' bytes interleaved mid-file (the failure the
        atomic rename + flock exist to prevent, simulated directly)."""
        raw_a = valid_cache_bytes(tmp_path)
        raw_b = valid_cache_bytes(tmp_path)  # identical layout
        path = str(tmp_path / "cache.json")
        torn = raw_a[: len(raw_a) // 2] + raw_b[len(raw_b) // 3 :]
        with open(path, "wb") as fh:
            fh.write(torn)
        result, cache = load_never_raises(path)
        assert result is None
        assert cache.corrupt == 1

    def test_valid_json_with_trailing_fragment(self, tmp_path):
        raw = valid_cache_bytes(tmp_path)
        path = str(tmp_path / "cache.json")
        with open(path, "wb") as fh:
            fh.write(raw + b'{"version":')
        result, _ = load_never_raises(path)
        assert result is None  # trailing garbage breaks the document


class TestSchemaDamage:
    @pytest.mark.parametrize(
        "payload",
        [
            {"version": CACHE_VERSION + 1, "plans": {}},  # future version
            {"version": "1", "plans": {}},  # stringly-typed version
            {"version": CACHE_VERSION, "plans": []},  # wrong container
            {"plans": {}},  # missing version
            [],  # not an object
            "just a string",
            42,
            None,
        ],
    )
    def test_unrecognized_layout_misses(self, tmp_path, payload):
        path = str(tmp_path / "cache.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        result, cache = load_never_raises(path)
        assert result is None
        assert cache.corrupt == 1

    def test_entry_value_garbage_misses(self, tmp_path):
        raw = valid_cache_bytes(tmp_path)
        doc = json.loads(raw)
        key = next(iter(doc["plans"]))
        for bad in (None, 7, "x", [], {"entries": "nope"}):
            doc["plans"][key] = bad
            path = str(tmp_path / "cache.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            result, cache = load_never_raises(path)
            assert result is None
            assert cache.misses == 1

    def test_stats_counters_survive_fuzz(self, tmp_path):
        path = str(tmp_path / "cache.json")
        with open(path, "w") as fh:
            fh.write("not json at all")
        cache = PlanCache(path)
        for _ in range(3):
            assert cache.load("op-a", "mach-a") is None
        stats = cache.stats()
        assert stats["corrupt"] == 3
        assert stats["misses"] == 3
        # A corrupted cache never leaves stray temp files behind.
        stray = [
            f
            for f in os.listdir(tmp_path)
            if f.startswith(".") or f.endswith(".tmp")
        ]
        assert stray == []
