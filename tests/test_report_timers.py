"""Tests for report formatting and motif timers."""

import time

import pytest

from repro.core import BenchmarkConfig, format_report, run_benchmark
from repro.util.timers import MOTIFS, MotifTimers, NullTimers


class TestMotifTimers:
    def test_section_accumulates(self):
        t = MotifTimers()
        with t.section("gs"):
            time.sleep(0.01)
        with t.section("gs"):
            pass
        assert t.seconds["gs"] >= 0.01
        assert t.calls["gs"] == 2

    def test_total(self):
        t = MotifTimers()
        with t.section("gs"):
            pass
        with t.section("spmv"):
            pass
        assert t.total == pytest.approx(t.seconds["gs"] + t.seconds["spmv"])

    def test_breakdown_zero_filled(self):
        t = MotifTimers()
        with t.section("ortho"):
            pass
        b = t.breakdown()
        assert set(b) == set(MOTIFS)
        assert b["gs"] == 0.0

    def test_fractions_sum_to_one(self):
        t = MotifTimers()
        with t.section("gs"):
            time.sleep(0.002)
        with t.section("spmv"):
            time.sleep(0.002)
        assert sum(t.fractions().values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert sum(MotifTimers().fractions().values()) == 0.0

    def test_merge(self):
        a, b = MotifTimers(), MotifTimers()
        with a.section("gs"):
            pass
        with b.section("gs"):
            pass
        with b.section("dot"):
            pass
        a.merge(b)
        assert a.calls["gs"] == 2
        assert a.calls["dot"] == 1

    def test_reset(self):
        t = MotifTimers()
        with t.section("gs"):
            pass
        t.reset()
        assert t.total == 0.0

    def test_exception_still_recorded(self):
        t = MotifTimers()
        with pytest.raises(ValueError):
            with t.section("gs"):
                raise ValueError
        assert t.calls["gs"] == 1

    def test_null_timers_interface(self):
        t = NullTimers()
        with t.section("anything"):
            pass
        assert t.total == 0.0
        assert sum(t.breakdown().values()) == 0.0
        t.merge(MotifTimers())
        t.reset()


class TestReportVariants:
    @pytest.fixture(scope="class")
    def fullscale_result(self):
        return run_benchmark(
            BenchmarkConfig(
                local_nx=16,
                nranks=1,
                validation_mode="fullscale",
                validation_max_iters=20,
                max_iters_per_solve=8,
            )
        )

    def test_fullscale_report_mentions_target(self, fullscale_result):
        text = format_report(fullscale_result)
        assert "fullscale" in text
        assert "target residual" in text

    def test_reference_impl_report(self):
        res = run_benchmark(
            BenchmarkConfig(
                local_nx=16,
                nranks=1,
                impl="reference",
                validation_max_iters=60,
                max_iters_per_solve=5,
            )
        )
        text = format_report(res)
        assert "reference" in text
        assert "csr" in text

    def test_report_includes_all_motif_lines(self, fullscale_result):
        text = format_report(fullscale_result)
        for motif in ("gs", "ortho", "spmv", "restrict"):
            assert motif in text

    def test_penalty_appears_in_rating(self, fullscale_result):
        text = format_report(fullscale_result)
        assert "penalty" in text
