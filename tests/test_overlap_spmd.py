"""Overlap correctness on the thread-SPMD runtime.

Acceptance (ISSUE 3): the overlapped interior/boundary SpMV is
bitwise-equal (fp64) / tolerance-equal (fp16/fp32) to the
non-overlapped path at 1, 2, and 8 SPMD ranks, and the distributed
halo loop is allocation-free after warmup.

Rank counts come from the ``REPRO_RANKS`` environment variable (a
single count or a comma-separated list; the CI distributed matrix legs
set 1, 2 and 8), defaulting to ``1,2,4`` for local runs.
"""

import os

import numpy as np
import pytest
from helpers_distributed import RUNG_TOLS as TOLS
from helpers_distributed import smooth_vector as smooth_local_vector

from repro.fp import MIXED_DS_POLICY
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.mg import MGConfig
from repro.parallel import SerialComm, run_spmd
from repro.solvers import GMRESIRSolver
from repro.solvers.operator import DistributedOperator
from repro.sparse import to_format, to_precision
from repro.stencil import generate_problem


def spmd_rank_counts() -> list[int]:
    """Rank counts under test (``REPRO_RANKS`` env override)."""
    env = os.environ.get("REPRO_RANKS", "").strip()
    if env:
        return [int(tok) for tok in env.replace(",", " ").split()]
    return [1, 2, 4]


RANKS = spmd_rank_counts()


def run_ranks(nranks: int, fn) -> list:
    """Run ``fn(comm)`` on the SPMD runtime (serial comm at p=1)."""
    if nranks == 1:
        return [fn(SerialComm())]
    return run_spmd(nranks, fn)


class TestOverlappedSpMV:
    @pytest.mark.parametrize("nranks", RANKS)
    def test_fp64_bitwise_equal_to_sequential(self, nranks):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            op = DistributedOperator(prob.A, prob.halo, comm, overlap=True)
            x = smooth_local_vector(sub)
            return bool(
                np.array_equal(op.matvec_overlapped(x), op.matvec_sequential(x))
            )

        assert all(run_ranks(nranks, fn))

    @pytest.mark.parametrize("nranks", RANKS)
    @pytest.mark.parametrize("fmt", ["csr", "ell", "sellcs"])
    @pytest.mark.parametrize("prec", ["fp64", "fp32", "fp16"])
    def test_cross_rank_parity_vs_serial_reference(self, nranks, fmt, prec):
        """Partitioned overlapped SpMV at p ranks == serial fp64 SpMV
        on the assembled global problem, to rung tolerance — for every
        format and every ladder rung."""
        pg = ProcessGrid.from_size(nranks)
        local = (4, 4, 4)

        def fn(comm):
            sub = Subdomain(BoxGrid(*local), pg, comm.rank)
            prob = generate_problem(sub)
            A = to_precision(to_format(prob.A, fmt), prec)
            op = DistributedOperator(A, prob.halo, comm, overlap=True)
            x = smooth_local_vector(sub).astype(A.dtype)
            y = op.matvec(x)  # overlapped schedule
            gx, gy, gz = sub.global_coords()
            gids = sub.global_grid.linear_index(gx, gy, gz)
            return np.asarray(y, dtype=np.float64), gids

        results = run_ranks(nranks, fn)

        serial = generate_problem(
            Subdomain.serial(
                local[0] * pg.px, local[1] * pg.py, local[2] * pg.pz
            )
        )
        ys = serial.A.spmv(smooth_local_vector(serial.sub))
        rtol, atol = TOLS[prec]
        for y, gids in results:
            np.testing.assert_allclose(y, ys[gids], rtol=rtol, atol=atol)

    @pytest.mark.parametrize("nranks", RANKS)
    def test_overlap_matches_row_subset_split(self, nranks):
        """The partitioned overlap agrees with the independent
        ``spmv_rows``-based split implementation."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            op = DistributedOperator(prob.A, prob.halo, comm, overlap=True)
            x = smooth_local_vector(sub)
            a = op.matvec_overlapped(x)
            b = op.matvec_split(x)
            return bool(np.allclose(a, b, rtol=1e-14))

        assert all(run_ranks(nranks, fn))


class TestOverlappedSolver:
    @pytest.mark.parametrize("nranks", RANKS)
    def test_solver_bitwise_equal_with_and_without_overlap(self, nranks):
        """End-to-end GMRES-IR: the overlap changes communication
        scheduling only, so the mxp solve is bitwise-reproducible."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            x_ov, st_ov = GMRESIRSolver(
                prob,
                comm,
                policy=MIXED_DS_POLICY,
                mg_config=MGConfig(nlevels=2),
                overlap=True,
            ).solve(prob.b, tol=1e-9, maxiter=300)
            x_no, st_no = GMRESIRSolver(
                prob,
                comm,
                policy=MIXED_DS_POLICY,
                mg_config=MGConfig(nlevels=2),
                overlap=False,
            ).solve(prob.b, tol=1e-9, maxiter=300)
            return (
                st_ov.converged,
                st_no.converged,
                st_ov.iterations == st_no.iterations,
                bool(np.array_equal(x_ov, x_no)),
            )

        for rec in run_ranks(nranks, fn):
            assert rec == (True, True, True, True)


class TestDistributedHaloAllocations:
    @pytest.mark.parametrize("nranks", RANKS)
    def test_workspace_arena_stable_after_warmup(self, nranks):
        """The overlapped distributed loop allocates no new arena
        buffers after the warmup solve — at every rank count."""

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            solver = GMRESIRSolver(
                prob,
                comm,
                policy=MIXED_DS_POLICY,
                mg_config=MGConfig(nlevels=2),
                overlap=True,
            )
            solver.solve(prob.b, tol=0.0, maxiter=10)  # warmup
            misses0 = solver.ws.misses
            hits0 = solver.ws.hits
            solver.solve(prob.b, tol=0.0, maxiter=32)
            return solver.ws.misses - misses0, solver.ws.hits - hits0

        for dmiss, dhits in run_ranks(nranks, fn):
            assert dmiss == 0
            assert dhits > 0

    def test_transport_buffers_recycle(self):
        """recv_into returns message buffers to the channel free-list,
        so a steady exchange loop stops allocating transport buffers."""

        def fn(comm):
            if comm.rank == 0:
                payload = np.arange(64.0)
                for _ in range(5):
                    comm.send(payload, 1, tag=7)
                    comm.recv_into(1, tag=8, out=payload[:8])
                return True
            out = np.empty(64)
            seen = set()
            for _ in range(5):
                comm.recv_into(0, tag=7, out=out)
                comm.send(out[:8], 0, tag=8)
                seen.add(out[0])
            return len(seen)

        assert run_spmd(2, fn)[1] == 1  # same data every round

    def test_freelists_keyed_per_message_species(self):
        """fp64 and fp32 messages interleaved on the same tag (the
        outer and inner operators share halo tags) each recycle their
        own buffer instead of evicting each other's, and the payloads
        stay intact."""

        def fn(comm):
            peer = 1 - comm.rank
            a64 = np.full(32, float(comm.rank))
            a32 = np.full(8, comm.rank, dtype=np.float32)
            o64 = np.empty(32)
            o32 = np.empty(8, dtype=np.float32)
            ok = True
            for _ in range(4):
                comm.send(a64, peer, tag=5)
                comm.send(a32, peer, tag=5)
                comm.recv_into(peer, 5, o64)
                comm.recv_into(peer, 5, o32)
                ok &= o64[0] == peer and o32[0] == peer
                ok &= o64.dtype == np.float64 and o32.dtype == np.float32
            return ok

        assert all(run_spmd(2, fn))

    def test_recv_into_size_mismatch_raises(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.ones(4), 1, tag=3)
                return True
            out = np.empty(8)
            try:
                comm.recv_into(0, tag=3, out=out)
            except RuntimeError as exc:
                return "mismatch" in str(exc)
            return False

        assert all(run_spmd(2, fn))
