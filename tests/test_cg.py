"""Tests for the preconditioned CG solver (HPCG's Algorithm 1)."""

import numpy as np
import pytest

from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.mg import MGConfig
from repro.parallel import run_spmd
from repro.solvers import PCGSolver, pcg_solve
from repro.stencil import generate_problem


class TestPCG:
    def test_converges(self, problem16, comm):
        x, stats = pcg_solve(problem16, comm, tol=1e-9, maxiter=500)
        assert stats.converged
        assert np.abs(x - 1.0).max() < 1e-6

    def test_residual_history_monotonic_envelope(self, problem16, comm):
        _, stats = pcg_solve(problem16, comm, tol=1e-9, maxiter=500)
        h = np.array(stats.residual_history)
        assert h[-1] < 1e-9
        # CG residuals may oscillate but the envelope decreases.
        assert np.min(h) == h[-1]

    def test_iteration_cap(self, problem16, comm):
        _, stats = pcg_solve(problem16, comm, tol=1e-30, maxiter=9)
        assert stats.iterations == 9
        assert not stats.converged

    def test_zero_rhs(self, problem16, comm):
        solver = PCGSolver(problem16, comm)
        x, stats = solver.solve(np.zeros(problem16.nlocal))
        assert stats.converged
        np.testing.assert_array_equal(x, 0.0)

    def test_uses_symmetric_smoother_by_default(self, problem16, comm):
        solver = PCGSolver(problem16, comm)
        assert solver.mg_config.sweep == "symmetric"

    def test_comparable_to_gmres_iterations(self, problem16, comm):
        """On the SPD problem CG and GMRES should converge similarly."""
        from repro.solvers import gmres_solve

        _, cg_stats = pcg_solve(problem16, comm, tol=1e-9, maxiter=500)
        _, gm_stats = gmres_solve(problem16, comm, tol=1e-9, maxiter=500)
        assert cg_stats.iterations <= 2 * gm_stats.iterations
        assert gm_stats.iterations <= 2 * cg_stats.iterations

    def test_distributed_pcg(self):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            x, stats = pcg_solve(
                prob, comm, tol=1e-9, maxiter=500,
                mg_config=MGConfig(nlevels=2, sweep="symmetric"),
            )
            return stats.converged, float(np.abs(x - 1.0).max()), stats.iterations

        results = run_spmd(8, fn)
        assert all(r[0] for r in results)
        assert all(r[1] < 1e-5 for r in results)
        assert len({r[2] for r in results}) == 1

    def test_nonzero_initial_guess(self, problem16, comm):
        solver = PCGSolver(problem16, comm)
        x0 = np.full(problem16.nlocal, 2.0)
        x, stats = solver.solve(problem16.b, x0=x0, tol=1e-9, maxiter=500)
        assert stats.converged
        assert np.abs(x - 1.0).max() < 1e-6
