"""Tests: ortho-method latency model and the time-budgeted phase."""

import pytest

from repro.core import BenchmarkConfig, run_benchmark
from repro.perf.scaling import ScalingModel


class TestOrthoMethodModel:
    """§2: CGS2 'batches the inner product into a transposed GEMV
    operation and thus reduces the effective latency'."""

    def test_mgs_catastrophic_at_scale(self):
        cgs2 = ScalingModel(ortho_method="cgs2")
        mgs = ScalingModel(ortho_method="mgs")
        nranks = 9408 * 8
        t_cgs2 = cgs2.cycle_profile("mxp", nranks).seconds_by_motif["ortho"]
        t_mgs = mgs.cycle_profile("mxp", nranks).seconds_by_motif["ortho"]
        assert t_mgs > 3 * t_cgs2

    def test_mgs_fine_at_one_node(self):
        """At small scale MGS's latency penalty is minor (and it does
        half the flops of CGS2), which is why single-GPU studies like
        Loe et al. could use different orthogonalizations."""
        cgs2 = ScalingModel(ortho_method="cgs2")
        mgs = ScalingModel(ortho_method="mgs")
        t_cgs2 = cgs2.cycle_profile("mxp", 8).seconds_by_motif["ortho"]
        t_mgs = mgs.cycle_profile("mxp", 8).seconds_by_motif["ortho"]
        assert t_mgs < t_cgs2

    def test_cgs_cheapest_kernel_time(self):
        cgs = ScalingModel(ortho_method="cgs")
        cgs2 = ScalingModel(ortho_method="cgs2")
        assert (
            cgs.cycle_profile("mxp", 8).seconds_by_motif["ortho"]
            < cgs2.cycle_profile("mxp", 8).seconds_by_motif["ortho"]
        )

    def test_crossover_exists(self):
        """Somewhere between 1 node and full system, CGS2 overtakes MGS."""
        cgs2 = ScalingModel(ortho_method="cgs2")
        mgs = ScalingModel(ortho_method="mgs")

        def ortho(m, nranks):
            return m.cycle_profile("mxp", nranks).seconds_by_motif["ortho"]

        small = ortho(mgs, 8) < ortho(cgs2, 8)
        large = ortho(mgs, 9408 * 8) > ortho(cgs2, 9408 * 8)
        assert small and large

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            ScalingModel(ortho_method="householder")


class TestTimeBudget:
    def test_budget_repeats_solves(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            nranks=1,
            max_iters_per_solve=5,
            validation_max_iters=40,
            time_budget_seconds=0.5,
        )
        result = run_benchmark(cfg)
        # A 5-iteration solve at 16^3 takes ~10 ms: the 0.5 s budget
        # must fit several solves.
        assert result.mxp.iterations > 5
        assert result.mxp.total_seconds >= 0.5

    def test_budget_none_uses_num_solves(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            nranks=1,
            max_iters_per_solve=5,
            num_solves=2,
            validation_max_iters=40,
        )
        result = run_benchmark(cfg)
        assert result.mxp.iterations == 10

    def test_budget_distributed_ranks_agree(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            nranks=2,
            max_iters_per_solve=5,
            validation_max_iters=40,
            time_budget_seconds=0.3,
        )
        result = run_benchmark(cfg)
        assert result.mxp.iterations > 0
