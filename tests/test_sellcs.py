"""SELL-C-σ format tests and the cross-format kernel parity suite.

The parity properties (issue satellite): CSR, ELL and SELL-C-σ must
produce comparable SpMV and SymGS results — identical to rounding in
fp64, within precision-appropriate tolerance in fp32 — on random
stencil and non-stencil matrices, including matrices with empty rows.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends import Workspace, dispatch
from repro.sparse import CSRMatrix, ELLMatrix, SELLCSMatrix, to_format

FORMATS = ["csr", "ell", "sellcs"]


def random_csr(nrows, ncols, density, seed=0, dtype=np.float64, empty_rows=()):
    rng = np.random.default_rng(seed)
    m = sp.random(nrows, ncols, density=density, random_state=rng, format="csr")
    m.data = rng.standard_normal(len(m.data)) + 2.0
    if len(empty_rows):
        lil = m.tolil()
        for r in empty_rows:
            lil.rows[r] = []
            lil.data[r] = []
        m = lil.tocsr()
    return CSRMatrix.from_scipy(m.astype(dtype))


class TestSELLCSLayout:
    def test_chunk_widths_match_row_nnz(self):
        A = random_csr(100, 90, 0.1, seed=1)
        S = SELLCSMatrix.from_csr(A, chunk=8, sigma=32)
        nnz = A.row_nnz()
        sorted_nnz = nnz[S.perm]
        padded = np.zeros(S.nchunks * 8, dtype=np.int64)
        padded[: len(sorted_nnz)] = sorted_nnz
        np.testing.assert_array_equal(
            padded.reshape(-1, 8).max(axis=1), S.chunk_width
        )

    def test_sigma_sorting_reduces_padding(self):
        # Very skewed row lengths: one dense row per window.
        rng = np.random.default_rng(5)
        rows, cols = [], []
        n = 256
        for i in range(n):
            deg = 40 if i % 64 == 0 else 2
            rows += [i] * deg
            cols += list(rng.choice(n, size=deg, replace=False))
        m = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n)
        )
        A = CSRMatrix.from_scipy(m)
        sorted_sell = SELLCSMatrix.from_csr(A, chunk=32, sigma=256)
        unsorted_sell = SELLCSMatrix.from_csr(A, chunk=32, sigma=1)
        ell = ELLMatrix.from_csr(A)
        assert sorted_sell.stored_slots < unsorted_sell.stored_slots
        assert sorted_sell.stored_slots < ell.vals.size
        assert sorted_sell.pad_fraction < unsorted_sell.pad_fraction

    def test_perm_is_permutation(self):
        A = random_csr(77, 77, 0.08, seed=2)
        S = SELLCSMatrix.from_csr(A, chunk=16, sigma=32)
        assert sorted(S.perm.tolist()) == list(range(77))

    def test_roundtrip_csr(self):
        A = random_csr(60, 70, 0.12, seed=3)
        S = SELLCSMatrix.from_csr(A)
        assert (S.to_csr().to_scipy() != A.to_scipy()).nnz == 0
        assert S.nnz == A.nnz

    def test_diagonal(self, problem16):
        S = problem16.A.to_sellcs()
        np.testing.assert_allclose(S.diagonal(), 26.0)

    def test_astype_keeps_structure(self, problem16):
        S = problem16.A.to_sellcs()
        S32 = S.astype("fp32")
        assert S32.dtype == np.float32
        assert S32.nnz == S.nnz
        np.testing.assert_array_equal(S32.perm, S.perm)

    def test_memory_accounting(self, problem16):
        S = problem16.A.to_sellcs()
        ell = problem16.A
        # The stencil has boundary rows below width 27, so SELL-C-σ
        # stores strictly fewer slots than the padded ELL block.
        assert S.stored_slots < ell.vals.size
        assert S.memory_bytes() < ell.memory_bytes() + S.nrows * 4 + 8 * (
            S.nchunks + 1
        )
        assert 0.0 <= S.pad_fraction < ell.pad_fraction + 1e-12

    def test_bad_chunk_and_sigma(self):
        A = random_csr(10, 10, 0.3)
        with pytest.raises(ValueError):
            SELLCSMatrix.from_csr(A, chunk=0)
        with pytest.raises(ValueError):
            SELLCSMatrix.from_csr(A, sigma=0)

    def test_empty_matrix(self):
        A = CSRMatrix(np.zeros(1, np.int64), np.zeros(0, np.int32), np.zeros(0), 4)
        S = SELLCSMatrix.from_csr(A)
        assert S.nrows == 0 and S.nnz == 0
        assert S.spmv(np.ones(4)).size == 0


class TestOutContract:
    """Satellite: spmv must honor caller-provided ``out=`` end-to-end,
    including the CSR empty-row fixup path."""

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_out_is_written_in_place(self, fmt, rng):
        A = to_format(random_csr(50, 40, 0.15, seed=7), fmt)
        x = rng.standard_normal(40)
        out = np.full(50, np.nan)
        ret = A.spmv(x) if fmt != "csr" else None  # reference via method
        got = dispatch.spmv(A, x, out=out)
        assert got is out
        np.testing.assert_allclose(out, A.to_scipy() @ x, rtol=1e-12)
        if ret is not None:
            np.testing.assert_array_equal(got, ret)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_out_with_empty_rows(self, fmt):
        A = to_format(
            random_csr(40, 30, 0.2, seed=8, empty_rows=[0, 7, 13, 39]), fmt
        )
        x = np.random.default_rng(9).standard_normal(30)
        out = np.full(40, 123.456)  # poison: empty rows must be zeroed
        dispatch.spmv(A, x, out=out)
        ref = A.to_scipy() @ x
        np.testing.assert_allclose(out, ref, rtol=1e-12)
        assert out[0] == 0.0 and out[7] == 0.0 and out[39] == 0.0

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_out_with_workspace_twice(self, fmt, rng):
        A = to_format(random_csr(64, 64, 0.1, seed=10), fmt)
        x = rng.standard_normal(64)
        ws = Workspace()
        out = np.empty(64)
        dispatch.spmv(A, x, out=out, ws=ws)
        first = out.copy()
        dispatch.spmv(A, x, out=out, ws=ws)
        np.testing.assert_array_equal(out, first)
        assert ws.hits > 0  # second call reused the arena


class TestCrossFormatParity:
    """CSR / ELL / SELL-C-σ must agree on every kernel."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("shape", [(60, 60), (100, 80), (33, 47)])
    def test_spmv_parity_random(self, seed, shape, rng):
        nrows, ncols = shape
        empty = [0, nrows // 2] if seed % 2 else []
        A = random_csr(nrows, ncols, 0.1, seed=seed, empty_rows=empty)
        x = rng.standard_normal(ncols)
        ref = A.to_scipy() @ x
        for fmt in FORMATS:
            B = to_format(A, fmt)
            np.testing.assert_allclose(
                dispatch.spmv(B, x), ref, rtol=1e-13, atol=1e-13, err_msg=fmt
            )

    def test_spmv_parity_stencil(self, problem16, rng):
        x = rng.standard_normal(problem16.A.ncols)
        ref = dispatch.spmv(problem16.A, x)
        for fmt in ("csr", "sellcs"):
            B = to_format(problem16.A, fmt)
            np.testing.assert_allclose(
                dispatch.spmv(B, x), ref, rtol=1e-13, atol=1e-13
            )

    def test_spmv_parity_fp32(self, problem16, rng):
        x32 = rng.standard_normal(problem16.A.ncols).astype(np.float32)
        ref = dispatch.spmv(problem16.A.astype("fp32"), x32)
        for fmt in ("csr", "sellcs"):
            B = to_format(problem16.A, fmt).astype("fp32")
            got = dispatch.spmv(B, x32)
            assert got.dtype == np.float32
            # Precision-appropriate tolerance: fp32 summation order
            # differs across layouts.
            np.testing.assert_allclose(got, ref, rtol=2e-5, atol=1e-4)

    @pytest.mark.parametrize("seed", [11, 12])
    def test_spmv_rows_parity(self, seed, rng):
        A = random_csr(80, 80, 0.12, seed=seed, empty_rows=[5, 60])
        rows = np.array([0, 5, 17, 60, 79])
        x = rng.standard_normal(80)
        ref = (A.to_scipy() @ x)[rows]
        for fmt in FORMATS:
            B = to_format(A, fmt)
            np.testing.assert_allclose(
                dispatch.spmv_rows(B, rows, x), ref, rtol=1e-13, atol=1e-13,
                err_msg=fmt,
            )

    @pytest.mark.parametrize("use_ws", [False, True])
    def test_symgs_parity_stencil(self, problem16, use_ws):
        """The multicolor GS sweep is bitwise-comparable across formats
        (fp64: to rounding of the shared update formula)."""
        from repro.sparse.coloring import color_sets, structured_coloring8

        sets = color_sets(structured_coloring8(problem16.sub))
        r = problem16.b
        results = {}
        for fmt in FORMATS:
            B = to_format(problem16.A, fmt)
            diag = B.diagonal()
            diag_sets = [diag[rows] for rows in sets]
            xfull = np.zeros(B.ncols)
            ws = Workspace() if use_ws else None
            dispatch.symgs_sweep(B, r, xfull, sets, diag_sets, "forward", ws=ws)
            dispatch.symgs_sweep(B, r, xfull, sets, diag_sets, "backward", ws=ws)
            results[fmt] = xfull.copy()
        for fmt in ("csr", "sellcs"):
            np.testing.assert_allclose(
                results[fmt], results["ell"], rtol=1e-13, atol=1e-14,
                err_msg=fmt,
            )

    def test_symgs_parity_random_partition(self, rng):
        """Parity holds on a non-stencil matrix with an arbitrary row
        partition (the sweep is deterministic given the sets)."""
        A = random_csr(96, 96, 0.08, seed=21, empty_rows=[10])
        # Make it safely diagonally dominant so divisions are tame.
        dense = A.to_scipy().toarray()
        np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        sets = [np.arange(i, 96, 4) for i in range(4)]
        r = rng.standard_normal(96)
        results = {}
        for fmt in FORMATS:
            B = to_format(A, fmt)
            diag = B.diagonal()
            diag_sets = [diag[rows] for rows in sets]
            xfull = np.zeros(96)
            dispatch.symgs_sweep(B, r, xfull, sets, diag_sets, "forward")
            results[fmt] = xfull.copy()
        for fmt in ("csr", "sellcs"):
            np.testing.assert_allclose(
                results[fmt], results["ell"], rtol=1e-12, atol=1e-12
            )

    def test_gmres_ir_converges_with_sellcs(self, problem16, comm):
        from repro.fp import MIXED_DS_POLICY
        from repro.solvers import GMRESIRSolver

        solver = GMRESIRSolver(
            problem16, comm, policy=MIXED_DS_POLICY, matrix_format="sellcs"
        )
        x, stats = solver.solve(problem16.b, tol=1e-9, maxiter=200)
        assert stats.converged
        np.testing.assert_allclose(x, problem16.x_exact, rtol=1e-7)


class TestChunkSigmaParameterization:
    """SELL-C-σ chunk/sort-window knobs through to_format and the
    benchmark config (PR 9 satellite): every (C, σ) point must agree
    with CSR to rounding, and the conversion layer must repack rather
    than silently keep a mismatched layout."""

    GRID = [(8, 1), (16, 64), (32, 128), (64, 256)]

    @pytest.mark.parametrize("chunk,sigma", GRID)
    def test_spmv_parity_across_the_grid(self, problem16, rng, chunk, sigma):
        A = problem16.A
        S = to_format(A, "sellcs", chunk=chunk, sigma=sigma)
        assert (S.C, S.sigma) == (chunk, sigma)
        x = rng.standard_normal(A.to_csr().ncols)
        np.testing.assert_allclose(
            S.spmv(x), to_format(A, "csr").spmv(x), rtol=1e-13, atol=1e-13
        )

    @pytest.mark.parametrize("chunk,sigma", GRID)
    def test_symgs_parity_across_the_grid(self, problem16, rng, chunk, sigma):
        from repro.sparse.coloring import color_sets, greedy_coloring

        ell = to_format(problem16.A, "ell")
        sets = color_sets(greedy_coloring(ell))
        r = rng.standard_normal(ell.nrows)
        results = {}
        for M in (ell, to_format(problem16.A, "sellcs", chunk=chunk, sigma=sigma)):
            diag = M.diagonal()
            diag_sets = [diag[rows] for rows in sets]
            x = np.zeros(M.nrows)
            dispatch.symgs_sweep(M, r, x, sets, diag_sets, "forward")
            results[type(M).__name__] = x.copy()
        np.testing.assert_allclose(
            results["SELLCSMatrix"], results["ELLMatrix"],
            rtol=1e-12, atol=1e-12,
        )

    def test_identity_conversion_repacks_on_parameter_mismatch(self, problem16):
        S = to_format(problem16.A, "sellcs", chunk=32, sigma=128)
        same = to_format(S, "sellcs", chunk=32, sigma=128)
        assert same is S  # matching layout: no copy
        repacked = to_format(S, "sellcs", chunk=16, sigma=64)
        assert repacked is not S
        assert (repacked.C, repacked.sigma) == (16, 64)

    def test_chunk_kwargs_rejected_for_other_formats(self, problem16):
        with pytest.raises(ValueError, match="sellcs"):
            to_format(problem16.A, "ell", chunk=16)
        with pytest.raises(ValueError, match="sellcs"):
            to_format(problem16.A, "csr", sigma=64)

    def test_config_format_params(self):
        from repro.core.config import BenchmarkConfig

        cfg = BenchmarkConfig(
            matrix_format="sellcs", sell_chunk=16, sell_sigma=64
        )
        assert cfg.format_params == {"chunk": 16, "sigma": 64}
        assert BenchmarkConfig(matrix_format="ell").format_params == {}
        with pytest.raises(ValueError):
            BenchmarkConfig(sell_chunk=0)

    def test_solver_threads_format_params(self, problem16, comm):
        from repro.fp import DOUBLE_POLICY
        from repro.solvers import GMRESIRSolver

        tuned = GMRESIRSolver(
            problem16,
            comm,
            policy=DOUBLE_POLICY,
            matrix_format="sellcs",
            format_params={"chunk": 16, "sigma": 64},
        )
        default = GMRESIRSolver(
            problem16, comm, policy=DOUBLE_POLICY, matrix_format="sellcs"
        )
        x_t, _ = tuned.solve(problem16.b, tol=0.0, maxiter=5)
        x_d, _ = default.solve(problem16.b, tol=0.0, maxiter=5)
        # Different chunk/sigma layouts agree to rounding (not bitwise:
        # the chunk reduction order differs by construction).
        np.testing.assert_allclose(x_t, x_d, rtol=1e-10, atol=1e-12)
