"""Integration tests for the HPG-MxP and HPCG benchmark drivers."""

import numpy as np
import pytest

from repro.core import (
    BenchmarkConfig,
    HPCGConfig,
    format_report,
    result_to_dict,
    run_benchmark,
    run_hpcg,
    run_validation,
)
from repro.core.config import OFFICIAL_TABLE1


@pytest.fixture(scope="module")
def small_config():
    return BenchmarkConfig(
        local_nx=16, nranks=1, max_iters_per_solve=25, validation_max_iters=300
    )


@pytest.fixture(scope="module")
def small_result(small_config):
    return run_benchmark(small_config)


class TestBenchmarkConfig:
    def test_defaults_validate(self):
        BenchmarkConfig()

    def test_rejects_bad_impl(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(impl="fast")

    def test_rejects_nondivisible_dims(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(local_nx=20)  # 20 % 8 != 0

    def test_rejects_too_small_dims(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(local_nx=8)  # needs >= 16 for 4 levels

    def test_validation_ranks_clamped(self):
        cfg = BenchmarkConfig(local_nx=16, nranks=2)
        assert cfg.effective_validation_ranks == 2

    def test_validation_ranks_default_is_one_node(self):
        cfg = BenchmarkConfig(local_nx=16, nranks=16)
        assert cfg.effective_validation_ranks == 8

    def test_impl_maps_to_mg_and_format(self):
        opt = BenchmarkConfig(local_nx=16)
        ref = BenchmarkConfig(local_nx=16, impl="reference")
        assert opt.mg_config().smoother == "multicolor"
        assert opt.matrix_format == "ell"
        assert ref.mg_config().smoother == "levelsched"
        assert not ref.mg_config().fused_restrict
        assert ref.matrix_format == "csr"

    def test_with_updates_impl_rederives_format(self):
        cfg = BenchmarkConfig(local_nx=16)  # resolves to ell
        assert cfg.with_updates(impl="reference").matrix_format == "csr"
        # An explicitly pinned format survives an impl change.
        pinned = BenchmarkConfig(local_nx=16, matrix_format="sellcs")
        assert pinned.with_updates(impl="reference").matrix_format == "sellcs"
        # Auto-derivation survives chains of unrelated updates.
        chained = cfg.with_updates(nranks=8).with_updates(impl="reference")
        assert chained.matrix_format == "csr"
        # ... and pinning survives chains too.
        chained_pin = pinned.with_updates(nranks=8).with_updates(impl="reference")
        assert chained_pin.matrix_format == "sellcs"

    def test_explicit_format_overrides_impl(self):
        cfg = BenchmarkConfig(local_nx=16, impl="reference", matrix_format="sellcs")
        assert cfg.matrix_format == "sellcs"

    def test_unknown_format_lists_registered(self):
        with pytest.raises(ValueError, match="registered formats"):
            BenchmarkConfig(local_nx=16, matrix_format="coo")

    def test_policies(self):
        cfg = BenchmarkConfig(local_nx=16)
        assert cfg.mixed_policy().low.short_name == "fp32"
        assert cfg.double_policy().is_uniform_double

    def test_table1_official_values(self):
        cfg = BenchmarkConfig(local_nx=16)
        t = cfg.table1()
        assert t["Restart length"][0] == 30
        assert t["Local mesh size"][0] == "320^3"
        assert t["Max. GMRES iterations per solve"][0] == 300
        assert t["No. GCDs used for validation"][0] == 8
        assert len(t) == len(OFFICIAL_TABLE1)

    def test_nodes(self):
        assert BenchmarkConfig(local_nx=16, nranks=16).nodes == 2.0

    def test_with_updates(self):
        cfg = BenchmarkConfig(local_nx=16).with_updates(nranks=4)
        assert cfg.nranks == 4
        assert cfg.local_nx == 16


class TestValidation:
    def test_standard_mode(self):
        cfg = BenchmarkConfig(
            local_nx=16, nranks=1, validation_max_iters=300
        )
        val = run_validation(cfg)
        assert val.mode == "standard"
        assert val.double_converged and val.ir_converged
        assert val.n_ir >= val.n_d  # fp32 never converges faster here
        assert 0.0 < val.penalty <= 1.0
        assert val.penalty == min(1.0, val.ratio)

    def test_fullscale_mode_small_scale_hits_tolerance(self):
        """At small scale fullscale behaves like standard (§3.3)."""
        cfg = BenchmarkConfig(
            local_nx=16,
            nranks=1,
            validation_mode="fullscale",
            validation_max_iters=300,
        )
        val = run_validation(cfg)
        assert val.mode == "fullscale"
        assert val.double_relres < 1e-9  # tolerance reached, not the cap
        assert val.target_residual is not None
        assert val.ir_converged

    def test_fullscale_mode_cap_binds(self):
        """With a tight iteration cap the achieved residual stalls above
        the tolerance — the paper's large-scale regime."""
        cfg = BenchmarkConfig(
            local_nx=16, nranks=1, validation_mode="fullscale",
            validation_max_iters=8,
        )
        val = run_validation(cfg)
        assert val.n_d == 8
        assert val.double_relres > 1e-9  # cap bound first
        # mxp converges to (or stalls within a hair of) the achieved
        # residual — Table 2's full-scale ratios straddle 1.0 for
        # exactly this reason.
        assert val.ir_relres <= val.double_relres * 1.05
        assert val.ratio == pytest.approx(8 / val.n_ir)


class TestBenchmarkDriver:
    def test_phases_present(self, small_result):
        assert small_result.mxp.label == "mxp"
        assert small_result.double.label == "double"
        assert small_result.validation.n_d > 0

    def test_flops_identical_across_phases(self, small_result):
        """Both phases run the same fixed iteration budget, so the flop
        model must charge them identically."""
        assert small_result.mxp.total_flops == small_result.double.total_flops

    def test_penalty_only_on_mxp(self, small_result):
        assert small_result.mxp.penalty == small_result.validation.penalty
        assert small_result.double.penalty == 1.0

    def test_speedups_contains_total(self, small_result):
        assert "total" in small_result.speedups
        assert small_result.speedup == small_result.speedups["total"]

    def test_motif_seconds_positive(self, small_result):
        for phase in (small_result.mxp, small_result.double):
            for motif in ("gs", "ortho", "spmv", "restrict"):
                assert phase.seconds_by_motif.get(motif, 0) > 0, (phase.label, motif)

    def test_report_renders(self, small_result):
        text = format_report(small_result)
        assert "HPG-MxP" in text
        assert "Validation" in text
        assert "GFLOP/s" in text
        assert "Speedups" in text

    def test_result_to_dict_roundtrips_keys(self, small_result):
        d = result_to_dict(small_result)
        assert d["validation"]["n_d"] == small_result.validation.n_d
        assert d["mxp"]["gflops"] == small_result.mxp.gflops
        assert d["config"]["impl"] == "optimized"

    def test_distributed_run(self):
        cfg = BenchmarkConfig(
            local_nx=16, nranks=2, max_iters_per_solve=10, validation_max_iters=150
        )
        res = run_benchmark(cfg)
        assert res.mxp.iterations == 10
        assert res.validation.ranks == 2

    def test_reference_impl_runs(self):
        cfg = BenchmarkConfig(
            local_nx=16,
            nranks=1,
            impl="reference",
            max_iters_per_solve=10,
            validation_max_iters=150,
        )
        res = run_benchmark(cfg)
        assert res.mxp.total_flops > 0
        # Unfused restriction charges more restrict flops than fused.
        opt = run_benchmark(
            BenchmarkConfig(
                local_nx=16, nranks=1, max_iters_per_solve=10,
                validation_max_iters=150,
            )
        )
        assert (
            res.mxp.flops_by_motif["restrict"] > opt.mxp.flops_by_motif["restrict"]
        )


class TestHPCG:
    def test_runs_and_reports(self):
        res = run_hpcg(HPCGConfig(local_nx=16, maxiter=8))
        assert res.iterations == 8
        assert res.gflops > 0
        assert res.metrics.flops_by_motif["gs"] > 0

    def test_residual_decreases(self):
        res = run_hpcg(HPCGConfig(local_nx=16, maxiter=8))
        assert res.final_relres < 1.0

    def test_distributed(self):
        res = run_hpcg(HPCGConfig(local_nx=16, nranks=2, maxiter=5))
        assert res.iterations == 5

    def test_symgs_flops_double_gmres_gs(self):
        """HPCG's symmetric sweeps charge 2x the GS flops of HPG-MxP's
        forward sweeps at the same size/iterations."""
        from repro.core.flops import flops_mg_vcycle, hierarchy_dims
        from repro.mg.multigrid import MGConfig

        dims = hierarchy_dims(16, 16, 16, 4)
        f = flops_mg_vcycle(dims, MGConfig())["gs"]
        s = flops_mg_vcycle(dims, MGConfig(sweep="symmetric"))["gs"]
        assert s == 2 * f
