"""The per-ingredient precision control plane (PR 4).

Covers the controller algebra, the plane's observation protocol (the
forced-stall fixture: smoother-only promotion, hysteresis-guarded
de-escalation, the SpMV controller never moving), the whole-policy
compatibility mode (bitwise-identical to the PR 2 escalator,
regression-asserted), the Carson-style roundoff-budget chooser, the
transfer-scheduled multigrid hierarchy, the live-schedule byte model,
and the config/CLI wiring.
"""

import numpy as np
import pytest

from repro.fp import (
    ControlConfig,
    EscalationConfig,
    HALF_LADDER_POLICY,
    IngredientController,
    IngredientSchedule,
    NO_CONTROL,
    Precision,
    PrecisionControlPlane,
    PrecisionEvent,
    PrecisionPolicy,
    prev_rung,
)
from repro.fp.budget import (
    choose_plane,
    choose_rung,
    estimate_condition,
    ingredient_weight,
)
from repro.geometry import Subdomain
from repro.parallel import SerialComm
from repro.solvers.gmres_ir import GMRESIRSolver
from repro.stencil import generate_problem

#: A policy whose only fp16 ingredient is the fine-level smoother —
#: the forced-stall fixture: the smoother is the binding rung, the
#: SpMV/ortho controllers sit one rung up and must never move.
SMOOTHER_LOW_POLICY = PrecisionPolicy(
    matrix=Precision.SINGLE,
    mg_levels=("fp16", "fp32"),
    krylov_basis=Precision.SINGLE,
    orthogonalization=Precision.SINGLE,
)


def make_plane(
    policy=SMOOTHER_LOW_POLICY, nlevels=4, **kwargs
) -> PrecisionControlPlane:
    cfg = ControlConfig(
        mode="per-ingredient", escalation=EscalationConfig(), **kwargs
    )
    return PrecisionControlPlane(cfg, policy, nlevels)


class TestControlConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            ControlConfig(mode="per-kernel")
        for mode in ("per-ingredient", "policy", "off"):
            assert ControlConfig(mode=mode).mode == mode

    def test_demote_ratio_validation(self):
        with pytest.raises(ValueError, match="demote_ratio"):
            ControlConfig(demote_ratio=0.0)
        with pytest.raises(ValueError, match="demote_ratio"):
            ControlConfig(demote_ratio=1.5)
        # A demote_ratio above stall_ratio is accepted (the effective
        # recovery threshold is min(demote_ratio, stall_ratio)).
        assert ControlConfig(demote_ratio=0.9).demote_ratio == 0.9

    def test_aggressive_stall_ratio_still_constructs(self):
        """EscalationConfig(stall_ratio < demote_ratio) was valid on
        the PR 2 escalator and must stay constructible through the
        plane wrap (the coupling is enforced at judgement time)."""
        cfg = ControlConfig(
            mode="policy", escalation=EscalationConfig(stall_ratio=0.2)
        )
        assert cfg.escalation.stall_ratio == 0.2

    def test_recovery_under_aggressive_stall_ratio(self):
        """With stall_ratio below demote_ratio the effective recovery
        threshold tightens to stall_ratio (min rule): any cycle strong
        enough to reach the recovery branch feeds the streak, and the
        plane still works end to end."""
        cfg = ControlConfig(
            mode="per-ingredient",
            escalation=EscalationConfig(stall_ratio=0.1),
            hysteresis=1,
        )
        plane = PrecisionControlPlane(cfg, SMOOTHER_LOW_POLICY, 4)
        plane.observe_restart(1.0, 1.0, 0, 0)
        plane.cycle_completed()
        plane.observe_restart(0.5, 0.5, 30, 1)  # stall: promote smoother
        assert plane.rung("smoother", 0) is Precision.SINGLE
        plane.cycle_completed()
        # 0.04 <= 0.1 * 0.5: strong enough for the min() threshold.
        events = plane.observe_restart(0.04, 0.5, 60, 2)
        assert [e.direction for e in events] == ["demote"]
        assert plane.rung("smoother", 0) is Precision.HALF

    def test_hysteresis_and_budget_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            ControlConfig(hysteresis=0)
        with pytest.raises(ValueError, match="budget"):
            ControlConfig(budget=-1e-4)

    def test_active(self):
        assert ControlConfig(mode="per-ingredient").active
        assert not NO_CONTROL.active
        assert not ControlConfig(
            mode="per-ingredient", escalation=EscalationConfig(enabled=False)
        ).active


class TestIngredientController:
    def test_promote_demote_are_explicit_noops_at_the_ends(self):
        ctl = IngredientController(
            "spmv", 0, Precision.DOUBLE, Precision.DOUBLE
        )
        assert not ctl.promote()  # top of the ladder
        assert ctl.rung is Precision.DOUBLE
        assert not ctl.demote()  # already at the floor
        assert ctl.moves == 0

    def test_demote_stops_at_floor(self):
        ctl = IngredientController(
            "smoother", 1, Precision.SINGLE, Precision.SINGLE
        )
        assert ctl.promote()
        assert ctl.rung is Precision.DOUBLE
        assert ctl.demote()
        assert ctl.rung is Precision.SINGLE
        assert not ctl.demote()  # floor reached

    def test_rejects_bad_ingredient_and_sub_floor_start(self):
        with pytest.raises(ValueError, match="ingredient"):
            IngredientController("qr", 0, Precision.SINGLE, Precision.SINGLE)
        with pytest.raises(ValueError, match="floor"):
            IngredientController(
                "spmv", 0, Precision.HALF, Precision.SINGLE
            )

    def test_prev_rung_fixpoint(self):
        assert prev_rung(Precision.HALF) is Precision.HALF
        assert prev_rung("fp64") is Precision.SINGLE


class TestPlaneSeeding:
    def test_controllers_match_policy(self):
        plane = make_plane(HALF_LADDER_POLICY)
        assert plane.rung("spmv") is Precision.HALF
        assert plane.rung("ortho") is Precision.HALF
        assert plane.smoother_schedule() == (
            Precision.HALF,
            Precision.SINGLE,
            Precision.DOUBLE,
            Precision.DOUBLE,
        )
        # Transfers seed at the coarser side of each boundary — the
        # dtype the coarse-defect buffer has always had.
        assert plane.transfer_schedule() == (
            Precision.SINGLE,
            Precision.DOUBLE,
            Precision.DOUBLE,
        )

    def test_live_policy_round_trips_the_seed(self):
        plane = make_plane(HALF_LADDER_POLICY)
        live = plane.live_policy()
        assert live.matrix is HALF_LADDER_POLICY.matrix
        assert live.mg_levels == HALF_LADDER_POLICY.mg_schedule(4)
        assert live.krylov_basis is HALF_LADDER_POLICY.krylov_basis
        assert live.least_squares is Precision.DOUBLE  # pinned

    def test_policy_mode_has_no_controllers(self):
        cfg = ControlConfig(mode="policy")
        plane = PrecisionControlPlane(cfg, HALF_LADDER_POLICY, 4)
        assert not plane.controllers
        assert plane.rung("smoother", 0) is Precision.HALF
        assert plane.transfer_schedule() is None
        assert plane.snapshot() is HALF_LADDER_POLICY

    def test_explicit_rungs_require_per_ingredient(self):
        with pytest.raises(ValueError, match="per-ingredient"):
            PrecisionControlPlane(
                ControlConfig(mode="policy"),
                HALF_LADDER_POLICY,
                4,
                rungs={("spmv", 0): Precision.HALF},
            )

    def test_snapshot_duck_types_the_policy_interface(self):
        snap = make_plane(HALF_LADDER_POLICY).snapshot()
        assert isinstance(snap, IngredientSchedule)
        assert snap.matrix is Precision.HALF
        assert snap.krylov_basis is Precision.HALF
        assert snap.mg_level(0) is Precision.HALF
        assert snap.mg_level(9) is Precision.DOUBLE  # last entry extends
        assert snap.transfer_level(0) is Precision.SINGLE
        assert "spmv=fp16" in snap.describe()


class TestForcedStallFixture:
    """The satellite acceptance fixture, driven synthetically.

    The smoother's fine level is the only fp16 ingredient.  A stall
    must promote it — and nothing else; sustained recovery must demote
    it after the hysteresis window; the SpMV controller must never
    move.
    """

    def drive(self, plane, rho, relres=None, it=0, rs=0):
        events = plane.observe_restart(
            rho, relres if relres is not None else rho, it, rs
        )
        plane.cycle_completed()
        return events

    def test_stall_promotes_smoother_only_then_demotes(self):
        plane = make_plane(hysteresis=2)
        spmv = plane.controllers[("spmv", 0)]
        assert self.drive(plane, 1.0) == []  # no history yet

        # Stagnation: 0.9 > stall_ratio * 1.0.
        events = self.drive(plane, 0.9, it=30, rs=1)
        assert [e.ingredient for e in events] == ["smoother"]
        (ev,) = events
        assert ev.level == 0 and ev.direction == "promote"
        assert ev.reason == "stall"
        assert ev.from_low is Precision.HALF
        assert ev.to_low is Precision.SINGLE
        assert plane.rung("smoother", 0) is Precision.SINGLE
        # Untouched: the rest of the plane.
        assert plane.rung("smoother", 1) is Precision.SINGLE
        assert plane.rung("spmv") is Precision.SINGLE
        assert spmv.moves == 0

        # Recovery: two consecutive strong-reduction cycles (the
        # hysteresis window), with plenty of residual headroom.
        assert self.drive(plane, 0.2, relres=0.2) == []  # streak 1
        events = self.drive(plane, 0.04, relres=0.2, it=90, rs=3)
        assert [e.direction for e in events] == ["demote"]
        (ev,) = events
        assert ev.ingredient == "smoother" and ev.level == 0
        assert ev.reason == "recovered"
        assert ev.from_low is Precision.SINGLE
        assert ev.to_low is Precision.HALF
        assert plane.rung("smoother", 0) is Precision.HALF
        # The acceptance clause: the SpMV controller never moved.
        assert spmv.moves == 0
        assert spmv.rung is Precision.SINGLE

    def test_weak_progress_resets_the_streak(self):
        plane = make_plane(hysteresis=2)
        self.drive(plane, 1.0)
        self.drive(plane, 0.9)  # promote smoother L0
        self.drive(plane, 0.2, relres=0.2)  # streak 1
        # Progress, but above demote_ratio: streak resets.
        self.drive(plane, 0.09, relres=0.2)
        assert plane.controllers[("smoother", 0)].good_cycles == 0
        assert plane.rung("smoother", 0) is Precision.SINGLE

    def test_no_demotion_without_residual_headroom(self):
        """Near the fp16 floor, demoting back would re-stall: hold."""
        plane = make_plane(hysteresis=1)
        self.drive(plane, 1.0)
        self.drive(plane, 0.9)  # promote
        events = self.drive(plane, 0.2, relres=1e-6)  # tiny residual
        assert events == []
        assert plane.rung("smoother", 0) is Precision.SINGLE

    def test_floor_reason_when_at_roundoff_floor(self):
        plane = make_plane()
        self.drive(plane, 1.0)
        events = self.drive(plane, 0.9, relres=1e-4)  # <= 4 * eps(fp16)
        assert events and events[0].reason == "floor"

    def test_breakdown_promotes_binding_rung(self):
        plane = make_plane()
        events = plane.observe_breakdown(1.0, 0.5, 10, 1)
        assert [(e.ingredient, e.level) for e in events] == [("smoother", 0)]
        assert events[0].reason == "breakdown"

    def test_mixed_live_schedule_models_fewer_bytes(self):
        """Acceptance: after the smoother-only promotion the live
        schedule models strictly fewer bytes than the whole-policy
        promotion would have."""
        from repro.perf.scaling import ScalingModel

        plane = make_plane()
        self.drive(plane, 1.0)
        self.drive(plane, 0.9)  # smoother L0 promoted, rest untouched
        model = ScalingModel()
        mixed = model.cycle_traffic_bytes(plane.snapshot())["total"]
        whole = model.cycle_traffic_bytes(
            SMOOTHER_LOW_POLICY.promote()
        )["total"]
        assert mixed < whole

    def test_off_mode_never_moves(self):
        plane = PrecisionControlPlane(NO_CONTROL, HALF_LADDER_POLICY, 4)
        assert plane.observe_restart(1.0, 1.0, 0, 0) == []
        plane.cycle_completed()
        assert plane.observe_restart(1.0, 1.0, 30, 1) == []
        assert plane.observe_breakdown(1.0, 1.0, 30, 1) == []

    def test_reset_observation_forgets_history_keeps_rungs(self):
        plane = make_plane()
        self.drive(plane, 1.0)
        self.drive(plane, 0.9)  # promote
        plane.reset_observation()
        assert plane.rung("smoother", 0) is Precision.SINGLE  # kept
        # No history: the first post-reset stall check gets a free pass.
        assert self.drive(plane, 0.9) == []


class TestPolicyModeBitwise:
    """`--precision-control policy` must reproduce the PR 2 whole-policy
    escalator bit for bit."""

    @pytest.fixture(scope="class")
    def hard_problem(self):
        prob = generate_problem(Subdomain.serial(16, 16, 16))
        b = np.random.default_rng(7).standard_normal(prob.nlocal)
        return prob, b

    def test_policy_mode_matches_legacy_escalation_bitwise(
        self, hard_problem
    ):
        prob, b = hard_problem
        legacy = GMRESIRSolver(
            prob,
            SerialComm(),
            policy=HALF_LADDER_POLICY,
            escalation=EscalationConfig(),
        )
        x_legacy, st_legacy = legacy.solve(b, tol=1e-11, maxiter=300)
        explicit = GMRESIRSolver(
            prob, SerialComm(), policy=HALF_LADDER_POLICY, control="policy"
        )
        x_policy, st_policy = explicit.solve(b, tol=1e-11, maxiter=300)
        assert np.array_equal(x_legacy, x_policy)  # bitwise
        assert st_legacy.final_relres == st_policy.final_relres
        assert [
            (p.iteration, p.restart, p.reason, p.from_low, p.to_low)
            for p in st_legacy.promotions
        ] == [
            (p.iteration, p.restart, p.reason, p.from_low, p.to_low)
            for p in st_policy.promotions
        ]

    def test_policy_mode_reproduces_the_pr2_golden_decisions(
        self, hard_problem
    ):
        """Decision-level golden captured from the PR 2 implementation
        on this fixture (seed commit 78c1f80): one promotion at inner
        iteration 46 / restart 3, reason "floor", fp16 -> fp32."""
        prob, b = hard_problem
        solver = GMRESIRSolver(
            prob, SerialComm(), policy=HALF_LADDER_POLICY, control="policy"
        )
        _, st = solver.solve(b, tol=1e-11, maxiter=300)
        assert st.converged
        assert [
            (p.iteration, p.restart, p.reason, p.from_low, p.to_low)
            for p in st.promotions
        ] == [(46, 3, "floor", Precision.HALF, Precision.SINGLE)]
        assert st.promotions[0].ingredient == "policy"
        assert st.promotions[0].direction == "promote"

    def test_promotion_alias_still_importable(self):
        from repro.solvers.gmres_ir import Promotion

        assert Promotion is PrecisionEvent


class TestPerIngredientSolver:
    @pytest.fixture(scope="class")
    def hard_problem(self):
        prob = generate_problem(Subdomain.serial(16, 16, 16))
        b = np.random.default_rng(7).standard_normal(prob.nlocal)
        return prob, b

    def test_converges_with_attributed_events(self, hard_problem):
        prob, b = hard_problem
        solver = GMRESIRSolver(
            prob,
            SerialComm(),
            policy=HALF_LADDER_POLICY,
            control="per-ingredient",
        )
        x, st = solver.solve(b, tol=1e-11, maxiter=300)
        assert st.converged and st.final_relres <= 1e-11
        assert st.promotions
        # Every event is attributed to a real ingredient.
        for ev in st.promotions:
            assert ev.ingredient in ("smoother", "transfer", "spmv", "ortho")
            assert ev.level is not None
        # Only the binding fp16 rung promoted: the fp32/fp64 coarse
        # smoother levels never moved.
        touched = {(e.ingredient, e.level) for e in st.promotions}
        assert ("smoother", 1) not in touched
        assert ("smoother", 2) not in touched
        # The solver's bound policy tracks the live plane.
        assert solver.policy == solver.plane.live_policy()

    def test_live_schedule_models_fewer_bytes_than_whole_policy(
        self, hard_problem
    ):
        """Acceptance: the per-ingredient run's live schedule models
        strictly fewer bytes than the whole-policy run's promoted
        policy on the same fixture."""
        from repro.perf.scaling import ScalingModel

        prob, b = hard_problem
        per_ing = GMRESIRSolver(
            prob,
            SerialComm(),
            policy=HALF_LADDER_POLICY,
            control="per-ingredient",
        )
        per_ing.solve(b, tol=1e-11, maxiter=300)
        whole = GMRESIRSolver(
            prob, SerialComm(), policy=HALF_LADDER_POLICY, control="policy"
        )
        whole.solve(b, tol=1e-11, maxiter=300)
        assert whole.plane.snapshot().low.bytes > Precision.HALF.bytes
        model = ScalingModel()
        mixed = model.cycle_traffic_bytes(per_ing.plane.snapshot())["total"]
        policy = model.cycle_traffic_bytes(whole.plane.snapshot())["total"]
        assert mixed < policy

    def test_transfer_schedule_reaches_the_hierarchy(self, hard_problem):
        prob, _ = hard_problem
        solver = GMRESIRSolver(
            prob,
            SerialComm(),
            policy=HALF_LADDER_POLICY,
            control="per-ingredient",
        )
        assert solver.M.transfer_schedule == solver.plane.transfer_schedule()

    def test_control_rejects_bad_types(self, hard_problem):
        prob, _ = hard_problem
        with pytest.raises(TypeError, match="control"):
            GMRESIRSolver(prob, SerialComm(), control=42)

    def test_summary_counts_demotions(self):
        from repro.solvers.gmres_ir import SolverStats

        st = SolverStats()
        st.promotions.append(
            PrecisionEvent(
                1, 1, 0.5, "stall", Precision.HALF, Precision.SINGLE,
                ingredient="smoother", level=0,
            )
        )
        st.promotions.append(
            PrecisionEvent(
                9, 3, 0.1, "recovered", Precision.SINGLE, Precision.HALF,
                ingredient="smoother", level=0, direction="demote",
            )
        )
        assert len(st.demotions) == 1
        assert "1 promotion(s)" in st.summary()
        assert "1 demotion(s)" in st.summary()


class TestBudgetChooser:
    @pytest.fixture(scope="class")
    def A(self, request):
        return generate_problem(Subdomain.serial(16, 16, 16)).A

    def test_condition_estimate_is_sane(self, A):
        cond = estimate_condition(A)
        assert cond.norm_inf == pytest.approx(52.0)  # 26 + 26 x |-1|
        assert cond.diag_min == pytest.approx(26.0)
        assert cond.kappa > 1.0
        assert "kappa" in cond.describe()

    def test_condition_estimate_format_generic(self, A):
        from repro.sparse.formats import to_format

        ell = estimate_condition(A)
        csr = estimate_condition(to_format(A, "csr"))
        sellcs = estimate_condition(to_format(A, "sellcs"))
        assert csr.norm_inf == pytest.approx(ell.norm_inf)
        assert sellcs.norm_inf == pytest.approx(ell.norm_inf)

    def test_weights_decay_with_level(self):
        assert ingredient_weight("smoother", 0) > ingredient_weight(
            "smoother", 2
        )
        assert ingredient_weight("ortho", 0, restart=60) == 60.0
        with pytest.raises(ValueError, match="ingredient"):
            ingredient_weight("qr", 0)

    def test_choose_rung_monotone_in_budget(self):
        kappa = 100.0
        loose = choose_rung(1.0, kappa, budget=1.0)
        tight = choose_rung(1.0, kappa, budget=1e-8)
        assert loose is Precision.HALF
        assert tight is Precision.DOUBLE  # nothing fits: top of ladder

    def test_tighter_budget_never_lowers_a_rung(self, A):
        loose = choose_plane(A, 4, budget=1e-1)
        tight = choose_plane(A, 4, budget=1e-5)
        for key in loose.assignments:
            assert (
                tight.assignments[key].bytes >= loose.assignments[key].bytes
            )

    def test_coarse_smoother_levels_sit_lower(self, A):
        rep = choose_plane(A, 4, budget=1e-2)
        sched = rep.ladder_for("smoother", 4)
        assert sched[-1].bytes <= sched[0].bytes
        assert rep.contributions[("smoother", 3)] <= rep.budget
        assert "smoother@L3" in rep.describe()

    def test_budget_validation(self, A):
        with pytest.raises(ValueError, match="budget"):
            choose_plane(A, 4, budget=0.0)

    def test_budget_seeded_solver_converges(self):
        prob = generate_problem(Subdomain.serial(16, 16, 16))
        b = np.random.default_rng(11).standard_normal(prob.nlocal)
        solver = GMRESIRSolver(
            prob,
            SerialComm(),
            policy=HALF_LADDER_POLICY,
            control=ControlConfig(mode="per-ingredient", budget=1e-2),
        )
        # The chooser overrode the flat ladder: fine smoother above
        # fp16 (kappa forbids it), coarse levels allowed down to fp16.
        assert solver.plane.rung("smoother", 0).bytes > Precision.HALF.bytes
        x, st = solver.solve(b, tol=1e-11, maxiter=300)
        assert st.converged

    def test_budget_rungs_below_the_ladder_can_still_escalate(
        self, monkeypatch
    ):
        """A budget may seed fp16 rungs under an fp16-free ladder; the
        detector must then be enabled (unless escalation=False) or the
        solve would freeze at the fp16 floor and silently fail."""
        from repro.core import BenchmarkConfig
        from repro.core.config import PRECISION_CONTROL_ENV

        monkeypatch.delenv(PRECISION_CONTROL_ENV, raising=False)
        cfg = BenchmarkConfig(
            precision_ladder="fp32:fp64",
            precision_control="per-ingredient",
            precision_budget=1.0,  # loose: everything drops to fp16
        )
        cc = cfg.control_config()
        assert cc.escalation.enabled and cc.active
        prob = generate_problem(Subdomain.serial(16, 16, 16))
        b = np.random.default_rng(7).standard_normal(prob.nlocal)
        solver = GMRESIRSolver(
            prob, SerialComm(), policy=cfg.mixed_policy(), control=cc
        )
        assert solver.plane.rung("smoother", 0) is Precision.HALF
        _, st = solver.solve(b, tol=1e-11, maxiter=200)
        assert st.converged
        assert any(e.from_low is Precision.HALF for e in st.promotions)
        # escalation=False still pins everything.
        pinned = cfg.with_updates(escalation=False).control_config()
        assert not pinned.active

    def test_from_budget_requires_budget(self):
        prob = generate_problem(Subdomain.serial(16, 16, 16))
        with pytest.raises(ValueError, match="budget"):
            PrecisionControlPlane.from_budget(
                ControlConfig(mode="per-ingredient"),
                HALF_LADDER_POLICY,
                4,
                prob.A,
            )


class TestTransferScheduledHierarchy:
    def test_default_transfer_matches_coarse_rung(self, problem16, comm):
        from repro.mg import MGConfig, MultigridPreconditioner

        mg = MultigridPreconditioner.build(
            problem16, comm, MGConfig(), precision="fp16:fp32:fp64"
        )
        # Historical behaviour: each boundary at the coarser level's
        # rung — bitwise compatibility for policy mode.
        assert mg.transfer_schedule == (
            Precision.SINGLE,
            Precision.DOUBLE,
            Precision.DOUBLE,
        )
        assert mg.levels[0].r_c.dtype == np.float32
        assert mg.levels[-1].transfer_precision is None

    def test_explicit_transfer_schedule_sets_buffer_dtypes(
        self, problem16, comm
    ):
        from repro.mg import MGConfig, MultigridPreconditioner

        mg = MultigridPreconditioner.build(
            problem16,
            comm,
            MGConfig(),
            precision="fp32",
            transfer_precision="fp64",
        )
        assert mg.transfer_schedule == (Precision.DOUBLE,) * 3
        assert all(lv.r_c.dtype == np.float64 for lv in mg.levels[:-1])
        dims = mg.level_dims()
        assert dims[0]["transfer_precision"] == "fp64"
        assert dims[-1]["transfer_precision"] is None

    def test_transfer_scheduled_vcycle_tracks_default(self, problem16, comm):
        from repro.mg import MGConfig, MultigridPreconditioner

        base = MultigridPreconditioner.build(
            problem16, comm, MGConfig(), precision="fp32"
        )
        wide = MultigridPreconditioner.build(
            problem16,
            comm,
            MGConfig(),
            precision="fp32",
            transfer_precision="fp64",
        )
        z0 = base.apply(problem16.b.astype(np.float32)).astype(np.float64)
        z1 = wide.apply(problem16.b.astype(np.float32)).astype(np.float64)
        rel = np.linalg.norm(z1 - z0) / np.linalg.norm(z0)
        assert rel < 1e-5  # fp32-roundoff-level agreement


class TestLiveScheduleByteModel:
    def test_transfer_rung_charged_separately(self):
        from repro.perf.scaling import ScalingModel

        model = ScalingModel()
        base = IngredientSchedule(
            matrix=Precision.SINGLE,
            ortho=Precision.SINGLE,
            smoother_levels=(Precision.SINGLE,) * 4,
            transfer_levels=(Precision.SINGLE,) * 3,
        )
        wide_transfer = IngredientSchedule(
            matrix=Precision.SINGLE,
            ortho=Precision.SINGLE,
            smoother_levels=(Precision.SINGLE,) * 4,
            transfer_levels=(Precision.DOUBLE,) * 3,
        )
        assert model.mg_vcycle_bytes(wide_transfer) > model.mg_vcycle_bytes(
            base
        )

    def test_plain_policy_charging_unchanged(self):
        """A PrecisionPolicy has no transfer axis: charged as before
        (the byte-model regression anchor for policy mode).

        The anchor pins the *unfused* configuration to the PR 3
        number; the PR 5 fused-motif pipeline (default) must charge
        the residual check's passes once and come in strictly below.
        """
        from repro.fp import MIXED_DS_POLICY
        from repro.perf.scaling import ScalingModel

        model = ScalingModel(local_dims=(16, 16, 16), restart=30, fusion=False)
        total = model.cycle_traffic_bytes(MIXED_DS_POLICY)["total"]
        assert total == pytest.approx(140338880.0)  # PR 3 baseline
        fused = ScalingModel(local_dims=(16, 16, 16), restart=30)
        assert fused.cycle_traffic_bytes(MIXED_DS_POLICY)["total"] < total

    def test_snapshot_matches_equivalent_policy(self):
        """A seeded (unmoved) plane's snapshot models, per motif, at
        most the whole-policy charge (transfers ride the coarse rung,
        everything else identically)."""
        from repro.perf.scaling import ScalingModel

        model = ScalingModel()
        plane = make_plane(HALF_LADDER_POLICY)
        snap_bytes = model.cycle_traffic_bytes(plane.snapshot())
        pol_bytes = model.cycle_traffic_bytes(
            PrecisionPolicy.from_ladder("fp16:fp32:fp64")
        )
        assert snap_bytes["spmv"] == pol_bytes["spmv"]
        assert snap_bytes["ortho"] == pol_bytes["ortho"]
        assert snap_bytes["halo"] == pol_bytes["halo"]


class TestTimelineMarkers:
    def test_markers_carry_ingredient_and_level(self):
        from repro.trace import promotions_to_timeline

        events = [
            PrecisionEvent(
                5, 1, 0.3, "stall", Precision.HALF, Precision.SINGLE,
                ingredient="smoother", level=2,
            ),
            PrecisionEvent(
                9, 3, 0.1, "recovered", Precision.SINGLE, Precision.HALF,
                ingredient="smoother", level=2, direction="demote",
            ),
        ]
        tl = promotions_to_timeline(events)
        names = [e.name for e in tl.events]
        assert names[0] == "promote[stall] smoother@L2 fp16->fp32"
        assert names[1] == "demote[recovered] smoother@L2 fp32->fp16"

    def test_whole_policy_markers_keep_historical_form(self):
        from repro.trace import promotions_to_timeline

        ev = PrecisionEvent(
            5, 1, 0.3, "floor", Precision.HALF, Precision.SINGLE
        )
        tl = promotions_to_timeline([ev])
        assert tl.events[0].name == "promote[floor] fp16->fp32"

    def test_describe_attributes_the_move(self):
        ev = PrecisionEvent(
            5, 1, 0.3, "stall", Precision.HALF, Precision.SINGLE,
            ingredient="transfer", level=1,
        )
        assert "transfer@L1" in ev.describe()


class TestLadderStrictness:
    def test_from_ladder_rejects_descending_naming_rung(self):
        with pytest.raises(ValueError, match="fp16.*ascend"):
            PrecisionPolicy.from_ladder("fp32:fp16")

    def test_from_ladder_rejects_duplicates_naming_rung(self):
        with pytest.raises(ValueError, match="duplicate rung 'fp16'"):
            PrecisionPolicy.from_ladder("fp16:fp16:fp32")

    def test_config_rejects_non_ascending_ladder(self):
        from repro.core import BenchmarkConfig

        with pytest.raises(ValueError, match="ascend"):
            BenchmarkConfig(precision_ladder="fp32:fp16")

    def test_constructor_schedules_stay_free_form(self):
        # Per-level MG schedules may legitimately descend.
        p = PrecisionPolicy(mg_levels=("fp32", "fp16"))
        assert p.mg_levels == (Precision.SINGLE, Precision.HALF)


class TestConfigAndCLI:
    def test_config_validates_mode_and_budget(self):
        from repro.core import BenchmarkConfig

        with pytest.raises(ValueError, match="precision control"):
            BenchmarkConfig(precision_control="per-kernel")
        with pytest.raises(ValueError, match="precision_budget"):
            BenchmarkConfig(precision_budget=0.0)

    def test_auto_mode_follows_environment(self, monkeypatch):
        from repro.core import BenchmarkConfig
        from repro.core.config import PRECISION_CONTROL_ENV

        cfg = BenchmarkConfig()
        monkeypatch.delenv(PRECISION_CONTROL_ENV, raising=False)
        assert cfg.effective_precision_control == "policy"
        monkeypatch.setenv(PRECISION_CONTROL_ENV, "per-ingredient")
        assert cfg.effective_precision_control == "per-ingredient"
        monkeypatch.setenv(PRECISION_CONTROL_ENV, "bogus")
        with pytest.raises(ValueError, match="bogus"):
            cfg.effective_precision_control

    def test_explicit_mode_wins_over_environment(self, monkeypatch):
        from repro.core import BenchmarkConfig
        from repro.core.config import PRECISION_CONTROL_ENV

        monkeypatch.setenv(PRECISION_CONTROL_ENV, "per-ingredient")
        cfg = BenchmarkConfig(precision_control="off")
        assert cfg.effective_precision_control == "off"

    def test_control_config_carries_detector_and_budget(self, monkeypatch):
        from repro.core import BenchmarkConfig
        from repro.core.config import PRECISION_CONTROL_ENV

        monkeypatch.delenv(PRECISION_CONTROL_ENV, raising=False)
        cfg = BenchmarkConfig(
            precision_ladder="fp16:fp32:fp64",
            precision_control="per-ingredient",
            precision_budget=1e-3,
        )
        cc = cfg.control_config()
        assert cc.mode == "per-ingredient"
        assert cc.escalation.enabled  # fp16 ladder escalates
        assert cc.budget == 1e-3

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "run",
                "--precision-control", "per-ingredient",
                "--precision-budget", "1e-4",
            ]
        )
        assert args.precision_control == "per-ingredient"
        assert args.precision_budget == 1e-4

    def test_report_records_control_mode(self, monkeypatch):
        from repro.core import BenchmarkConfig
        from repro.core.config import PRECISION_CONTROL_ENV

        monkeypatch.delenv(PRECISION_CONTROL_ENV, raising=False)
        cfg = BenchmarkConfig(precision_control="per-ingredient")
        assert cfg.effective_precision_control == "per-ingredient"
