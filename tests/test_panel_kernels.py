"""Panel (multi-RHS) kernel parity (PR 6 tentpole).

Every panel op must be bitwise-equal *per column* to looping its
single-RHS counterpart over the panel — the contract that lets a
single-pass backend amortize the matrix stream across the panel
without perturbing any column's arithmetic.  Checked for every
registered format at every precision rung serially, and through the
distributed operator's ``matvec_panel`` / fused panel residual at 1,
2 and 8 SPMD ranks (``REPRO_RANKS`` override, as in the overlap
suite).
"""

import os

import numpy as np
import pytest
from helpers_distributed import smooth_vector

from repro.backends.dispatch import (
    dot,
    dot_multi,
    spmv,
    spmv_dot,
    spmv_dot_multi,
    spmv_multi,
    symgs_sweep,
    symgs_sweep_multi,
    waxpby,
    waxpby_dot,
    waxpby_dot_multi,
    waxpby_multi,
)
from repro.backends.workspace import Workspace
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.parallel import SerialComm, run_spmd
from repro.solvers.operator import DistributedOperator
from repro.sparse import to_format, to_precision
from repro.sparse.coloring import color_sets, structured_coloring8
from repro.stencil import generate_problem

FORMATS = ("csr", "ell", "sellcs")
PRECISIONS = ("fp64", "fp32", "fp16")
NCOL = 3


def spmd_rank_counts() -> list[int]:
    env = os.environ.get("REPRO_RANKS", "").strip()
    if env:
        return [int(tok) for tok in env.replace(",", " ").split()]
    return [1, 2, 4]


RANKS = spmd_rank_counts()


def run_ranks(nranks: int, fn) -> list:
    if nranks == 1:
        return [fn(SerialComm())]
    return run_spmd(nranks, fn)


def make_panel(n, ncol, dtype, seed=0):
    """Column-major panel of rung-representable test columns."""
    rng = np.random.default_rng(seed)
    X = np.empty((n, ncol), dtype=dtype, order="F")
    for j in range(ncol):
        # Values on a coarse lattice so fp16 represents them exactly.
        X[:, j] = np.round(rng.uniform(-2, 2, size=n) * 8) / 8
    return X


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("prec", PRECISIONS)
class TestSerialPanelParity:
    @pytest.fixture()
    def matrix(self, problem16, fmt, prec):
        return to_precision(to_format(problem16.A, fmt), prec)

    def test_spmv_multi_matches_looped_spmv(self, matrix):
        A = matrix
        X = make_panel(A.ncols, NCOL, A.dtype)
        Y = spmv_multi(A, X)
        assert Y.shape == (A.nrows, NCOL)
        for j in range(NCOL):
            assert np.array_equal(Y[:, j], spmv(A, X[:, j].copy()))

    def test_spmv_multi_out_and_ws(self, matrix):
        A = matrix
        ws = Workspace()
        X = make_panel(A.ncols, NCOL, A.dtype)
        out = ws.get_panel("y", A.nrows, NCOL, A.dtype)
        Y = spmv_multi(A, X, out=out, ws=ws)
        assert Y is out
        for j in range(NCOL):
            assert np.array_equal(Y[:, j], spmv(A, X[:, j].copy()))

    def test_spmv_dot_multi_matches_fused_single(self, matrix):
        A = matrix
        X = make_panel(A.ncols, NCOL, A.dtype)
        B = make_panel(A.nrows, NCOL, A.dtype, seed=1)
        R, locals_sq = spmv_dot_multi(A, X, B)
        assert locals_sq.dtype == np.float64
        for j in range(NCOL):
            r1, l1 = spmv_dot(A, X[:, j].copy(), B[:, j].copy())
            assert np.array_equal(R[:, j], r1)
            assert locals_sq[j] == l1

    def test_symgs_sweep_multi_matches_looped_sweep(self, problem16, matrix):
        A = matrix
        sets = color_sets(structured_coloring8(problem16.sub))
        diag = A.diagonal()
        diag_sets = [diag[rows] for rows in sets]
        R = make_panel(A.nrows, NCOL, A.dtype)
        for direction in ("forward", "backward"):
            Xp = np.zeros((A.ncols, NCOL), dtype=A.dtype, order="F")
            symgs_sweep_multi(A, R, Xp, sets, diag_sets, direction=direction)
            for j in range(NCOL):
                x1 = np.zeros(A.ncols, dtype=A.dtype)
                symgs_sweep(
                    A,
                    R[:, j].copy(),
                    x1,
                    sets,
                    diag_sets,
                    direction=direction,
                )
                assert np.array_equal(Xp[:, j], x1), (direction, j)


@pytest.mark.parametrize("prec", PRECISIONS)
class TestVectorPanelParity:
    """Format-free panel ops (vector motifs) across the rungs."""

    def dtype(self, prec):
        return {"fp64": np.float64, "fp32": np.float32, "fp16": np.float16}[
            prec
        ]

    def test_waxpby_multi(self, prec):
        dt = self.dtype(prec)
        X = make_panel(512, NCOL, dt)
        Y = make_panel(512, NCOL, dt, seed=1)
        W = waxpby_multi(0.5, X, -0.25, Y)
        for j in range(NCOL):
            assert np.array_equal(
                W[:, j], waxpby(0.5, X[:, j].copy(), -0.25, Y[:, j].copy())
            )

    def test_dot_multi(self, prec):
        dt = self.dtype(prec)
        X = make_panel(512, NCOL, dt)
        Y = make_panel(512, NCOL, dt, seed=1)
        d = dot_multi(X, Y)
        assert d.dtype == np.float64
        for j in range(NCOL):
            assert d[j] == dot(X[:, j].copy(), Y[:, j].copy())

    def test_waxpby_dot_multi(self, prec):
        dt = self.dtype(prec)
        X = make_panel(512, NCOL, dt)
        Y = make_panel(512, NCOL, dt, seed=1)
        W, locals_sq = waxpby_dot_multi(1.0, X, -1.0, Y)
        for j in range(NCOL):
            w1, l1 = waxpby_dot(1.0, X[:, j].copy(), -1.0, Y[:, j].copy())
            assert np.array_equal(W[:, j], w1)
            assert locals_sq[j] == l1


class TestGetPanelContract:
    def test_column_major_and_pooled(self):
        ws = Workspace()
        P = ws.get_panel("p", 64, 4, np.float64)
        assert P.shape == (64, 4)
        assert P.flags["F_CONTIGUOUS"]
        assert P[:, 2].flags["C_CONTIGUOUS"]  # columns are contiguous
        assert ws.misses == 1
        P2 = ws.get_panel("p", 64, 4, np.float64)
        assert P2.base is P.base  # same pooled backing buffer
        assert ws.hits == 1

    def test_distinct_widths_distinct_buffers(self):
        ws = Workspace()
        P4 = ws.get_panel("p", 64, 4, np.float64)
        P8 = ws.get_panel("p", 64, 8, np.float64)
        assert P4.base is not P8.base
        assert ws.misses == 2


@pytest.mark.parametrize("nranks", RANKS)
@pytest.mark.parametrize("overlap", [False, True])
class TestDistributedPanelParity:
    def test_matvec_panel_bitwise_per_column(self, nranks, overlap):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            op = DistributedOperator(prob.A, prob.halo, comm, overlap=overlap)
            n = prob.nlocal
            X = np.empty((n, NCOL), order="F")
            for j in range(NCOL):
                X[:, j] = smooth_vector(sub) * (1.0 + 0.5 * j)
            passes0, cols0 = op.matrix_passes, op.rhs_columns
            Y = op.matvec_panel(X)
            assert op.matrix_passes == passes0 + 1  # one pass ...
            assert op.rhs_columns == cols0 + NCOL  # ... N columns
            ok = all(
                np.array_equal(Y[:, j], op.matvec(X[:, j].copy()))
                for j in range(NCOL)
            )
            return bool(ok)

        assert all(run_ranks(nranks, fn))

    def test_residual_panel_matches_single(self, nranks, overlap):
        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
            prob = generate_problem(sub)
            op = DistributedOperator(prob.A, prob.halo, comm, overlap=overlap)
            n = prob.nlocal
            X = np.empty((n, NCOL), order="F")
            B = np.empty((n, NCOL), order="F")
            for j in range(NCOL):
                X[:, j] = smooth_vector(sub) * (1.0 + 0.5 * j)
                B[:, j] = prob.b * (1.0 - 0.25 * j)
            R = np.empty((n, NCOL), order="F")
            locals_sq = op.residual_panel_norm2_local(B, X, out=R)
            ok = True
            for j in range(NCOL):
                r1 = np.empty(n)
                l1 = op.residual_norm2_local(B[:, j].copy(), X[:, j].copy(), out=r1)
                ok = ok and np.array_equal(R[:, j], r1)
                ok = ok and locals_sq[j] == l1
            return bool(ok)

        assert all(run_ranks(nranks, fn))
