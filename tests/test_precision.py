"""Unit tests for the precision framework (repro.fp)."""

import numpy as np
import pytest

from repro.fp import (
    DOUBLE_POLICY,
    MIXED_DS_POLICY,
    Precision,
    PrecisionPolicy,
    as_dtype,
    cast,
    machine_eps,
)


class TestPrecision:
    def test_bytes(self):
        assert Precision.HALF.bytes == 2
        assert Precision.SINGLE.bytes == 4
        assert Precision.DOUBLE.bytes == 8

    def test_bits(self):
        assert Precision.SINGLE.bits == 32
        assert Precision.DOUBLE.bits == 64

    def test_dtype(self):
        assert Precision.SINGLE.dtype == np.float32
        assert Precision.DOUBLE.dtype == np.float64

    def test_eps_values(self):
        assert Precision.DOUBLE.eps == pytest.approx(2.22e-16, rel=1e-2)
        assert Precision.SINGLE.eps == pytest.approx(1.19e-7, rel=1e-2)

    def test_eps_ordering(self):
        assert Precision.HALF.eps > Precision.SINGLE.eps > Precision.DOUBLE.eps

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("fp32", Precision.SINGLE),
            ("single", Precision.SINGLE),
            ("float32", Precision.SINGLE),
            ("FP64", Precision.DOUBLE),
            ("double", Precision.DOUBLE),
            ("half", Precision.HALF),
            (np.float32, Precision.SINGLE),
            (np.dtype("float64"), Precision.DOUBLE),
            (Precision.HALF, Precision.HALF),
        ],
    )
    def test_from_any(self, spec, expected):
        assert Precision.from_any(spec) is expected

    def test_from_any_rejects_unknown_string(self):
        with pytest.raises(ValueError):
            Precision.from_any("quad")

    def test_from_any_error_lists_valid_names(self):
        """Unknown specs like "bf16" get a helpful error naming every
        accepted spelling, not a bare KeyError."""
        with pytest.raises(ValueError) as exc:
            Precision.from_any("bf16")
        msg = str(exc.value)
        assert "bf16" in msg
        for name in ("fp16", "fp32", "fp64", "half", "single", "double"):
            assert name in msg

    def test_from_any_rejects_int_dtype(self):
        with pytest.raises(ValueError, match="fp64"):
            Precision.from_any(np.int32)

    def test_from_any_rejects_non_dtype_object(self):
        with pytest.raises(ValueError, match="fp16"):
            Precision.from_any(object())

    def test_short_name(self):
        assert Precision.SINGLE.short_name == "fp32"
        assert str(Precision.DOUBLE) == "fp64"

    def test_as_dtype_and_eps_helpers(self):
        assert as_dtype("fp32") == np.float32
        assert machine_eps("fp64") == np.finfo(np.float64).eps

    def test_cast_changes_dtype(self):
        x = np.ones(4, dtype=np.float64)
        y = cast(x, "fp32")
        assert y.dtype == np.float32

    def test_cast_noop_returns_same_object(self):
        x = np.ones(4, dtype=np.float32)
        assert cast(x, Precision.SINGLE) is x


class TestPrecisionPolicy:
    def test_double_policy_is_uniform(self):
        assert DOUBLE_POLICY.is_uniform_double
        assert DOUBLE_POLICY.low is Precision.DOUBLE

    def test_mixed_policy_fields(self):
        p = MIXED_DS_POLICY
        assert not p.is_uniform_double
        assert p.matrix is Precision.SINGLE
        assert p.preconditioner is Precision.SINGLE
        assert p.krylov_basis is Precision.SINGLE
        assert p.orthogonalization is Precision.SINGLE
        # The benchmark mandates double outer updates.
        assert p.residual_update is Precision.DOUBLE
        assert p.solution_update is Precision.DOUBLE

    def test_low_is_lowest(self):
        assert MIXED_DS_POLICY.low is Precision.SINGLE
        half = DOUBLE_POLICY.with_low("fp16")
        assert half.low is Precision.HALF

    def test_residual_update_must_be_double(self):
        with pytest.raises(ValueError):
            PrecisionPolicy(residual_update=Precision.SINGLE)

    def test_solution_update_must_be_double(self):
        with pytest.raises(ValueError):
            PrecisionPolicy(solution_update=Precision.SINGLE)

    def test_with_low_preserves_outer(self):
        p = DOUBLE_POLICY.with_low("fp16")
        assert p.residual_update is Precision.DOUBLE
        assert p.matrix is Precision.HALF

    def test_describe(self):
        assert "fp64" in DOUBLE_POLICY.describe()
        assert "fp32" in MIXED_DS_POLICY.describe()

    def test_policy_is_frozen(self):
        with pytest.raises(AttributeError):
            DOUBLE_POLICY.matrix = Precision.SINGLE

    def test_preconditioner_is_fine_level_of_schedule(self):
        assert DOUBLE_POLICY.mg_levels == (Precision.DOUBLE,)
        assert MIXED_DS_POLICY.mg_levels == (Precision.SINGLE,)
        assert MIXED_DS_POLICY.preconditioner is MIXED_DS_POLICY.mg_levels[0]

    def test_with_mg_schedule(self):
        p = DOUBLE_POLICY.with_mg_schedule("fp32:fp64")
        assert p.mg_levels == (Precision.SINGLE, Precision.DOUBLE)
        assert p.matrix is Precision.DOUBLE  # only the schedule changed
