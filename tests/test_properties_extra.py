"""Second round of property-based tests: halos, flop model, policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flops import (
    LevelDims,
    flops_gmres_iteration,
    flops_gmres_solve,
    hierarchy_dims,
    stencil27_nnz,
)
from repro.core.metrics import penalty_factor
from repro.fp import DOUBLE_POLICY, Precision
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.geometry.halo import build_halo_pattern
from repro.mg.multigrid import MGConfig
from repro.perf.kernels import KernelModel
from repro.perf.network import halo_message_counts


class TestHaloProperties:
    @given(
        st.integers(1, 3), st.integers(1, 3), st.integers(1, 3),
        st.integers(2, 5), st.integers(2, 5), st.integers(2, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_ghost_total_equals_send_total_globally(self, px, py, pz, nx, ny, nz):
        """Conservation: total ghosts == total sends across all ranks."""
        pg = ProcessGrid(px, py, pz)
        ghosts = sends = 0
        for r in range(pg.size):
            pat = build_halo_pattern(Subdomain(BoxGrid(nx, ny, nz), pg, r))
            ghosts += pat.n_ghost
            sends += pat.total_send_count
        assert ghosts == sends

    @given(st.integers(2, 8), st.integers(2, 8), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_middle_rank_surface_formula(self, nx, ny, nz):
        """The network model's surface-point count matches the real
        halo pattern of a middle rank."""
        pg = ProcessGrid(3, 3, 3)
        sub = Subdomain(BoxGrid(nx, ny, nz), pg, pg.coords_rank(1, 1, 1))
        pat = build_halo_pattern(sub)
        counts = halo_message_counts((nx, ny, nz))
        assert pat.total_send_count == counts["points"]
        assert len(pat.directions) == counts["messages"]

    @given(st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_interior_boundary_sizes(self, n):
        pg = ProcessGrid(3, 3, 3)
        sub = Subdomain(BoxGrid(n, n, n), pg, pg.coords_rank(1, 1, 1))
        pat = build_halo_pattern(sub)
        assert len(pat.interior_rows) == max(n - 2, 0) ** 3
        assert len(pat.boundary_rows) == n**3 - max(n - 2, 0) ** 3


class TestFlopModelProperties:
    @given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_nnz_bounds(self, nx, ny, nz):
        nnz = stencil27_nnz(nx, ny, nz)
        n = nx * ny * nz
        assert n <= nnz <= 27 * n

    @given(st.integers(8, 64).filter(lambda v: v % 8 == 0), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_iteration_flops_monotone_in_k(self, nx, k):
        dims = hierarchy_dims(nx, nx, nx, 4)
        cfg = MGConfig()
        f_k = sum(flops_gmres_iteration(dims, cfg, k).values())
        f_k1 = sum(flops_gmres_iteration(dims, cfg, k + 1).values())
        assert f_k1 > f_k

    @given(
        st.lists(st.integers(1, 30), min_size=0, max_size=6),
        st.integers(8, 32).filter(lambda v: v % 8 == 0),
    )
    @settings(max_examples=30, deadline=None)
    def test_solve_flops_additive_in_cycles(self, cycles, nx):
        dims = hierarchy_dims(nx, nx, nx, 4)
        cfg = MGConfig()
        total = sum(flops_gmres_solve(dims, cfg, cycles).values())
        parts = sum(
            sum(flops_gmres_solve(dims, cfg, [c]).values()) for c in cycles
        )
        assert total == parts


class TestKernelModelProperties:
    km = KernelModel()

    @given(st.integers(1, 10**7), st.sampled_from(["fp16", "fp32", "fp64"]))
    @settings(max_examples=40, deadline=None)
    def test_bytes_scale_linearly(self, n, prec):
        p = Precision.from_any(prec)
        one = self.km.spmv(n, p).nbytes
        two = self.km.spmv(2 * n, p).nbytes
        assert two == pytest.approx(2 * one, rel=1e-9)

    @given(st.integers(1, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_lower_precision_fewer_bytes(self, n):
        b = {
            p: self.km.gs_sweep(n, Precision.from_any(p)).nbytes
            for p in ("fp16", "fp32", "fp64")
        }
        assert b["fp16"] < b["fp32"] < b["fp64"]

    @given(st.integers(1, 10**6), st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_ortho_ratio_exactly_two(self, n, k):
        b64 = self.km.ortho_cgs2_step(n, k, Precision.DOUBLE).nbytes
        b32 = self.km.ortho_cgs2_step(n, k, Precision.SINGLE).nbytes
        assert b64 == pytest.approx(2 * b32, rel=1e-12)


class TestMetricProperties:
    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_penalty_in_unit_interval(self, n_d, n_ir):
        p = penalty_factor(n_d, n_ir)
        assert 0 < p <= 1.0
        if n_ir <= n_d:
            assert p == 1.0

    @given(st.sampled_from(["fp16", "fp32", "fp64"]))
    @settings(max_examples=10, deadline=None)
    def test_policy_low_roundtrip(self, prec):
        policy = DOUBLE_POLICY.with_low(prec)
        assert policy.low is Precision.from_any(prec)
        assert policy.residual_update is Precision.DOUBLE
