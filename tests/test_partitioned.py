"""Ghost-aware partitioned format: structure, parity, allocations.

Covers the distributed-layout contract (owned columns first, ghost
columns packed at the tail, interior rows touching no ghost column),
the region-confined SELL-C-σ chunking, and the cross-format /
cross-precision parity of the interior+boundary SpMV against the
serial reference — each precision to its rung-appropriate tolerance.
"""

import numpy as np
import pytest
from helpers_distributed import RUNG_TOLS as TOLS
from helpers_distributed import smooth_vector

from repro.backends import Workspace
from repro.backends.dispatch import spmv_boundary, spmv_interior
from repro.fp.precision import Precision
from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.sparse import partition_matrix, to_format, to_precision
from repro.stencil import generate_problem

FORMATS = ("csr", "ell", "sellcs")


def rank_problem(nranks: int = 8, rank: int = 0, dims=(4, 4, 4)):
    """One rank's problem on an ``nranks`` process grid (no comm)."""
    pg = ProcessGrid.from_size(nranks)
    sub = Subdomain(BoxGrid(*dims), pg, rank)
    return generate_problem(sub)


def full_vector_with_ghosts(prob) -> np.ndarray:
    """Owned + ghost values as a single-process halo fill would land them."""
    sub = prob.sub
    pg = sub.proc
    xfull = np.zeros(prob.halo.ncols)
    xfull[: sub.nlocal] = smooth_vector(sub)
    from repro.geometry.halo import opposite_direction

    for d in prob.halo.directions:
        nb = prob.halo.neighbor_ranks[d]
        nb_sub = Subdomain(sub.local, pg, nb)
        nb_halo = generate_problem(nb_sub).halo
        off = prob.halo.ghost_offsets[d]
        cnt = prob.halo.ghost_counts[d]
        seg = slice(sub.nlocal + off, sub.nlocal + off + cnt)
        xfull[seg] = smooth_vector(nb_sub)[nb_halo.send_indices[opposite_direction(d)]]
    return xfull


class TestPartitionStructure:
    def test_row_split_matches_halo_pattern(self):
        prob = rank_problem(8, rank=0)
        P = partition_matrix(prob.A, prob.halo)
        assert np.array_equal(P.interior_rows, prob.halo.interior_rows)
        assert np.array_equal(P.boundary_rows, prob.halo.boundary_rows)
        assert len(P.interior_rows) + len(P.boundary_rows) == P.nlocal
        assert P.ncols == prob.halo.ncols
        assert P.n_ghost == prob.halo.n_ghost

    def test_interior_block_references_no_ghost_column(self):
        """The defining overlap invariant: interior rows are computable
        before the exchange, i.e. their columns are all owned."""
        prob = rank_problem(8, rank=0)
        for fmt in FORMATS:
            P = partition_matrix(to_format(prob.A, fmt), prob.halo)
            csr = P.interior.to_csr()
            assert csr.indices.max(initial=0) < P.nlocal, fmt

    def test_boundary_block_covers_all_ghosts(self):
        """Every ghost column is referenced, and only by boundary rows."""
        prob = rank_problem(8, rank=0)
        P = partition_matrix(prob.A, prob.halo)
        cols = P.boundary.to_csr().indices
        ghost_cols = np.unique(cols[cols >= P.nlocal])
        assert len(ghost_cols) > 0
        full_ghosts = np.unique(
            prob.A.to_csr().indices[prob.A.to_csr().indices >= P.nlocal]
        )
        assert np.array_equal(ghost_cols, full_ghosts)

    def test_shape_mismatch_rejected(self):
        prob = rank_problem(8, rank=0)
        other = generate_problem(Subdomain.serial(4, 4, 4))
        with pytest.raises(ValueError, match="does not match"):
            partition_matrix(other.A, prob.halo)

    def test_sellcs_chunks_never_cross_the_seam(self):
        """σ-sorting runs within each region: every chunk's rows are
        entirely interior or entirely boundary."""
        prob = rank_problem(8, rank=0, dims=(8, 8, 8))
        A = to_format(prob.A, "sellcs")
        P = partition_matrix(A, prob.halo)
        assert P.interior.C == A.C and P.interior.sigma == A.sigma
        # The blocks are chunked independently, so block-internal row
        # ids never index into the other region.
        assert P.interior.nrows == len(P.interior_rows)
        assert P.boundary.nrows == len(P.boundary_rows)
        for blk in (P.interior, P.boundary):
            assert blk.perm.max(initial=-1) < blk.nrows

    def test_interior_fraction(self):
        prob = rank_problem(8, rank=0, dims=(8, 8, 8))
        P = partition_matrix(prob.A, prob.halo)
        # Corner rank of a 2x2x2 grid: 7^3 interior of 8^3 owned.
        assert P.interior_fraction == pytest.approx(343 / 512)

    def test_serial_partition_has_empty_boundary(self):
        prob = generate_problem(Subdomain.serial(4, 4, 4))
        P = partition_matrix(prob.A, prob.halo)
        assert len(P.boundary_rows) == 0
        assert P.interior_fraction == 1.0


class TestPartitionedParity:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("prec", ["fp64", "fp32", "fp16"])
    def test_interior_plus_boundary_matches_reference(self, fmt, prec):
        """Partitioned SpMV == serial fp64 reference, per-rung tolerance."""
        prob = rank_problem(8, rank=0)
        xfull = full_vector_with_ghosts(prob)
        ref = prob.A.spmv(xfull)  # fp64 ELL reference

        A = to_precision(to_format(prob.A, fmt), prec)
        P = partition_matrix(A, prob.halo)
        y = np.zeros(P.nlocal, dtype=A.dtype)
        xcast = xfull.astype(A.dtype)
        spmv_interior(P, xcast, out=y)
        spmv_boundary(P, xcast, out=y)
        rtol, atol = TOLS[prec]
        np.testing.assert_allclose(
            y.astype(np.float64), ref, rtol=rtol, atol=atol
        )

    @pytest.mark.parametrize("fmt", ["csr", "ell"])
    def test_fp64_bitwise_vs_unpartitioned(self, fmt):
        """ELL/CSR blocks preserve within-row slot order, so the
        partitioned product is bitwise-equal to the block-format SpMV."""
        prob = rank_problem(8, rank=0)
        xfull = full_vector_with_ghosts(prob)
        A = to_format(prob.A, fmt)
        P = partition_matrix(A, prob.halo)
        assert np.array_equal(P.spmv(xfull), A.spmv(xfull))

    def test_sellcs_tight_parity_vs_unpartitioned(self):
        """SELL-C-σ re-chunks each region, so padding (and with it the
        pairwise-summation grouping) may differ from the unpartitioned
        layout — last-ulp tolerance, not bitwise."""
        prob = rank_problem(8, rank=0)
        xfull = full_vector_with_ghosts(prob)
        A = to_format(prob.A, "sellcs")
        P = partition_matrix(A, prob.halo)
        np.testing.assert_allclose(
            P.spmv(xfull), A.spmv(xfull), rtol=1e-14, atol=1e-13
        )

    def test_fp16_scales_carried_across_partition(self):
        """Row-equilibration scales are sliced per block, so the fp16
        partitioned operator still presents the original matrix."""
        prob = rank_problem(8, rank=0)
        A16 = to_precision(prob.A, Precision.HALF)
        P = partition_matrix(A16, prob.halo)
        assert hasattr(P.interior, "row_scale")
        assert hasattr(P.boundary, "row_scale")
        np.testing.assert_array_equal(
            P.interior.row_scale, A16.row_scale[P.interior_rows]
        )
        np.testing.assert_array_equal(
            P.boundary.row_scale, A16.row_scale[P.boundary_rows]
        )

    def test_full_spmv_equals_halves(self):
        prob = rank_problem(8, rank=0)
        xfull = full_vector_with_ghosts(prob)
        P = partition_matrix(prob.A, prob.halo)
        y_halves = np.zeros(P.nlocal)
        spmv_interior(P, xfull, out=y_halves)
        spmv_boundary(P, xfull, out=y_halves)
        assert np.array_equal(P.spmv(xfull), y_halves)

    def test_nnz_preserved(self):
        prob = rank_problem(8, rank=0)
        for fmt in FORMATS:
            A = to_format(prob.A, fmt)
            P = partition_matrix(A, prob.halo)
            assert P.nnz == A.nnz, fmt


class TestPartitionedWorkspace:
    def test_spmv_allocation_free_after_warmup(self):
        prob = rank_problem(8, rank=0)
        xfull = full_vector_with_ghosts(prob)
        P = partition_matrix(prob.A, prob.halo)
        ws = Workspace()
        y = np.zeros(P.nlocal)
        spmv_interior(P, xfull, out=y, ws=ws)
        spmv_boundary(P, xfull, out=y, ws=ws)
        misses0 = ws.misses
        for _ in range(3):
            spmv_interior(P, xfull, out=y, ws=ws)
            spmv_boundary(P, xfull, out=y, ws=ws)
        assert ws.misses == misses0
        assert ws.hits > 0


class TestNumbaPanelKernels:
    """PR 8: JIT single-pass panel SpMV on the partitioned regions.

    The numba registrations of ``spmv_interior_multi`` /
    ``spmv_boundary_multi`` stream each region block once per panel
    (the reference loops it once per column); registration is gated on
    numba importing, and when present the kernels must agree with the
    reference column loop to rung tolerance and be exactly
    column-independent (column j of a panel == the 1-wide panel of
    column j).
    """

    PANEL_OPS = ("spmv_interior_multi", "spmv_boundary_multi")

    def test_registrations_gated_on_numba(self):
        from repro.backends import numba_backend
        from repro.backends.registry import registry as proc_reg

        for op in self.PANEL_OPS:
            for prec in ("fp32", "fp64"):
                fn = proc_reg.lookup(op, "partitioned", prec, backend="numba")
                if numba_backend.HAVE_NUMBA:
                    assert fn.__module__ == "repro.backends.numba_backend"
                else:
                    assert fn.__module__ != "repro.backends.numba_backend"
            # fp16 has no jitted region kernel: the rung always resolves
            # to the reference column loop (no hole in the dispatch).
            assert proc_reg.lookup(op, "partitioned", "fp16") is not None

    def _panel(self, prob, dtype, ncol=5):
        xfull = full_vector_with_ghosts(prob)
        X = np.empty((xfull.shape[0], ncol), dtype=dtype, order="F")
        for j in range(ncol):
            X[:, j] = (1.0 + 0.5 * j) * xfull
        return X

    @pytest.mark.parametrize("fmt", ["csr", "ell"])
    @pytest.mark.parametrize("prec", ["fp32", "fp64"])
    def test_single_pass_matches_reference_loop(self, fmt, prec):
        from repro.backends import numba_backend
        from repro.backends.registry import registry as proc_reg

        if not numba_backend.HAVE_NUMBA:
            pytest.skip("numba not installed")
        prob = rank_problem(8, rank=0)
        A = to_precision(to_format(prob.A, fmt), prec)
        P = partition_matrix(A, prob.halo)
        X = self._panel(prob, A.dtype)
        rtol, atol = TOLS[prec]
        for op in self.PANEL_OPS:
            jit = proc_reg.lookup(op, "partitioned", prec, backend="numba")
            ref = proc_reg.lookup(op, "partitioned", prec, backend="numpy")
            Yj = np.zeros((P.nlocal, X.shape[1]), dtype=A.dtype, order="F")
            Yr = np.zeros_like(Yj)
            jit(P, X, out=Yj)
            ref(P, X, out=Yr)
            np.testing.assert_allclose(
                Yj.astype(np.float64),
                Yr.astype(np.float64),
                rtol=rtol,
                atol=atol,
            )

    @pytest.mark.parametrize("fmt", ["csr", "ell"])
    def test_columns_independent_bitwise(self, fmt):
        """Panel column j must be bitwise-identical to solving column j
        as its own 1-wide panel — the property the service's coalescing
        contract (batched == solo) reduces to at the kernel level."""
        from repro.backends import numba_backend
        from repro.backends.registry import registry as proc_reg

        if not numba_backend.HAVE_NUMBA:
            pytest.skip("numba not installed")
        prob = rank_problem(8, rank=0)
        A = to_format(prob.A, fmt)
        P = partition_matrix(A, prob.halo)
        X = self._panel(prob, A.dtype)
        for op in self.PANEL_OPS:
            jit = proc_reg.lookup(op, "partitioned", "fp64", backend="numba")
            Y = np.zeros((P.nlocal, X.shape[1]), dtype=A.dtype, order="F")
            jit(P, X, out=Y)
            for j in range(X.shape[1]):
                yj = np.zeros((P.nlocal, 1), dtype=A.dtype, order="F")
                jit(P, np.asfortranarray(X[:, j : j + 1]), out=yj)
                assert np.array_equal(Y[:, j], yj[:, 0]), (op, j)
