"""Unit tests for level-scheduled triangular solves."""

import numpy as np

from repro.sparse.triangular import (
    level_sets,
    lower_levels,
    solve_lower_levelscheduled,
    solve_upper_levelscheduled,
    split_triangular,
    upper_levels,
)


class TestSplitTriangular:
    def test_parts_sum_to_matrix(self, problem8, rng):
        A = problem8.A
        L, U, diag = split_triangular(A)
        x = rng.standard_normal(A.ncols)
        full = A.spmv(x)
        parts = L.spmv(x) + U.spmv(x) + diag * x[: A.nrows]
        np.testing.assert_allclose(parts, full, rtol=1e-13)

    def test_lower_is_strictly_lower(self, problem8):
        L, _, _ = split_triangular(problem8.A)
        n = L.nrows
        rows = np.arange(n)[:, None]
        mask = L.vals != 0
        assert np.all(L.cols[mask] < np.broadcast_to(rows, L.cols.shape)[mask])

    def test_diag_extracted(self, problem8):
        _, _, diag = split_triangular(problem8.A)
        np.testing.assert_allclose(diag, 26.0)


class TestLevels:
    def test_lower_levels_formula_27pt(self, problem8):
        """For the 27-point stencil the levels are ix + 2*iy + 4*iz."""
        L, _, _ = split_triangular(problem8.A)
        levels = lower_levels(L)
        ix, iy, iz = problem8.sub.local.all_coords()
        np.testing.assert_array_equal(levels, ix + 2 * iy + 4 * iz)

    def test_level_count(self, problem8):
        L, _, _ = split_triangular(problem8.A)
        n = problem8.sub.local.nx
        assert lower_levels(L).max() == (n - 1) + 2 * (n - 1) + 4 * (n - 1)

    def test_levels_respect_dependencies(self, problem8):
        L, _, _ = split_triangular(problem8.A)
        levels = lower_levels(L)
        n = L.nrows
        rows = np.arange(n)[:, None]
        mask = (L.vals != 0) & (L.cols < rows)
        # Every lower neighbor must be in a strictly earlier level.
        nb_levels = np.where(mask, levels[L.cols], -1)
        assert np.all(nb_levels.max(axis=1) < levels)

    def test_upper_levels_symmetric_shape(self, problem8):
        _, U, _ = split_triangular(problem8.A)
        levels = upper_levels(U)
        ix, iy, iz = problem8.sub.local.all_coords()
        n = problem8.sub.local.nx
        expected = ((n - 1) - ix) + 2 * ((n - 1) - iy) + 4 * ((n - 1) - iz)
        np.testing.assert_array_equal(levels, expected)

    def test_level_sets_partition(self, problem8):
        L, _, _ = split_triangular(problem8.A)
        sets = level_sets(lower_levels(L))
        combined = np.sort(np.concatenate(sets))
        assert np.array_equal(combined, np.arange(problem8.nlocal))


def sequential_lower_solve(L_dense, diag, rhs):
    n = len(rhs)
    y = np.zeros(n)
    for i in range(n):
        y[i] = (rhs[i] - L_dense[i, :i] @ y[:i]) / diag[i]
    return y


class TestSolves:
    def test_lower_matches_sequential(self, problem8, rng):
        A = problem8.A
        L, _, diag = split_triangular(A)
        rhs = rng.standard_normal(A.nrows)
        sets = level_sets(lower_levels(L))
        y = solve_lower_levelscheduled(L, diag, rhs, sets)
        y_ref = sequential_lower_solve(L.to_dense()[:, : A.nrows], diag, rhs)
        np.testing.assert_allclose(y, y_ref, rtol=1e-12, atol=1e-12)

    def test_lower_solve_is_exact_inverse(self, problem8, rng):
        A = problem8.A
        L, _, diag = split_triangular(A)
        sets = level_sets(lower_levels(L))
        y = rng.standard_normal(A.nrows)
        # rhs = (D + L) y  =>  solve must return y.
        yfull = np.zeros(A.ncols)
        yfull[: A.nrows] = y
        rhs = L.spmv(yfull) + diag * y
        out = solve_lower_levelscheduled(L, diag, rhs, sets)
        np.testing.assert_allclose(out, y, rtol=1e-12)

    def test_upper_solve_is_exact_inverse(self, problem8, rng):
        A = problem8.A
        _, U, diag = split_triangular(A)
        # Ascending level order: level 0 rows have no upper neighbors.
        sets = level_sets(upper_levels(U))
        y = rng.standard_normal(A.nrows)
        yfull = np.zeros(A.ncols)
        yfull[: A.nrows] = y
        rhs = U.spmv(yfull) + diag * y
        out = solve_upper_levelscheduled(U, diag, rhs, sets)
        np.testing.assert_allclose(out, y, rtol=1e-12)

    def test_out_parameter(self, problem8, rng):
        A = problem8.A
        L, _, diag = split_triangular(A)
        sets = level_sets(lower_levels(L))
        rhs = rng.standard_normal(A.nrows)
        out = np.zeros(A.nrows)
        ret = solve_lower_levelscheduled(L, diag, rhs, sets, out=out)
        assert ret is out
