"""Plan-cache persistence: round-trip, staleness, corruption fallback.

The cache's failure policy is the point under test: it must *never*
take the solver down.  Missing files miss, corrupted files warn and
miss (callers fall back to untuned dispatch), and entries recorded on
another machine are stale — all without raising.
"""

import json
import logging
import os

from repro.tune import DispatchPlan, PlanCache, PlanChoice
from repro.tune.cache import CACHE_VERSION


def make_plan(op_fp="op-a", mach_fp="mach-a", seconds=1.0):
    return DispatchPlan(
        operator_fingerprint=op_fp,
        machine_fingerprint=mach_fp,
        baseline_format="ell",
        baseline_params=(),
        baseline_fusion=True,
        baseline_backend="numpy",
        entries={
            ("spmv", "fp64"): PlanChoice(
                fmt="ell",
                fmt_params=(),
                backend="numpy",
                fused=True,
                seconds=seconds,
                baseline_seconds=2.0,
            )
        },
    )


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = PlanCache(str(tmp_path / "cache.json"))
        plan = make_plan()
        cache.store(plan)
        back = cache.load("op-a", "mach-a")
        assert back is not None
        assert back.entries == plan.entries
        assert back.machine_fingerprint == "mach-a"
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_file_is_a_miss(self, tmp_path):
        cache = PlanCache(str(tmp_path / "nope.json"))
        assert cache.load("op-a", "mach-a") is None
        assert cache.misses == 1 and cache.corrupt == 0

    def test_store_preserves_other_entries(self, tmp_path):
        path = str(tmp_path / "cache.json")
        PlanCache(path).store(make_plan(op_fp="op-a"))
        PlanCache(path).store(make_plan(op_fp="op-b"))
        cache = PlanCache(path)
        assert cache.load("op-a", "mach-a") is not None
        assert cache.load("op-b", "mach-a") is not None
        assert len(cache.entries()) == 2

    def test_store_overwrites_same_key(self, tmp_path):
        cache = PlanCache(str(tmp_path / "cache.json"))
        cache.store(make_plan(seconds=1.0))
        cache.store(make_plan(seconds=0.5))
        back = cache.load("op-a", "mach-a")
        assert back.entries[("spmv", "fp64")].seconds == 0.5
        assert len(cache.entries()) == 1

    def test_concurrent_stores_keep_every_entry(self, tmp_path):
        """The flock around the read-merge-write: interleaved writers
        sharing one cache file must not discard each other's entries."""
        import threading

        path = str(tmp_path / "cache.json")
        fps = [f"op-{i}" for i in range(8)]

        def worker(op_fp):
            PlanCache(path).store(make_plan(op_fp=op_fp))

        threads = [threading.Thread(target=worker, args=(fp,)) for fp in fps]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cache = PlanCache(path)
        for fp in fps:
            assert cache.load(fp, "mach-a") is not None
        assert len(cache.entries()) == len(fps)


class TestStaleness:
    def test_other_machine_key_misses(self, tmp_path):
        cache = PlanCache(str(tmp_path / "cache.json"))
        cache.store(make_plan(mach_fp="mach-a"))
        assert cache.load("op-a", "mach-b") is None
        assert cache.misses == 1

    def test_fingerprint_mismatch_inside_entry_is_stale(
        self, tmp_path, caplog
    ):
        # Hand-edit the file so the key claims mach-b but the payload
        # still says mach-a — a cache copied between machines.
        path = str(tmp_path / "cache.json")
        PlanCache(path).store(make_plan(mach_fp="mach-a"))
        with open(path) as fh:
            data = json.load(fh)
        (key,) = data["plans"]
        data["plans"][key.replace("mach-a", "mach-b")] = data["plans"].pop(key)
        with open(path, "w") as fh:
            json.dump(data, fh)
        cache = PlanCache(path)
        with caplog.at_level(logging.WARNING, logger="repro.tune.cache"):
            assert cache.load("op-a", "mach-b") is None
        assert cache.stale == 1 and cache.misses == 1
        assert any("mismatch" in r.message for r in caplog.records)

    def test_store_self_heals_mismatched_entries(self, tmp_path):
        path = str(tmp_path / "cache.json")
        PlanCache(path).store(make_plan(mach_fp="mach-a"))
        with open(path) as fh:
            data = json.load(fh)
        (key,) = data["plans"]
        data["plans"]["bogus:key"] = data["plans"][key]
        with open(path, "w") as fh:
            json.dump(data, fh)
        cache = PlanCache(path)
        cache.store(make_plan(op_fp="op-b"))
        assert "bogus:key" not in cache.entries()


class TestCorruption:
    def test_garbage_file_warns_and_misses(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        path.write_text("{not json at all")
        cache = PlanCache(str(path))
        with caplog.at_level(logging.WARNING, logger="repro.tune.cache"):
            assert cache.load("op-a", "mach-a") is None
        assert cache.corrupt == 1 and cache.misses == 1
        assert any("unreadable" in r.message for r in caplog.records)

    def test_wrong_layout_warns_and_misses(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 999, "plans": {}}))
        cache = PlanCache(str(path))
        with caplog.at_level(logging.WARNING, logger="repro.tune.cache"):
            assert cache.load("op-a", "mach-a") is None
        assert cache.corrupt == 1

    def test_malformed_entry_warns_and_misses(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps(
                {
                    "version": CACHE_VERSION,
                    "plans": {"op-a:mach-a": {"version": 1}},
                }
            )
        )
        cache = PlanCache(str(path))
        with caplog.at_level(logging.WARNING, logger="repro.tune.cache"):
            assert cache.load("op-a", "mach-a") is None
        assert cache.corrupt == 1 and cache.misses == 1

    def test_corrupt_file_survives_a_store(self, tmp_path):
        # Storing over a corrupted file replaces it with a clean one.
        path = tmp_path / "cache.json"
        path.write_text("{not json at all")
        cache = PlanCache(str(path))
        cache.store(make_plan())
        assert cache.load("op-a", "mach-a") is not None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = PlanCache(str(tmp_path / "cache.json"))
        cache.store(make_plan())
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []

    def test_stats_shape(self, tmp_path):
        cache = PlanCache(str(tmp_path / "cache.json"))
        s = cache.stats()
        assert set(s) == {"path", "hits", "misses", "stale", "corrupt"}
