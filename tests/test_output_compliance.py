"""Tests for the results document writer and the compliance checker."""

import pytest

from repro.core import (
    BenchmarkConfig,
    check_official_compliance,
    official_config,
    parse_results_document,
    run_benchmark,
    save_results_document,
    write_results_document,
)


@pytest.fixture(scope="module")
def result():
    return run_benchmark(
        BenchmarkConfig(
            local_nx=16, nranks=1, max_iters_per_solve=8, validation_max_iters=60
        )
    )


class TestResultsDocument:
    def test_sections_present(self, result):
        doc = write_results_document(result)
        for section in (
            "HPG-MxP-Benchmark:",
            "Machine Summary:",
            "Global Problem Dimensions:",
            "Validation Testing:",
            "Benchmark Phase mxp:",
            "Benchmark Phase double:",
            "Final Summary:",
        ):
            assert section in doc, section

    def test_roundtrip_parse(self, result):
        doc = write_results_document(result)
        data = parse_results_document(doc)
        top = data["HPG-MxP-Benchmark"]
        assert top["Machine Summary"]["Distributed Processes"] == 1
        assert top["Global Problem Dimensions"]["Global nx"] == 16
        assert top["Validation Testing"]["Reference iterations (n_d)"] == (
            result.validation.n_d
        )
        assert top["Final Summary"]["Penalized speedup"] == pytest.approx(
            result.speedup, rel=1e-4
        )

    def test_save_to_file(self, result, tmp_path):
        path = tmp_path / "results.yaml"
        save_results_document(result, str(path))
        assert "Final Summary" in path.read_text()

    def test_motif_sections_populated(self, result):
        data = parse_results_document(write_results_document(result))
        motifs = data["HPG-MxP-Benchmark"]["Benchmark Phase mxp"][
            "Seconds by motif"
        ]
        assert motifs["gs"] > 0
        assert motifs["ortho"] > 0


class TestCompliance:
    def test_scaled_config_flags_deviations(self):
        cfg = BenchmarkConfig(local_nx=16, nranks=1, max_iters_per_solve=10)
        report = check_official_compliance(cfg)
        assert not report.compliant
        joined = " ".join(report.deviations)
        assert "local mesh" in joined
        assert "320" in joined
        assert "max iterations" in joined

    def test_official_config_is_compliant(self):
        cfg = official_config(nranks=8)
        report = check_official_compliance(cfg)
        assert report.compliant, report.deviations

    def test_official_config_large_scale_budget(self):
        cfg = official_config(nranks=1024 * 8)
        assert cfg.time_budget_seconds == 900.0
        assert check_official_compliance(cfg).compliant

    def test_small_scale_budget(self):
        cfg = official_config(nranks=8)
        assert cfg.time_budget_seconds == 1800.0

    def test_nonsymmetric_flagged(self):
        cfg = official_config().with_updates(matrix_kind="nonsymmetric")
        report = check_official_compliance(cfg)
        assert any("nonsymmetric" in d for d in report.deviations)

    def test_ortho_flagged(self):
        cfg = official_config().with_updates(ortho="mgs")
        report = check_official_compliance(cfg)
        assert any("mgs" in d for d in report.deviations)

    def test_report_str(self):
        ok = check_official_compliance(official_config())
        assert "official" in str(ok)
        bad = check_official_compliance(
            BenchmarkConfig(local_nx=16, nranks=1)
        )
        assert "deviations" in str(bad)
