"""Asyncio load smoke for the solver service (PR 8, CI `service` leg).

The service under adversarial concurrency rather than the happy path:
one burst mixing per-request precision knobs (splits into per-ladder
panels, both bitwise-faithful), forced workspace-pool exhaustion
(deterministic rejection of the second batch, then a successful
retry), and cancellation racing a live panel (no arena lease may
leak).  Every scenario closes with the conservation law
``accepted == completed + cancelled + timed_out + pool_rejections``
and an idle pool.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.backends.workspace import WorkspacePool
from repro.fp.policy import DOUBLE_POLICY, PrecisionPolicy
from repro.mg import MGConfig
from repro.parallel import SerialComm
from repro.service import (
    ServiceOverloadedError,
    SolveRequest,
    SolverService,
)
from repro.solvers import GMRESIRSolver

LADDER = "fp32:fp64"


def make_service(**kw) -> SolverService:
    kw.setdefault("batch_window", 0.05)
    kw.setdefault("max_panel", 8)
    kw.setdefault("mg_config", MGConfig(nlevels=2))
    kw.setdefault("restart", 10)
    return SolverService(**kw)


def solo_solve(problem, b, ladder=None, tol=0.0, maxiter=20):
    policy = PrecisionPolicy.from_ladder(ladder) if ladder else DOUBLE_POLICY
    solver = GMRESIRSolver(
        problem,
        SerialComm(),
        policy=policy,
        mg_config=MGConfig(nlevels=2),
        restart=10,
        ortho="cgs2",
        matrix_format="ell",
    )
    return solver.solve(b, tol=tol, maxiter=maxiter)


def rhs(b: np.ndarray, j: int) -> np.ndarray:
    return b * (1.0 + 0.5 * j)


def assert_conserved(svc: SolverService, pool_rejections: int = 0) -> None:
    """Every accepted request resolved exactly one way; pool is idle."""
    m = svc.metrics
    assert m.accepted == m.completed + m.cancelled + m.timed_out + pool_rejections
    assert svc.pool.leased == 0


def test_mixed_precision_burst_splits_and_stays_bitwise(problem16):
    """4 double + 4 mixed-ladder clients in one burst: two panels,
    each client bitwise-equal to its solo solve."""
    ladders = [None, LADDER] * 4  # interleaved arrival order

    async def drive():
        async with make_service() as svc:
            fp = svc.register_operator(problem16)
            resps = await asyncio.gather(
                *(
                    svc.solve(
                        SolveRequest(
                            operator=fp,
                            b=rhs(problem16.b, j),
                            ladder=ladders[j],
                            tol=0.0,
                            maxiter=15,
                        )
                    )
                    for j in range(8)
                )
            )
            return resps, svc

    resps, svc = asyncio.run(drive())
    assert svc.metrics.batches == 2
    assert sorted(svc.metrics.widths) == [4, 4]
    for j, resp in enumerate(resps):
        assert resp.coalesce_width == 4
        x_solo, _ = solo_solve(
            problem16, rhs(problem16.b, j), ladder=ladders[j], maxiter=15
        )
        assert np.array_equal(resp.x, x_solo), f"client {j} diverged"
    assert_conserved(svc)
    assert svc.metrics.completed == 8


def test_forced_pool_exhaustion_then_retry(problem16):
    """Two incompatible batches race one arena: the second is rejected
    with retry-after (never buffered), and its clients succeed on
    retry once the arena frees up."""
    pool = WorkspacePool("load-test", max_arenas=1)

    async def drive():
        async with make_service(pool=pool, retry_after=0.02) as svc:
            fp = svc.register_operator(problem16)
            make = lambda j, it: SolveRequest(  # noqa: E731
                operator=fp, b=rhs(problem16.b, j), tol=0.0, maxiter=it
            )
            # One burst, two compatibility keys (different maxiter):
            # the batcher launches two batches back-to-back; the first
            # leases the only arena before it suspends into its solve
            # thread, so the second's try_acquire deterministically
            # fails.
            reqs = [make(j, 10 if j < 4 else 12) for j in range(8)]
            results = await asyncio.gather(
                *(svc.solve(q) for q in reqs), return_exceptions=True
            )
            rejected = [
                j
                for j, r in enumerate(results)
                if isinstance(r, ServiceOverloadedError)
            ]
            # Exactly one whole key-group bounced; no partial batches.
            assert len(rejected) == 4
            assert len({reqs[j].maxiter for j in rejected}) == 1
            assert all(results[j].retry_after == 0.02 for j in rejected)
            await asyncio.sleep(results[rejected[0]].retry_after)
            retried = await asyncio.gather(*(svc.solve(reqs[j]) for j in rejected))
            return results, rejected, retried, reqs, svc

    results, rejected, retried, reqs, svc = asyncio.run(drive())
    assert pool.exhaustions == 1
    assert pool.leased == 0
    # Retried clients and first-round survivors are all bitwise-faithful.
    for j, resp in zip(rejected, retried):
        x_solo, _ = solo_solve(problem16, rhs(problem16.b, j), maxiter=reqs[j].maxiter)
        assert np.array_equal(resp.x, x_solo)
    survivors = [j for j in range(8) if j not in rejected]
    for j in survivors[:1]:
        x_solo, _ = solo_solve(problem16, rhs(problem16.b, j), maxiter=reqs[j].maxiter)
        assert np.array_equal(results[j].x, x_solo)
    assert_conserved(svc, pool_rejections=4)
    assert svc.metrics.completed == 8  # 4 survivors + 4 retries


def test_cancellation_under_load_leaks_no_lease(problem16):
    """Two of four in-flight columns cancelled mid-solve: survivors
    stay bitwise, the batch's arena comes back, nothing dangles."""

    async def drive():
        async with make_service() as svc:
            fp = svc.register_operator(problem16)
            futs = [
                svc.submit(
                    SolveRequest(
                        operator=fp,
                        b=rhs(problem16.b, j),
                        tol=0.0,
                        maxiter=200,
                    )
                )
                for j in range(4)
            ]
            await asyncio.sleep(0.2)  # batch launched, panel in flight
            futs[0].cancel()
            futs[2].cancel()
            resps = await asyncio.gather(*futs, return_exceptions=True)
            return resps, svc

    resps, svc = asyncio.run(drive())
    assert isinstance(resps[0], asyncio.CancelledError)
    assert isinstance(resps[2], asyncio.CancelledError)
    assert svc.metrics.cancelled == 2
    assert svc.metrics.completed == 2
    assert svc.pool.leased == 0
    assert svc.pool.peak_leased == 1
    x_solo, _ = solo_solve(problem16, rhs(problem16.b, 1), maxiter=200)
    assert np.array_equal(resps[1].x, x_solo)
    assert_conserved(svc)


def test_sustained_rounds_reuse_warm_arena(problem16):
    """Round after round of coalesced traffic: one warm arena serves
    every batch (no pool growth) and the setup cache converges to an
    all-hit regime after the first round."""
    rounds, clients = 4, 6

    async def drive():
        async with make_service() as svc:
            fp = svc.register_operator(problem16)
            for _ in range(rounds):
                resps = await asyncio.gather(
                    *(
                        svc.solve(
                            SolveRequest(
                                operator=fp,
                                b=rhs(problem16.b, j),
                                tol=0.0,
                                maxiter=5,
                            )
                        )
                        for j in range(clients)
                    )
                )
                assert len(resps) == clients
            return svc

    svc = asyncio.run(drive())
    m = svc.metrics
    assert m.batches == rounds
    assert m.coalesce_width == clients
    assert m.completed == rounds * clients
    # One arena, leased and released once per round, warm after round 1.
    assert svc.pool.peak_leased == 1
    assert svc.pool.acquires == rounds
    assert svc.pool.reuses == rounds - 1
    assert m.setup_cache_hit_rate == pytest.approx((rounds - 1) / rounds)
    assert_conserved(svc)
