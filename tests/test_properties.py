"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import BoxGrid, ProcessGrid, Subdomain, factor3d
from repro.geometry.halo import build_halo_pattern
from repro.solvers.givens import GivensQR, givens_coefficients
from repro.sparse import (
    CSRMatrix,
    color_sets,
    jpl_coloring,
    validate_coloring,
)
from repro.sparse.reorder import inverse_permutation, permute_symmetric
from repro.stencil import generate_problem
from repro.core.flops import stencil27_nnz

dims = st.integers(min_value=1, max_value=6)


@st.composite
def random_csr(draw, max_n=24):
    """A random square CSR matrix with nonzero diagonal."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    density = draw(st.floats(min_value=0.02, max_value=0.4))
    rng = np.random.default_rng(seed)
    import scipy.sparse as sp

    m = sp.random(n, n, density=density, random_state=rng, format="lil")
    m.setdiag(rng.random(n) + 1.0)
    m = m.tocsr()
    m.data = m.data + 0.1  # avoid stored zeros
    return CSRMatrix.from_scipy(m)


class TestFormatProperties:
    @given(random_csr())
    @settings(max_examples=40, deadline=None)
    def test_ell_csr_roundtrip(self, A):
        B = A.to_ell().to_csr()
        assert (A.to_scipy() != B.to_scipy()).nnz == 0

    @given(random_csr(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_spmv_formats_agree(self, A, seed):
        x = np.random.default_rng(seed).standard_normal(A.ncols)
        np.testing.assert_allclose(
            A.spmv(x), A.to_ell().spmv(x), rtol=1e-11, atol=1e-12
        )

    @given(random_csr(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_spmv_linearity(self, A, seed):
        rng = np.random.default_rng(seed)
        x, y = rng.standard_normal((2, A.ncols))
        a, b = rng.standard_normal(2)
        np.testing.assert_allclose(
            A.spmv(a * x + b * y),
            a * A.spmv(x) + b * A.spmv(y),
            rtol=1e-9,
            atol=1e-9,
        )

    @given(random_csr())
    @settings(max_examples=30, deadline=None)
    def test_diagonal_matches_scipy(self, A):
        np.testing.assert_allclose(A.diagonal(), A.to_scipy().diagonal())


class TestColoringProperties:
    @given(random_csr(max_n=30), st.integers(0, 10000))
    @settings(max_examples=30, deadline=None)
    def test_jpl_valid_on_random_graphs(self, A, seed):
        # Symmetrize the pattern so coloring is meaningful.
        sp_m = A.to_scipy()
        sym = (sp_m + sp_m.T).tocsr()
        sym.data[:] = 1.0
        A_sym = CSRMatrix.from_scipy(sym).to_ell()
        colors = jpl_coloring(A_sym, seed=seed)
        assert validate_coloring(A_sym, colors)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_color_sets_partition(self, colors_list):
        colors = np.array(colors_list, dtype=np.int32)
        sets = color_sets(colors)
        combined = np.sort(np.concatenate(sets)) if sets else np.array([])
        assert np.array_equal(combined, np.arange(len(colors)))
        for c, s in enumerate(sets):
            assert np.all(colors[s] == c)


class TestPermutationProperties:
    @given(st.integers(1, 200), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_inverse_permutation(self, n, seed):
        p = np.random.default_rng(seed).permutation(n)
        inv = inverse_permutation(p)
        assert np.array_equal(p[inv], np.arange(n))
        assert np.array_equal(inv[p], np.arange(n))

    @given(random_csr(max_n=20), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_symmetric_permutation_similarity(self, A, seed):
        """P A P^T has the same spectrum-defining dense matrix."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(A.nrows)
        B = permute_symmetric(A.to_ell(), perm)
        dense_A = A.to_scipy().toarray()
        dense_B = B.to_dense()
        # B[new_i, new_j] == A[old_i, old_j]
        np.testing.assert_allclose(dense_B[np.ix_(perm, perm)], dense_A, atol=1e-14)


class TestGeometryProperties:
    @given(st.integers(1, 256))
    @settings(max_examples=60, deadline=None)
    def test_factor3d_product(self, p):
        px, py, pz = factor3d(p)
        assert px * py * pz == p

    @given(dims, dims, dims)
    @settings(max_examples=40, deadline=None)
    def test_linear_index_bijective(self, nx, ny, nz):
        g = BoxGrid(nx, ny, nz)
        i = np.arange(g.npoints)
        assert np.array_equal(g.linear_index(*g.coords(i)), i)

    @given(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_stencil_nnz_formula(self, nx, ny, nz):
        prob = generate_problem(Subdomain.serial(nx, ny, nz))
        assert prob.A.nnz == stencil27_nnz(nx, ny, nz)

    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3), dims)
    @settings(max_examples=25, deadline=None)
    def test_ghost_counts_symmetric_across_pairs(self, px, py, pz, n):
        """What rank a sends to rank b equals what b expects from a."""
        from repro.geometry.halo import opposite_direction

        pg = ProcessGrid(px, py, pz)
        n = max(n, 2)
        patterns = [
            build_halo_pattern(Subdomain(BoxGrid(n, n, n), pg, r))
            for r in range(pg.size)
        ]
        for r, pat in enumerate(patterns):
            for d, nb in pat.neighbor_ranks.items():
                nb_pat = patterns[nb]
                send = nb_pat.send_indices[opposite_direction(d)]
                assert len(send) == pat.ghost_counts[d]


class TestGivensProperties:
    @given(
        st.floats(-1e6, 1e6, allow_nan=False),
        st.floats(-1e6, 1e6, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_rotation_is_orthogonal(self, a, b):
        c, s, r = givens_coefficients(a, b)
        assert c * c + s * s == pytest.approx(1.0, rel=1e-12)
        assert -s * a + c * b == pytest.approx(0.0, abs=1e-6 * (abs(a) + abs(b) + 1))

    @given(st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_implicit_residual_decreases(self, m, seed):
        """The least-squares residual is non-increasing in k."""
        rng = np.random.default_rng(seed)
        qr = GivensQR(m)
        qr.start(1.0)
        prev = 1.0
        for j in range(m):
            col = rng.standard_normal(j + 2)
            rho = qr.add_column(col)
            assert rho <= prev + 1e-12
            prev = rho


class TestSolverProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_gmres_solves_random_rhs(self, seed):
        """GMRES must solve the 8^3 system for arbitrary rhs."""
        from repro.mg import MGConfig
        from repro.parallel import SerialComm
        from repro.solvers import GMRESIRSolver

        prob = generate_problem(Subdomain.serial(8, 8, 8))
        solver = GMRESIRSolver(
            prob, SerialComm(), mg_config=MGConfig(nlevels=2)
        )
        b = np.random.default_rng(seed).standard_normal(prob.nlocal)
        x, stats = solver.solve(b, tol=1e-8, maxiter=300)
        assert stats.converged
        r = b - prob.A.spmv(x)
        assert np.linalg.norm(r) <= 1e-8 * np.linalg.norm(b) * 1.01
