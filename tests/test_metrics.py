"""Unit tests for benchmark metrics and penalty."""

import pytest

from repro.core.metrics import PhaseMetrics, motif_speedups, penalty_factor


class TestPenalty:
    def test_penalizes_when_ir_slower(self):
        assert penalty_factor(2305, 2382) == pytest.approx(0.9677, rel=1e-3)

    def test_no_bonus_when_ir_faster(self):
        """Ratio > 1 is clamped: no advantage for faster convergence."""
        assert penalty_factor(100, 80) == 1.0

    def test_equal(self):
        assert penalty_factor(50, 50) == 1.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            penalty_factor(10, 0)


def make_phase(label, penalty=1.0, scale=1.0):
    return PhaseMetrics(
        label=label,
        flops_by_motif={"gs": 1000, "spmv": 500, "ortho": 400},
        seconds_by_motif={"gs": 1.0 * scale, "spmv": 0.4 * scale, "ortho": 0.2 * scale},
        total_seconds=1.6 * scale,
        iterations=10,
        penalty=penalty,
    )


class TestPhaseMetrics:
    def test_total_flops(self):
        assert make_phase("x").total_flops == 1900

    def test_gflops_raw(self):
        p = make_phase("x")
        assert p.gflops_raw == pytest.approx(1900 / 1.6 / 1e9)

    def test_penalty_applied(self):
        p = make_phase("x", penalty=0.9)
        assert p.gflops == pytest.approx(p.gflops_raw * 0.9)

    def test_zero_time(self):
        p = PhaseMetrics(label="x")
        assert p.gflops == 0.0

    def test_motif_gflops(self):
        p = make_phase("x")
        assert p.motif_gflops("gs") == pytest.approx(1000 / 1.0 / 1e9)
        assert p.motif_gflops("missing") == 0.0

    def test_time_fractions_sum_to_one(self):
        fr = make_phase("x").time_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)


class TestMotifSpeedups:
    def test_speedup_is_time_ratio_with_penalty(self):
        mxp = make_phase("mxp", penalty=0.95, scale=0.6)
        dbl = make_phase("double", penalty=1.0, scale=1.0)
        s = motif_speedups(mxp, dbl)
        # Same flops both phases: speedup = (t_d / t_m) * penalty.
        assert s["gs"] == pytest.approx(1.0 / 0.6 * 0.95)
        assert s["total"] == pytest.approx((1.6 / 0.96) * 0.95)

    def test_restricted_motifs(self):
        mxp = make_phase("mxp", scale=0.5)
        dbl = make_phase("double")
        s = motif_speedups(mxp, dbl, motifs=("gs",))
        assert set(s) == {"gs", "total"}
