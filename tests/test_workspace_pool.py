"""Leased workspace pool (PR 6): bounded arenas with warm reuse.

PR 8 extends the pool into the solver service's admission-control
backend: ``try_acquire`` returns ``None`` instead of raising (the
load-shedding entry point), and lease accounting (``acquires`` /
``reuses`` / ``exhaustions`` / ``peak_leased``) feeds the service
telemetry.  The tracemalloc test pins the property the service phase
leans on: a released arena's next lease re-warms *nothing*.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.backends.workspace import Workspace, WorkspacePool


class TestWorkspacePool:
    def test_acquire_release_roundtrip(self):
        pool = WorkspacePool("test", max_arenas=2)
        ws = pool.acquire()
        assert isinstance(ws, Workspace)
        assert pool.leased == 1
        assert pool.available == 1
        pool.release(ws)
        assert pool.leased == 0
        assert pool.available == 2

    def test_released_arena_stays_warm(self):
        pool = WorkspacePool(max_arenas=1)
        ws = pool.acquire()
        buf = ws.get("v", 128, np.float64)
        pool.release(ws)
        ws2 = pool.acquire()
        assert ws2 is ws  # warm arena preferred
        assert ws2.get("v", 128, np.float64) is buf  # buffers survive
        assert pool.reuses == 1

    def test_exhaustion_raises_with_clear_message(self):
        pool = WorkspacePool("panel-bench", max_arenas=2)
        pool.acquire()
        pool.acquire()
        assert pool.available == 0
        with pytest.raises(RuntimeError, match="exhausted"):
            pool.acquire()
        with pytest.raises(
            RuntimeError,
            match=r"workspace pool 'panel-bench' exhausted: all 2 arenas "
            r"are leased; release one or raise max_arenas",
        ):
            pool.acquire()

    def test_release_after_exhaustion_recovers(self):
        pool = WorkspacePool(max_arenas=1)
        ws = pool.acquire()
        with pytest.raises(RuntimeError):
            pool.acquire()
        pool.release(ws)
        assert pool.acquire() is ws

    def test_release_without_acquire_rejected(self):
        pool = WorkspacePool()
        with pytest.raises(RuntimeError, match="without a matching"):
            pool.release(Workspace())

    def test_max_arenas_validated(self):
        with pytest.raises(ValueError):
            WorkspacePool(max_arenas=0)

    def test_nbytes_counts_free_arenas(self):
        pool = WorkspacePool(max_arenas=2)
        ws = pool.acquire()
        ws.get("v", 1024, np.float64)
        assert pool.nbytes == 0  # leased arenas are the lessee's
        pool.release(ws)
        assert pool.nbytes == 1024 * 8


class TestPoolBackpressure:
    """Lease accounting + load shedding (PR 8 service integration)."""

    def test_try_acquire_returns_none_on_exhaustion(self):
        pool = WorkspacePool("svc", max_arenas=1)
        ws = pool.try_acquire()
        assert isinstance(ws, Workspace)
        assert pool.try_acquire() is None  # shed, don't raise
        assert pool.exhaustions == 1
        assert pool.try_acquire() is None
        assert pool.exhaustions == 2
        pool.release(ws)
        assert pool.try_acquire() is ws  # recovered, warm

    def test_raising_acquire_also_counts_exhaustions(self):
        pool = WorkspacePool(max_arenas=1)
        pool.acquire()
        with pytest.raises(RuntimeError, match="exhausted"):
            pool.acquire()
        assert pool.exhaustions == 1

    def test_lease_accounting_counters(self):
        pool = WorkspacePool(max_arenas=3)
        a, b = pool.acquire(), pool.acquire()
        assert pool.acquires == 2
        assert pool.peak_leased == 2
        assert pool.reuses == 0  # both arenas were fresh
        pool.release(a)
        pool.release(b)
        c = pool.acquire()  # warm
        assert pool.acquires == 3
        assert pool.reuses == 1
        assert pool.peak_leased == 2  # high-water mark, not current
        assert pool.leased == 1
        pool.release(c)

    def test_warm_release_allocates_nothing(self):
        """A re-leased arena serves its buffers without a single new
        array allocation — the zero-allocation contract the service's
        steady-state rounds depend on (same tracemalloc idiom as
        test_alloc_regression.py)."""
        n = 4096
        vector_bytes = n * 8
        pool = WorkspacePool("warm", max_arenas=1)

        def lease_and_work():
            ws = pool.acquire()
            ws.get("x", n, np.float64)
            ws.get_panel("B", n, 8, np.float64)
            ws.get("tmp", n, np.float32)
            pool.release(ws)

        lease_and_work()  # warmup lease allocates every buffer

        gc.collect()
        tracemalloc.start(15)
        snap1 = tracemalloc.take_snapshot()
        for _ in range(3):
            lease_and_work()
        snap2 = tracemalloc.take_snapshot()
        tracemalloc.stop()

        diff = snap2.compare_to(snap1, "traceback")
        offenders = [d for d in diff if d.size_diff > vector_bytes]
        assert not offenders, (
            "warm re-lease allocated array-sized memory:\n"
            + "\n".join(
                f"{d.size_diff} B: " + "\n".join(d.traceback.format())
                for d in offenders
            )
        )
