"""Leased workspace pool (PR 6): bounded arenas with warm reuse."""

import numpy as np
import pytest

from repro.backends.workspace import Workspace, WorkspacePool


class TestWorkspacePool:
    def test_acquire_release_roundtrip(self):
        pool = WorkspacePool("test", max_arenas=2)
        ws = pool.acquire()
        assert isinstance(ws, Workspace)
        assert pool.leased == 1
        assert pool.available == 1
        pool.release(ws)
        assert pool.leased == 0
        assert pool.available == 2

    def test_released_arena_stays_warm(self):
        pool = WorkspacePool(max_arenas=1)
        ws = pool.acquire()
        buf = ws.get("v", 128, np.float64)
        pool.release(ws)
        ws2 = pool.acquire()
        assert ws2 is ws  # warm arena preferred
        assert ws2.get("v", 128, np.float64) is buf  # buffers survive
        assert pool.reuses == 1

    def test_exhaustion_raises_with_clear_message(self):
        pool = WorkspacePool("panel-bench", max_arenas=2)
        pool.acquire()
        pool.acquire()
        assert pool.available == 0
        with pytest.raises(RuntimeError, match="exhausted"):
            pool.acquire()
        with pytest.raises(
            RuntimeError,
            match=r"workspace pool 'panel-bench' exhausted: all 2 arenas "
            r"are leased; release one or raise max_arenas",
        ):
            pool.acquire()

    def test_release_after_exhaustion_recovers(self):
        pool = WorkspacePool(max_arenas=1)
        ws = pool.acquire()
        with pytest.raises(RuntimeError):
            pool.acquire()
        pool.release(ws)
        assert pool.acquire() is ws

    def test_release_without_acquire_rejected(self):
        pool = WorkspacePool()
        with pytest.raises(RuntimeError, match="without a matching"):
            pool.release(Workspace())

    def test_max_arenas_validated(self):
        with pytest.raises(ValueError):
            WorkspacePool(max_arenas=0)

    def test_nbytes_counts_free_arenas(self):
        pool = WorkspacePool(max_arenas=2)
        ws = pool.acquire()
        ws.get("v", 1024, np.float64)
        assert pool.nbytes == 0  # leased arenas are the lessee's
        pool.release(ws)
        assert pool.nbytes == 1024 * 8
