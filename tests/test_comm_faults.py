"""Message-layer faults: deadlines, typed timeouts, FaultyComm.

Acceptance contracts under test:

- a receive that misses its deadline raises a typed, diagnosable
  :class:`~repro.parallel.comm.CommTimeoutError` (rank, source, tag,
  seconds) on every API that waits (``recv``, ``recv_into``,
  ``RecvRequest.wait``) — never a silent multi-rank hang;
- a dropped halo message surfaces as a ``CommTimeoutError`` on the
  waiting rank within the exchange deadline while the unaffected
  ranks complete normally;
- ``corrupt``/``delay``/``straggle`` faults perturb the transport
  without deadlocking it;
- the halo sequence tags rotate through their window so a delayed
  round-``k`` message can never satisfy a round-``k+1`` receive.

Rank counts come from ``REPRO_RANKS`` (the CI resilience matrix legs
set 1, 2 and 8), defaulting to ``1,2,4`` for local runs.
"""

import os
import time

import numpy as np
import pytest

from repro.geometry import BoxGrid, ProcessGrid, Subdomain
from repro.parallel import CommTimeoutError, HaloExchange, run_spmd
from repro.parallel.halo_exchange import HALO_SEQ_STRIDE, HALO_SEQ_WINDOW
from repro.resilience import FaultyComm, parse_fault_spec
from repro.resilience.faults import FAULT_DELAY_SECONDS
from repro.stencil import generate_problem


def spmd_rank_counts() -> list[int]:
    """Rank counts under test (``REPRO_RANKS`` env override)."""
    env = os.environ.get("REPRO_RANKS", "").strip()
    if env:
        return [int(tok) for tok in env.replace(",", " ").split()]
    return [1, 2, 4]


RANKS = spmd_rank_counts()
MULTI_RANKS = [n for n in RANKS if n > 1] or [2]

#: Generous bound on how late past its deadline a timeout may surface
#: (thread scheduling on loaded CI runners).
SLACK = 2.0


def make_exchange(comm, deadline=None, injector=None):
    """One rank's 4^3 problem + halo exchange, optionally faulty."""
    pg = ProcessGrid.from_size(comm.size)
    sub = Subdomain(BoxGrid(4, 4, 4), pg, comm.rank)
    prob = generate_problem(sub)
    use = comm if injector is None else FaultyComm(comm, injector)
    halo = HaloExchange(prob.halo, use, deadline=deadline)
    xfull = halo.full_vector(np.arange(sub.nlocal, dtype=np.float64))
    return halo, xfull


class TestCommTimeoutError:
    def test_attributes_and_message(self):
        exc = CommTimeoutError(3, 1, 42, 0.5)
        assert (exc.rank, exc.source, exc.tag, exc.seconds) == (3, 1, 42, 0.5)
        msg = str(exc)
        assert "rank 3" in msg and "src=1" in msg and "tag=42" in msg
        assert isinstance(exc, RuntimeError)

    def test_recv_times_out(self):
        def fn(comm):
            if comm.rank != 1:
                return None
            t0 = time.perf_counter()
            try:
                comm.recv(0, 99, timeout=0.05)
            except CommTimeoutError as exc:
                return (time.perf_counter() - t0, exc.rank, exc.source)
            return "no timeout"

        _, got = run_spmd(2, fn)
        elapsed, rank, source = got
        assert (rank, source) == (1, 0)
        assert 0.05 <= elapsed < 0.05 + SLACK

    def test_recv_into_times_out(self):
        def fn(comm):
            if comm.rank != 1:
                return True
            out = np.zeros(4)
            try:
                comm.recv_into(0, 99, out, timeout=0.05)
            except CommTimeoutError:
                return True
            return False

        assert all(run_spmd(2, fn))

    def test_irecv_wait_times_out(self):
        def fn(comm):
            if comm.rank != 1:
                return True
            req = comm.irecv(0, 99, timeout=0.05)
            try:
                req.wait()
            except CommTimeoutError:
                return True
            return False

        assert all(run_spmd(2, fn))

    def test_late_message_still_arrives_within_deadline(self):
        def fn(comm):
            if comm.rank == 0:
                time.sleep(0.05)
                comm.send(np.full(3, 7.0), dest=1, tag=5)
                return True
            got = comm.recv(0, 5, timeout=5.0)
            return bool(np.all(got == 7.0))

        assert all(run_spmd(2, fn))


class TestDroppedHalo:
    @pytest.mark.parametrize("nranks", MULTI_RANKS)
    def test_drop_raises_typed_timeout_within_deadline(self, nranks):
        """One dropped message -> exactly one rank times out, typed,
        within the deadline; everyone else completes."""
        plan = parse_fault_spec("halo:drop;seed=3")
        deadline = 0.25

        def fn(comm):
            halo, xfull = make_exchange(
                comm, deadline=deadline, injector=plan.injector(comm.rank)
            )
            t0 = time.perf_counter()
            try:
                halo.exchange(xfull)
            except CommTimeoutError as exc:
                return ("timeout", time.perf_counter() - t0, exc.seconds)
            return ("ok", time.perf_counter() - t0, None)

        results = run_spmd(nranks, fn)
        outcomes = [r[0] for r in results]
        assert outcomes.count("timeout") == 1
        for outcome, elapsed, seconds in results:
            if outcome == "timeout":
                assert seconds == deadline
                assert elapsed < deadline + SLACK

    @pytest.mark.parametrize("nranks", MULTI_RANKS)
    def test_corrupt_and_delay_complete_without_deadlock(self, nranks):
        plan = parse_fault_spec("halo:corrupt;halo:delay;seed=5")

        def fn(comm):
            injector = plan.injector(comm.rank)
            halo, xfull = make_exchange(
                comm, deadline=5.0, injector=injector
            )
            # Two rounds: at p=2 the victim posts only one message per
            # exchange, so the second clause drains on round two.
            halo.exchange(xfull)  # must not raise
            halo.exchange(xfull)
            return injector.stats.injected_total

        results = run_spmd(nranks, fn)
        # Both faults fire on the victim rank (rank 0) only.
        assert results[0] == 2
        assert all(r == 0 for r in results[1:])

    @pytest.mark.parametrize("nranks", MULTI_RANKS)
    def test_corrupted_payload_differs_from_clean_exchange(self, nranks):
        plan = parse_fault_spec("halo:corrupt;seed=5")

        def fn(comm):
            halo, xfull = make_exchange(comm, deadline=5.0)
            halo.exchange(xfull)
            bad_halo, bad_xfull = make_exchange(
                comm, deadline=5.0, injector=plan.injector(comm.rank)
            )
            bad_halo.exchange(bad_xfull)
            return bool(np.array_equal(xfull, bad_xfull))

        results = run_spmd(nranks, fn)
        # Exactly one receiver of rank 0's corrupted message sees a
        # perturbed ghost block; owned values never change.
        assert results.count(False) == 1

    @pytest.mark.parametrize("nranks", MULTI_RANKS)
    def test_straggler_delays_collective(self, nranks):
        plan = parse_fault_spec("halo:straggle;seed=1")

        def fn(comm):
            injector = plan.injector(comm.rank)
            fcomm = FaultyComm(comm, injector)
            t0 = time.perf_counter()
            total = fcomm.allreduce(1.0)
            return total, time.perf_counter() - t0

        results = run_spmd(nranks, fn)
        assert all(total == nranks for total, _ in results)
        # The straggle sleep happens before the collective, so every
        # rank waits out the slow one.
        assert all(
            elapsed >= FAULT_DELAY_SECONDS for _, elapsed in results
        )


class TestSequenceTags:
    def test_seq_offsets_rotate_through_window(self, problem16):
        from repro.parallel import SerialComm

        halo = HaloExchange(problem16.halo, SerialComm())
        offs = [halo._seq_offset() for _ in range(HALO_SEQ_WINDOW + 1)]
        assert offs[:HALO_SEQ_WINDOW] == [
            HALO_SEQ_STRIDE * k for k in range(HALO_SEQ_WINDOW)
        ]
        assert offs[HALO_SEQ_WINDOW] == offs[0]

    @pytest.mark.parametrize("nranks", MULTI_RANKS)
    def test_repeated_exchanges_stay_correct(self, nranks):
        """Several rounds over one exchange object: the rotating tags
        must keep every round's ghosts consistent with a fresh
        single-round exchange."""

        def fn(comm):
            halo, xfull = make_exchange(comm)
            reference = xfull.copy()
            ref_halo, _ = make_exchange(comm)
            ref_halo.exchange(reference)
            ok = True
            for _ in range(HALO_SEQ_WINDOW + 2):
                xfull[halo.nlocal :] = -1.0  # poison ghosts
                halo.exchange(xfull)
                ok &= np.array_equal(xfull, reference)
            return ok

        assert all(run_spmd(nranks, fn))
