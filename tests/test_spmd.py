"""Unit tests for the thread-based SPMD runtime."""

import numpy as np
import pytest

from repro.parallel import SerialComm, ddot, dnorm2, run_spmd
from repro.parallel.distributed import dmatvec_block


class TestSerialComm:
    def test_rank_size(self):
        c = SerialComm()
        assert c.rank == 0
        assert c.size == 1
        assert c.is_serial

    def test_allreduce_scalar_identity(self):
        assert SerialComm().allreduce(3.5) == 3.5

    def test_allreduce_array_copies(self):
        c = SerialComm()
        x = np.ones(3)
        y = c.allreduce(x)
        assert y is not x
        np.testing.assert_array_equal(y, x)

    def test_allgather(self):
        assert SerialComm().allgather("v") == ["v"]

    def test_bcast(self):
        assert SerialComm().bcast({"a": 1}) == {"a": 1}

    def test_send_raises(self):
        with pytest.raises(RuntimeError):
            SerialComm().send(np.ones(1), 0, 0)

    def test_stats_counted(self):
        c = SerialComm()
        c.allreduce(1.0)
        c.barrier()
        assert c.stats.allreduces == 1
        assert c.stats.barriers == 1


class TestRunSPMD:
    def test_returns_per_rank_results(self):
        results = run_spmd(4, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_passes_args(self):
        results = run_spmd(2, lambda comm, a, b=0: a + b + comm.rank, 5, b=2)
        assert results == [7, 8]

    def test_exception_propagates_with_rank(self):
        def fail(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 2"):
            run_spmd(4, fail)

    def test_single_rank(self):
        assert run_spmd(1, lambda comm: comm.size) == [1]

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)


class TestCollectives:
    def test_allreduce_sum_scalar(self):
        results = run_spmd(5, lambda comm: comm.allreduce(float(comm.rank)))
        assert all(r == 10.0 for r in results)

    def test_allreduce_max_min(self):
        assert run_spmd(4, lambda c: c.allreduce(c.rank, op="max")) == [3] * 4
        assert run_spmd(4, lambda c: c.allreduce(c.rank + 1, op="min")) == [1] * 4

    def test_allreduce_bad_op(self):
        with pytest.raises(RuntimeError, match="unsupported"):
            run_spmd(2, lambda c: c.allreduce(1.0, op="prod"))

    def test_allreduce_array(self):
        def fn(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        for r in run_spmd(3, fn):
            np.testing.assert_array_equal(r, [3.0, 3.0, 3.0])

    def test_allreduce_deterministic_order(self):
        """All ranks get the bitwise-identical result."""

        def fn(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.allreduce(rng.standard_normal(100))

        results = run_spmd(6, fn)
        for r in results[1:]:
            assert np.array_equal(r, results[0])

    def test_allgather_order(self):
        results = run_spmd(4, lambda c: c.allgather(c.rank * 2))
        assert all(r == [0, 2, 4, 6] for r in results)

    def test_bcast_from_nonzero_root(self):
        def fn(comm):
            val = f"from-{comm.rank}" if comm.rank == 2 else None
            return comm.bcast(val, root=2)

        assert run_spmd(4, fn) == ["from-2"] * 4

    def test_repeated_collectives_no_crosstalk(self):
        def fn(comm):
            a = comm.allreduce(1.0)
            b = comm.allreduce(float(comm.rank))
            c = comm.allreduce(2.0)
            return (a, b, c)

        for a, b, c in run_spmd(3, fn):
            assert (a, b, c) == (3.0, 3.0, 6.0)


class TestPointToPoint:
    def test_ring_exchange(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.array([float(comm.rank)]), right, tag=7)
            got = comm.recv(left, tag=7)
            return got[0]

        assert run_spmd(4, fn) == [3.0, 0.0, 1.0, 2.0]

    def test_tags_distinguish_messages(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.array([1.0]), 1, tag=10)
                comm.send(np.array([2.0]), 1, tag=20)
                return None
            b = comm.recv(0, tag=20)  # receive out of send order
            a = comm.recv(0, tag=10)
            return (a[0], b[0])

        assert run_spmd(2, fn)[1] == (1.0, 2.0)

    def test_send_copies_buffer(self):
        def fn(comm):
            if comm.rank == 0:
                buf = np.array([1.0])
                comm.send(buf, 1, tag=0)
                buf[0] = 99.0  # mutate after send
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(0, tag=0)[0]

        assert run_spmd(2, fn)[1] == 1.0

    def test_send_to_self_rejected(self):
        def fn(comm):
            comm.send(np.ones(1), comm.rank, tag=0)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)

    def test_recv_timeout_reports_deadlock(self):
        def fn(comm):
            if comm.rank == 1:
                comm.recv(0, tag=99)  # never sent

        with pytest.raises(RuntimeError, match="timed out|failed"):
            run_spmd(2, fn, timeout=0.3)

    def test_stats_track_bytes(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1, tag=0)
            else:
                comm.recv(0, tag=0)
            return (comm.stats.send_bytes, comm.stats.recv_bytes)

        res = run_spmd(2, fn)
        assert res[0] == (80, 0)
        assert res[1] == (0, 80)


class TestDistributedReductions:
    def test_ddot_matches_serial(self):
        full = np.arange(40, dtype=np.float64)

        def fn(comm):
            chunk = full[comm.rank * 10 : (comm.rank + 1) * 10]
            return ddot(comm, chunk, chunk)

        expected = float(full @ full)
        assert run_spmd(4, fn) == [expected] * 4

    def test_dnorm2(self):
        def fn(comm):
            return dnorm2(comm, np.ones(25))

        np.testing.assert_allclose(run_spmd(4, fn), 10.0)

    def test_dmatvec_block(self):
        rng = np.random.default_rng(3)
        Q = rng.standard_normal((40, 3))
        v = rng.standard_normal(40)

        def fn(comm):
            sl = slice(comm.rank * 10, (comm.rank + 1) * 10)
            return dmatvec_block(comm, Q[sl], v[sl])

        expected = Q.T @ v
        for r in run_spmd(4, fn):
            np.testing.assert_allclose(r, expected, rtol=1e-12)
