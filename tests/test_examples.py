"""Every example script must run green (scaled-down where needed)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 600.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "double GMRES" in out
        assert "mixed GMRES-IR" in out
        assert "penalty" in out

    def test_distributed_solve(self):
        out = run_example("distributed_solve.py")
        assert "all runs converged" in out

    def test_full_benchmark(self):
        out = run_example("full_benchmark.py")
        assert "HPG-MxP Benchmark" in out
        assert "HPCG comparison" in out

    def test_exascale_projection(self):
        out = run_example("exascale_projection.py")
        assert "17.2" in out  # total PF at 9408 nodes
        assert "Roofline" in out
        assert "fully hidden" in out
        assert "EXPOSED" in out

    def test_mixed_precision_study(self):
        out = run_example("mixed_precision_study.py")
        assert "fp32 GMRES-IR" in out
        assert "fp16" in out
        assert "partial policies" in out

    def test_strategy_comparison(self):
        out = run_example("strategy_comparison.py")
        assert "uniform fp32" in out
        assert "NO" in out  # the uniform solver must fail
        assert "switched" in out
        assert "GMRES-IR" in out
