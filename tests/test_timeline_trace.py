"""Tests for overlap timelines, trace events, and exporters."""

import json

import pytest

from repro.perf import FRONTIER_GCD, gs_operation_timeline
from repro.perf.timeline import spmv_operation_timeline
from repro.trace import Timeline, TraceEvent, to_ascii, to_chrome_json


class TestTraceEvent:
    def test_duration(self):
        e = TraceEvent(0, "gpu", "k", 1.0, 3.0)
        assert e.duration == 2.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TraceEvent(0, "gpu", "k", 3.0, 1.0)

    def test_overlaps(self):
        a = TraceEvent(0, "gpu", "a", 0.0, 2.0)
        b = TraceEvent(0, "halo", "b", 1.0, 3.0)
        c = TraceEvent(0, "halo", "c", 2.0, 3.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestTimeline:
    def make(self):
        tl = Timeline()
        tl.add(TraceEvent(0, "gpu", "a", 0.0, 2.0))
        tl.add(TraceEvent(0, "gpu", "b", 1.0, 4.0))
        tl.add(TraceEvent(0, "halo", "c", 5.0, 6.0))
        return tl

    def test_makespan(self):
        assert self.make().makespan == 6.0

    def test_streams_order(self):
        assert self.make().streams() == ["gpu", "halo"]

    def test_busy_time_merges_overlap(self):
        assert self.make().busy_time("gpu") == 4.0
        assert self.make().busy_time("halo") == 1.0

    def test_empty(self):
        assert Timeline().makespan == 0.0


class TestExporters:
    def test_chrome_json_valid(self):
        tl = Timeline([TraceEvent(0, "gpu", "k", 0.0, 1e-3)])
        data = json.loads(to_chrome_json(tl))
        assert data["traceEvents"][0]["ph"] == "X"
        assert data["traceEvents"][0]["dur"] == pytest.approx(1000.0)

    def test_ascii_contains_streams(self):
        tl = Timeline(
            [
                TraceEvent(0, "gpu", "kernel", 0.0, 1.0),
                TraceEvent(0, "copy", "d2h", 0.5, 0.7),
            ]
        )
        art = to_ascii(tl)
        assert "gpu" in art and "copy" in art and "#" in art

    def test_ascii_empty(self):
        assert to_ascii(Timeline()) == "(empty timeline)"


class TestOverlapModel:
    """Figure 9's central claims as assertions."""

    def test_fine_grid_gs_fully_overlapped(self):
        tl = gs_operation_timeline(local_dims=(320, 320, 320))
        assert tl.fully_overlapped

    def test_coarsest_grid_gs_not_overlapped(self):
        """'on the coarsest level, only the first independent set is
        not sufficient to completely overlap the communication.'"""
        tl = gs_operation_timeline(local_dims=(40, 40, 40))
        assert not tl.fully_overlapped
        assert tl.exposed_comm > 0

    def test_fine_grid_spmv_fully_overlapped(self):
        tl = spmv_operation_timeline(local_dims=(320, 320, 320))
        assert tl.fully_overlapped

    def test_gs_timeline_structure(self):
        tl = gs_operation_timeline(local_dims=(64, 64, 64))
        names = [e.name for e in tl.events]
        assert "pack_boundary" in names
        assert "MPI neighbor exchange" in names
        assert "GS interior color 0" in names
        assert "GS boundary rows" in names
        assert any("D2H" in n for n in names)

    def test_interior_kernel_waits_for_pack(self):
        """The event of §3.2.3: interior color 0 starts after packing."""
        tl = gs_operation_timeline(local_dims=(64, 64, 64))
        pack = next(e for e in tl.events if e.name == "pack_boundary")
        color0 = next(e for e in tl.events if e.name == "GS interior color 0")
        assert color0.start >= pack.end

    def test_boundary_rows_wait_for_halo(self):
        tl = gs_operation_timeline(local_dims=(40, 40, 40))
        h2d = next(e for e in tl.events if "H2D" in e.name)
        boundary = next(e for e in tl.events if e.name == "GS boundary rows")
        assert boundary.start >= h2d.end

    def test_makespan_positive_and_consistent(self):
        tl = gs_operation_timeline(local_dims=(64, 64, 64))
        assert tl.makespan >= max(e.end for e in tl.events) - 1e-15

    def test_fp64_slower_than_fp32(self):
        t64 = gs_operation_timeline(local_dims=(128,) * 3, precision="fp64")
        t32 = gs_operation_timeline(local_dims=(128,) * 3, precision="fp32")
        assert t64.makespan > t32.makespan

    def test_stream_filter(self):
        tl = gs_operation_timeline(local_dims=(64, 64, 64))
        assert all(e.stream == "gpu" for e in tl.stream_events("gpu"))
        assert len(tl.stream_events("gpu")) >= 9  # 8 colors + boundary


class TestRoofline:
    def test_all_hot_kernels_memory_bound(self):
        """Fig. 8: every kernel sits at the HBM line."""
        from repro.perf import roofline_points

        for p in roofline_points():
            assert p.memory_bound, p.name

    def test_ten_points_sorted_by_cost(self):
        from repro.perf import roofline_points

        pts = roofline_points()
        assert len(pts) == 10
        times = [p.time_seconds for p in pts]
        assert times == sorted(times, reverse=True)

    def test_fp32_points_higher_ai(self):
        from repro.perf import roofline_points

        pts = {p.name: p for p in roofline_points()}
        assert (
            pts["spmv_ell_fp32"].arithmetic_intensity
            > pts["spmv_ell_fp64"].arithmetic_intensity
        )

    def test_attained_below_ceiling(self):
        from repro.perf import roofline_ceiling, roofline_points

        for p in roofline_points():
            ceiling = roofline_ceiling(
                FRONTIER_GCD, p.arithmetic_intensity, p.precision
            )
            assert p.gflops <= ceiling * 1.0001

    def test_ceiling_shape(self):
        from repro.perf import roofline_ceiling

        low = roofline_ceiling(FRONTIER_GCD, 0.01)
        high = roofline_ceiling(FRONTIER_GCD, 1000.0)
        assert low < high
        assert high == pytest.approx(FRONTIER_GCD.flops_fp64 / 1e9)
