"""Allocation regression tests (issue satellite).

The GMRES-IR inner loop (Arnoldi step + V-cycle) must perform zero
per-iteration array allocations after warmup: every O(n) temporary
lives in the solver's workspace arena.  Two independent checks:

1. the arena's miss counter must not move after the warmup solve (no
   new pooled buffers are ever created), and
2. ``tracemalloc`` must see no allocation site that grows by a
   vector-sized amount across a 32-iteration solve.

The thresholds: at 16³ (n = 4096) one fp32 vector is 16 KB and one
fp64 vector 32 KB.  A single per-*iteration* vector leak would show up
as ≥ 32 × 16 KB = 512 KB of growth at one site; the test allows at
most one vector's worth (per-*solve* setup like the fp64 iterate) and
flags anything above.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.fp import MIXED_DS_POLICY
from repro.parallel import SerialComm
from repro.solvers import GMRESIRSolver

#: One fp64 vector at 16^3.
VECTOR_BYTES = 4096 * 8


@pytest.fixture(scope="module")
def warm_solver(problem16):
    solver = GMRESIRSolver(problem16, SerialComm(), policy=MIXED_DS_POLICY)
    # Warmup: populate every workspace buffer the hot path touches.
    solver.solve(problem16.b, tol=0.0, maxiter=10)
    return solver


class TestInnerLoopAllocations:
    def test_workspace_arena_is_stable_after_warmup(self, warm_solver, problem16):
        misses0 = warm_solver.ws.misses
        hits0 = warm_solver.ws.hits
        warm_solver.solve(problem16.b, tol=0.0, maxiter=32)
        assert warm_solver.ws.misses == misses0, (
            "hot path allocated new arena buffers after warmup"
        )
        assert warm_solver.ws.hits > hits0  # and it actually used the arena

    def test_no_vector_sized_allocation_sites(self, warm_solver, problem16):
        gc.collect()
        tracemalloc.start(15)
        try:
            snap1 = tracemalloc.take_snapshot()
            warm_solver.solve(problem16.b, tol=0.0, maxiter=32)
            snap2 = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        diff = snap2.compare_to(snap1, "traceback")
        offenders = [d for d in diff if d.size_diff > VECTOR_BYTES]
        msg = "\n".join(
            f"{d.size_diff / 1024:.1f} KB (count +{d.count_diff}) at "
            + " <- ".join(d.traceback.format()[-2:])
            for d in offenders
        )
        assert not offenders, (
            f"inner loop grew vector-sized allocation sites:\n{msg}"
        )

    def test_no_double_warmup_across_solves(self, warm_solver, problem16):
        """PR 6 satellite: per-solve state (Givens QR, Hessenberg
        column, precision-cast scratch) is hoisted to construction, so
        a *second* solve re-warms nothing — same QR object, zero new
        arena buffers, and the buffer count is flat."""
        qr0 = warm_solver._qr
        nbuf0 = warm_solver.ws.nbuffers
        misses0 = warm_solver.ws.misses
        warm_solver.solve(problem16.b, tol=0.0, maxiter=10)
        warm_solver.solve(problem16.b, tol=0.0, maxiter=10)
        assert warm_solver._qr is qr0
        assert warm_solver.ws.nbuffers == nbuf0
        assert warm_solver.ws.misses == misses0

    def test_solve_panel_arena_stable_after_warmup(self, problem16):
        """Repeated batched solves at one panel width re-warm nothing."""
        from repro.fp import MIXED_DS_POLICY
        from repro.solvers import GMRESIRSolver

        solver = GMRESIRSolver(problem16, SerialComm(), policy=MIXED_DS_POLICY)
        B = np.empty((problem16.nlocal, 4), order="F")
        for j in range(4):
            np.multiply(problem16.b, 1.0 + 0.5 * j, out=B[:, j])
        solver.solve_panel(B, tol=0.0, maxiter=10)  # warmup
        misses0 = solver.ws.misses
        hits0 = solver.ws.hits
        solver.solve_panel(B, tol=0.0, maxiter=10)
        assert solver.ws.misses == misses0, (
            "batched hot path allocated new arena buffers after warmup"
        )
        assert solver.ws.hits > hits0

    def test_vcycle_is_allocation_free_with_out(self, problem16):
        """The preconditioner alone: apply(out=...) reuses its arena."""
        from repro.mg import MGConfig, MultigridPreconditioner

        mg = MultigridPreconditioner.build(
            problem16, SerialComm(), MGConfig(), precision="fp32"
        )
        r = problem16.b.astype(np.float32)
        out = np.empty(problem16.nlocal, dtype=np.float32)
        mg.apply(r, out=out)  # warmup
        misses0 = mg.ws.misses
        for _ in range(5):
            mg.apply(r, out=out)
        assert mg.ws.misses == misses0

    def test_sellcs_smoother_arena_stable(self, problem16):
        """SELL-C-σ GS sweeps pool the O(rows × width) slab gathers."""
        from repro.backends import Workspace
        from repro.mg.smoothers import MulticolorGS
        from repro.sparse import to_format
        from repro.sparse.coloring import color_sets, structured_coloring8

        S = to_format(problem16.A, "sellcs")
        ws = Workspace()
        sets = color_sets(structured_coloring8(problem16.sub))
        gs = MulticolorGS(S, S.diagonal(), sets, ws=ws)
        xfull = np.zeros(S.ncols)
        gs.forward(problem16.b, xfull)  # warmup
        misses0 = ws.misses
        for _ in range(3):
            gs.forward(problem16.b, xfull)
            gs.backward(problem16.b, xfull)
        assert ws.misses == misses0

    def test_distributed_operator_matvec_out(self, problem16):
        from repro.solvers.operator import DistributedOperator

        op = DistributedOperator(problem16.A, problem16.halo, SerialComm())
        x = problem16.b
        out = np.empty(problem16.nlocal)
        op.matvec(x, out=out)  # warmup
        op.residual(problem16.b, x, out=out)
        misses0 = op.ws.misses
        for _ in range(3):
            op.matvec(x, out=out)
            op.residual(problem16.b, x, out=out)
        assert op.ws.misses == misses0


#: One fp64 vector at 8^3 (the per-rank size of the distributed test).
VECTOR_BYTES_8 = 512 * 8


class TestDistributedLoopAllocations:
    """PR 3: the PR 1 zero-allocation property extended to the
    distributed loop — halo packing, transport and receives included.

    A per-iteration transport leak (e.g. a message buffer that stops
    recycling) would grow by hundreds of KB over the measured solve;
    the threshold admits only a few vectors' worth of noise.
    """

    def test_distributed_halo_loop_no_vector_growth(self):
        """tracemalloc across a 2-rank overlapped solve: no allocation
        site grows beyond a few vectors after warmup (all rank threads
        are inside the measurement window)."""
        from repro.fp import MIXED_DS_POLICY
        from repro.geometry import BoxGrid, ProcessGrid, Subdomain
        from repro.mg import MGConfig
        from repro.parallel import run_spmd
        from repro.solvers import GMRESIRSolver
        from repro.stencil import generate_problem

        def fn(comm):
            pg = ProcessGrid.from_size(comm.size)
            sub = Subdomain(BoxGrid(8, 8, 8), pg, comm.rank)
            prob = generate_problem(sub)
            solver = GMRESIRSolver(
                prob,
                comm,
                policy=MIXED_DS_POLICY,
                mg_config=MGConfig(nlevels=2),
                overlap=True,
            )
            solver.solve(prob.b, tol=0.0, maxiter=10)  # warmup
            comm.barrier()
            snap1 = None
            if comm.rank == 0:
                gc.collect()
                tracemalloc.start(10)
                snap1 = tracemalloc.take_snapshot()
            comm.barrier()
            solver.solve(prob.b, tol=0.0, maxiter=32)
            comm.barrier()
            if comm.rank != 0:
                return []
            snap2 = tracemalloc.take_snapshot()
            tracemalloc.stop()
            diff = snap2.compare_to(snap1, "traceback")
            return [
                f"{d.size_diff / 1024:.1f} KB (+{d.count_diff}) at "
                + " <- ".join(d.traceback.format()[-2:])
                for d in diff
                if d.size_diff > 4 * VECTOR_BYTES_8
            ]

        offenders = run_spmd(2, fn)[0]
        assert not offenders, (
            "distributed loop grew vector-sized allocation sites:\n"
            + "\n".join(offenders)
        )
