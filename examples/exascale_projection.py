"""Project the benchmark onto Frontier with the calibrated machine model.

Regenerates the paper's headline exascale numbers from the performance
model: the weak-scaling curve to 9408 nodes (Fig. 4), per-motif
mixed-precision speedups (Fig. 5), the roofline placement of the hot
kernels (Fig. 8), and the compute-communication overlap traces
(Fig. 9) — including the coarse-grid level where overlap is lost.

Run:  python examples/exascale_projection.py
"""

from repro.perf import (
    FRONTIER_GCD,
    gs_operation_timeline,
    roofline_points,
)
from repro.perf.scaling import ScalingModel, paper_node_counts
from repro.trace import Timeline, to_ascii


def main() -> None:
    model = ScalingModel()  # Frontier GCD, 320^3 local, optimized impl

    print("== Weak scaling on Frontier (Fig. 4) ==")
    print(f"{'nodes':>6} {'GF/s per GCD':>13} {'total PF':>9} {'efficiency':>11}")
    for row in model.weak_scaling_series(paper_node_counts()):
        print(
            f"{row['nodes']:>6} {row['gflops_per_gcd']:>13.1f} "
            f"{row['total_pflops']:>9.2f} {row['efficiency']:>11.3f}"
        )
    print("paper: 17.23 PF at 9408 nodes, 78% efficiency\n")

    print("== Mixed-precision speedups (Fig. 5) ==")
    for nodes in (1, 1024, 9408):
        s = model.motif_speedups(nodes * 8)
        print(
            f"{nodes:>5} nodes: total {s['total']:.2f}x | "
            f"ortho {s['ortho']:.2f}x  gs {s['gs']:.2f}x  "
            f"spmv {s['spmv']:.2f}x  restrict {s['restrict']:.2f}x"
        )
    print("paper: ~1.6x overall, orthogonalization near the ideal 2x\n")

    print("== Roofline, one MI250x GCD (Fig. 8) ==")
    bw = FRONTIER_GCD.effective_bw / 1e12
    print(f"HBM ceiling {bw:.2f} TB/s; ten most expensive kernels:")
    for p in roofline_points():
        print(f"  {p}")
    print()

    print("== Overlap traces (Fig. 9) ==")
    for label, dims in (("fine grid 320^3", (320,) * 3), ("coarsest 40^3", (40,) * 3)):
        tl = gs_operation_timeline(local_dims=dims)
        verdict = "fully hidden" if tl.fully_overlapped else (
            f"EXPOSED {tl.exposed_comm * 1e6:.1f} us"
        )
        print(f"\nGauss-Seidel, {label}: communication {verdict}")
        print(to_ascii(Timeline(tl.events)).split("\n\n")[0])


if __name__ == "__main__":
    main()
