"""Compare the mixed-precision strategies the paper situates itself in.

§2 background: Loe et al. evaluated (a) running single precision and
switching to double, and (b) iterative refinement (GMRES-IR) — the
benchmark prescribes (b).  This example races both against plain
double GMRES and a *uniformly* fp32 GMRES (no double outer updates) on
one problem, showing:

- plain fp32 stalls around its precision floor and never reaches 1e-9;
- both mixed strategies reach double-level accuracy;
- iteration overheads vs plain double are modest for both.

Run:  python examples/strategy_comparison.py
"""

import numpy as np

from repro import DOUBLE_POLICY, MIXED_DS_POLICY, SerialComm, Subdomain
from repro.solvers import (
    GMRESIRSolver,
    SwitchedGMRESSolver,
    uniform_precision_gmres,
)
from repro.stencil import generate_problem


def main() -> None:
    problem = generate_problem(Subdomain.serial(32, 32, 32))
    comm = SerialComm()
    tol, maxiter = 1e-9, 2000
    print("problem: 32^3, target relative residual 1e-9\n")
    rows = []

    # Plain double GMRES.
    x, s = GMRESIRSolver(problem, comm, policy=DOUBLE_POLICY).solve(
        problem.b, tol=tol, maxiter=maxiter
    )
    rows.append(("double GMRES", s.iterations, s.final_relres,
                 np.abs(x - 1).max(), s.converged))

    # Uniform fp32 GMRES — everything, including the outer residual and
    # solution updates, in fp32 (what the benchmark forbids): stalls
    # near the fp32 floor, never reaching 1e-9.
    x, s = uniform_precision_gmres(
        problem, comm, precision="fp32", tol=tol, maxiter=300
    )
    rows.append(("uniform fp32 (no fp64 outer updates)", s.iterations,
                 s.final_relres, np.abs(x.astype(np.float64) - 1).max(),
                 s.converged))

    # GMRES-IR (the benchmark's prescription).
    x, s = GMRESIRSolver(problem, comm, policy=MIXED_DS_POLICY).solve(
        problem.b, tol=tol, maxiter=maxiter
    )
    rows.append(("GMRES-IR fp32/fp64", s.iterations, s.final_relres,
                 np.abs(x - 1).max(), s.converged))

    # Switched strategy (Loe et al.).
    x, s = SwitchedGMRESSolver(problem, comm).solve(
        problem.b, tol=tol, maxiter=maxiter
    )
    rows.append((f"switched fp32->fp64 (handover at {s.switch_relres:.1e})",
                 s.iterations, s.final_relres, np.abs(x - 1).max(),
                 s.converged))

    print(f"{'strategy':<42} {'iters':>6} {'relres':>10} {'max err':>10} {'ok':>4}")
    for name, iters, relres, err, ok in rows:
        print(f"{name:<42} {iters:>6} {relres:>10.1e} {err:>10.1e} "
              f"{'yes' if ok else 'NO':>4}")
    print("\nthe benchmark prescribes GMRES-IR: double-level accuracy with "
          "low-precision inner work and a bounded iteration penalty")


if __name__ == "__main__":
    main()
