"""Distributed GMRES-IR across SPMD ranks (the paper's MPI structure).

Runs the same global 32^3 problem on 1, 2, 4 and 8 ranks of the
thread-backed SPMD runtime: a 3D processor grid, 27-point halo
exchanges, all-reduce dot products — the communication pattern of the
Frontier runs, in miniature.  Iteration counts grow slightly with rank
count because the Gauss-Seidel smoother is block-Jacobi across
subdomain boundaries, exactly as in the real benchmark.

Run:  python examples/distributed_solve.py
"""

import numpy as np

from repro import MIXED_DS_POLICY, BoxGrid, ProcessGrid, Subdomain, run_spmd
from repro.mg import MGConfig
from repro.solvers import gmres_solve
from repro.stencil import generate_problem

GLOBAL = 32  # global grid is GLOBAL^3 regardless of rank count


def solve_on_ranks(comm):
    proc = ProcessGrid.from_size(comm.size)
    local = BoxGrid(GLOBAL // proc.px, GLOBAL // proc.py, GLOBAL // proc.pz)
    sub = Subdomain(local, proc, comm.rank)
    problem = generate_problem(sub)
    x, stats = gmres_solve(
        problem,
        comm,
        policy=MIXED_DS_POLICY,
        tol=1e-9,
        maxiter=2000,
        mg_config=MGConfig(nlevels=3),
    )
    err = float(np.abs(x - 1.0).max())
    return {
        "iterations": stats.iterations,
        "converged": stats.converged,
        "error": err,
        "halo_neighbors": len(problem.halo.directions),
        "sends": comm.stats.sends,
        "allreduces": comm.stats.allreduces,
    }


def main() -> None:
    print(f"global problem: {GLOBAL}^3 = {GLOBAL**3:,} rows\n")
    print(f"{'ranks':>5} {'grid':>7} {'iters':>6} {'max err':>10} "
          f"{'nbrs(r0)':>9} {'msgs(r0)':>9} {'allreduce':>10}")
    for p in (1, 2, 4, 8):
        results = run_spmd(p, solve_on_ranks) if p > 1 else None
        if results is None:
            from repro import SerialComm

            results = [solve_on_ranks(SerialComm())]
        r0 = results[0]
        proc = ProcessGrid.from_size(p)
        assert all(r["converged"] for r in results)
        # Every rank reports identical iteration counts (deterministic
        # all-reduce ordering).
        assert len({r["iterations"] for r in results}) == 1
        print(
            f"{p:>5} {proc.px}x{proc.py}x{proc.pz:<3} {r0['iterations']:>6} "
            f"{r0['error']:>10.2e} {r0['halo_neighbors']:>9} "
            f"{r0['sends']:>9} {r0['allreduces']:>10}"
        )
    print("\nall runs converged to 1e-9; identical iterations on every rank")


if __name__ == "__main__":
    main()
