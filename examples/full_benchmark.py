"""Run the complete HPG-MxP benchmark (all three phases) plus HPCG.

Executes the benchmark exactly as the paper structures it — validation,
timed mixed-precision phase, timed double-precision phase — at a
laptop-scale configuration, and prints the official-style report with
penalized GFLOP/s ratings and per-motif speedups.  HPCG runs alongside
for the paper's §4.1 cross-benchmark context.

Run:  python examples/full_benchmark.py
"""

from repro import BenchmarkConfig, HPCGConfig, format_report, run_benchmark, run_hpcg


def main() -> None:
    config = BenchmarkConfig(
        local_nx=32,          # official: 320 (64 GB HBM per GCD)
        nranks=1,             # official full system: 75,264 GCDs
        max_iters_per_solve=40,
        validation_max_iters=200,
        num_solves=1,
    )
    result = run_benchmark(config)
    print(format_report(result))

    hpcg = run_hpcg(HPCGConfig(local_nx=32, maxiter=40))
    print("HPCG comparison (same machine, same scale)")
    print(f"  HPCG GFLOP/s:    {hpcg.gflops:8.3f}  ({hpcg.iterations} CG iterations)")
    print(f"  HPG-MxP GFLOP/s: {result.mxp.gflops:8.3f}  (penalized)")
    print("  (paper at 9408 nodes: HPCG 10.4 PF, HPG-MxP 17.23 PF)")


if __name__ == "__main__":
    main()
