"""Quickstart: solve the benchmark problem with mixed-precision GMRES-IR.

Generates the HPG-MxP 27-point stencil system (32^3, exact solution of
ones), solves it with plain double-precision GMRES and with the
double+single GMRES-IR of the paper's Algorithm 3, and shows that the
mixed solver reaches the same nine-orders residual reduction at a small
iteration penalty — the quantity the benchmark's validation phase
turns into the GFLOP/s penalty factor.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DOUBLE_POLICY,
    MIXED_DS_POLICY,
    SerialComm,
    Subdomain,
    generate_problem,
    gmres_solve,
)
from repro.core import penalty_factor


def main() -> None:
    # The benchmark matrix: diag 26, off-diag -1, weakly diagonally
    # dominant; b is chosen so the exact solution is all ones.
    sub = Subdomain.serial(32, 32, 32)
    problem = generate_problem(sub)
    comm = SerialComm()
    print(f"problem: {sub.global_grid} grid, {problem.A.nnz:,} nonzeros")

    x_d, stats_d = gmres_solve(
        problem, comm, policy=DOUBLE_POLICY, tol=1e-9, maxiter=2000
    )
    print(f"\ndouble GMRES      : {stats_d.summary()}")
    print(f"  error vs exact ones: {np.abs(x_d - 1.0).max():.2e}")

    x_m, stats_m = gmres_solve(
        problem, comm, policy=MIXED_DS_POLICY, tol=1e-9, maxiter=2000
    )
    print(f"mixed GMRES-IR    : {stats_m.summary()}")
    print(f"  error vs exact ones: {np.abs(x_m - 1.0).max():.2e}")
    print(f"  policy: {MIXED_DS_POLICY.describe()}")

    penalty = penalty_factor(stats_d.iterations, stats_m.iterations)
    print(
        f"\nvalidation ratio n_d/n_ir = {stats_d.iterations}/{stats_m.iterations}"
        f" = {stats_d.iterations / stats_m.iterations:.3f}"
        f"  -> GFLOP/s penalty {penalty:.3f}"
    )
    print("(paper, 8 GCDs x 320^3: 2305/2382 = 0.968)")


if __name__ == "__main__":
    main()
