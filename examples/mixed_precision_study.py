"""Precision-policy study: what runs in low precision, and how low.

The benchmark pins the outer residual and solution updates to double
but frees everything else (Algorithm 3's blue steps).  This example
sweeps the low precision (fp64 / fp32 / fp16) and also tries *partial*
policies (only the preconditioner in low precision, only the
orthogonalization, ...) on one problem, reporting iterations to 1e-9
and the achieved accuracy — the paper's future-work direction of
"half precision strategically for parts of operations".

Run:  python examples/mixed_precision_study.py
"""

import numpy as np
from dataclasses import replace

from repro import DOUBLE_POLICY, Precision, SerialComm, Subdomain
from repro.solvers import GMRESIRSolver
from repro.stencil import generate_problem


def run_policy(problem, comm, policy, label, tol=1e-9, maxiter=3000, escalation=None):
    solver = GMRESIRSolver(problem, comm, policy=policy, escalation=escalation)
    x, stats = solver.solve(problem.b, tol=tol, maxiter=maxiter)
    err = np.abs(x - 1.0).max()
    flag = "converged" if stats.converged else "STALLED  "
    print(
        f"  {label:<34} {flag} iters={stats.iterations:<5} "
        f"relres={stats.final_relres:.1e}  max err={err:.1e}"
    )
    return stats


def main() -> None:
    problem = generate_problem(Subdomain.serial(24, 24, 24))
    comm = SerialComm()
    print(f"problem: 24^3, tol 1e-9\n")

    print("uniform low-precision sweeps (all blue steps):")
    base = run_policy(problem, comm, DOUBLE_POLICY, "fp64 (plain GMRES)")
    run_policy(problem, comm, DOUBLE_POLICY.with_low("fp32"), "fp32 GMRES-IR")
    # A *pinned* fp16 policy (escalation off) shows the raw precision
    # floor at a looser target; the ladder below climbs past it.
    run_policy(
        problem, comm, DOUBLE_POLICY.with_low("fp16"),
        "fp16 GMRES-IR pinned (tol 1e-5)", tol=1e-5, escalation=False,
    )

    print("\npartial policies (one ingredient in fp32, rest fp64):")
    for field in ("matrix", "mg_levels", "krylov_basis", "orthogonalization"):
        value = (
            (Precision.SINGLE,) if field == "mg_levels" else Precision.SINGLE
        )
        policy = replace(DOUBLE_POLICY, **{field: value})
        run_policy(problem, comm, policy, f"fp32 {field}")

    print("\nladder policies (per-MG-level schedule, adaptive escalation):")
    from repro.fp import PrecisionPolicy

    stats = run_policy(
        problem, comm, PrecisionPolicy.from_ladder("fp16:fp32:fp64"),
        "fp16:fp32:fp64 ladder",
    )
    for p in stats.promotions:
        print(f"      promotion: {p.describe()}")

    print(
        f"\nreference: fp64 took {base.iterations} iterations; the penalty "
        "of each policy is the iteration ratio against that."
    )


if __name__ == "__main__":
    main()
