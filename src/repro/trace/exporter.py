"""Trace exporters: Chrome tracing JSON and terminal ASCII art.

``to_chrome_json`` emits the Trace Event Format consumed by
chrome://tracing and Perfetto, so modeled timelines can be inspected
with the same class of tools the paper used (rocprof traces).
``to_ascii`` renders Fig. 9-style bars directly in a terminal for the
benchmark output.
"""

from __future__ import annotations

import json

from repro.trace.events import Timeline


def to_chrome_json(
    timeline: "Timeline | list[TraceEvent]", time_unit: float = 1e6
) -> str:
    """Serialize to Chrome Trace Event Format (complete events, 'X').

    ``time_unit`` converts seconds to the microseconds Chrome expects.
    """
    events = timeline.events if isinstance(timeline, Timeline) else timeline
    records = [
        {
            "name": e.name,
            "cat": e.stream,
            "ph": "X",
            "ts": e.start * time_unit,
            "dur": e.duration * time_unit,
            "pid": e.rank,
            "tid": e.stream,
        }
        for e in events
    ]
    return json.dumps({"traceEvents": records, "displayTimeUnit": "ms"}, indent=1)


def to_ascii(
    timeline: "Timeline | list[TraceEvent]", width: int = 78, label_width: int = 8
) -> str:
    """Render streams as rows of '#' bars over a common time axis."""
    tl = timeline if isinstance(timeline, Timeline) else Timeline(list(timeline))
    if not tl.events:
        return "(empty timeline)"
    t0 = min(e.start for e in tl.events)
    t1 = max(e.end for e in tl.events)
    span = max(t1 - t0, 1e-30)
    cols = width - label_width - 2

    def col(t: float) -> int:
        return min(int((t - t0) / span * cols), cols - 1)

    lines = []
    for stream in tl.streams():
        row = [" "] * cols
        for e in tl.by_stream(stream):
            a, b = col(e.start), col(e.end)
            for i in range(a, max(b, a + 1)):
                row[i] = "#"
        lines.append(f"{stream:<{label_width}} |{''.join(row)}|")
    # Legend with event names in start order.
    lines.append("")
    for stream in tl.streams():
        for e in tl.by_stream(stream):
            lines.append(
                f"  [{stream}] {e.name}: {e.start * 1e6:9.1f} .. {e.end * 1e6:9.1f} us"
            )
    return "\n".join(lines)
