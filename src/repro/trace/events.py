"""Trace event records.

A :class:`TraceEvent` is one bar on a rocprof-style timeline: a named
span on a stream ("gpu", "halo", "copy") of one rank.  A
:class:`Timeline` is an ordered collection with aggregate queries used
by tests and the exporters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One span on a rank's stream."""

    rank: int
    stream: str
    name: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event {self.name!r} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TraceEvent") -> bool:
        """True when the two spans intersect in time."""
        return self.start < other.end and other.start < self.end


@dataclass
class Timeline:
    """A collection of trace events."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        self.events.append(event)

    def extend(self, events: list[TraceEvent]) -> None:
        self.events.extend(events)

    @property
    def makespan(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events) - min(e.start for e in self.events)

    def streams(self) -> list[str]:
        """Stream names in first-appearance order."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.stream, None)
        return list(seen)

    def by_stream(self, stream: str) -> list[TraceEvent]:
        return sorted(
            (e for e in self.events if e.stream == stream), key=lambda e: e.start
        )

    def busy_time(self, stream: str) -> float:
        """Union duration of a stream's spans (handles overlap)."""
        spans = sorted(
            ((e.start, e.end) for e in self.events if e.stream == stream)
        )
        total = 0.0
        cur_s = cur_e = None
        for s, e in spans:
            if cur_e is None or s > cur_e:
                if cur_e is not None:
                    total += cur_e - cur_s
                cur_s, cur_e = s, e
            else:
                cur_e = max(cur_e, e)
        if cur_e is not None:
            total += cur_e - cur_s
        return total


def promotions_to_timeline(
    promotions, rank: int = 0, stream: str = "precision"
) -> Timeline:
    """Precision events as instant (zero-duration) timeline markers.

    ``promotions`` is any iterable of precision-event records exposing
    ``iteration``, ``reason``, ``from_low`` and ``to_low`` (what
    :class:`repro.solvers.gmres_ir.SolverStats` collects — duck-typed
    here so the trace layer keeps no solver import).  Per-ingredient
    events additionally expose ``ingredient``, ``level`` and
    ``direction``; the marker name then attributes the move, e.g.
    ``"promote[stall] smoother@L0 fp16->fp32"`` or
    ``"demote[recovered] smoother@L0 fp32->fp16"``.  Whole-policy
    records (no ingredient attribute, or ``"policy"``) keep the
    historical ``"promote[reason] fp16->fp32"`` form.  The time axis is
    the inner-iteration count, matching the convergence-history plots
    these markers annotate; the exporters render zero-width spans as
    instant events.
    """
    tl = Timeline()
    for p in promotions:
        t = float(p.iteration)
        direction = getattr(p, "direction", "promote")
        ingredient = getattr(p, "ingredient", "policy")
        level = getattr(p, "level", None)
        where = ""
        if ingredient != "policy":
            where = f" {ingredient}"
            if level is not None:
                where += f"@L{level}"
        tl.add(
            TraceEvent(
                rank=rank,
                stream=stream,
                name=(
                    f"{direction}[{p.reason}]{where} "
                    f"{p.from_low.short_name}->{p.to_low.short_name}"
                ),
                start=t,
                end=t,
            )
        )
    return tl
