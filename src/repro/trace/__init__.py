"""Trace events and exporters (rocprof-style timelines, Figure 9)."""

from repro.trace.events import TraceEvent, Timeline, promotions_to_timeline
from repro.trace.exporter import to_chrome_json, to_ascii

__all__ = [
    "TraceEvent",
    "Timeline",
    "promotions_to_timeline",
    "to_chrome_json",
    "to_ascii",
]
