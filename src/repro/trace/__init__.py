"""Trace events and exporters (rocprof-style timelines, Figure 9)."""

from repro.trace.events import TraceEvent, Timeline
from repro.trace.exporter import to_chrome_json, to_ascii

__all__ = ["TraceEvent", "Timeline", "to_chrome_json", "to_ascii"]
