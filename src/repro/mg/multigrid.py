"""The 4-level geometric multigrid V-cycle preconditioner.

Hierarchy construction mirrors HPCG/HPG-MxP: each level's problem is
*re-discretized* on the coarsened grid (not a Galerkin product), the
level count is fixed (4), and the coarsest level is "solved" with a
few smoother sweeps.  Because the level count does not grow with the
problem, textbook O(N) multigrid scalability is deliberately absent —
the paper points out this is why iteration counts climb at scale, which
Table 2 and the full-scale validation probe.

The preconditioner owns per-level matrices in a single storage format
(any format registered with the kernel backend layer) and a **per-level
precision schedule**: each level may sit on its own rung of the fp16 <
fp32 < fp64 ladder (coarse levels, whose corrections get re-smoothed on
the way up, tolerate more roundoff than the fine level).  fp16 levels
get row-equilibrated matrix storage via :mod:`repro.sparse.scaled`.
Every hot operation — smoother sweeps, the fused restriction,
prolongation — dispatches through :mod:`repro.backends`, which resolves
precision-specific kernels per level; cross-precision level boundaries
cast once, at the grid transfer.  All per-level iterate and
coarse-defect buffers are preallocated, so one V-cycle performs zero
array allocations after warmup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.workspace import Workspace
from repro.fp.ladder import format_ladder, schedule_for_levels
from repro.fp.precision import Precision
from repro.geometry.partition import Subdomain
from repro.mg.restriction import (
    coarse_to_fine_map,
    exchange_and_fused_restrict,
    exchange_and_fused_restrict_panel,
    prolong_correct,
)
from repro.mg.smoothers import (
    Smoother,
    make_smoother,
    smooth_distributed,
    smooth_distributed_panel,
)
from repro.parallel.comm import Communicator
from repro.parallel.halo_exchange import HaloExchange
from repro.sparse.coloring import color_sets, structured_coloring8
from repro.sparse.formats import matrix_format_of, to_format
from repro.sparse.scaled import to_precision
from repro.stencil.poisson27 import Problem, generate_problem
from repro.util.timers import NullTimers


@dataclass(frozen=True)
class MGConfig:
    """Multigrid preconditioner configuration.

    Defaults follow the HPG-MxP specification: 4 levels, one forward
    Gauss-Seidel pre- and post-smoothing sweep, one sweep as the
    coarsest-level solve, multicolor smoother, fused restriction.
    HPCG's preconditioner is the same shape with ``sweep="symmetric"``.
    """

    nlevels: int = 4
    npre: int = 1
    npost: int = 1
    smoother: str = "multicolor"  # "multicolor" | "levelsched"
    sweep: str = "forward"  # "forward" | "symmetric"
    coarse_sweeps: int = 1
    fused_restrict: bool = True

    def __post_init__(self) -> None:
        if self.nlevels < 1:
            raise ValueError("nlevels must be >= 1")
        if self.smoother not in ("multicolor", "levelsched"):
            raise ValueError(f"unknown smoother {self.smoother!r}")
        if self.sweep not in ("forward", "symmetric"):
            raise ValueError(f"unknown sweep {self.sweep!r}")


@dataclass
class MGLevel:
    """All per-level state: matrix, halo plan, smoother, transfers."""

    sub: Subdomain
    A: object  # local matrix in the hierarchy's storage format
    diag: np.ndarray
    halo_ex: HaloExchange
    smoother: Smoother
    f_c: np.ndarray | None  # map to next-coarser level (None on coarsest)
    precision: Precision = Precision.DOUBLE  # this level's ladder rung
    #: Rung of the grid transfer *out of* this level: the coarse-defect
    #: vector crossing the boundary to ``lvl+1`` is stored at this
    #: precision (``None`` on the coarsest level).  Defaults to the
    #: coarser level's rung — the historical behaviour — unless the
    #: precision control plane schedules the transfer ingredient apart.
    transfer_precision: Precision | None = None
    zfull: np.ndarray = field(repr=False, default=None)  # iterate workspace
    r_c: np.ndarray = field(repr=False, default=None)  # coarse-defect buffer

    @property
    def nlocal(self) -> int:
        return self.sub.nlocal

    @property
    def nnz(self) -> int:
        return self.A.nnz

    @property
    def num_colors(self) -> int:
        return self.smoother.num_passes


class MultigridPreconditioner:
    """One V-cycle of geometric multigrid, applied with zero guess."""

    def __init__(
        self,
        levels: list[MGLevel],
        config: MGConfig,
        precision: Precision,
        timers=None,
        workspace: Workspace | None = None,
        overlap: bool = False,
    ) -> None:
        self.levels = levels
        self.config = config
        #: Fine-level precision (the rung ``apply`` casts its input to).
        self.precision = precision
        self.timers = timers if timers is not None else NullTimers()
        self.ws = workspace if workspace is not None else Workspace("mg")
        #: Overlap each smoother sweep's halo exchange with its
        #: interior color blocks (requires color-partitioned
        #: smoothers, built by :meth:`build` with ``overlap=True``).
        self.overlap = overlap

    @property
    def schedule(self) -> tuple[Precision, ...]:
        """The per-level precision schedule, finest first."""
        return tuple(lv.precision for lv in self.levels)

    @property
    def transfer_schedule(self) -> tuple[Precision, ...]:
        """Rung of each level boundary's grid transfer, finest first."""
        return tuple(
            lv.transfer_precision
            for lv in self.levels
            if lv.transfer_precision is not None
        )

    def describe_schedule(self) -> str:
        """Compact ladder spec of this hierarchy (``"fp16:fp32:..."``)."""
        return format_ladder(self.schedule)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        problem: Problem,
        comm: Communicator,
        config: MGConfig | None = None,
        precision: "Precision | str" = Precision.DOUBLE,
        timers=None,
        fine_matrix=None,
        matrix_format: str = "ell",
        workspace: Workspace | None = None,
        transfer_precision: "str | Precision | tuple | None" = None,
        overlap: bool = False,
        format_params: dict | None = None,
    ) -> "MultigridPreconditioner":
        """Build the hierarchy under ``problem``'s fine grid.

        Every rank constructs its levels independently; coarse problems
        are re-discretizations on the coarsened subdomain.  Requires the
        local dims to be divisible by ``2**(nlevels-1)``.

        ``precision`` is either one precision for every level or a
        per-level ladder schedule — a ``"fp16:fp32:fp64"`` spec, a
        sequence, or anything :func:`repro.fp.ladder.schedule_for_levels`
        accepts; a schedule shorter than ``nlevels`` extends its last
        rung to the remaining (coarser) levels.  fp16 levels store
        row-equilibrated matrices (:mod:`repro.sparse.scaled`).

        ``fine_matrix`` lets the caller share an already-cast fine-level
        matrix (e.g. the solver's low-precision Krylov operator) instead
        of making another copy — the sharing the memory model assumes.
        It is used only when its format matches the hierarchy's;
        otherwise the level is built fresh (no sharing, no error) —
        the historical behaviour for CSR Krylov matrices.
        ``matrix_format`` selects the per-level storage layout; the
        level-scheduled smoother operates on ELL triangular blocks, so
        a ``levelsched`` hierarchy is stored in ELL outright rather
        than keeping a duplicate ELL conversion beside each level.

        ``transfer_precision`` optionally schedules the grid-transfer
        *ingredient* apart from the levels: entry ``l`` is the rung of
        the coarse-defect vector crossing the ``l -> l+1`` boundary
        (the fused restriction casts once on the store into it, the
        coarse level consumes it as its rhs).  ``None`` keeps the
        historical coupling — each boundary at the coarser level's
        rung.  This is the seam the per-ingredient precision control
        plane drives.

        ``overlap=True`` builds each multicolor smoother on a
        color-partitioned layout
        (:func:`repro.sparse.partitioned.partition_colors`) so every
        sweep posts its halo exchange first and hides it behind the
        dependency-closed interior color blocks — bitwise-equal to the
        sequential schedule at fp64.  The level-scheduled smoother has
        no split and silently keeps the blocking exchange.
        """
        config = config or MGConfig()
        format_params = dict(format_params or {})
        schedule = schedule_for_levels(precision, config.nlevels)
        if transfer_precision is None:
            transfers = tuple(schedule[lvl + 1] for lvl in range(config.nlevels - 1))
        elif config.nlevels < 2:
            transfers = ()
        else:
            transfers = schedule_for_levels(transfer_precision, config.nlevels - 1)
        ws = workspace if workspace is not None else Workspace("mg")
        spec = problem.spec
        if config.smoother == "levelsched":
            matrix_format = "ell"
            format_params = {}
            if any(p is Precision.HALF for p in schedule):
                raise ValueError(
                    "the level-scheduled smoother has no fp16 triangular "
                    "path; use the multicolor smoother for fp16 levels"
                )
        if fine_matrix is not None:
            if fine_matrix.dtype != schedule[0].dtype:
                raise ValueError(
                    "fine_matrix precision must match the preconditioner's "
                    "fine-level precision"
                )
            if matrix_format_of(fine_matrix) != matrix_format:
                fine_matrix = None  # format mismatch: build, don't share
            elif matrix_format == "sellcs" and format_params:
                want = (
                    format_params.get("chunk", fine_matrix.C),
                    format_params.get("sigma", fine_matrix.sigma),
                )
                if (fine_matrix.C, fine_matrix.sigma) != want:
                    fine_matrix = None  # parameter mismatch: build fresh

        levels: list[MGLevel] = []
        sub = problem.sub
        level_problem = problem
        for lvl in range(config.nlevels):
            prec = schedule[lvl]
            if lvl == 0 and fine_matrix is not None:
                A = fine_matrix
            else:
                A = to_precision(
                    to_format(level_problem.A, matrix_format, **format_params),
                    prec,
                )
            halo_ex = HaloExchange(level_problem.halo, comm, workspace=ws)
            diag = A.diagonal()
            smoother = cls._build_smoother(
                A, diag, sub, config, ws, level_problem.halo if overlap else None
            )
            f_c = None
            coarse_sub = None
            if lvl < config.nlevels - 1:
                coarse_sub = sub.coarsen(2)
                f_c = coarse_to_fine_map(sub, coarse_sub)
            level = MGLevel(
                sub=sub,
                A=A,
                diag=diag,
                halo_ex=halo_ex,
                smoother=smoother,
                f_c=f_c,
                precision=prec,
                transfer_precision=(
                    transfers[lvl] if lvl < len(transfers) else None
                ),
            )
            level.zfull = np.zeros(
                level.nlocal + level.halo_ex.n_ghost, dtype=prec.dtype
            )
            if coarse_sub is not None:
                # The defect buffer crosses the boundary at the
                # transfer rung (historically the coarser level's
                # rung); the fused restriction casts on the store.
                level.r_c = np.zeros(
                    coarse_sub.nlocal, dtype=level.transfer_precision.dtype
                )
            levels.append(level)
            if f_c is not None:
                sub = coarse_sub
                level_problem = generate_problem(sub, spec=spec)
        return cls(
            levels, config, schedule[0], timers, workspace=ws, overlap=overlap
        )

    @staticmethod
    def _build_smoother(
        A,
        diag: np.ndarray,
        sub: Subdomain,
        config: MGConfig,
        ws: Workspace,
        halo=None,
    ) -> Smoother:
        if config.smoother == "multicolor":
            colors = structured_coloring8(sub)
            sets = color_sets(colors)
            partition = None
            if halo is not None:
                from repro.sparse.partitioned import partition_colors

                partition = partition_colors(A, halo, sets, diag=diag)
            return make_smoother(
                A, "multicolor", diag=diag, sets=sets, ws=ws, partition=partition
            )
        # build() stores levelsched hierarchies in ELL, so A is the
        # matrix the triangular machinery splits — no duplicate copy.
        return make_smoother(A, "levelsched")

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """z = M^{-1} r: one V-cycle from a zero initial guess.

        ``r`` is cast to the preconditioner precision on entry; the
        result is returned in that precision.  With a caller-provided
        ``out`` buffer the whole V-cycle is allocation-free (the hot
        path the solvers use); without one a fresh copy is returned.
        """
        dtype = self.precision.dtype
        if r.dtype == dtype:
            r_prec = r
        else:
            r_prec = self.ws.get("mg.rcast", r.shape, dtype)
            np.copyto(r_prec, r)
        z = self._vcycle(0, r_prec)
        if out is not None:
            out[:] = z
            return out
        return z.copy()

    def apply_panel(
        self, R: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``Z[:, j] = M^{-1} R[:, j]`` for a column-major panel.

        The panel-native V-cycle: every level's smoother sweeps, the
        restriction and the prolongation serve all N columns per
        recursion step, and each level boundary's halo crossing is
        **one wide exchange** (one message per neighbor for the whole
        panel) — message count O(1) in the panel width, where the
        scalar recursion paid N× per sweep.  Per column the kernels
        compose in exactly the single-RHS order (the panel sweeps and
        restriction are per-column compositions under the reference
        backend; single-pass backends stream each level's matrix once
        for the panel), so column ``j`` stays bitwise-equal to
        ``apply(R[:, j])`` — the contract the panel solver's parity
        tests pin.
        """
        ncol = R.shape[1]
        dtype = self.precision.dtype
        Z = (
            out
            if out is not None
            else self.ws.get_panel("mg.panel.z", R.shape[0], ncol, dtype)
        )
        if R.dtype == dtype:
            R_prec = R
        else:
            R_prec = self.ws.get_panel("mg.panel.rcast", R.shape[0], ncol, dtype)
            np.copyto(R_prec, R)
        ZV = self._vcycle_panel(0, R_prec)
        np.copyto(Z, ZV)
        return Z

    def _vcycle_panel(self, lvl: int, R: np.ndarray) -> np.ndarray:
        """One panel V-cycle level: all N columns per kernel dispatch.

        Mirrors :meth:`_vcycle` with panel buffers: the level iterate
        is a pooled ``(nlocal + n_ghost, N)`` panel (keyed per level,
        so the recursion never clobbers a finer level's state), the
        coarse defect a pooled ``(n_c, N)`` panel at the transfer rung.
        Every smoother sweep and the restriction cross the halo in one
        wide exchange for the whole panel.
        """
        level = self.levels[lvl]
        cfg = self.config
        ncol = R.shape[1]
        ZF = self.ws.get_panel(
            ("mg.panel.zfull", lvl),
            level.nlocal + level.halo_ex.n_ghost,
            ncol,
            level.precision.dtype,
        )
        ZF[:] = 0.0

        if lvl == len(self.levels) - 1:
            with self.timers.section("gs"):
                for _ in range(cfg.coarse_sweeps):
                    smooth_distributed_panel(
                        level.smoother,
                        level.halo_ex,
                        R,
                        ZF,
                        cfg.sweep,
                        overlap=self.overlap,
                    )
            return ZF[: level.nlocal, :]

        with self.timers.section("gs"):
            for _ in range(cfg.npre):
                smooth_distributed_panel(
                    level.smoother,
                    level.halo_ex,
                    R,
                    ZF,
                    cfg.sweep,
                    overlap=self.overlap,
                )

        with self.timers.section("restrict"):
            R_c = self.ws.get_panel(
                ("mg.panel.rc", lvl),
                len(level.f_c),
                ncol,
                level.transfer_precision.dtype,
            )
            exchange_and_fused_restrict_panel(
                level.halo_ex,
                level.A,
                R,
                ZF,
                level.f_c,
                fused=cfg.fused_restrict,
                out=R_c,
                ws=self.ws,
            )

        Z_c = self._vcycle_panel(lvl + 1, R_c)

        with self.timers.section("prolong"):
            for j in range(ncol):
                prolong_correct(ZF[:, j], Z_c[:, j], level.f_c, ws=self.ws)

        with self.timers.section("gs"):
            for _ in range(cfg.npost):
                smooth_distributed_panel(
                    level.smoother,
                    level.halo_ex,
                    R,
                    ZF,
                    cfg.sweep,
                    overlap=self.overlap,
                )

        return ZF[: level.nlocal, :]

    def _vcycle(self, lvl: int, r: np.ndarray) -> np.ndarray:
        level = self.levels[lvl]
        cfg = self.config
        zfull = level.zfull
        zfull[:] = 0.0

        if lvl == len(self.levels) - 1:
            with self.timers.section("gs"):
                for _ in range(cfg.coarse_sweeps):
                    smooth_distributed(
                        level.smoother,
                        level.halo_ex,
                        r,
                        zfull,
                        cfg.sweep,
                        overlap=self.overlap,
                    )
            return zfull[: level.nlocal]

        with self.timers.section("gs"):
            for _ in range(cfg.npre):
                smooth_distributed(
                    level.smoother,
                    level.halo_ex,
                    r,
                    zfull,
                    cfg.sweep,
                    overlap=self.overlap,
                )

        with self.timers.section("restrict"):
            r_c = exchange_and_fused_restrict(
                level.halo_ex,
                level.A,
                r,
                zfull,
                level.f_c,
                fused=cfg.fused_restrict,
                out=level.r_c,
                ws=self.ws,
            )

        z_c = self._vcycle(lvl + 1, r_c)
        # Recursion reuses deeper workspaces only, so zfull is intact;
        # z_c is the deeper level's iterate view, consumed immediately.

        with self.timers.section("prolong"):
            prolong_correct(zfull, z_c, level.f_c, ws=self.ws)

        with self.timers.section("gs"):
            for _ in range(cfg.npost):
                smooth_distributed(
                    level.smoother,
                    level.halo_ex,
                    r,
                    zfull,
                    cfg.sweep,
                    overlap=self.overlap,
                )

        return zfull[: level.nlocal]

    # ------------------------------------------------------------------
    # Introspection (flop/byte models)
    # ------------------------------------------------------------------
    def level_dims(self) -> list[dict]:
        """Per-level sizes for the flop and byte models."""
        return [
            {
                "nlocal": lv.nlocal,
                "nnz": lv.nnz,
                "width": lv.A.width,
                "num_colors": lv.num_colors,
                "n_ghost": lv.halo_ex.n_ghost,
                "precision": lv.precision.short_name,
                "value_bytes": lv.precision.bytes,
                "transfer_precision": (
                    lv.transfer_precision.short_name
                    if lv.transfer_precision is not None
                    else None
                ),
            }
            for lv in self.levels
        ]
