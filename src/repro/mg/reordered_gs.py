"""Multicolor Gauss-Seidel with physical color-block reordering.

The paper does not merely *iterate* over color index sets — it
"reorder[s] the matrix and vectors symmetrically using an independent
set ordering" (§3.2.1) so each color pass reads a contiguous block of
rows (coalesced on a GPU, cache-friendly here).  This smoother applies
that scheme: the matrix is permuted once at construction, sweeps run on
contiguous row slices, and vectors are permuted on entry/exit.

It must agree with the index-set :class:`~repro.mg.smoothers.MulticolorGS`
to rounding, which tests assert — the reordering is a data-layout
optimization, not an algorithmic change.

With a halo pattern the smoother also supports the PR 5 overlapped
schedule: each contiguous color block is split into the
dependency-closed interior sub-block (sweepable before the halo lands;
see :func:`repro.sparse.partitioned.sweep_overlap_split`) and the
boundary remainder, and :meth:`sweep_overlapped` pipelines
post-sends / permute-in / interior passes / land-ghosts / boundary
passes — the vector permutation itself becomes compute that hides the
exchange.
"""

from __future__ import annotations

import numpy as np

from repro.backends.dispatch import spmv_rows
from repro.geometry.halo import HaloPattern
from repro.geometry.partition import Subdomain
from repro.mg.smoothers import Smoother
from repro.parallel.halo_exchange import HaloExchange
from repro.sparse.coloring import color_sets, structured_coloring8
from repro.sparse.ell import ELLMatrix
from repro.sparse.partitioned import sweep_overlap_split
from repro.sparse.reorder import coloring_permutation, permute_symmetric


class ReorderedMulticolorGS(Smoother):
    """Color-block-contiguous multicolor GS (the paper's layout)."""

    def __init__(
        self, A: ELLMatrix, sub: Subdomain, halo: HaloPattern | None = None
    ) -> None:
        colors = structured_coloring8(sub)
        self.old_of_new, self.new_of_old = coloring_permutation(colors)
        self.A_perm = permute_symmetric(A, self.new_of_old)
        self.diag_perm = self.A_perm.diagonal()
        # Contiguous [start, end) row blocks per color in the new order.
        counts = np.bincount(colors, minlength=int(colors.max()) + 1)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        self.blocks = [
            (int(bounds[c]), int(bounds[c + 1])) for c in range(len(counts))
        ]
        self.num_passes = len(self.blocks)
        self.nlocal = A.nrows
        self._ghost = A.ncols - A.nrows
        # Overlap split (optional): dependency-closed interior/boundary
        # permuted-row indices per color and direction, computed on the
        # *original* adjacency and mapped through the permutation.
        self._A = A
        self._sets = color_sets(colors)
        self._interior_mask = None
        if halo is not None:
            self._interior_mask = np.zeros(self.nlocal, dtype=bool)
            self._interior_mask[halo.interior_rows] = True
        self._splits: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}

    @property
    def supports_overlap(self) -> bool:
        return self._interior_mask is not None

    # ------------------------------------------------------------------
    def _permute_in(self, xfull: np.ndarray) -> np.ndarray:
        """Owned part to color order; ghost segment is layout-invariant."""
        out = np.empty_like(xfull)
        out[: self.nlocal] = xfull[: self.nlocal][self.old_of_new]
        out[self.nlocal :] = xfull[self.nlocal :]
        return out

    def _permute_out(self, xperm: np.ndarray, xfull: np.ndarray) -> None:
        xfull[: self.nlocal] = xperm[: self.nlocal][self.new_of_old]
        xfull[self.nlocal :] = xperm[self.nlocal :]

    def _sweep(self, r: np.ndarray, xfull: np.ndarray, blocks) -> None:
        rp = r[self.old_of_new]
        xp = self._permute_in(xfull)
        A, diag = self.A_perm, self.diag_perm
        for start, end in blocks:
            rows = np.arange(start, end)
            ax = spmv_rows(A, rows, xp)
            xp[start:end] += (rp[start:end] - ax) / diag[start:end]
        self._permute_out(xp, xfull)

    def forward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        self._sweep(r, xfull, self.blocks)

    def backward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        self._sweep(r, xfull, list(reversed(self.blocks)))

    # Overlap schedule ------------------------------------------------
    def _split(self, direction: str) -> list[tuple[np.ndarray, np.ndarray]]:
        """(interior, boundary) *permuted* row indices per color, in
        sweep order, built lazily per direction and cached."""
        cached = self._splits.get(direction)
        if cached is not None:
            return cached
        ncolors = len(self._sets)
        order = (
            list(range(ncolors))
            if direction == "forward"
            else list(reversed(range(ncolors)))
        )
        split = sweep_overlap_split(self._A, self._sets, self._interior_mask, order)
        out = []
        for c in order:
            interior, boundary = split[c]
            out.append(
                (
                    np.sort(self.new_of_old[interior]),
                    np.sort(self.new_of_old[boundary]),
                )
            )
        self._splits[direction] = out
        return out

    def sweep_overlapped(
        self,
        halo_ex: HaloExchange,
        r: np.ndarray,
        xfull: np.ndarray,
        direction: str = "forward",
    ) -> None:
        """Post sends, permute in, sweep interior sub-blocks, land the
        ghosts, sweep boundary sub-blocks, permute out.

        The sends pack from the *original* layout (the exchange plan's
        send indices are original row numbers), so they post before
        the permutation; the permutation and the interior passes are
        the compute that hides the wire time.  Bitwise-equal to
        ``exchange`` + ``forward``/``backward`` by the dependency
        closure.
        """
        if self._interior_mask is None:
            super().sweep_overlapped(halo_ex, r, xfull, direction)
            return
        if direction not in ("forward", "backward"):
            raise ValueError(f"unknown sweep direction {direction!r}")
        pending = halo_ex.exchange_begin(xfull)
        rp = r[self.old_of_new]
        xp = self._permute_in(xfull)
        A, diag = self.A_perm, self.diag_perm
        split = self._split(direction)
        for rows, _ in split:
            if len(rows):
                ax = spmv_rows(A, rows, xp)
                xp[rows] += (rp[rows] - ax) / diag[rows]
        halo_ex.exchange_finish(pending, xfull)
        xp[self.nlocal :] = xfull[self.nlocal :]
        for _, rows in split:
            if len(rows):
                ax = spmv_rows(A, rows, xp)
                xp[rows] += (rp[rows] - ax) / diag[rows]
        self._permute_out(xp, xfull)
