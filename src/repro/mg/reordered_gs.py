"""Multicolor Gauss-Seidel with physical color-block reordering.

The paper does not merely *iterate* over color index sets — it
"reorder[s] the matrix and vectors symmetrically using an independent
set ordering" (§3.2.1) so each color pass reads a contiguous block of
rows (coalesced on a GPU, cache-friendly here).  This smoother applies
that scheme: the matrix is permuted once at construction, sweeps run on
contiguous row slices, and vectors are permuted on entry/exit.

It must agree with the index-set :class:`~repro.mg.smoothers.MulticolorGS`
to rounding, which tests assert — the reordering is a data-layout
optimization, not an algorithmic change.
"""

from __future__ import annotations

import numpy as np

from repro.backends.dispatch import spmv_rows
from repro.geometry.partition import Subdomain
from repro.mg.smoothers import Smoother
from repro.sparse.coloring import structured_coloring8
from repro.sparse.ell import ELLMatrix
from repro.sparse.reorder import coloring_permutation, permute_symmetric


class ReorderedMulticolorGS(Smoother):
    """Color-block-contiguous multicolor GS (the paper's layout)."""

    def __init__(self, A: ELLMatrix, sub: Subdomain) -> None:
        colors = structured_coloring8(sub)
        self.old_of_new, self.new_of_old = coloring_permutation(colors)
        self.A_perm = permute_symmetric(A, self.new_of_old)
        self.diag_perm = self.A_perm.diagonal()
        # Contiguous [start, end) row blocks per color in the new order.
        counts = np.bincount(colors, minlength=int(colors.max()) + 1)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        self.blocks = [
            (int(bounds[c]), int(bounds[c + 1])) for c in range(len(counts))
        ]
        self.num_passes = len(self.blocks)
        self.nlocal = A.nrows
        self._ghost = A.ncols - A.nrows

    # ------------------------------------------------------------------
    def _permute_in(self, xfull: np.ndarray) -> np.ndarray:
        """Owned part to color order; ghost segment is layout-invariant."""
        out = np.empty_like(xfull)
        out[: self.nlocal] = xfull[: self.nlocal][self.old_of_new]
        out[self.nlocal :] = xfull[self.nlocal :]
        return out

    def _permute_out(self, xperm: np.ndarray, xfull: np.ndarray) -> None:
        xfull[: self.nlocal] = xperm[: self.nlocal][self.new_of_old]
        xfull[self.nlocal :] = xperm[self.nlocal :]

    def _sweep(self, r: np.ndarray, xfull: np.ndarray, blocks) -> None:
        rp = r[self.old_of_new]
        xp = self._permute_in(xfull)
        A, diag = self.A_perm, self.diag_perm
        for start, end in blocks:
            rows = np.arange(start, end)
            ax = spmv_rows(A, rows, xp)
            xp[start:end] += (rp[start:end] - ax) / diag[start:end]
        self._permute_out(xp, xfull)

    def forward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        self._sweep(r, xfull, self.blocks)

    def backward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        self._sweep(r, xfull, list(reversed(self.blocks)))
