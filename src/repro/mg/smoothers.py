"""Gauss-Seidel smoothers.

Two parallelization strategies, matching the paper's contrast (§2,
§3.2.1):

- :class:`MulticolorGS` — the optimized kernel: rows are partitioned
  into independent sets; each color is one fully-vectorized relaxation
  pass ``x[c] += (r[c] - (A x)[c]) / diag[c]``.  Within a color no two
  rows couple, so the pass is embarrassingly parallel (this is the GPU
  kernel of the paper; here it is one ``symgs_sweep`` dispatch through
  the kernel registry, format-generic over CSR/ELL/SELL-C-σ).
- :class:`LevelScheduledGS` — the reference path: an upper-triangle
  SpMV followed by a level-scheduled lower-triangular substitution,
  bit-identical to sequential lexicographic Gauss-Seidel but with far
  less parallelism (wavefronts of the dependency DAG).

Across ranks both smoothers freeze ghost values for the duration of a
sweep (block-Jacobi coupling), exchanging the halo once per sweep —
exactly the benchmark's behaviour, where each subdomain is reordered
and swept independently.

Precision rides on the kernel registry: ``symgs_sweep`` resolves a
precision-specific kernel from the matrix dtype, so an fp16 ladder
level transparently gets the fp32-accumulating sweep (and its
row-equilibrated diagonal, reported unscaled by the matrix class).
The level-scheduled path is fp32/fp64-only and says so.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.backends.dispatch import (
    spmv,
    symgs_boundary,
    symgs_boundary_multi,
    symgs_interior,
    symgs_interior_multi,
    symgs_sweep,
    symgs_sweep_multi,
)
from repro.backends.workspace import Workspace
from repro.parallel.halo_exchange import HaloExchange
from repro.sparse.ell import ELLMatrix
from repro.sparse.triangular import (
    level_sets,
    lower_levels,
    solve_lower_levelscheduled,
    solve_upper_levelscheduled,
    split_triangular,
    upper_levels,
)


class Smoother(abc.ABC):
    """One-sweep Gauss-Seidel smoother with frozen ghost coupling."""

    #: Number of vectorized passes per forward sweep (colors or levels);
    #: the performance model charges one kernel launch per pass.
    num_passes: int

    @abc.abstractmethod
    def forward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        """One forward sweep for ``A x = r``, updating ``xfull[:n]``.

        ``xfull`` holds the current iterate in its owned segment and
        current ghost values (exchanged by the caller) in the rest.
        """

    @abc.abstractmethod
    def backward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        """One backward sweep (reverse update order)."""

    def symmetric(self, r: np.ndarray, xfull: np.ndarray) -> None:
        """Forward then backward sweep (HPCG's symmetric GS)."""
        self.forward(r, xfull)
        self.backward(r, xfull)

    # Panel sweeps ----------------------------------------------------
    # ``R``/``Xfull`` are column-major (n, N) panels; column ``j`` must
    # sweep bitwise-identically to the single-RHS methods on
    # ``R[:, j]``/``Xfull[:, j]``.  The base implementations loop the
    # columns; smoothers whose kernels have a panel registration
    # (MulticolorGS) override with one dispatch for the whole panel.

    def forward_panel(self, R: np.ndarray, Xfull: np.ndarray) -> None:
        """One forward sweep of every panel column."""
        for j in range(R.shape[1]):
            self.forward(R[:, j], Xfull[:, j])

    def backward_panel(self, R: np.ndarray, Xfull: np.ndarray) -> None:
        """One backward sweep of every panel column."""
        for j in range(R.shape[1]):
            self.backward(R[:, j], Xfull[:, j])

    #: Whether :meth:`sweep_overlapped` actually hides the exchange
    #: (smoothers without a color partition fall back to the blocking
    #: exchange-then-sweep schedule).
    supports_overlap = False

    def sweep_overlapped(
        self,
        halo_ex: HaloExchange,
        r: np.ndarray,
        xfull: np.ndarray,
        direction: str = "forward",
    ) -> None:
        """One distributed sweep with the exchange as early as possible.

        Base implementation: the sequential schedule (full exchange,
        then the sweep) — smoothers that can split their passes
        override this with the begin/interior/finish/boundary pipeline.
        """
        halo_ex.exchange(xfull)
        if direction == "forward":
            self.forward(r, xfull)
        elif direction == "backward":
            self.backward(r, xfull)
        else:
            raise ValueError(f"unknown sweep direction {direction!r}")

    def sweep_overlapped_panel(
        self,
        halo_ex: HaloExchange,
        R: np.ndarray,
        Xfull: np.ndarray,
        direction: str = "forward",
    ) -> None:
        """One distributed panel sweep behind a single wide exchange.

        Base implementation: one blocking wide exchange (every column's
        ghosts in one message per neighbor), then the panel sweep —
        already O(1) messages in the panel width.  Partitioned
        smoothers override with the begin/interior/finish/boundary
        pipeline so the whole panel's interior compute hides the wide
        exchange.
        """
        halo_ex.exchange_panel(Xfull)
        if direction == "forward":
            self.forward_panel(R, Xfull)
        elif direction == "backward":
            self.backward_panel(R, Xfull)
        else:
            raise ValueError(f"unknown sweep direction {direction!r}")


class MulticolorGS(Smoother):
    """Multicolor Gauss-Seidel in one-sweep relaxation form (§3.2.1).

    Because rows of a color are mutually independent, the relaxation
    update over a color equals the classic triangular-solve form of GS
    restricted to that color — the whole sweep touches the matrix once.
    Works with any matrix format that registers a ``spmv_rows`` kernel.
    """

    def __init__(
        self,
        A,
        diag: np.ndarray,
        sets: list[np.ndarray],
        ws: Workspace | None = None,
        partition=None,
    ):
        self.A = A
        self.diag = diag
        self.sets = sets
        # Diagonal restricted to each color, gathered once: the sweep
        # kernel then runs without per-pass fancy-index allocations.
        self.diag_sets = [diag[rows] for rows in sets]
        self.ws = ws
        self.num_passes = len(sets)
        #: Optional :class:`~repro.sparse.partitioned.ColorPartitionedMatrix`
        #: enabling the overlapped sweep: every color split into a
        #: dependency-closed interior block (runs while the halo is in
        #: flight) and a boundary block (runs after the ghosts land) —
        #: bitwise-equal to the sequential sweep at fp64.
        self.partition = partition

    @property
    def supports_overlap(self) -> bool:
        return self.partition is not None

    def forward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        symgs_sweep(
            self.A, r, xfull, self.sets, self.diag_sets, "forward", ws=self.ws
        )

    def backward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        symgs_sweep(
            self.A, r, xfull, self.sets, self.diag_sets, "backward", ws=self.ws
        )

    def forward_panel(self, R: np.ndarray, Xfull: np.ndarray) -> None:
        symgs_sweep_multi(
            self.A, R, Xfull, self.sets, self.diag_sets, "forward", ws=self.ws
        )

    def backward_panel(self, R: np.ndarray, Xfull: np.ndarray) -> None:
        symgs_sweep_multi(
            self.A, R, Xfull, self.sets, self.diag_sets, "backward", ws=self.ws
        )

    def sweep_overlapped(
        self,
        halo_ex: HaloExchange,
        r: np.ndarray,
        xfull: np.ndarray,
        direction: str = "forward",
    ) -> None:
        """One distributed sweep with the exchange behind the interior.

        The paper's §3.2.3 schedule applied to the smoother (the
        ROADMAP's "overlap the smoother's halo exchange with its first
        color pass", extended to the dependency-closed interior of
        *every* color): post the halo, relax each color's interior
        block, land the ghosts in the vector tail, relax each color's
        boundary block.  Without a partition this degrades to the
        sequential exchange-then-sweep schedule.
        """
        if self.partition is None:
            super().sweep_overlapped(halo_ex, r, xfull, direction)
            return
        if direction not in ("forward", "backward"):
            raise ValueError(f"unknown sweep direction {direction!r}")
        pending = halo_ex.exchange_begin(xfull)
        # Interior colors compute while the messages are in transit ...
        symgs_interior(self.partition, r, xfull, direction, ws=self.ws)
        # ... land the ghosts, then finish every color's boundary rows.
        halo_ex.exchange_finish(pending, xfull)
        symgs_boundary(self.partition, r, xfull, direction, ws=self.ws)

    def sweep_overlapped_panel(
        self,
        halo_ex: HaloExchange,
        R: np.ndarray,
        Xfull: np.ndarray,
        direction: str = "forward",
    ) -> None:
        """Panel sweep behind one wide exchange, interior compute first.

        The §3.2.3 split at panel width: post **one** wide exchange
        (all columns, one message per neighbor), relax every column's
        interior color blocks while it flies, land all ghosts at once,
        finish every column's boundary blocks.  Per column this
        executes the same block kernels in the same order as
        :meth:`sweep_overlapped`, so the panel schedule is bitwise-
        per-column equal to the looped one.
        """
        if self.partition is None:
            super().sweep_overlapped_panel(halo_ex, R, Xfull, direction)
            return
        if direction not in ("forward", "backward"):
            raise ValueError(f"unknown sweep direction {direction!r}")
        pending = halo_ex.exchange_begin_panel(Xfull)
        symgs_interior_multi(self.partition, R, Xfull, direction, ws=self.ws)
        halo_ex.exchange_finish_panel(pending, Xfull)
        symgs_boundary_multi(self.partition, R, Xfull, direction, ws=self.ws)


class LevelScheduledGS(Smoother):
    """Lexicographic Gauss-Seidel via level-scheduled SpTRSV (§3.1).

    Forward sweep solves ``(D + L) x_new = r - (U + ghost) x_old``:
    an SpMV with everything above the diagonal (including ghost
    couplings at the old iterate) followed by the scheduled lower
    substitution.  This reproduces the reference implementation's
    two-kernel structure, including its extra matrix pass.
    """

    def __init__(self, A: ELLMatrix):
        if A.dtype == np.float16 or getattr(A, "row_scale", None) is not None:
            # The triangular split has no fp32-accumulating / scale-aware
            # substitution path; fp16 ladder levels must use multicolor.
            raise ValueError(
                "LevelScheduledGS does not support fp16 or row-equilibrated "
                "matrices; use the multicolor smoother"
            )
        self.A = A
        self.L, self.U, self.diag = split_triangular(A)
        self.lower_sets = level_sets(lower_levels(self.L))
        self.upper_sets = level_sets(upper_levels(self.U))
        self.num_passes = len(self.lower_sets)
        # Ghost couplings of U, isolated once for the backward sweep.
        n = self.A.nrows
        ghost_mask = (self.U.vals != 0) & (self.U.cols >= n)
        self.U_ghost = ELLMatrix(
            cols=np.where(ghost_mask, self.U.cols, 0).astype(np.int32),
            vals=np.where(ghost_mask, self.U.vals, 0),
            ncols=self.U.ncols,
        )

    def forward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        n = self.A.nrows
        rhs = r - spmv(self.U, xfull)
        y = solve_lower_levelscheduled(self.L, self.diag, rhs, self.lower_sets)
        xfull[:n] = y

    def backward(self, r: np.ndarray, xfull: np.ndarray) -> None:
        n = self.A.nrows
        # (D + U_local) x_new = r - (L + ghost) x_old.  Ghost couplings
        # live in self.U; they were isolated into U_ghost at setup.
        rhs = r - spmv(self.L, xfull) - spmv(self.U_ghost, xfull)
        # upper_levels assigns level 0 to rows with no upper neighbors,
        # so ascending level order IS the backward-substitution order.
        y = solve_upper_levelscheduled(self.U, self.diag, rhs, self.upper_sets)
        xfull[:n] = y


def make_smoother(
    A,
    kind: str,
    diag: np.ndarray | None = None,
    sets: list[np.ndarray] | None = None,
    ws: Workspace | None = None,
    partition=None,
) -> Smoother:
    """Factory: ``"multicolor"`` (needs diag+sets) or ``"levelsched"``."""
    if kind == "multicolor":
        if diag is None or sets is None:
            raise ValueError("multicolor smoother needs diag and color sets")
        return MulticolorGS(A, diag, sets, ws=ws, partition=partition)
    if kind == "levelsched":
        return LevelScheduledGS(A)
    raise ValueError(f"unknown smoother kind {kind!r}")


def smooth_distributed(
    smoother: Smoother,
    halo_ex: HaloExchange,
    r: np.ndarray,
    xfull: np.ndarray,
    direction: str = "forward",
    overlap: bool = False,
) -> None:
    """One distributed sweep: halo exchange, then the local sweep.

    With ``overlap=True`` each directional sweep runs through
    :meth:`Smoother.sweep_overlapped` — the exchange posts first and
    the smoother's interior color blocks hide it (bitwise-equal to the
    sequential schedule; smoothers without a partition fall back to
    it).  A symmetric sweep overlaps each direction's exchange
    independently, exactly mirroring the sequential pair.
    """
    if overlap:
        if direction == "symmetric":
            smoother.sweep_overlapped(halo_ex, r, xfull, "forward")
            smoother.sweep_overlapped(halo_ex, r, xfull, "backward")
        else:
            smoother.sweep_overlapped(halo_ex, r, xfull, direction)
        return
    halo_ex.exchange(xfull)
    if direction == "forward":
        smoother.forward(r, xfull)
    elif direction == "backward":
        smoother.backward(r, xfull)
    elif direction == "symmetric":
        smoother.forward(r, xfull)
        halo_ex.exchange(xfull)
        smoother.backward(r, xfull)
    else:
        raise ValueError(f"unknown sweep direction {direction!r}")


def smooth_distributed_panel(
    smoother: Smoother,
    halo_ex: HaloExchange,
    R: np.ndarray,
    Xfull: np.ndarray,
    direction: str = "forward",
    overlap: bool = False,
) -> None:
    """One distributed *panel* sweep: one wide exchange per sweep.

    The panel-native counterpart of :func:`smooth_distributed`: the
    halo crossing before each directional sweep ships every column in
    one wide message per neighbor, so the smoother's message count is
    O(1) in the panel width.  With ``overlap=True`` the wide exchange
    hides behind the whole panel's interior color blocks
    (:meth:`Smoother.sweep_overlapped_panel`); the symmetric sweep
    overlaps each direction's exchange independently, mirroring the
    single-RHS pair.  Per column the schedule composes the same kernels
    in the same order as looping :func:`smooth_distributed` over the
    columns — bitwise-per-column equal.
    """
    if overlap:
        if direction == "symmetric":
            smoother.sweep_overlapped_panel(halo_ex, R, Xfull, "forward")
            smoother.sweep_overlapped_panel(halo_ex, R, Xfull, "backward")
        else:
            smoother.sweep_overlapped_panel(halo_ex, R, Xfull, direction)
        return
    halo_ex.exchange_panel(Xfull)
    if direction == "forward":
        smoother.forward_panel(R, Xfull)
    elif direction == "backward":
        smoother.backward_panel(R, Xfull)
    elif direction == "symmetric":
        smoother.forward_panel(R, Xfull)
        halo_ex.exchange_panel(Xfull)
        smoother.backward_panel(R, Xfull)
    else:
        raise ValueError(f"unknown sweep direction {direction!r}")
