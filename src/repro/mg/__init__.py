"""Geometric multigrid preconditioner (HPG-MxP specification).

One V-cycle over a fixed 4-level hierarchy, coarsened by 2 per axis:
forward Gauss-Seidel smoothing, injection restriction (fused with the
residual SpMV in the optimized path, §3.2.4), and transpose-injection
prolongation.  The smoother is pluggable: multicolor relaxation (the
paper's optimized kernel) or level-scheduled lexicographic Gauss-Seidel
(the reference implementation), plus symmetric variants for HPCG.
"""

from repro.mg.smoothers import (
    MulticolorGS,
    LevelScheduledGS,
    make_smoother,
)
from repro.mg.reordered_gs import ReorderedMulticolorGS
from repro.mg.restriction import (
    coarse_to_fine_map,
    fused_residual_restrict,
    unfused_residual_restrict,
    prolong_correct,
)
from repro.mg.multigrid import MGConfig, MGLevel, MultigridPreconditioner

__all__ = [
    "MulticolorGS",
    "LevelScheduledGS",
    "make_smoother",
    "ReorderedMulticolorGS",
    "coarse_to_fine_map",
    "fused_residual_restrict",
    "unfused_residual_restrict",
    "prolong_correct",
    "MGConfig",
    "MGLevel",
    "MultigridPreconditioner",
]
