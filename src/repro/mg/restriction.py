"""Grid-transfer operators: injection restriction and its transpose.

HPG-MxP's restriction is plain injection from every second fine point
(eq. 3); prolongation is the transpose (corrections land only on the
injected points).  The reference implementation computes the full fine
residual with an SpMV and then injects; the optimized implementation
fuses the two, evaluating the residual *only at coarse points*
(eq. 6) — implemented through the kernel registry's ``fused_restrict``
op (a row-subset SpMV at coarse-mapped rows).

All entry points accept an ``out=`` coarse buffer and a workspace, so
the V-cycle's transfers are allocation-free after warmup.  The coarse
buffer may live in a *different precision* than the fine level (ladder
schedules assign each multigrid level its own rung): the defect is
accumulated in the fine level's compute precision and cast once on the
store into ``out``.
"""

from __future__ import annotations

import numpy as np

from repro.backends import dispatch
from repro.geometry.partition import Subdomain
from repro.parallel.halo_exchange import HaloExchange


def coarse_to_fine_map(fine_sub: Subdomain, coarse_sub: Subdomain) -> np.ndarray:
    """``f_c``: local fine index of each local coarse point.

    Coarse point ``(cx, cy, cz)`` maps to fine point ``(2cx, 2cy, 2cz)``
    of the same rank — coarsening never crosses subdomain boundaries, so
    grid transfers need no communication.
    """
    if fine_sub.rank != coarse_sub.rank:
        raise ValueError("subdomains must belong to the same rank")
    cx, cy, cz = coarse_sub.local.all_coords()
    return fine_sub.local.linear_index(2 * cx, 2 * cy, 2 * cz).astype(np.int64)


def fused_residual_restrict(
    A_f,
    r_f: np.ndarray,
    xfull_f: np.ndarray,
    f_c: np.ndarray,
    out: np.ndarray | None = None,
    ws=None,
) -> np.ndarray:
    """Optimized path (eq. 6): coarse defect without the full residual.

    ``r_c[i] = r_f[f_c(i)] - (A_f x_f)[f_c(i)]`` evaluated only at the
    coarse-mapped rows.  ``xfull_f`` must have current ghost values.
    """
    return dispatch.fused_restrict(A_f, r_f, xfull_f, f_c, out=out, ws=ws)


def unfused_residual_restrict(
    A_f,
    r_f: np.ndarray,
    xfull_f: np.ndarray,
    f_c: np.ndarray,
    out: np.ndarray | None = None,
    ws=None,
) -> np.ndarray:
    """Reference path (eqs. 4-5): full residual SpMV, then injection.

    Numerically identical to the fused kernel; it exists so ablation
    benchmarks can charge the extra full-grid work the paper removes.
    """
    n = A_f.nrows
    ax = dispatch.spmv(A_f, xfull_f, ws=ws)
    residual = r_f - ax[:n] if len(ax) >= n else r_f - ax
    r_c = residual[f_c].astype(xfull_f.dtype)
    if out is not None:
        out[:] = r_c
        return out
    return r_c


def prolong_correct(
    xfull_f: np.ndarray, z_c: np.ndarray, f_c: np.ndarray, ws=None
) -> None:
    """Transpose-injection prolongation: ``x_f[f_c(i)] += z_c[i]``."""
    dispatch.prolong(xfull_f, z_c, f_c, ws=ws)


def restrict_vector(v_f: np.ndarray, f_c: np.ndarray) -> np.ndarray:
    """Plain injection ``(R v)_i = v_{f_c(i)}`` (eq. 3)."""
    return v_f[f_c].copy()


def exchange_and_fused_restrict(
    halo_ex: HaloExchange,
    A_f,
    r_f: np.ndarray,
    xfull_f: np.ndarray,
    f_c: np.ndarray,
    fused: bool = True,
    out: np.ndarray | None = None,
    ws=None,
) -> np.ndarray:
    """Distributed coarse-defect computation.

    The smoothed iterate's ghost values are stale after a sweep (local
    entries moved), so the residual evaluation is preceded by a halo
    exchange — the same communication the paper overlaps with interior
    work in its fused kernel.  ``out`` may be the coarser level's
    buffer in a different precision (per-level ladder schedules).
    """
    halo_ex.exchange(xfull_f)
    if fused:
        return fused_residual_restrict(A_f, r_f, xfull_f, f_c, out=out, ws=ws)
    return unfused_residual_restrict(A_f, r_f, xfull_f, f_c, out=out, ws=ws)


def exchange_and_fused_restrict_panel(
    halo_ex: HaloExchange,
    A_f,
    R_f: np.ndarray,
    Xfull_f: np.ndarray,
    f_c: np.ndarray,
    fused: bool = True,
    out: np.ndarray | None = None,
    ws=None,
) -> np.ndarray:
    """Panel coarse-defect computation behind one wide exchange.

    The panel-native counterpart of :func:`exchange_and_fused_restrict`:
    the smoothed panel's stale ghosts refresh in **one** wide exchange
    (one message per neighbor for all N columns), then each column's
    restriction runs through the same fused/unfused kernel as the
    single-RHS path — bitwise-per-column equal to looping the scalar
    function.  ``out`` is the coarser level's ``(n_c, N)`` panel buffer,
    possibly in a different precision (per-level ladder schedules).
    """
    halo_ex.exchange_panel(Xfull_f)
    if out is None:
        out = np.empty(
            (len(f_c), R_f.shape[1]), dtype=Xfull_f.dtype, order="F"
        )
    restrict = fused_residual_restrict if fused else unfused_residual_restrict
    for j in range(R_f.shape[1]):
        restrict(
            A_f,
            R_f[:, j],
            Xfull_f[:, j],
            f_c,
            out=None if out is None else out[:, j],
            ws=ws,
        )
    return out
