"""Grid-transfer operators: injection restriction and its transpose.

HPG-MxP's restriction is plain injection from every second fine point
(eq. 3); prolongation is the transpose (corrections land only on the
injected points).  The reference implementation computes the full fine
residual with an SpMV and then injects; the optimized implementation
fuses the two, evaluating the residual *only at coarse points*
(eq. 6) — implemented here with the row-subset SpMV.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.partition import Subdomain
from repro.parallel.halo_exchange import HaloExchange
from repro.sparse.ell import ELLMatrix


def coarse_to_fine_map(fine_sub: Subdomain, coarse_sub: Subdomain) -> np.ndarray:
    """``f_c``: local fine index of each local coarse point.

    Coarse point ``(cx, cy, cz)`` maps to fine point ``(2cx, 2cy, 2cz)``
    of the same rank — coarsening never crosses subdomain boundaries, so
    grid transfers need no communication.
    """
    if fine_sub.rank != coarse_sub.rank:
        raise ValueError("subdomains must belong to the same rank")
    cx, cy, cz = coarse_sub.local.all_coords()
    return fine_sub.local.linear_index(2 * cx, 2 * cy, 2 * cz).astype(np.int64)


def fused_residual_restrict(
    A_f: ELLMatrix,
    r_f: np.ndarray,
    xfull_f: np.ndarray,
    f_c: np.ndarray,
) -> np.ndarray:
    """Optimized path (eq. 6): coarse defect without the full residual.

    ``r_c[i] = r_f[f_c(i)] - (A_f x_f)[f_c(i)]`` evaluated only at the
    coarse-mapped rows.  ``xfull_f`` must have current ghost values.
    """
    ax = A_f.spmv_rows(f_c, xfull_f)
    return (r_f[f_c] - ax).astype(xfull_f.dtype)


def unfused_residual_restrict(
    A_f: ELLMatrix,
    r_f: np.ndarray,
    xfull_f: np.ndarray,
    f_c: np.ndarray,
) -> np.ndarray:
    """Reference path (eqs. 4-5): full residual SpMV, then injection.

    Numerically identical to the fused kernel; it exists so ablation
    benchmarks can charge the extra full-grid work the paper removes.
    """
    n = A_f.nrows
    ax = A_f.spmv(xfull_f)
    residual = r_f - ax[:n] if len(ax) >= n else r_f - ax
    return residual[f_c].astype(xfull_f.dtype)


def prolong_correct(xfull_f: np.ndarray, z_c: np.ndarray, f_c: np.ndarray) -> None:
    """Transpose-injection prolongation: ``x_f[f_c(i)] += z_c[i]``."""
    xfull_f[f_c] += z_c


def restrict_vector(v_f: np.ndarray, f_c: np.ndarray) -> np.ndarray:
    """Plain injection ``(R v)_i = v_{f_c(i)}`` (eq. 3)."""
    return v_f[f_c].copy()


def exchange_and_fused_restrict(
    halo_ex: HaloExchange,
    A_f: ELLMatrix,
    r_f: np.ndarray,
    xfull_f: np.ndarray,
    f_c: np.ndarray,
    fused: bool = True,
) -> np.ndarray:
    """Distributed coarse-defect computation.

    The smoothed iterate's ghost values are stale after a sweep (local
    entries moved), so the residual evaluation is preceded by a halo
    exchange — the same communication the paper overlaps with interior
    work in its fused kernel.
    """
    halo_ex.exchange(xfull_f)
    if fused:
        return fused_residual_restrict(A_f, r_f, xfull_f, f_c)
    return unfused_residual_restrict(A_f, r_f, xfull_f, f_c)
