"""Solve-request/response types and service errors.

A :class:`SolveRequest` carries everything one client wants from one
solve: the operator (by content fingerprint — the client registered it
up front), the right-hand side, and the *per-request* solver knobs the
precision control plane exposes — the precision ladder, an optional
Carson-style roundoff budget, the tolerance/iteration caps, and a
wall-clock timeout.

Requests are **coalesced** by :class:`~repro.service.SolverService`:
requests whose :meth:`SolveRequest.key` compare equal may share one
``solve_panel`` call (same operator, same precision schedule, same
convergence contract — the panel's lockstep cycles then reproduce each
column's solo arithmetic bitwise).  Anything that would change the
solver's arithmetic lives in the key; anything that doesn't (the RHS
values, the timeout) stays out of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.solvers.gmres_ir import SolverStats


class ServiceError(RuntimeError):
    """Base class for solver-service errors."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected the request; retry after a backoff.

    Raised (set on the request's future) when the pending queue is
    full or every workspace arena is leased out.  ``retry_after`` is
    the service's suggested backoff in seconds — the bounded-queue
    alternative to buffering unbounded work.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SolveTimeoutError(ServiceError):
    """The request's wall-clock deadline expired before convergence.

    The in-flight column is cancelled at the next restart boundary
    (its lease and cache entries stay consistent); the partial result
    is discarded.
    """

    def __init__(self, message: str, timeout: float) -> None:
        super().__init__(message)
        self.timeout = timeout


class ServiceClosedError(ServiceError):
    """The service stopped before the request could run."""


@dataclass(frozen=True)
class SolveKey:
    """Coalescing compatibility key: requests sharing one panel solve.

    Two requests may ride the same ``solve_panel`` call iff their keys
    are equal — the key pins every knob that shapes the solver's
    arithmetic (operator, precision schedule, convergence contract),
    so coalescing can never change a request's bitwise result.
    """

    operator: str
    ladder: str | None
    budget: float | None
    tol: float
    maxiter: int
    target_residual: float | None


@dataclass
class SolveRequest:
    """One client's solve: operator fingerprint + RHS + per-request knobs.

    Attributes
    ----------
    operator:
        Content fingerprint returned by
        :meth:`~repro.service.SolverService.register_operator`.
    b:
        Right-hand side, shape ``(nlocal,)`` float64.
    ladder:
        Optional precision-ladder spec (e.g. ``"fp32:fp64"``) for this
        request's inner stage; ``None`` solves in uniform double.
    budget:
        Optional Carson-style per-cycle roundoff budget: the initial
        per-ingredient rungs derive from the matrix's norm/condition
        estimates (per-ingredient control), not the flat ladder.
    timeout:
        Optional wall-clock deadline in seconds, measured from
        submission.  Expiry fails the request with
        :class:`SolveTimeoutError` and cancels its in-flight column at
        the next restart boundary.
    """

    operator: str
    b: np.ndarray
    ladder: str | None = None
    budget: float | None = None
    tol: float = 1e-9
    maxiter: int = 300
    target_residual: float | None = None
    timeout: float | None = None

    def key(self) -> SolveKey:
        """The coalescing compatibility key (see :class:`SolveKey`)."""
        return SolveKey(
            operator=self.operator,
            ladder=self.ladder,
            budget=self.budget,
            tol=float(self.tol),
            maxiter=int(self.maxiter),
            target_residual=(
                float(self.target_residual)
                if self.target_residual is not None
                else None
            ),
        )


@dataclass
class SolveResponse:
    """One completed request: the solution plus its service telemetry."""

    x: np.ndarray
    stats: SolverStats
    #: Seconds the request sat queued before its batch launched.
    queue_wait_seconds: float
    #: Wall-clock seconds of the batch's panel solve.
    solve_seconds: float
    #: Number of requests coalesced into this request's panel.
    coalesce_width: int
    #: Operator matrix passes / RHS columns charged by the batch (the
    #: amortization pair: columns / passes = coalesce width when every
    #: pass served the whole panel).
    matrix_passes: int = 0
    rhs_columns: int = 0
    #: Setup-cache counters at batch construction (service-cumulative).
    setup_cache_hits: int = 0
    setup_cache_misses: int = 0

    @property
    def matrix_reuse(self) -> float:
        """RHS columns served per matrix pass in this request's batch."""
        return (
            self.rhs_columns / self.matrix_passes if self.matrix_passes else 0.0
        )


@dataclass
class ServiceMetrics:
    """Service-lifetime counters (one instance per service)."""

    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    cancelled: int = 0
    timed_out: int = 0
    batches: int = 0
    coalesce_width_sum: int = 0
    max_coalesce_width: int = 0
    queue_wait_seconds: float = 0.0
    solve_seconds: float = 0.0
    matrix_passes: int = 0
    rhs_columns: int = 0
    setup_cache_hits: int = 0
    setup_cache_misses: int = 0
    pool_acquires: int = 0
    pool_reuses: int = 0
    pool_exhaustions: int = 0
    pool_peak_leased: int = 0
    #: Injected transient worker faults observed by batches.
    transient_faults: int = 0
    #: Batch re-runs after a fault (normal path retried).
    fault_retries: int = 0
    #: Batch re-runs that fell back to untuned/non-overlapped dispatch.
    degradations: int = 0
    #: Client-side backoff retries taken by ``solve_with_retry``.
    retries: int = 0
    #: ``solve_with_retry`` calls that exhausted their attempt budget.
    retry_giveups: int = 0
    #: Per-batch coalesce widths in completion order (diagnostics).
    widths: list[int] = field(default_factory=list)

    @property
    def coalesce_width(self) -> float:
        """Mean requests per panel solve (1.0 = no coalescing)."""
        return self.coalesce_width_sum / self.batches if self.batches else 0.0

    @property
    def panel_matrix_reuse(self) -> float:
        """RHS columns served per operator matrix pass, service-wide."""
        return (
            self.rhs_columns / self.matrix_passes if self.matrix_passes else 0.0
        )

    @property
    def setup_cache_hit_rate(self) -> float:
        """Cache hits / lookups across every batch's solver construction."""
        total = self.setup_cache_hits + self.setup_cache_misses
        return self.setup_cache_hits / total if total else 0.0

    @property
    def mean_queue_wait_seconds(self) -> float:
        return (
            self.queue_wait_seconds / self.completed if self.completed else 0.0
        )

    def to_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "timed_out": self.timed_out,
            "batches": self.batches,
            "coalesce_width": self.coalesce_width,
            "max_coalesce_width": self.max_coalesce_width,
            "panel_matrix_reuse": self.panel_matrix_reuse,
            "setup_cache_hit_rate": self.setup_cache_hit_rate,
            "setup_cache_hits": self.setup_cache_hits,
            "setup_cache_misses": self.setup_cache_misses,
            "mean_queue_wait_seconds": self.mean_queue_wait_seconds,
            "solve_seconds": self.solve_seconds,
            "pool_acquires": self.pool_acquires,
            "pool_reuses": self.pool_reuses,
            "pool_exhaustions": self.pool_exhaustions,
            "pool_peak_leased": self.pool_peak_leased,
            "transient_faults": self.transient_faults,
            "fault_retries": self.fault_retries,
            "degradations": self.degradations,
            "retries": self.retries,
            "retry_giveups": self.retry_giveups,
        }
