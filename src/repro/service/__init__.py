"""Solver-as-a-service: asyncio front end over the panel pipeline.

The production-scale shape the ROADMAP aims at: many clients, one
shared setup cache, bounded workspace arenas, and coalesced
``solve_panel`` batches whose per-request results are bitwise-equal to
solo solves.  See :class:`SolverService` for the request lifecycle.
"""

from repro.service.requests import (
    ServiceClosedError,
    ServiceError,
    ServiceMetrics,
    ServiceOverloadedError,
    SolveKey,
    SolveRequest,
    SolveResponse,
    SolveTimeoutError,
)
from repro.service.service import SolverService

__all__ = [
    "ServiceClosedError",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "SolveKey",
    "SolveRequest",
    "SolveResponse",
    "SolveTimeoutError",
    "SolverService",
]
