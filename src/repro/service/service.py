"""Solver-as-a-service: the asyncio front end over the panel pipeline.

:class:`SolverService` turns the PR 6/7 seams into a request-driven
system:

- **Coalescing** — requests arriving within one batching window whose
  :class:`~repro.service.requests.SolveKey` compare equal share a
  single :meth:`~repro.solvers.gmres_ir.GMRESIRSolver.solve_panel`
  call: one matrix stream serves every coalesced RHS column, and each
  column's arithmetic is the per-column solo sequence (the PR 6
  bitwise contract), so batching is invisible to the client's numbers.
- **Admission control** — pending requests queue up to ``max_pending``
  and every batch leases its arena from a bounded
  :class:`~repro.backends.workspace.WorkspacePool`; a full queue or an
  exhausted pool *rejects* with
  :class:`~repro.service.requests.ServiceOverloadedError` carrying a
  ``retry_after`` hint, instead of buffering unbounded work.
- **Timeouts and cancellation** — each request may carry a wall-clock
  deadline; expiry (or an explicit caller cancel) deflates the
  in-flight column at the solver's next restart boundary via the
  ``cancel`` checkpoint, the other columns proceed untouched, and the
  batch's arena lease is released on every exit path (the pool can
  never leak a lease to a dead request).

The CPU-bound panel solves run on worker threads
(``asyncio.to_thread``); the shared :class:`SetupCache` is
thread-safe, and batches against the *same* operator serialize on a
per-fingerprint lock — the cached multigrid hierarchy carries one warm
workspace, so two concurrent applies of the same hierarchy would race.
Batches against different operators overlap freely.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

import numpy as np

from repro.backends.workspace import WorkspacePool
from repro.fp.controller import ControlConfig
from repro.fp.ladder import EscalationConfig
from repro.fp.policy import DOUBLE_POLICY, PrecisionPolicy
from repro.mg.multigrid import MGConfig
from repro.parallel.comm import SerialComm
from repro.resilience.config import ResilienceConfig
from repro.resilience.errors import (
    FaultDetectedError,
    NumericalBreakdownError,
    TransientFaultError,
)
from repro.resilience.faults import FaultInjector, maybe_raise_transient
from repro.service.requests import (
    ServiceClosedError,
    ServiceMetrics,
    ServiceOverloadedError,
    SolveKey,
    SolveRequest,
    SolveResponse,
    SolveTimeoutError,
)
from repro.solvers.gmres_ir import GMRESIRSolver
from repro.solvers.setup_cache import SetupCache, operator_fingerprint
from repro.stencil.poisson27 import Problem

#: Errors a batch treats as fault-recoverable: injected transients,
#: ABFT detections and numerical breakdowns that escaped the solver's
#: own replay budget.
_FAULT_ERRORS = (
    TransientFaultError,
    FaultDetectedError,
    NumericalBreakdownError,
)


@dataclass
class _Pending:
    """One submitted request's in-service state."""

    request: SolveRequest
    future: asyncio.Future
    submitted: float
    #: Absolute monotonic deadline, or None (no timeout).
    deadline: float | None = None
    #: Set from the event loop (caller cancel / watchdog); read by the
    #: solve thread's cancel checkpoint.  A plain attribute is enough:
    #: writes are atomic under the GIL and the checkpoint re-polls
    #: every restart boundary.
    cancelled: bool = False
    #: The solve thread observed the deadline before the watchdog ran.
    timed_out: bool = False
    #: Monotonic time the batcher popped the request from the queue.
    batch_start: float = 0.0
    timer: asyncio.TimerHandle | None = field(default=None, repr=False)


class SolverService:
    """Asyncio solve front end with coalescing and admission control.

    Parameters
    ----------
    batch_window:
        Seconds the batcher waits after the first queued request for
        compatible companions before launching the panel.  The window
        closes early once ``max_panel`` requests are in hand and the
        queue is drained.
    max_panel:
        Widest panel one batch may solve; a wider compatible group
        splits into consecutive batches.
    max_pending:
        Bound on queued (not yet launched) requests; beyond it
        ``submit`` rejects with retry-after.
    pool / max_arenas:
        The workspace-arena pool batches lease from (a fresh
        ``WorkspacePool(name="service", max_arenas=max_arenas)`` when
        no pool is passed).  Exhaustion rejects the batch's requests.
    retry_after:
        Backoff hint (seconds) carried by overload rejections.
    setup_cache:
        Shared operator-keyed setup cache (fresh when omitted); every
        batch solver constructs through it, so repeated traffic
        against one operator pays setup once.
    mg_config / restart / ortho / matrix_format:
        Service-wide solver construction knobs (per-request knobs ride
        the :class:`SolveRequest`).
    """

    def __init__(
        self,
        batch_window: float = 0.01,
        max_panel: int = 16,
        max_pending: int = 64,
        pool: WorkspacePool | None = None,
        max_arenas: int = 2,
        retry_after: float = 0.05,
        setup_cache: SetupCache | None = None,
        mg_config: MGConfig | None = None,
        restart: int = 30,
        ortho: str = "cgs2",
        matrix_format: str = "ell",
        format_params: dict | None = None,
        resilience: ResilienceConfig | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        if batch_window <= 0:
            raise ValueError("batch_window must be positive")
        if max_panel < 1:
            raise ValueError("max_panel must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.batch_window = batch_window
        self.max_panel = max_panel
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.pool = pool or WorkspacePool("service", max_arenas=max_arenas)
        self.setup_cache = setup_cache or SetupCache()
        self.mg_config = mg_config or MGConfig()
        self.restart = restart
        self.ortho = ortho
        self.matrix_format = matrix_format
        self.format_params = dict(format_params or {})
        # Resilience: batch solvers run with this config (ABFT +
        # checkpoint replay); the injector drives the service's
        # transient-fault site (kernel/halo sites are installed by the
        # campaign, not here).  Both default off with zero overhead.
        self.resilience = resilience
        self.injector = injector
        self.metrics = ServiceMetrics()
        self._problems: dict[str, Problem] = {}
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._depth = 0  # queued-but-not-launched requests
        self._op_locks: dict[str, asyncio.Lock] = {}
        self._batcher: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------
    def register_operator(self, problem: Problem) -> str:
        """Register a problem; returns the fingerprint requests cite.

        Content-addressed: registering an identical operator twice
        returns the same fingerprint (and the second registration is a
        no-op), so its requests coalesce and its setup products share
        cache entries.
        """
        fp = operator_fingerprint(problem.A)
        self._problems.setdefault(fp, problem)
        return fp

    def install_plan(self, fingerprint: str, plan) -> None:
        """Attach a tuned dispatch plan to a registered operator.

        Stored in the shared setup cache, so every batch solver the
        service constructs against this operator adopts the plan's
        parity-asserted choices — tuned dispatch with no per-request
        plumbing.
        """
        self.setup_cache.store_plan(fingerprint, plan)

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the batching loop (idempotent)."""
        if self._batcher is None or self._batcher.done():
            self._closed = False
            self._batcher = asyncio.create_task(self._batch_loop())

    async def stop(self) -> None:
        """Stop accepting work, fail queued requests, drain in-flight.

        In-flight batches run to completion (their clients get
        results); queued-but-unlaunched requests fail with
        :class:`ServiceClosedError`.
        """
        self._closed = True
        if self._batcher is not None:
            self._batcher.cancel()
            await asyncio.gather(self._batcher, return_exceptions=True)
            self._batcher = None
        while not self._queue.empty():
            p = self._queue.get_nowait()
            self._depth -= 1
            if not p.future.done():
                p.future.set_exception(
                    ServiceClosedError("solver service stopped")
                )
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def __aenter__(self) -> "SolverService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> asyncio.Future:
        """Enqueue a request; returns the future its response lands on.

        Raises :class:`ServiceOverloadedError` immediately when the
        pending queue is full (admission control — the caller backs
        off ``retry_after`` seconds rather than the service buffering
        unboundedly), :class:`ServiceClosedError` when stopped, and
        ``KeyError``/``ValueError`` on an unknown operator or a
        mis-shaped RHS.
        """
        if self._closed or self._batcher is None:
            raise ServiceClosedError(
                "solver service is not running (use 'async with service:' "
                "or await service.start())"
            )
        problem = self._problems.get(request.operator)
        if problem is None:
            raise KeyError(
                f"unknown operator {request.operator!r}; register it with "
                f"register_operator() first"
            )
        b = np.asarray(request.b)
        if b.shape != (problem.nlocal,):
            raise ValueError(
                f"rhs shape {b.shape} does not match operator "
                f"({problem.nlocal},)"
            )
        if self._depth >= self.max_pending:
            self.metrics.rejected += 1
            raise ServiceOverloadedError(
                f"solver service overloaded: {self._depth} requests "
                f"pending (max_pending={self.max_pending}); retry after "
                f"{self.retry_after:.3g}s",
                retry_after=self.retry_after,
            )
        loop = asyncio.get_running_loop()
        pending = _Pending(
            request=request,
            future=loop.create_future(),
            submitted=time.monotonic(),
        )
        if request.timeout is not None:
            pending.deadline = pending.submitted + request.timeout
            pending.timer = loop.call_later(
                request.timeout, self._expire, pending
            )
        pending.future.add_done_callback(
            lambda fut, p=pending: self._on_done(p, fut)
        )
        self._depth += 1
        self.metrics.accepted += 1
        self._queue.put_nowait(pending)
        return pending.future

    async def solve(self, request: SolveRequest) -> SolveResponse:
        """Submit and await one request (cancellation-transparent).

        Cancelling the awaiting task cancels the request: a queued
        request never launches, an in-flight one deflates from its
        panel at the next restart boundary.
        """
        future = self.submit(request)
        try:
            return await future
        except asyncio.CancelledError:
            future.cancel()
            raise

    async def solve_with_retry(
        self,
        request: SolveRequest,
        max_attempts: int = 5,
        base_delay: float = 0.01,
        max_delay: float = 1.0,
        rng: "random.Random | None" = None,
    ) -> SolveResponse:
        """Submit with jittered exponential backoff on overload.

        Admission-control rejections
        (:class:`~repro.service.requests.ServiceOverloadedError`) back
        off and resubmit: the wait doubles each attempt from
        ``base_delay`` up to ``max_delay``, carries full jitter (a
        uniform factor in ``[0.5, 1)`` so synchronized clients
        desynchronize), and never undercuts the service's own
        ``retry_after`` hint.  After ``max_attempts`` submissions the
        final rejection propagates.  Pass a seeded ``rng`` for
        deterministic backoff schedules in tests.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        rng = rng if rng is not None else random.Random()
        attempt = 0
        while True:
            try:
                return await self.solve(request)
            except ServiceOverloadedError as exc:
                attempt += 1
                if attempt >= max_attempts:
                    self.metrics.retry_giveups += 1
                    raise
                self.metrics.retries += 1
                backoff = min(max_delay, base_delay * 2 ** (attempt - 1))
                backoff *= 0.5 + rng.random() / 2
                await asyncio.sleep(max(exc.retry_after, backoff))

    # ------------------------------------------------------------------
    def _expire(self, pending: _Pending) -> None:
        """Watchdog: the request's wall-clock deadline passed."""
        if pending.future.done():
            return
        pending.cancelled = True  # solve thread deflates the column
        pending.timed_out = True
        self.metrics.timed_out += 1
        pending.future.set_exception(
            SolveTimeoutError(
                f"solve timed out after {pending.request.timeout:.3g}s "
                f"(cancelled at the next restart boundary)",
                timeout=pending.request.timeout,
            )
        )

    def _on_done(self, pending: _Pending, future: asyncio.Future) -> None:
        """Future resolved (result, error, or caller cancel)."""
        if pending.timer is not None:
            pending.timer.cancel()
        if future.cancelled():
            pending.cancelled = True  # deflate if in flight
            self.metrics.cancelled += 1

    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            self._depth -= 1
            group = [first]
            try:
                window_end = loop.time() + self.batch_window
                while True:
                    # Window closed early: a full panel is in hand and
                    # no request is waiting to join it.
                    if len(group) >= self.max_panel and self._queue.empty():
                        break
                    remaining = window_end - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), timeout=remaining
                        )
                    except asyncio.TimeoutError:
                        break
                    self._depth -= 1
                    group.append(nxt)
            except asyncio.CancelledError:
                # stop() cancelled the batcher mid-window: requests
                # already popped from the queue would otherwise strand
                # unresolved (stop() only drains the queue itself).
                for p in group:
                    if not p.future.done():
                        p.future.set_exception(
                            ServiceClosedError("solver service stopped")
                        )
                raise
            now = time.monotonic()
            for p in group:
                p.batch_start = now
            # Group by compatibility key (arrival order preserved) and
            # chunk each group to the panel-width cap.
            batches: dict[SolveKey, list[_Pending]] = {}
            for p in group:
                batches.setdefault(p.request.key(), []).append(p)
            for key, members in batches.items():
                for i in range(0, len(members), self.max_panel):
                    chunk = members[i : i + self.max_panel]
                    task = asyncio.create_task(self._run_batch(key, chunk))
                    self._tasks.add(task)
                    task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, key: SolveKey, chunk: list[_Pending]) -> None:
        live = [p for p in chunk if not p.future.done()]
        if not live:
            return
        # Admission control, stage 2: no arena, no batch.  Rejected
        # requests get the same retry-after contract as a full queue.
        arena = self.pool.try_acquire()
        if arena is None:
            exc = ServiceOverloadedError(
                f"solver service overloaded: workspace pool "
                f"{self.pool.name!r} has all {self.pool.max_arenas} "
                f"arenas leased; retry after {self.retry_after:.3g}s",
                retry_after=self.retry_after,
            )
            for p in live:
                if not p.future.done():
                    self.metrics.rejected += 1
                    p.future.set_exception(exc)
            return
        try:
            # One operator fingerprint = one cached MG hierarchy (with
            # one warm internal workspace): same-operator batches
            # serialize; different operators overlap.
            lock = self._op_locks.setdefault(key.operator, asyncio.Lock())
            async with lock:
                t0 = time.monotonic()
                try:
                    outcome = await self._attempt_batch(key, live, arena)
                except Exception as exc:  # construction/solve failure
                    for p in live:
                        if not p.future.done():
                            p.future.set_exception(exc)
                    return
                solve_seconds = time.monotonic() - t0
        finally:
            # Every exit path — result, error, timeout, cancellation —
            # returns the lease; the pool cannot leak arenas.
            self.pool.release(arena)
        self._deliver(live, outcome, solve_seconds)

    async def _attempt_batch(self, key: SolveKey, live: list[_Pending], arena):
        """One batch with fault retry and graceful degradation.

        Attempt 1 runs the normal (tuned/overlapped) path.  A fault
        error — an injected transient, an ABFT detection or a
        numerical breakdown the solver's own replay budget could not
        absorb — earns one more normal attempt; a second fault demotes
        attempt 3 to the *degraded* path (untuned dispatch, no
        overlap), on the operating assumption that a persistent fault
        lives in the optimized path.  A third failure propagates to
        every member's future.
        """
        try:
            return await asyncio.to_thread(self._solve_batch, key, live, arena)
        except _FAULT_ERRORS as exc:
            self._note_fault(exc)
            self.metrics.fault_retries += 1
        try:
            return await asyncio.to_thread(self._solve_batch, key, live, arena)
        except _FAULT_ERRORS as exc:
            self._note_fault(exc)
            self.metrics.degradations += 1
        return await asyncio.to_thread(
            self._solve_batch, key, live, arena, degraded=True
        )

    def _note_fault(self, exc: Exception) -> None:
        if isinstance(exc, TransientFaultError):
            self.metrics.transient_faults += 1

    # ------------------------------------------------------------------
    def _solve_batch(
        self,
        key: SolveKey,
        live: list[_Pending],
        arena,
        degraded: bool = False,
    ):
        """Worker thread: one coalesced panel solve."""
        # Service fault site: an injected transient raises here, before
        # any solver state is built (the retry path re-runs cleanly).
        maybe_raise_transient(self.injector)
        problem = self._problems[key.operator]
        policy = (
            PrecisionPolicy.from_ladder(key.ladder)
            if key.ladder
            else DOUBLE_POLICY
        )
        control: ControlConfig | None = None
        if key.budget is not None:
            control = ControlConfig(
                mode="per-ingredient",
                escalation=EscalationConfig(enabled=True),
                budget=key.budget,
            )
        solver = GMRESIRSolver(
            problem,
            SerialComm(),
            policy=policy,
            mg_config=self.mg_config,
            restart=self.restart,
            ortho=self.ortho,
            matrix_format=self.matrix_format,
            format_params=self.format_params,
            control=control,
            setup_cache=self.setup_cache,
            workspace=arena,
            resilience=self.resilience,
            # Degraded retry: decline the tuned dispatch plan and the
            # overlapped schedules — the reference path a persistent
            # fault on the optimized one falls back to.
            adopt_plan=not degraded,
            overlap=False if degraded else "auto",
            overlap_symgs=False if degraded else "auto",
        )
        n = problem.nlocal
        B = np.empty((n, len(live)), dtype=np.float64, order="F")
        for i, p in enumerate(live):
            np.copyto(B[:, i], p.request.b)

        ops = [solver.op64]
        if solver.op_inner is not solver.op64:
            ops.append(solver.op_inner)
        passes0 = sum(op.matrix_passes for op in ops)
        columns0 = sum(op.rhs_columns for op in ops)

        def cancel(j: int) -> bool:
            p = live[j]
            if p.cancelled:
                return True
            if p.deadline is not None and time.monotonic() >= p.deadline:
                # The thread noticed before the loop's watchdog fired;
                # the flag makes the verdict sticky either way.
                p.cancelled = True
                p.timed_out = True
                return True
            return False

        X, stats = solver.solve_panel(
            B,
            tol=key.tol,
            maxiter=key.maxiter,
            target_residual=key.target_residual,
            cancel=cancel,
        )
        # Rung changes may swap op_inner mid-solve; recollect.
        ops = [solver.op64]
        if solver.op_inner is not solver.op64:
            ops.append(solver.op_inner)
        passes = sum(op.matrix_passes for op in ops) - passes0
        columns = sum(op.rhs_columns for op in ops) - columns0
        return X, stats, passes, columns

    def _deliver(self, live, outcome, solve_seconds: float) -> None:
        """Event loop: resolve futures and fold in batch telemetry."""
        X, stats, passes, columns = outcome
        width = len(live)
        m = self.metrics
        m.batches += 1
        m.widths.append(width)
        m.coalesce_width_sum += width
        m.max_coalesce_width = max(m.max_coalesce_width, width)
        m.matrix_passes += passes
        m.rhs_columns += columns
        m.solve_seconds += solve_seconds
        m.setup_cache_hits = self.setup_cache.hits
        m.setup_cache_misses = self.setup_cache.misses
        m.pool_acquires = self.pool.acquires
        m.pool_reuses = self.pool.reuses
        m.pool_exhaustions = self.pool.exhaustions
        m.pool_peak_leased = self.pool.peak_leased
        for i, p in enumerate(live):
            if p.future.done():
                continue  # watchdog timeout or caller cancel already won
            s = stats[i]
            if s.cancelled:
                # The thread-side deadline check deflated the column
                # before the watchdog fired on the loop.
                m.timed_out += 1
                p.future.set_exception(
                    SolveTimeoutError(
                        f"solve timed out after "
                        f"{p.request.timeout:.3g}s (column cancelled at a "
                        f"restart boundary)",
                        timeout=p.request.timeout or 0.0,
                    )
                )
                continue
            m.completed += 1
            wait = p.batch_start - p.submitted
            m.queue_wait_seconds += wait
            p.future.set_result(
                SolveResponse(
                    x=X[:, i].copy(),
                    stats=s,
                    queue_wait_seconds=wait,
                    solve_seconds=solve_seconds,
                    coalesce_width=width,
                    matrix_passes=passes,
                    rhs_columns=columns,
                    setup_cache_hits=self.setup_cache.hits,
                    setup_cache_misses=self.setup_cache.misses,
                )
            )
