"""SELL-C-σ sparse matrix format (Kreutzer et al., SIAM SISC 2014).

The paper's optimized implementation stores the stencil matrix in ELL
because every interior row has exactly 27 nonzeros (§3.2.2); SELL-C-σ
is the general-purpose format that choice approximates.  Rows are
sorted by nonzero count inside windows of ``σ`` rows, then packed into
chunks of ``C`` consecutive rows; each chunk is padded only to *its
own* widest row.  For a matrix whose row lengths vary (multigrid
boundary rows: 8/12/18/27), the stored block shrinks accordingly while
keeping the fixed-stride, gather-friendly access pattern GPU warps
(and NumPy's vectorized reductions) want.

Representation
--------------
Canonical chunk metadata (``chunk_width``, ``C``, ``sigma``, ``perm``)
is kept for byte accounting and format fidelity; the *compute*
representation groups chunks of equal width into dense
``(rows, width)`` blocks — a handful of ELL-like slabs (one per
distinct width, ≤ 4 for the stencil) that each admit the same
fully-vectorized gather-multiply-reduce as ELL.  Padded slots follow
the ELL convention: ``col = 0``, ``val = 0``.

Kernels accept an ``out=`` buffer end-to-end and an optional
:class:`~repro.backends.workspace.Workspace` that pools every
O(rows × width) temporary; row-subset kernels still allocate small
selection-index vectors (the cost of the permuted layout's
indirection).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.precision import Precision

#: Default chunk size (GPU-warp-sized; also a good NumPy slab height).
DEFAULT_CHUNK = 32
#: Default sorting window (σ): local enough to keep the permutation
#: cache-friendly, wide enough to group equal-length rows.
DEFAULT_SIGMA = 128


@dataclass
class _WidthBlock:
    """All chunks of one width, fused into a dense ELL-like slab."""

    width: int
    rows: np.ndarray  # (m,) original row ids, SELL position order
    cols: np.ndarray  # (m, width) int32, padded slots 0
    vals: np.ndarray  # (m, width), padded slots 0.0


class SELLCSMatrix:
    """A local sparse matrix in SELL-C-σ layout."""

    format_name = "sellcs"

    def __init__(
        self,
        blocks: list[_WidthBlock],
        chunk_width: np.ndarray,
        perm: np.ndarray,
        nrows: int,
        ncols: int,
        chunk: int = DEFAULT_CHUNK,
        sigma: int = DEFAULT_SIGMA,
    ) -> None:
        self.blocks = blocks
        self.chunk_width = chunk_width
        self.perm = perm
        self._nrows = nrows
        self.ncols = ncols
        self.C = chunk
        self.sigma = sigma
        # Per-original-row (block id, slot in block) for row-subset ops.
        self.row_block = np.full(nrows, -1, dtype=np.int32)
        self.row_slot = np.zeros(nrows, dtype=np.int64)
        for bid, blk in enumerate(blocks):
            self.row_block[blk.rows] = bid
            self.row_slot[blk.rows] = np.arange(len(blk.rows))

    # ------------------------------------------------------------------
    # Shape and metadata
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def nchunks(self) -> int:
        return len(self.chunk_width)

    @property
    def width(self) -> int:
        """Widest chunk (the ELL width this format improves on)."""
        return int(self.chunk_width.max(initial=0))

    @property
    def dtype(self) -> np.dtype:
        for blk in self.blocks:
            return blk.vals.dtype
        return np.dtype(np.float64)

    @property
    def precision(self) -> Precision:
        return Precision.from_any(self.dtype)

    @property
    def stored_slots(self) -> int:
        """Value/index slots the chunked layout stores (incl. padding)."""
        return int(self.chunk_width.astype(np.int64).sum()) * self.C

    @property
    def nnz(self) -> int:
        """Stored (non-padded) nonzeros; ELL's explicit-zero caveat applies."""
        return sum(int(np.count_nonzero(blk.vals)) for blk in self.blocks)

    @property
    def pad_fraction(self) -> float:
        """Fraction of the chunked storage that is padding."""
        total = self.stored_slots
        return 1.0 - self.nnz / total if total else 0.0

    def row_nnz(self) -> np.ndarray:
        """Number of stored nonzeros in each (original-order) row."""
        out = np.zeros(self.nrows, dtype=np.int64)
        for blk in self.blocks:
            out[blk.rows] = np.count_nonzero(blk.vals, axis=1)
        return out

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """y = A @ x — one gather-multiply-reduce per width slab."""
        from repro.backends.dispatch import spmv

        return spmv(self, x, out=out)

    def spmv_rows(self, rows: np.ndarray, x: np.ndarray) -> np.ndarray:
        """(A @ x) restricted to a subset of rows."""
        from repro.backends.dispatch import spmv_rows

        return spmv_rows(self, rows, x)

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (original row order)."""
        diag = np.zeros(self.nrows, dtype=self.dtype)
        for blk in self.blocks:
            if blk.width == 0:
                continue
            hit = (blk.cols == blk.rows[:, None]) & (blk.vals != 0)
            diag[blk.rows] = np.where(
                hit.any(axis=1), (blk.vals * hit).sum(axis=1), 0.0
            ).astype(self.dtype)
        return diag

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def astype(self, prec: "Precision | str") -> "SELLCSMatrix":
        """Value-precision cast sharing structure arrays."""
        dtype = Precision.from_any(prec).dtype
        blocks = [
            _WidthBlock(
                width=blk.width,
                rows=blk.rows,
                cols=blk.cols,
                vals=blk.vals.astype(dtype)
                if blk.vals.dtype != dtype
                else blk.vals.copy(),
            )
            for blk in self.blocks
        ]
        return SELLCSMatrix(
            blocks,
            self.chunk_width,
            self.perm,
            self.nrows,
            self.ncols,
            chunk=self.C,
            sigma=self.sigma,
        )

    def to_csr(self):
        """Convert back to CSR (drops padding)."""
        from repro.sparse.csr import CSRMatrix

        counts = self.row_nnz()
        indptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.zeros(int(indptr[-1]), dtype=np.int32)
        data = np.zeros(int(indptr[-1]), dtype=self.dtype)
        for blk in self.blocks:
            if blk.width == 0:
                continue
            mask = blk.vals != 0
            lens = mask.sum(axis=1)
            dest = np.repeat(indptr[blk.rows], lens) + (
                np.arange(int(lens.sum()))
                - np.repeat(np.cumsum(lens) - lens, lens)
            )
            indices[dest] = blk.cols[mask]
            data[dest] = blk.vals[mask]
        return CSRMatrix(
            indptr=indptr, indices=indices, data=data, ncols=self.ncols
        )

    def to_ell(self):
        """Convert to ELL (re-pads every row to the global max width)."""
        return self.to_csr().to_ell()

    def to_scipy(self):
        """Convert to a scipy CSR matrix (test/diagnostic use)."""
        return self.to_csr().to_scipy()

    def to_dense(self) -> np.ndarray:
        """Dense copy (small problems / tests only)."""
        return self.to_csr().to_dense()

    @classmethod
    def from_csr(
        cls,
        csr,
        chunk: int = DEFAULT_CHUNK,
        sigma: int | None = None,
    ) -> "SELLCSMatrix":
        """Pack a CSR matrix into SELL-C-σ.

        Rows are stable-sorted by descending nonzero count inside each
        window of ``sigma`` rows, then cut into chunks of ``chunk``
        rows; each chunk is padded to its own widest row.
        """
        if chunk < 1:
            raise ValueError("chunk size must be >= 1")
        sigma = DEFAULT_SIGMA if sigma is None else sigma
        if sigma < 1:
            raise ValueError("sigma must be >= 1")
        n = csr.nrows
        nnz_row = np.diff(csr.indptr)
        # Stable window sort: primary key the σ-window, secondary the
        # (descending) row length, tertiary the row id (stability).
        win = np.arange(n, dtype=np.int64) // sigma
        perm = np.lexsort((np.arange(n), -nnz_row, win)).astype(np.int64)

        n_pad = ((n + chunk - 1) // chunk) * chunk if n else 0
        nnz_sorted = np.zeros(n_pad, dtype=np.int64)
        nnz_sorted[:n] = nnz_row[perm]
        chunk_width = (
            nnz_sorted.reshape(-1, chunk).max(axis=1).astype(np.int32)
            if n_pad
            else np.zeros(0, dtype=np.int32)
        )

        # Width of the chunk each SELL position belongs to.
        pos_width = np.repeat(chunk_width, chunk)[:n]
        blocks: list[_WidthBlock] = []
        for w in np.unique(pos_width)[::-1]:
            sel = np.nonzero(pos_width == w)[0]  # SELL positions, ascending
            rows = perm[sel]
            w = int(w)
            m = len(rows)
            cols2 = np.zeros((m, w), dtype=np.int32)
            vals2 = np.zeros((m, w), dtype=csr.data.dtype)
            if w:
                lens = nnz_row[rows]
                total = int(lens.sum())
                if total:
                    starts = np.cumsum(lens) - lens
                    flat = np.repeat(csr.indptr[rows], lens) + (
                        np.arange(total) - np.repeat(starts, lens)
                    )
                    rr = np.repeat(np.arange(m), lens)
                    ww = np.arange(total) - np.repeat(starts, lens)
                    cols2[rr, ww] = csr.indices[flat]
                    vals2[rr, ww] = csr.data[flat]
            blocks.append(_WidthBlock(width=w, rows=rows, cols=cols2, vals=vals2))

        return cls(
            blocks,
            chunk_width,
            perm,
            nrows=n,
            ncols=csr.ncols,
            chunk=chunk,
            sigma=sigma,
        )

    @classmethod
    def from_ell(
        cls, ell, chunk: int = DEFAULT_CHUNK, sigma: int | None = None
    ) -> "SELLCSMatrix":
        """Pack an ELL matrix into SELL-C-σ."""
        return cls.from_csr(ell.to_csr(), chunk=chunk, sigma=sigma)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_bytes(self, index_bytes: int = 4, ptr_bytes: int = 8) -> int:
        """Storage footprint: padded chunk slabs (values + column
        indices) plus the chunk-offset array and the int32 row
        permutation."""
        return (
            self.stored_slots * (self.dtype.itemsize + index_bytes)
            + (self.nchunks + 1) * ptr_bytes
            + self.nrows * 4
        )
