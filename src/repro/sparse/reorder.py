"""Symmetric permutations of local sparse matrices.

The optimized implementation reorders the matrix and vectors by color so
each Gauss-Seidel color pass reads a contiguous row block (§3.2.1).  On
ghost columns the permutation is the identity — ghosts live past the
local range and their layout is fixed by the halo plan.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse of a permutation given as an index array."""
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm), dtype=perm.dtype)
    return inv


def coloring_permutation(colors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Permutation sorting rows by color (stable within a color).

    Returns ``(old_of_new, new_of_old)``: ``old_of_new[k]`` is the old
    index of the row placed at new position ``k``.
    """
    old_of_new = np.argsort(colors, kind="stable").astype(np.int64)
    return old_of_new, inverse_permutation(old_of_new)


def permute_symmetric(A: ELLMatrix, new_of_old: np.ndarray) -> ELLMatrix:
    """Apply a symmetric permutation ``P A P^T`` to the local block.

    Rows are reordered and local column indices relabeled; ghost columns
    (``col >= nrows``) keep their indices.  Padded slots keep value zero
    so relabeling their column is harmless.
    """
    n = A.nrows
    if len(new_of_old) != n:
        raise ValueError("permutation length must equal nrows")
    old_of_new = inverse_permutation(np.asarray(new_of_old, dtype=np.int64))
    cols = A.cols.astype(np.int64)
    local = cols < n
    remapped = np.where(local, new_of_old[np.clip(cols, 0, n - 1)], cols)
    return ELLMatrix(
        cols=remapped[old_of_new].astype(np.int32),
        vals=A.vals[old_of_new].copy(),
        ncols=A.ncols,
    )


def permute_vector(x: np.ndarray, new_of_old: np.ndarray) -> np.ndarray:
    """Reorder the owned part of a vector to match a row permutation."""
    old_of_new = inverse_permutation(np.asarray(new_of_old, dtype=np.int64))
    return x[old_of_new]


def unpermute_vector(x: np.ndarray, new_of_old: np.ndarray) -> np.ndarray:
    """Undo :func:`permute_vector`."""
    return x[np.asarray(new_of_old, dtype=np.int64)]


def rcm_ordering(A: ELLMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering of the local graph.

    The paper cites RCM as the classic alternative to multicoloring
    (better convergence, less parallelism); it backs the ordering
    ablation benchmark.  Returns ``old_of_new``.
    """
    import scipy.sparse.csgraph as csgraph

    sp = A.to_csr().to_scipy()[:, : A.nrows]
    perm = csgraph.reverse_cuthill_mckee(sp.tocsr(), symmetric_mode=True)
    return np.asarray(perm, dtype=np.int64)


def permute_csr(A: CSRMatrix, new_of_old: np.ndarray) -> CSRMatrix:
    """Symmetric permutation for CSR (via ELL round-trip for brevity)."""
    return permute_symmetric(A.to_ell(), new_of_old).to_csr()
