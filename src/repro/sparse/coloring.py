"""Graph coloring for multicolor Gauss-Seidel (§3.2.1).

A Gauss-Seidel sweep is sequential in general; if the rows are split
into independent sets ("colors") such that no two rows of a set are
coupled through the matrix, the sweep becomes ``n_c`` fully parallel
passes.  The paper computes the coloring with the Jones-Plassmann-Luby
(JPL) algorithm on the GPU; applied to the 27-point stencil JPL and a
sequential greedy both yield the minimal 8 colors (Fig. 2 shows the 2D
analog with 4).

Three algorithms are provided:

- :func:`structured_coloring8` — the closed-form 8-coloring of the
  27-point stencil (parity of each coordinate).  This is what JPL
  produces on this mesh and is what the benchmark uses.
- :func:`jpl_coloring` — vectorized randomized JPL for general local
  sparsity patterns.
- :func:`greedy_coloring` — sequential first-fit, ground truth in tests.

Colorings are per-subdomain: ghost columns are ignored, exactly as in
the paper ("each subdomain is reordered independently, without any
communication") — across ranks the smoother is block-Jacobi.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.partition import Subdomain
from repro.sparse.ell import ELLMatrix


def _local_adjacency(A: ELLMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Mask + columns of off-diagonal *local* couplings (ELL layout)."""
    n = A.nrows
    rows = np.arange(n)[:, None]
    mask = (A.vals != 0) & (A.cols != rows) & (A.cols < n)
    return mask, A.cols


def structured_coloring8(sub: Subdomain) -> np.ndarray:
    """The minimal 8-coloring of the 27-point stencil.

    ``color = (ix % 2) + 2*(iy % 2) + 4*(iz % 2)``: any two points that
    differ by at most one in every coordinate and are not identical
    differ in at least one parity, so every color class is independent.
    """
    ix, iy, iz = sub.local.all_coords()
    return ((ix & 1) + 2 * (iy & 1) + 4 * (iz & 1)).astype(np.int32)


def jpl_coloring(A: ELLMatrix, seed: int = 1234, max_rounds: int = 4096) -> np.ndarray:
    """Jones-Plassmann(-Luby) coloring, vectorized rounds.

    Each round selects the independent set of uncolored vertices whose
    random priority is a strict maximum among uncolored neighbors (ties
    broken by vertex index, so the algorithm is deterministic and always
    progresses), then gives each selected vertex the *smallest* color
    absent among its already-colored neighbors — computed vectorized via
    a 64-bit forbidden-color bitmask, which comfortably covers the
    degree-26 stencil graph (at most 27 colors can ever be needed).
    """
    n = A.nrows
    mask, cols = _local_adjacency(A)
    rng = np.random.default_rng(seed)
    w = rng.random(n)
    # Strictly increasing tie-break: add a tiny index-based offset.
    w = w + np.arange(n) * (np.finfo(np.float64).eps * 4)
    colors = np.full(n, -1, dtype=np.int32)
    degree_cap = int(mask.sum(axis=1).max(initial=0)) + 1
    if degree_cap > 64:
        raise ValueError("jpl_coloring supports degrees < 64")

    for _ in range(max_rounds):
        uncolored = colors < 0
        if not uncolored.any():
            return colors
        # Neighbor priorities; colored or padded slots count as -inf.
        nb_w = np.where(mask & uncolored[cols], w[cols], -np.inf)
        nb_max = nb_w.max(axis=1, initial=-np.inf)
        winners = uncolored & (w > nb_max)
        if not winners.any():  # pragma: no cover - cannot happen (tie-break)
            raise RuntimeError("JPL stalled")
        # Forbidden-color bitmask from colored neighbors of each winner.
        wmask = mask[winners]
        wcols = cols[winners]
        nb_colors = np.where(wmask, colors[wcols], -1)
        bits = np.where(
            nb_colors >= 0, np.uint64(1) << nb_colors.astype(np.uint64), np.uint64(0)
        )
        forbidden = np.bitwise_or.reduce(bits, axis=1)
        # Lowest zero bit of `forbidden` = smallest available color.
        lowest_zero = (~forbidden) & (forbidden + np.uint64(1))
        colors[winners] = np.log2(lowest_zero.astype(np.float64)).astype(np.int32)
    raise RuntimeError(f"JPL exceeded {max_rounds} rounds")


def greedy_coloring(A: ELLMatrix, order: np.ndarray | None = None) -> np.ndarray:
    """Sequential first-fit coloring in the given row order.

    O(nnz) Python loop — intended for tests and small problems, where it
    serves as ground truth for the vectorized algorithms.
    """
    n = A.nrows
    mask, cols = _local_adjacency(A)
    adj = [cols[i][mask[i]] for i in range(n)]
    if order is None:
        order = np.arange(n)
    colors = np.full(n, -1, dtype=np.int32)
    for i in order:
        used = {colors[j] for j in adj[i] if colors[j] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[i] = c
    return colors


def validate_coloring(A: ELLMatrix, colors: np.ndarray) -> bool:
    """True iff no two locally-coupled rows share a color."""
    mask, cols = _local_adjacency(A)
    n = A.nrows
    same = mask & (colors[cols] == colors[np.arange(n)][:, None])
    return not bool(same.any())


def color_sets(colors: np.ndarray) -> list[np.ndarray]:
    """Row-index arrays per color, ascending within each color.

    The returned list drives the multicolor Gauss-Seidel sweep: one
    vectorized pass per entry.
    """
    ncolors = int(colors.max()) + 1 if len(colors) else 0
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    boundaries = np.searchsorted(sorted_colors, np.arange(ncolors + 1))
    return [
        np.sort(order[boundaries[c] : boundaries[c + 1]])
        for c in range(ncolors)
    ]
