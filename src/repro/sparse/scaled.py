"""Row-equilibrated low-precision matrix storage (fp16 support).

IEEE half precision spans roughly ``[6e-5, 65504]`` with ~3 decimal
digits — narrow enough that storing a matrix verbatim risks both
underflow (small couplings flush to zero) and overflow (row combinations
exceed the max).  The standard remedy, used by every fp16 LU/HPL-MxP
pipeline, is **row equilibration**: store ``D^{-1} A`` in fp16 together
with the scale vector ``D``, where ``d_i`` is a power of two near the
row's max magnitude.  Power-of-two scales make the division *exact*
(it only shifts the exponent), so equilibration costs no accuracy —
it just recenters each row's entries near 1.0 where fp16's relative
grid is finest.

:class:`ScaledELLMatrix` carries the scaled values plus ``row_scale``;
the fp16 kernels in :mod:`repro.backends.numpy_backend` fold the scale
back into their output (``y = D (D^{-1}A) x``), so callers see the
original operator.  ``diagonal()`` likewise reports the *unscaled*
diagonal, which keeps the Gauss-Seidel relaxation formula unchanged.

:func:`to_precision` is the construction seam the solver and multigrid
layers use: fp16 requests on ELL matrices get scaled storage, every
other (format, precision) pair falls back to a plain ``astype`` — for
CSR/SELL-C-σ the benchmark stencil's entries (26 and -1) are exactly
representable in fp16, so unscaled storage is correct there too.
"""

from __future__ import annotations

import numpy as np

from repro.fp.precision import Precision
from repro.sparse.ell import ELLMatrix


def row_equilibration_scales(maxabs: np.ndarray) -> np.ndarray:
    """Power-of-two scale per row from the row-wise max magnitudes.

    ``s_i = 2**round(log2(max_j |a_ij|))``; all-zero rows get scale 1
    so the division is a no-op.  Returned in float32 (exact for the
    exponent range fp16 storage can survive anyway).
    """
    maxabs = np.asarray(maxabs, dtype=np.float64)
    safe = np.where(maxabs > 0.0, maxabs, 1.0)
    scales = np.exp2(np.round(np.log2(safe)))
    return scales.astype(np.float32)


class ScaledELLMatrix(ELLMatrix):
    """ELL block holding ``D^{-1} A`` in a narrow dtype plus ``D``.

    ``row_scale`` is the float32 diagonal ``D``; kernels multiply it
    back into their output so the matrix *acts* as the original ``A``.
    ``format_name`` is inherited ("ell"): the registry dispatches on
    ``(format, precision)`` and the fp16 kernels pick up ``row_scale``
    by attribute, so no new format key is needed.
    """

    def __init__(
        self,
        cols: np.ndarray,
        vals: np.ndarray,
        ncols: int,
        row_scale: np.ndarray,
    ) -> None:
        super().__init__(cols=cols, vals=vals, ncols=ncols)
        if row_scale.shape != (vals.shape[0],):
            raise ValueError("row_scale must have one entry per row")
        self.row_scale = np.ascontiguousarray(row_scale, dtype=np.float32)

    def diagonal(self) -> np.ndarray:
        """The *unscaled* diagonal ``D diag(D^{-1}A)``, in float32.

        Smoother relaxations divide by this, so it must refer to the
        operator the kernels present (the original ``A``).
        """
        scaled = super().diagonal()
        return (scaled.astype(np.float32) * self.row_scale).astype(np.float32)

    def astype(self, prec: "Precision | str") -> ELLMatrix:
        """Rematerialize at another precision (un-equilibrated).

        Promotion off the fp16 rung reconstructs the plain values
        ``s_i * (a_ij / s_i)`` — exact, because the scales are powers
        of two.
        """
        target = Precision.from_any(prec)
        if target is Precision.HALF:
            return ScaledELLMatrix(
                self.cols, self.vals.copy(), self.ncols, self.row_scale
            )
        vals = self.vals.astype(target.dtype) * self.row_scale[:, None].astype(
            target.dtype
        )
        return ELLMatrix(cols=self.cols, vals=vals, ncols=self.ncols)

    def to_csr(self):
        """CSR of the *unscaled* operator (conversion round-trips)."""
        return self.astype(Precision.DOUBLE).to_csr()


def equilibrated_half(A: ELLMatrix) -> ScaledELLMatrix:
    """Row-equilibrated fp16 copy of an ELL matrix.

    This is the low-precision matrix copy an fp16 GMRES-IR rung keeps
    beside the fp64 one: values stored as ``a_ij / s_i`` in half
    precision, scales in float32.
    """
    vals64 = A.vals.astype(np.float64)
    scales = row_equilibration_scales(np.abs(vals64).max(axis=1))
    scaled = (vals64 / scales[:, None]).astype(np.float16)
    return ScaledELLMatrix(
        cols=A.cols, vals=scaled, ncols=A.ncols, row_scale=scales
    )


def to_precision(A, prec: "Precision | str"):
    """Convert a matrix to a target precision, format preserved.

    The fp16 rung of the ladder gets row-equilibrated storage when the
    format supports it (ELL, the optimized layout); everything else is
    a plain value cast.  Identity conversions return the input's
    ``astype`` copy semantics unchanged.
    """
    target = Precision.from_any(prec)
    if target is Precision.HALF and isinstance(A, ELLMatrix):
        if isinstance(A, ScaledELLMatrix):
            return A.astype(target)
        return equilibrated_half(A)
    return A.astype(target)
