"""Storage-format helpers: names, conversion, registry-backed lookup.

One place maps format names (``"csr"``, ``"ell"``, ``"sellcs"``) to
matrix classes and converts any matrix to any format — the glue between
``core.config``'s ``matrix_format`` knob, the CLI ``--format`` flag,
and the kernel registry's per-format dispatch.

Adding a format end-to-end means two registrations: kernels in
:mod:`repro.backends` (the compute seam) and a class entry here (the
construction/conversion seam — the class needs ``format_name``,
``from_csr`` and ``to_csr``).  :func:`known_formats` reports only
formats present on *both* sides, so config validation never admits a
format the pipeline cannot actually build.
"""

from __future__ import annotations

from repro.backends.dispatch import matrix_format as matrix_format_of
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.sellcs import SELLCSMatrix

#: Format name -> matrix class.  Every class provides ``from_csr`` /
#: ``to_csr`` (CSR is the interchange format).
MATRIX_FORMATS = {
    CSRMatrix.format_name: CSRMatrix,
    ELLMatrix.format_name: ELLMatrix,
    SELLCSMatrix.format_name: SELLCSMatrix,
}

__all__ = [
    "MATRIX_FORMATS",
    "content_arrays",
    "known_formats",
    "matrix_format_of",
    "to_format",
]


def content_arrays(A):
    """The ndarray attributes that define a matrix's content.

    Yields ``(name, array)`` pairs in sorted attribute order — the
    deterministic byte stream the setup cache's operator fingerprint
    hashes.  Covers every registered format generically (CSR's
    indptr/indices/data, ELL's cols/vals, SELL-C-sigma's permutation
    and slot maps, plus row-equilibration scales); non-array state
    (shapes, dtypes) is the caller's to fold in.
    """
    import numpy as np

    for name in sorted(vars(A)):
        value = getattr(A, name)
        if isinstance(value, np.ndarray):
            yield name, value


def known_formats() -> list[str]:
    """Formats usable end-to-end: constructible here *and* backed by
    registered kernels."""
    from repro.backends.registry import registered_formats

    regs = set(registered_formats())
    usable = [f for f in sorted(MATRIX_FORMATS) if f in regs]
    return usable if usable else sorted(MATRIX_FORMATS)


def to_format(A, fmt: str, *, chunk: int | None = None, sigma: int | None = None):
    """Convert a matrix to the named storage format.

    Conversion between any pair goes through CSR (the interchange
    format); identity conversions return the input unchanged.  For
    SELL-C-σ, ``chunk``/``sigma`` select the chunk width C and sort
    window σ (``None`` keeps the format defaults); an identity
    conversion repacks when the requested parameters differ from the
    matrix's own.
    """
    if fmt not in MATRIX_FORMATS:
        raise ValueError(
            f"unknown matrix format {fmt!r}; registered formats: "
            f"{known_formats()}"
        )
    if fmt != SELLCSMatrix.format_name and (
        chunk is not None or sigma is not None
    ):
        raise ValueError(
            f"format parameters chunk/sigma only apply to "
            f"{SELLCSMatrix.format_name!r}, not {fmt!r}"
        )
    if matrix_format_of(A) == fmt:
        if fmt != SELLCSMatrix.format_name:
            return A
        want_chunk = A.C if chunk is None else chunk
        want_sigma = A.sigma if sigma is None else sigma
        if (A.C, A.sigma) == (want_chunk, want_sigma):
            return A
        return SELLCSMatrix.from_csr(
            A.to_csr(), chunk=want_chunk, sigma=want_sigma
        )
    csr = A if isinstance(A, CSRMatrix) else A.to_csr()
    if fmt == CSRMatrix.format_name:
        return csr
    if fmt == SELLCSMatrix.format_name and (
        chunk is not None or sigma is not None
    ):
        kwargs = {}
        if chunk is not None:
            kwargs["chunk"] = chunk
        if sigma is not None:
            kwargs["sigma"] = sigma
        return SELLCSMatrix.from_csr(csr, **kwargs)
    return MATRIX_FORMATS[fmt].from_csr(csr)
