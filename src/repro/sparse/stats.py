"""Matrix diagnostics used by tests and reports."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.ell import ELLMatrix


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of a local sparse matrix."""

    nrows: int
    ncols: int
    nnz: int
    min_row_nnz: int
    max_row_nnz: int
    diag_min: float
    diag_max: float
    offdiag_abs_row_sum_max: float
    weakly_diagonally_dominant: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.nrows}x{self.ncols}, nnz={self.nnz}, "
            f"row nnz in [{self.min_row_nnz},{self.max_row_nnz}], "
            f"diag in [{self.diag_min},{self.diag_max}], "
            f"wdd={self.weakly_diagonally_dominant}"
        )


def matrix_stats(A: ELLMatrix) -> MatrixStats:
    """Compute :class:`MatrixStats` (vectorized)."""
    n = A.nrows
    rows = np.arange(n)[:, None]
    nz = A.vals != 0
    diag_mask = nz & (A.cols == rows)
    diag = (A.vals * diag_mask).sum(axis=1)
    off = np.abs(np.where(diag_mask, 0.0, A.vals)).sum(axis=1)
    row_nnz = nz.sum(axis=1)
    empty = n == 0
    return MatrixStats(
        nrows=n,
        ncols=A.ncols,
        nnz=int(nz.sum()),
        min_row_nnz=0 if empty else int(row_nnz.min()),
        max_row_nnz=0 if empty else int(row_nnz.max()),
        diag_min=float("nan") if empty else float(diag.min()),
        diag_max=float("nan") if empty else float(diag.max()),
        offdiag_abs_row_sum_max=0.0 if empty else float(off.max()),
        weakly_diagonally_dominant=bool(np.all(off <= diag + 1e-12)),
    )


def is_structurally_symmetric(A: ELLMatrix) -> bool:
    """Check local structural symmetry (ghost columns excluded)."""
    sp = A.to_csr().to_scipy()[:, : A.nrows].tocsr()
    diff = (sp != 0).astype(np.int8) - (sp.T != 0).astype(np.int8)
    return diff.nnz == 0


def is_numerically_symmetric(A: ELLMatrix, tol: float = 0.0) -> bool:
    """Check local numerical symmetry (ghost columns excluded)."""
    sp = A.to_csr().to_scipy()[:, : A.nrows].tocsr()
    d = sp - sp.T
    if d.nnz == 0:
        return True
    return float(np.abs(d.data).max()) <= tol
