"""Compressed Sparse Row format.

CSR is what the reference HPG-MxP implementation uses (§3.1, issue 5).
The SpMV here is vectorized with ``np.add.reduceat`` over row pointer
boundaries; its irregular reduction is the CPU analog of the warp
under-utilization the paper describes on GPUs, and the performance
model charges CSR a lower effective bandwidth accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.precision import Precision


@dataclass
class CSRMatrix:
    """A local sparse matrix in CSR layout.

    Attributes
    ----------
    indptr:
        ``(nrows+1,)`` row pointers.
    indices:
        ``(nnz,)`` int32 local column indices.
    data:
        ``(nnz,)`` values.
    ncols:
        Column-space size (``nlocal + n_ghost`` for distributed use).
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    ncols: int

    #: Storage-format key for the kernel registry.
    format_name = "csr"

    def __post_init__(self) -> None:
        if self.indptr.ndim != 1 or self.indices.shape != self.data.shape:
            raise ValueError("malformed CSR arrays")
        if self.indices.dtype != np.int32:
            self.indices = self.indices.astype(np.int32)
        if self.indptr.dtype != np.int64:
            self.indptr = self.indptr.astype(np.int64)

    @property
    def nrows(self) -> int:
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def precision(self) -> Precision:
        return Precision.from_any(self.data.dtype)

    def row_nnz(self) -> np.ndarray:
        """Stored entries per row."""
        return np.diff(self.indptr)

    @property
    def width(self) -> int:
        """Max stored entries in any row (ELL width equivalent)."""
        return int(self.row_nnz().max(initial=0))

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """y = A @ x via the registered kernel (segmented reduction).

        Honors a caller-provided ``out=`` buffer end-to-end, including
        the empty-row fixup path.
        """
        from repro.backends.dispatch import spmv

        return spmv(self, x, out=out)

    def spmv_rows(self, rows: np.ndarray, x: np.ndarray) -> np.ndarray:
        """(A @ x) restricted to a subset of rows (overlap split)."""
        from repro.backends.dispatch import spmv_rows

        return spmv_rows(self, rows, x)

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal."""
        n = self.nrows
        diag = np.zeros(n, dtype=self.data.dtype)
        rows = np.repeat(np.arange(n), np.diff(self.indptr))
        hit = self.indices == rows
        diag_rows = rows[hit]
        diag[diag_rows] = self.data[hit]
        return diag

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def astype(self, prec: "Precision | str") -> "CSRMatrix":
        """Value-precision cast (keeps structure arrays shared)."""
        dtype = Precision.from_any(prec).dtype
        data = self.data if dtype == self.data.dtype else self.data.astype(dtype)
        return CSRMatrix(
            self.indptr,
            self.indices,
            data.copy() if data is self.data else data,
            self.ncols,
        )

    def to_csr(self) -> "CSRMatrix":
        """Identity conversion (CSR is the interchange format), so
        format-generic code can call ``to_csr`` on any matrix."""
        return self

    def to_ell(self):
        """Convert to ELL."""
        from repro.sparse.ell import ELLMatrix

        return ELLMatrix.from_csr(self)

    def to_sellcs(self, chunk: int | None = None, sigma: int | None = None):
        """Convert to SELL-C-σ."""
        from repro.sparse.sellcs import DEFAULT_CHUNK, SELLCSMatrix

        return SELLCSMatrix.from_csr(
            self, chunk=chunk if chunk is not None else DEFAULT_CHUNK,
            sigma=sigma,
        )

    def to_scipy(self):
        """Convert to scipy.sparse.csr_matrix (tests/diagnostics)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=(self.nrows, self.ncols)
        )

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any scipy sparse matrix."""
        m = mat.tocsr()
        return cls(
            indptr=m.indptr.astype(np.int64),
            indices=m.indices.astype(np.int32),
            data=np.asarray(m.data),
            ncols=m.shape[1],
        )

    def to_dense(self) -> np.ndarray:
        """Dense copy (small problems / tests only)."""
        return np.asarray(self.to_scipy().todense())

    def memory_bytes(self, index_bytes: int = 4, ptr_bytes: int = 8) -> int:
        """Storage footprint: values + column indices + row pointers."""
        return (
            self.data.size * self.data.itemsize
            + self.indices.size * index_bytes
            + self.indptr.size * ptr_bytes
        )
