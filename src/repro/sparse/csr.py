"""Compressed Sparse Row format.

CSR is what the reference HPG-MxP implementation uses (§3.1, issue 5).
The SpMV here is vectorized with ``np.add.reduceat`` over row pointer
boundaries; its irregular reduction is the CPU analog of the warp
under-utilization the paper describes on GPUs, and the performance
model charges CSR a lower effective bandwidth accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.precision import Precision


@dataclass
class CSRMatrix:
    """A local sparse matrix in CSR layout.

    Attributes
    ----------
    indptr:
        ``(nrows+1,)`` row pointers.
    indices:
        ``(nnz,)`` int32 local column indices.
    data:
        ``(nnz,)`` values.
    ncols:
        Column-space size (``nlocal + n_ghost`` for distributed use).
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    ncols: int

    def __post_init__(self) -> None:
        if self.indptr.ndim != 1 or self.indices.shape != self.data.shape:
            raise ValueError("malformed CSR arrays")
        if self.indices.dtype != np.int32:
            self.indices = self.indices.astype(np.int32)
        if self.indptr.dtype != np.int64:
            self.indptr = self.indptr.astype(np.int64)

    @property
    def nrows(self) -> int:
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def precision(self) -> Precision:
        return Precision.from_any(self.data.dtype)

    def row_nnz(self) -> np.ndarray:
        """Stored entries per row."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """y = A @ x, vectorized with a segmented reduction.

        ``np.add.reduceat`` mis-handles empty segments (it returns the
        *next* element instead of zero), so empty rows are fixed up
        afterward; the benchmark matrix has none but generality is cheap.
        """
        if x.shape[0] != self.ncols:
            raise ValueError(
                f"x has {x.shape[0]} entries, matrix has {self.ncols} columns"
            )
        n = self.nrows
        y = np.zeros(n, dtype=self.data.dtype)
        if self.nnz:
            products = self.data * x[self.indices]
            starts = self.indptr[:-1]
            nonempty = self.indptr[:-1] < self.indptr[1:]
            # reduceat requires indices < len(products); clamp empties.
            safe_starts = np.minimum(starts, len(products) - 1)
            sums = np.add.reduceat(products, safe_starts)
            y[nonempty] = sums[nonempty]
        if out is not None:
            out[:] = y
            return out
        return y

    def spmv_rows(self, rows: np.ndarray, x: np.ndarray) -> np.ndarray:
        """(A @ x) restricted to a subset of rows (overlap split)."""
        if len(rows) == 0:
            return np.zeros(0, dtype=self.data.dtype)
        lens = (self.indptr[rows + 1] - self.indptr[rows]).astype(np.int64)
        total = int(lens.sum())
        # Gather the concatenated nnz ranges of the selected rows.
        flat = np.repeat(self.indptr[rows], lens) + (
            np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        )
        products = self.data[flat] * x[self.indices[flat]]
        out = np.zeros(len(rows), dtype=self.data.dtype)
        starts = np.cumsum(lens) - lens
        nonempty = lens > 0
        if total:
            safe_starts = np.minimum(starts, total - 1)
            sums = np.add.reduceat(products, safe_starts)
            out[nonempty] = sums[nonempty]
        return out

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal."""
        n = self.nrows
        diag = np.zeros(n, dtype=self.data.dtype)
        rows = np.repeat(np.arange(n), np.diff(self.indptr))
        hit = self.indices == rows
        diag_rows = rows[hit]
        diag[diag_rows] = self.data[hit]
        return diag

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def astype(self, prec: "Precision | str") -> "CSRMatrix":
        """Value-precision cast (keeps structure arrays shared)."""
        dtype = Precision.from_any(prec).dtype
        data = self.data if dtype == self.data.dtype else self.data.astype(dtype)
        return CSRMatrix(self.indptr, self.indices, data.copy() if data is self.data else data, self.ncols)

    def to_ell(self):
        """Convert to ELL."""
        from repro.sparse.ell import ELLMatrix

        return ELLMatrix.from_csr(self)

    def to_scipy(self):
        """Convert to scipy.sparse.csr_matrix (tests/diagnostics)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=(self.nrows, self.ncols)
        )

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any scipy sparse matrix."""
        m = mat.tocsr()
        return cls(
            indptr=m.indptr.astype(np.int64),
            indices=m.indices.astype(np.int32),
            data=np.asarray(m.data),
            ncols=m.shape[1],
        )

    def to_dense(self) -> np.ndarray:
        """Dense copy (small problems / tests only)."""
        return np.asarray(self.to_scipy().todense())

    def memory_bytes(self, index_bytes: int = 4, ptr_bytes: int = 8) -> int:
        """Storage footprint: values + column indices + row pointers."""
        return (
            self.data.size * self.data.itemsize
            + self.indices.size * index_bytes
            + self.indptr.size * ptr_bytes
        )
