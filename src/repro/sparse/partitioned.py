"""Ghost-column-aware partitioned matrix (distributed storage layout).

At 75k GCDs the benchmark is decided by how few bytes cross the memory
bus *and* the network per iteration, and by whether the halo exchange
hides behind interior compute (§3.2.3).  Both properties are layout
properties, so this module makes them explicit in the storage format
instead of recovering them per call with row-subset kernels:

**Partitioning contract.**  A rank's local column space is
``[0, nlocal)`` for owned points followed by ``[nlocal, nlocal+n_ghost)``
for ghost points, grouped in per-neighbor blocks in canonical direction
order — exactly the enumeration :class:`~repro.geometry.halo.HaloPattern`
builds.  Because the ghost columns are packed contiguously at the tail,
a halo receive lands *directly* in the tail of the full vector
(``xfull[nlocal + offset : ...]``) with zero unpack copies; the receive
buffer *is* the vector segment.

**Interior/boundary row blocks.**  Rows are split by whether their
stencil touches a ghost column.  Each side becomes its own block matrix
(same storage format as the source, full local column space), so the
two halves of the overlap schedule — interior SpMV while the halo is in
flight, boundary SpMV after it lands — are plain full-matrix kernels on
dense blocks.  No per-call row-subset index arithmetic remains on the
hot path, which is what makes the distributed loop allocation-free
after warmup.

**SELL-C-σ seam discipline.**  When the blocks are SELL-C-σ, the σ-sort
runs *within* each region independently (each block is chunked on its
own), so chunk membership never crosses the interior/boundary seam and
the overlap split never has to break a chunk apart.

**Precision.**  Row-equilibrated fp16 storage
(:class:`~repro.sparse.scaled.ScaledELLMatrix`) partitions with its
``row_scale`` sliced per block, so ghost regions are stored and
exchanged at the level's ladder rung while the equilibration scales are
carried across the partition unchanged.

**Color-partitioned SymGS (PR 5).**  The multicolor Gauss-Seidel sweep
gets the same treatment via :func:`partition_colors`: every color set
is split into an *interior* and a *boundary* row block.  Unlike SpMV,
a Gauss-Seidel color pass reads values written by earlier passes, so
the interior set must be **dependency-closed**, not merely
ghost-free: a row may run before the halo lands only if (a) its
stencil touches no ghost column and (b) every neighbor updated by an
*earlier* color pass is itself interior.  Under that closure the
overlapped schedule — post the halo, sweep every color's interior
block, land the ghosts, sweep every color's boundary block — executes
*exactly* the reads and writes of the sequential per-color sweep and
is therefore bitwise-equal to it (the property the cross-rank parity
suite asserts at fp64).  The closure erodes roughly one layer per
earlier color from the subdomain faces, so fine levels hide almost
the whole sweep behind the exchange while tiny coarse boxes may
degenerate to an empty interior (the Fig. 9b coarse-level exposure) —
correct in both regimes.
"""

from __future__ import annotations

import numpy as np

from repro.fp.precision import Precision
from repro.geometry.halo import HaloPattern
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.scaled import ScaledELLMatrix
from repro.sparse.sellcs import SELLCSMatrix


class PartitionedMatrix:
    """A local matrix split into interior/boundary row blocks.

    The blocks share the source matrix's storage format and its full
    local column space (owned + ghost-tail columns), so both consume
    the same full vector.  Kernels resolve through the registry ops
    ``spmv_interior`` / ``spmv_boundary`` (and ``spmv`` for the
    non-overlapped product, which is the same two block kernels run
    back to back — bitwise-identical to the overlapped schedule).
    """

    format_name = "partitioned"

    def __init__(
        self,
        interior,
        boundary,
        interior_rows: np.ndarray,
        boundary_rows: np.ndarray,
        nlocal: int,
        ncols: int,
        block_format: str,
    ) -> None:
        self.interior = interior
        self.boundary = boundary
        self.interior_rows = np.ascontiguousarray(interior_rows, dtype=np.int64)
        self.boundary_rows = np.ascontiguousarray(boundary_rows, dtype=np.int64)
        self.nlocal = nlocal
        self.ncols = ncols
        self.block_format = block_format

    # ------------------------------------------------------------------
    # Shape and metadata
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.nlocal

    @property
    def n_ghost(self) -> int:
        return self.ncols - self.nlocal

    @property
    def dtype(self) -> np.dtype:
        return self.interior.dtype if len(self.interior_rows) else self.boundary.dtype

    @property
    def precision(self) -> Precision:
        return Precision.from_any(self.dtype)

    @property
    def nnz(self) -> int:
        return int(self.interior.nnz) + int(self.boundary.nnz)

    @property
    def interior_fraction(self) -> float:
        """Share of rows computable before the halo lands."""
        return len(self.interior_rows) / self.nlocal if self.nlocal else 0.0

    # ------------------------------------------------------------------
    # Kernels (dispatch through the registry)
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        from repro.backends.dispatch import spmv

        return spmv(self, x, out=out)

    def spmv_interior(self, x, out=None, ws=None) -> np.ndarray:
        from repro.backends.dispatch import spmv_interior

        return spmv_interior(self, x, out=out, ws=ws)

    def spmv_boundary(self, x, out=None, ws=None) -> np.ndarray:
        from repro.backends.dispatch import spmv_boundary

        return spmv_boundary(self, x, out=out, ws=ws)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_bytes(self, index_bytes: int = 4) -> int:
        """Block storage plus the two row-index maps (int64)."""
        total = 8 * (len(self.interior_rows) + len(self.boundary_rows))
        for blk in (self.interior, self.boundary):
            total += blk.memory_bytes(index_bytes)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PartitionedMatrix {self.block_format} "
            f"{len(self.interior_rows)}i+{len(self.boundary_rows)}b rows, "
            f"{self.n_ghost} ghost cols, {self.precision.short_name}>"
        )


def _csr_rows(csr: CSRMatrix, rows: np.ndarray) -> CSRMatrix:
    """Row-subset CSR preserving within-row entry order and dtype."""
    lens = (csr.indptr[rows + 1] - csr.indptr[rows]).astype(np.int64)
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    total = int(indptr[-1])
    if total:
        flat = np.repeat(csr.indptr[rows], lens) + (
            np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        )
        indices = csr.indices[flat]
        data = csr.data[flat]
    else:
        indices = np.zeros(0, dtype=csr.indices.dtype)
        data = np.zeros(0, dtype=csr.data.dtype)
    return CSRMatrix(indptr=indptr, indices=indices, data=data, ncols=csr.ncols)


def _extract_rows(A, rows: np.ndarray):
    """Row-subset block in A's own format, values and scales preserved.

    ELL-family matrices slice their dense arrays directly (each row's
    slot layout is preserved, so block row sums are bitwise-identical
    to the unpartitioned kernel's); CSR slices its ranges; SELL-C-σ
    re-chunks the region on its own, which is exactly the
    region-confined σ-sort the distributed layout requires.
    """
    if isinstance(A, ScaledELLMatrix):
        return ScaledELLMatrix(
            cols=A.cols[rows],
            vals=A.vals[rows],
            ncols=A.ncols,
            row_scale=A.row_scale[rows],
        )
    if isinstance(A, ELLMatrix):
        return ELLMatrix(cols=A.cols[rows], vals=A.vals[rows], ncols=A.ncols)
    if isinstance(A, CSRMatrix):
        return _csr_rows(A, rows)
    if isinstance(A, SELLCSMatrix):
        # Dtype-preserving CSR detour, then region-local chunking with
        # the source matrix's (C, σ) parameters.
        csr = A.to_csr()
        return SELLCSMatrix.from_csr(_csr_rows(csr, rows), chunk=A.C, sigma=A.sigma)
    raise TypeError(
        f"cannot partition {type(A).__name__}; expected a CSR/ELL/SELL-C-σ "
        "local matrix"
    )


def _local_adjacency_csr(A, nlocal: int) -> tuple[np.ndarray, np.ndarray]:
    """Off-diagonal *local* adjacency of ``A`` as (indptr, neighbor cols).

    Ghost columns (>= ``nlocal``) are excluded — they are frozen for a
    sweep and impose no ordering constraint beyond the interior test —
    as are the diagonal and explicit zeros (a coupling stored as zero,
    e.g. one flushed by fp16 equilibration, moves nothing and therefore
    constrains nothing; classifying from the *stored* values keeps the
    split self-consistent with what the kernels actually compute).
    """
    if hasattr(A, "indptr"):  # CSR layout
        lens = np.diff(A.indptr)
        rows = np.repeat(np.arange(A.nrows, dtype=np.int64), lens)
        cols = A.indices.astype(np.int64)
        keep = (cols < nlocal) & (cols != rows) & (A.data != 0)
    elif hasattr(A, "blocks"):  # SELL-C-σ: go through its CSR view
        return _local_adjacency_csr(A.to_csr(), nlocal)
    elif hasattr(A, "cols"):  # ELL-family (incl. row-equilibrated)
        n = A.nrows
        rows2d = np.arange(n, dtype=np.int64)[:, None]
        mask = (A.vals != 0) & (A.cols != rows2d) & (A.cols < nlocal)
        lens = mask.sum(axis=1)
        rows = np.repeat(np.arange(n, dtype=np.int64), lens)
        cols = A.cols[mask].astype(np.int64)
        keep = np.ones(len(cols), dtype=bool)
    else:
        raise TypeError(f"cannot derive adjacency from {type(A).__name__}")
    cols = cols[keep]
    rows = rows[keep]
    indptr = np.zeros(A.nrows + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols


def sweep_overlap_split(
    A,
    sets: list[np.ndarray],
    interior_mask: np.ndarray,
    order: "list[int] | range | None" = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Dependency-closed (interior, boundary) rows per color set.

    ``order`` is the sweep order over color indices (default ascending:
    a forward sweep; pass ``reversed(range(ncolors))`` for backward).
    Returned in *color-index* order regardless of ``order``.

    A row of color ``c`` is interior ("early") iff its stencil touches
    no ghost column **and** every local neighbor whose color runs
    earlier in ``order`` is itself early.  That single fixpoint makes
    the split schedule — all early blocks in sweep order, then all
    late blocks in sweep order — read exactly the values the
    sequential per-color sweep reads (see the module docstring), which
    is what makes the overlapped SymGS bitwise-equal at fp64.  Because
    the predicate only consults earlier-order colors, one pass over
    the colors in sweep order computes the fixpoint exactly.
    """
    ncolors = len(sets)
    nlocal = len(interior_mask)
    if order is None:
        order = range(ncolors)
    order = list(order)
    indptr, nbr = _local_adjacency_csr(A, nlocal)
    # Sweep position of each row's color (large = never swept; unused).
    pos_of_color = np.full(ncolors, ncolors, dtype=np.int64)
    for p, c in enumerate(order):
        pos_of_color[c] = p
    row_pos = np.empty(nlocal, dtype=np.int64)
    for c, rows in enumerate(sets):
        row_pos[rows] = pos_of_color[c]

    early = np.zeros(nlocal, dtype=bool)
    split: list[tuple[np.ndarray, np.ndarray] | None] = [None] * ncolors
    for p, c in enumerate(order):
        rows = np.ascontiguousarray(sets[c], dtype=np.int64)
        cand = interior_mask[rows]
        if cand.any() and p > 0:
            crows = rows[cand]
            lens = indptr[crows + 1] - indptr[crows]
            total = int(lens.sum())
            if total:
                flat = np.repeat(indptr[crows], lens) + (
                    np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
                )
                nb = nbr[flat]
                # An earlier-order neighbor that is not early blocks us.
                viol = (row_pos[nb] < p) & ~early[nb]
                ok = np.ones(len(crows), dtype=bool)
                starts = np.cumsum(lens) - lens
                nonempty = lens > 0
                if nonempty.any():
                    viol64 = viol.astype(np.int64)
                    any_viol = np.add.reduceat(viol64, starts[nonempty]) > 0
                    ok[nonempty] = ~any_viol
                good = np.zeros(len(rows), dtype=bool)
                good[np.nonzero(cand)[0]] = ok
                cand = good
        early[rows[cand]] = True
        split[c] = (rows[cand], rows[~cand])
    return split  # type: ignore[return-value]


class _ColorBlock:
    """One color's rows restricted to a region, with its matrix block.

    The block shares the source matrix's storage format and full local
    column space, so a full-matrix ``spmv`` on it computes exactly the
    rows' relaxation numerators — no row-subset index arithmetic on
    the hot path (the same property the SpMV partition relies on).
    """

    __slots__ = ("rows", "A", "diag")

    def __init__(self, rows: np.ndarray, A_block, diag: np.ndarray) -> None:
        self.rows = rows
        self.A = A_block
        self.diag = diag


class SweepSchedule:
    """The per-color (interior, boundary) blocks of one sweep direction."""

    def __init__(
        self, direction: str, passes: list[tuple[_ColorBlock, _ColorBlock]]
    ) -> None:
        self.direction = direction
        #: (interior, boundary) block pairs in *sweep order*.
        self.passes = passes

    @property
    def interior_rows(self) -> int:
        return sum(len(i.rows) for i, _ in self.passes)

    @property
    def boundary_rows(self) -> int:
        return sum(len(b.rows) for _, b in self.passes)


class ColorPartitionedMatrix:
    """A local matrix pre-split per color for the overlapped SymGS.

    Dispatches through the registry ops ``symgs_interior`` /
    ``symgs_boundary`` (and ``symgs_sweep`` for the interleaved
    non-overlapped schedule).  Schedules are built lazily per sweep
    direction (the benchmark's default sweep is forward-only) and
    cached; block extraction reuses the SpMV partition's row-subset
    machinery, so every format — including re-chunked SELL-C-σ and
    row-equilibrated fp16 with per-block scales — is covered.
    """

    format_name = "color_partitioned"

    def __init__(
        self,
        A,
        sets: list[np.ndarray],
        interior_mask: np.ndarray,
        diag: np.ndarray,
        nlocal: int,
        ncols: int,
    ) -> None:
        self.A = A
        self.sets = sets
        self.interior_mask = interior_mask
        self.diag = diag
        self.nlocal = nlocal
        self.ncols = ncols
        from repro.backends.dispatch import matrix_format

        self.block_format = matrix_format(A)
        self._schedules: dict[str, SweepSchedule] = {}

    @property
    def dtype(self) -> np.dtype:
        return self.A.dtype

    @property
    def precision(self) -> Precision:
        return Precision.from_any(self.dtype)

    @property
    def num_colors(self) -> int:
        return len(self.sets)

    def schedule(self, direction: str) -> SweepSchedule:
        """The (lazily built, cached) block schedule for a direction."""
        sched = self._schedules.get(direction)
        if sched is None:
            sched = self._build_schedule(direction)
            self._schedules[direction] = sched
        return sched

    def interior_fraction(self, direction: str = "forward") -> float:
        """Share of rows sweepable before the halo lands."""
        if self.nlocal == 0:
            return 0.0
        return self.schedule(direction).interior_rows / self.nlocal

    def _build_schedule(self, direction: str) -> SweepSchedule:
        ncolors = len(self.sets)
        if direction == "forward":
            order = list(range(ncolors))
        elif direction == "backward":
            order = list(reversed(range(ncolors)))
        else:
            raise ValueError(f"unknown sweep direction {direction!r}")
        split = sweep_overlap_split(self.A, self.sets, self.interior_mask, order)
        passes = []
        for c in order:
            interior_rows, boundary_rows = split[c]
            passes.append((self._block(interior_rows), self._block(boundary_rows)))
        return SweepSchedule(direction, passes)

    def _block(self, rows: np.ndarray) -> _ColorBlock:
        if len(rows) == 0:
            return _ColorBlock(rows, None, self.diag[rows])
        return _ColorBlock(rows, _extract_rows(self.A, rows), self.diag[rows])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ColorPartitionedMatrix {self.block_format} "
            f"{self.num_colors} colors, {self.nlocal} rows, "
            f"{self.precision.short_name}>"
        )


def partition_colors(
    A,
    halo: HaloPattern,
    sets: list[np.ndarray],
    diag: np.ndarray | None = None,
) -> ColorPartitionedMatrix:
    """Split a local matrix per color set for the overlapped SymGS.

    ``sets`` are the multicolor Gauss-Seidel color sets (ascending row
    order within each color, as :func:`repro.sparse.coloring.color_sets`
    returns them); ``diag`` is the *unscaled* diagonal the relaxation
    divides by (defaults to ``A.diagonal()``, which row-equilibrated
    storage already reports unscaled).
    """
    if A.nrows != halo.nlocal or A.ncols != halo.ncols:
        raise ValueError(
            f"matrix shape ({A.nrows} rows, {A.ncols} cols) does not match "
            f"the halo pattern ({halo.nlocal} owned + {halo.n_ghost} ghost)"
        )
    interior_mask = np.zeros(halo.nlocal, dtype=bool)
    interior_mask[halo.interior_rows] = True
    if diag is None:
        diag = A.diagonal()
    return ColorPartitionedMatrix(
        A=A,
        sets=[np.ascontiguousarray(s, dtype=np.int64) for s in sets],
        interior_mask=interior_mask,
        diag=diag,
        nlocal=halo.nlocal,
        ncols=halo.ncols,
    )


def partition_matrix(A, halo: HaloPattern) -> PartitionedMatrix:
    """Split a local matrix into interior/boundary blocks along ``halo``.

    ``A`` must follow the partitioning contract already (owned columns
    first, ghost columns packed at the tail in the halo pattern's block
    order) — which every matrix built by
    :func:`repro.stencil.poisson27.generate_problem` does.
    """
    from repro.backends.dispatch import matrix_format

    if A.nrows != halo.nlocal or A.ncols != halo.ncols:
        raise ValueError(
            f"matrix shape ({A.nrows} rows, {A.ncols} cols) does not match "
            f"the halo pattern ({halo.nlocal} owned + {halo.n_ghost} ghost)"
        )
    interior_rows = halo.interior_rows
    boundary_rows = halo.boundary_rows
    return PartitionedMatrix(
        interior=_extract_rows(A, interior_rows),
        boundary=_extract_rows(A, boundary_rows),
        interior_rows=interior_rows,
        boundary_rows=boundary_rows,
        nlocal=halo.nlocal,
        ncols=halo.ncols,
        block_format=matrix_format(A),
    )
