"""Ghost-column-aware partitioned matrix (distributed storage layout).

At 75k GCDs the benchmark is decided by how few bytes cross the memory
bus *and* the network per iteration, and by whether the halo exchange
hides behind interior compute (§3.2.3).  Both properties are layout
properties, so this module makes them explicit in the storage format
instead of recovering them per call with row-subset kernels:

**Partitioning contract.**  A rank's local column space is
``[0, nlocal)`` for owned points followed by ``[nlocal, nlocal+n_ghost)``
for ghost points, grouped in per-neighbor blocks in canonical direction
order — exactly the enumeration :class:`~repro.geometry.halo.HaloPattern`
builds.  Because the ghost columns are packed contiguously at the tail,
a halo receive lands *directly* in the tail of the full vector
(``xfull[nlocal + offset : ...]``) with zero unpack copies; the receive
buffer *is* the vector segment.

**Interior/boundary row blocks.**  Rows are split by whether their
stencil touches a ghost column.  Each side becomes its own block matrix
(same storage format as the source, full local column space), so the
two halves of the overlap schedule — interior SpMV while the halo is in
flight, boundary SpMV after it lands — are plain full-matrix kernels on
dense blocks.  No per-call row-subset index arithmetic remains on the
hot path, which is what makes the distributed loop allocation-free
after warmup.

**SELL-C-σ seam discipline.**  When the blocks are SELL-C-σ, the σ-sort
runs *within* each region independently (each block is chunked on its
own), so chunk membership never crosses the interior/boundary seam and
the overlap split never has to break a chunk apart.

**Precision.**  Row-equilibrated fp16 storage
(:class:`~repro.sparse.scaled.ScaledELLMatrix`) partitions with its
``row_scale`` sliced per block, so ghost regions are stored and
exchanged at the level's ladder rung while the equilibration scales are
carried across the partition unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.fp.precision import Precision
from repro.geometry.halo import HaloPattern
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.scaled import ScaledELLMatrix
from repro.sparse.sellcs import SELLCSMatrix


class PartitionedMatrix:
    """A local matrix split into interior/boundary row blocks.

    The blocks share the source matrix's storage format and its full
    local column space (owned + ghost-tail columns), so both consume
    the same full vector.  Kernels resolve through the registry ops
    ``spmv_interior`` / ``spmv_boundary`` (and ``spmv`` for the
    non-overlapped product, which is the same two block kernels run
    back to back — bitwise-identical to the overlapped schedule).
    """

    format_name = "partitioned"

    def __init__(
        self,
        interior,
        boundary,
        interior_rows: np.ndarray,
        boundary_rows: np.ndarray,
        nlocal: int,
        ncols: int,
        block_format: str,
    ) -> None:
        self.interior = interior
        self.boundary = boundary
        self.interior_rows = np.ascontiguousarray(interior_rows, dtype=np.int64)
        self.boundary_rows = np.ascontiguousarray(boundary_rows, dtype=np.int64)
        self.nlocal = nlocal
        self.ncols = ncols
        self.block_format = block_format

    # ------------------------------------------------------------------
    # Shape and metadata
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.nlocal

    @property
    def n_ghost(self) -> int:
        return self.ncols - self.nlocal

    @property
    def dtype(self) -> np.dtype:
        return self.interior.dtype if len(self.interior_rows) else self.boundary.dtype

    @property
    def precision(self) -> Precision:
        return Precision.from_any(self.dtype)

    @property
    def nnz(self) -> int:
        return int(self.interior.nnz) + int(self.boundary.nnz)

    @property
    def interior_fraction(self) -> float:
        """Share of rows computable before the halo lands."""
        return len(self.interior_rows) / self.nlocal if self.nlocal else 0.0

    # ------------------------------------------------------------------
    # Kernels (dispatch through the registry)
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        from repro.backends.dispatch import spmv

        return spmv(self, x, out=out)

    def spmv_interior(self, x, out=None, ws=None) -> np.ndarray:
        from repro.backends.dispatch import spmv_interior

        return spmv_interior(self, x, out=out, ws=ws)

    def spmv_boundary(self, x, out=None, ws=None) -> np.ndarray:
        from repro.backends.dispatch import spmv_boundary

        return spmv_boundary(self, x, out=out, ws=ws)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_bytes(self, index_bytes: int = 4) -> int:
        """Block storage plus the two row-index maps (int64)."""
        total = 8 * (len(self.interior_rows) + len(self.boundary_rows))
        for blk in (self.interior, self.boundary):
            total += blk.memory_bytes(index_bytes)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PartitionedMatrix {self.block_format} "
            f"{len(self.interior_rows)}i+{len(self.boundary_rows)}b rows, "
            f"{self.n_ghost} ghost cols, {self.precision.short_name}>"
        )


def _csr_rows(csr: CSRMatrix, rows: np.ndarray) -> CSRMatrix:
    """Row-subset CSR preserving within-row entry order and dtype."""
    lens = (csr.indptr[rows + 1] - csr.indptr[rows]).astype(np.int64)
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    total = int(indptr[-1])
    if total:
        flat = np.repeat(csr.indptr[rows], lens) + (
            np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        )
        indices = csr.indices[flat]
        data = csr.data[flat]
    else:
        indices = np.zeros(0, dtype=csr.indices.dtype)
        data = np.zeros(0, dtype=csr.data.dtype)
    return CSRMatrix(indptr=indptr, indices=indices, data=data, ncols=csr.ncols)


def _extract_rows(A, rows: np.ndarray):
    """Row-subset block in A's own format, values and scales preserved.

    ELL-family matrices slice their dense arrays directly (each row's
    slot layout is preserved, so block row sums are bitwise-identical
    to the unpartitioned kernel's); CSR slices its ranges; SELL-C-σ
    re-chunks the region on its own, which is exactly the
    region-confined σ-sort the distributed layout requires.
    """
    if isinstance(A, ScaledELLMatrix):
        return ScaledELLMatrix(
            cols=A.cols[rows],
            vals=A.vals[rows],
            ncols=A.ncols,
            row_scale=A.row_scale[rows],
        )
    if isinstance(A, ELLMatrix):
        return ELLMatrix(cols=A.cols[rows], vals=A.vals[rows], ncols=A.ncols)
    if isinstance(A, CSRMatrix):
        return _csr_rows(A, rows)
    if isinstance(A, SELLCSMatrix):
        # Dtype-preserving CSR detour, then region-local chunking with
        # the source matrix's (C, σ) parameters.
        csr = A.to_csr()
        return SELLCSMatrix.from_csr(_csr_rows(csr, rows), chunk=A.C, sigma=A.sigma)
    raise TypeError(
        f"cannot partition {type(A).__name__}; expected a CSR/ELL/SELL-C-σ "
        "local matrix"
    )


def partition_matrix(A, halo: HaloPattern) -> PartitionedMatrix:
    """Split a local matrix into interior/boundary blocks along ``halo``.

    ``A`` must follow the partitioning contract already (owned columns
    first, ghost columns packed at the tail in the halo pattern's block
    order) — which every matrix built by
    :func:`repro.stencil.poisson27.generate_problem` does.
    """
    from repro.backends.dispatch import matrix_format

    if A.nrows != halo.nlocal or A.ncols != halo.ncols:
        raise ValueError(
            f"matrix shape ({A.nrows} rows, {A.ncols} cols) does not match "
            f"the halo pattern ({halo.nlocal} owned + {halo.n_ghost} ghost)"
        )
    interior_rows = halo.interior_rows
    boundary_rows = halo.boundary_rows
    return PartitionedMatrix(
        interior=_extract_rows(A, interior_rows),
        boundary=_extract_rows(A, boundary_rows),
        interior_rows=interior_rows,
        boundary_rows=boundary_rows,
        nlocal=halo.nlocal,
        ncols=halo.ncols,
        block_format=matrix_format(A),
    )
