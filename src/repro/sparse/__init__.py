"""Sparse matrix formats and kernels.

Implements the storage formats the paper contrasts — CSR (used by the
reference HPG-MxP implementation), ELLPACK/ELL (used by the optimized
one, §3.2.2), and SELL-C-σ (the GPU-native chunked format the paper's
ELL choice approximates) — plus the parallelism-exposing machinery:
greedy / Jones-Plassmann-Luby multicoloring (§3.2.1), symmetric
reordering, and level-scheduled triangular solves (the reference
implementation's Gauss-Seidel building block).

Kernels (SpMV and friends) live in :mod:`repro.backends`; the classes
here hold layout and dispatch through the registry.
"""

from repro.sparse.ell import ELLMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.sellcs import SELLCSMatrix
from repro.sparse.formats import (
    MATRIX_FORMATS,
    known_formats,
    matrix_format_of,
    to_format,
)
from repro.sparse.scaled import (
    ScaledELLMatrix,
    equilibrated_half,
    row_equilibration_scales,
    to_precision,
)
from repro.sparse.partitioned import (
    ColorPartitionedMatrix,
    PartitionedMatrix,
    partition_colors,
    partition_matrix,
    sweep_overlap_split,
)
from repro.sparse.coloring import (
    greedy_coloring,
    jpl_coloring,
    structured_coloring8,
    validate_coloring,
    color_sets,
)
from repro.sparse.reorder import (
    permute_symmetric,
    inverse_permutation,
    coloring_permutation,
    rcm_ordering,
)
from repro.sparse.triangular import (
    lower_levels,
    solve_lower_levelscheduled,
    solve_upper_levelscheduled,
)

__all__ = [
    "ELLMatrix",
    "CSRMatrix",
    "SELLCSMatrix",
    "MATRIX_FORMATS",
    "known_formats",
    "matrix_format_of",
    "to_format",
    "ScaledELLMatrix",
    "equilibrated_half",
    "row_equilibration_scales",
    "to_precision",
    "ColorPartitionedMatrix",
    "PartitionedMatrix",
    "partition_colors",
    "partition_matrix",
    "sweep_overlap_split",
    "greedy_coloring",
    "jpl_coloring",
    "structured_coloring8",
    "validate_coloring",
    "color_sets",
    "permute_symmetric",
    "inverse_permutation",
    "coloring_permutation",
    "rcm_ordering",
    "lower_levels",
    "solve_lower_levelscheduled",
    "solve_upper_levelscheduled",
]
