"""Sparse matrix formats and kernels.

Implements the two storage formats the paper contrasts — CSR (used by
the reference HPG-MxP implementation) and ELLPACK/ELL (used by the
optimized one, §3.2.2) — plus the parallelism-exposing machinery:
greedy / Jones-Plassmann-Luby multicoloring (§3.2.1), symmetric
reordering, and level-scheduled triangular solves (the reference
implementation's Gauss-Seidel building block).
"""

from repro.sparse.ell import ELLMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.coloring import (
    greedy_coloring,
    jpl_coloring,
    structured_coloring8,
    validate_coloring,
    color_sets,
)
from repro.sparse.reorder import (
    permute_symmetric,
    inverse_permutation,
    coloring_permutation,
    rcm_ordering,
)
from repro.sparse.triangular import (
    lower_levels,
    solve_lower_levelscheduled,
    solve_upper_levelscheduled,
)

__all__ = [
    "ELLMatrix",
    "CSRMatrix",
    "greedy_coloring",
    "jpl_coloring",
    "structured_coloring8",
    "validate_coloring",
    "color_sets",
    "permute_symmetric",
    "inverse_permutation",
    "coloring_permutation",
    "rcm_ordering",
    "lower_levels",
    "solve_lower_levelscheduled",
    "solve_upper_levelscheduled",
]
