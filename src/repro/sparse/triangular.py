"""Level-scheduled sparse triangular solves (reference GS path).

The reference HPG-MxP implementation realizes forward Gauss-Seidel as a
SpMV with the upper triangle followed by a level-scheduled SpTRSV with
the lower triangle (§3.1 issues 1-2).  Level scheduling preserves the
sequential (lexicographic) update order exactly, so the smoother is as
strong as serial GS — but the wavefronts expose little parallelism.  On
the 27-point stencil the dependency levels are ``ix + 2*iy + 4*iz``, so
an ``n^3`` box has ~``7n`` levels of average size ``n^2/7``.

These kernels back the ``impl="reference"`` code path and the ablation
benchmarks; the optimized path uses multicolor relaxation instead.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.ell import ELLMatrix


def split_triangular(
    A: ELLMatrix,
) -> tuple[ELLMatrix, ELLMatrix, np.ndarray]:
    """Split a local matrix into strict-lower, rest, and diagonal.

    Returns ``(L, U, diag)`` where ``L`` holds the strictly-lower
    *local* couplings (col < row), and ``U`` holds everything else off
    the diagonal — strictly-upper local couplings *and* all ghost
    columns, which Gauss-Seidel treats as frozen input.
    """
    n = A.nrows
    rows = np.arange(n)[:, None]
    nz = A.vals != 0
    lower_mask = nz & (A.cols < rows) & (A.cols < n)
    diag_mask = nz & (A.cols == rows)
    upper_mask = nz & ~lower_mask & ~diag_mask

    L = ELLMatrix(
        cols=np.where(lower_mask, A.cols, 0).astype(np.int32),
        vals=np.where(lower_mask, A.vals, 0),
        ncols=A.ncols,
    )
    U = ELLMatrix(
        cols=np.where(upper_mask, A.cols, 0).astype(np.int32),
        vals=np.where(upper_mask, A.vals, 0),
        ncols=A.ncols,
    )
    diag = (A.vals * diag_mask).sum(axis=1).astype(A.vals.dtype)
    return L, U, diag


def lower_levels(L: ELLMatrix) -> np.ndarray:
    """Dependency levels of the strict-lower adjacency (longest path).

    ``level[i] = 1 + max(level[j])`` over lower neighbors ``j``, with
    sources at level 0.  Computed as a vectorized fixpoint; the number
    of sweeps equals the number of levels.
    """
    n = L.nrows
    rows = np.arange(n)[:, None]
    mask = (L.vals != 0) & (L.cols < rows)
    levels = np.zeros(n, dtype=np.int64)
    for _ in range(n + 1):
        nb = np.where(mask, levels[L.cols], -1)
        new = nb.max(axis=1, initial=-1) + 1
        if np.array_equal(new, levels):
            return levels
        levels = new
    raise RuntimeError("cycle detected in lower-triangular adjacency")


def level_sets(levels: np.ndarray) -> list[np.ndarray]:
    """Row-index arrays per level, ascending within each level."""
    nlev = int(levels.max()) + 1 if len(levels) else 0
    order = np.argsort(levels, kind="stable")
    sorted_levels = levels[order]
    bounds = np.searchsorted(sorted_levels, np.arange(nlev + 1))
    return [np.sort(order[bounds[k] : bounds[k + 1]]) for k in range(nlev)]


def solve_lower_levelscheduled(
    L: ELLMatrix,
    diag: np.ndarray,
    rhs: np.ndarray,
    sets: list[np.ndarray],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``(D + L) y = rhs`` level by level.

    Bit-identical to the sequential forward substitution because every
    row's lower neighbors live in strictly earlier levels.
    """
    n = L.nrows
    y = out if out is not None else np.zeros(n, dtype=rhs.dtype)
    y[:] = 0
    yfull = np.zeros(L.ncols, dtype=rhs.dtype)
    for rows in sets:
        contrib = L.spmv_rows(rows, yfull)
        y[rows] = (rhs[rows] - contrib) / diag[rows]
        yfull[rows] = y[rows]
    return y


def upper_levels(U_local: ELLMatrix) -> np.ndarray:
    """Dependency levels for the strictly-upper local adjacency."""
    n = U_local.nrows
    rows = np.arange(n)[:, None]
    mask = (U_local.vals != 0) & (U_local.cols > rows) & (U_local.cols < n)
    levels = np.zeros(n, dtype=np.int64)
    for _ in range(n + 1):
        nb = np.where(mask, levels[U_local.cols], -1)
        new = nb.max(axis=1, initial=-1) + 1
        if np.array_equal(new, levels):
            return levels
        levels = new
    raise RuntimeError("cycle detected in upper-triangular adjacency")


def solve_upper_levelscheduled(
    U: ELLMatrix,
    diag: np.ndarray,
    rhs: np.ndarray,
    sets: list[np.ndarray],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``(D + U_local) y = rhs`` level by level (backward sweep).

    ``U`` may contain ghost couplings; only local strictly-upper entries
    participate in the substitution — ghost contributions must already
    be folded into ``rhs`` by the caller.  ``sets`` must come from
    :func:`upper_levels` in ascending level order (level 0 = rows with
    no upper neighbors, which backward substitution visits first).
    """
    n = U.nrows
    rows = np.arange(n)[:, None]
    local_mask = (U.vals != 0) & (U.cols > rows) & (U.cols < n)
    U_loc = ELLMatrix(
        cols=np.where(local_mask, U.cols, 0).astype(np.int32),
        vals=np.where(local_mask, U.vals, 0),
        ncols=U.ncols,
    )
    y = out if out is not None else np.zeros(n, dtype=rhs.dtype)
    y[:] = 0
    yfull = np.zeros(U.ncols, dtype=rhs.dtype)
    for rows_k in sets:
        contrib = U_loc.spmv_rows(rows_k, yfull)
        y[rows_k] = (rhs[rows_k] - contrib) / diag[rows_k]
        yfull[rows_k] = y[rows_k]
    return y
