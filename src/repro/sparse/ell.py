"""ELLPACK (ELL) sparse matrix format.

ELL stores a dense ``(nrows, width)`` block of values and column indices
where ``width`` is the maximum nonzeros per row; short rows are padded.
For stencil matrices (27 nonzeros per interior row) padding overhead is
small and, unlike CSR, no row-pointer array is needed and every row's
nonzeros sit at a fixed stride — which is why the paper adopts it for
GPU warps (§3.2.2).  Here the same property makes the SpMV a single
vectorized gather-multiply-reduce with no Python-level looping.

Padding convention: padded slots have ``col = 0`` and ``val = 0`` so a
gather through them is harmless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.precision import Precision


@dataclass
class ELLMatrix:
    """A local sparse matrix in ELL layout.

    Attributes
    ----------
    cols:
        ``(nrows, width)`` int32 local column indices (padded slots 0).
    vals:
        ``(nrows, width)`` values (padded slots 0.0).
    ncols:
        Column-space size; for distributed matrices this is
        ``nlocal + n_ghost``.
    """

    cols: np.ndarray
    vals: np.ndarray
    ncols: int

    #: Storage-format key for the kernel registry.
    format_name = "ell"

    def __post_init__(self) -> None:
        if self.cols.shape != self.vals.shape:
            raise ValueError("cols/vals shape mismatch")
        if self.cols.ndim != 2:
            raise ValueError("ELL arrays must be 2-D")
        if self.cols.dtype != np.int32:
            self.cols = self.cols.astype(np.int32)

    # ------------------------------------------------------------------
    # Shape and metadata
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.cols.shape[0]

    @property
    def width(self) -> int:
        """Max nonzeros per row (ELL row width)."""
        return self.cols.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self.vals.dtype

    @property
    def precision(self) -> Precision:
        return Precision.from_any(self.vals.dtype)

    @property
    def nnz(self) -> int:
        """Stored (non-padded) nonzeros.

        A structurally-present explicit zero would be undercounted, but
        the benchmark matrix has none.
        """
        return int(np.count_nonzero(self.vals))

    @property
    def pad_fraction(self) -> float:
        """Fraction of the dense block that is padding."""
        total = self.vals.size
        return 1.0 - self.nnz / total if total else 0.0

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """y = A @ x for a full column vector (owned + ghost entries).

        Fully vectorized: one gather of ``x`` through the column block,
        elementwise multiply, and a row reduction.
        """
        from repro.backends.dispatch import spmv

        return spmv(self, x, out=out)

    def spmv_rows(self, rows: np.ndarray, x: np.ndarray) -> np.ndarray:
        """(A @ x) restricted to a subset of rows.

        This is the building block for the fused SpMV-restriction
        (evaluate the residual only at coarse-grid points, §3.2.4) and
        for the interior/boundary overlap split (§3.2.3).
        """
        from repro.backends.dispatch import spmv_rows

        return spmv_rows(self, rows, x)

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (vectorized slot search)."""
        n = self.nrows
        rows = np.arange(n, dtype=np.int64)
        hit = (self.cols == rows[:, None]) & (self.vals != 0)
        # Rows with an explicit diagonal zero are treated as missing and
        # return 0; fine for the benchmark matrix (diag = 26 everywhere).
        diag = np.where(hit.any(axis=1), (self.vals * hit).sum(axis=1), 0.0)
        # Special-case row 0: padded slots alias col 0, but their vals
        # are zero so the mask above already excludes them.
        return diag.astype(self.vals.dtype)

    def row_nnz(self) -> np.ndarray:
        """Number of stored nonzeros in each row."""
        return np.count_nonzero(self.vals, axis=1)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def astype(self, prec: "Precision | str") -> "ELLMatrix":
        """Copy of this matrix with values cast to another precision.

        This produces the low-precision matrix copy GMRES-IR keeps next
        to the double-precision one.
        """
        dtype = Precision.from_any(prec).dtype
        if dtype == self.vals.dtype:
            return ELLMatrix(self.cols, self.vals.copy(), self.ncols)
        return ELLMatrix(self.cols, self.vals.astype(dtype), self.ncols)

    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR, dropping padding."""
        from repro.sparse.csr import CSRMatrix

        mask = self.vals != 0
        counts = mask.sum(axis=1)
        indptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = self.cols[mask].astype(np.int32)
        data = self.vals[mask]
        return CSRMatrix(indptr=indptr, indices=indices, data=data, ncols=self.ncols)

    def to_sellcs(self, chunk: int | None = None, sigma: int | None = None):
        """Convert to SELL-C-σ."""
        from repro.sparse.sellcs import DEFAULT_CHUNK, SELLCSMatrix

        return SELLCSMatrix.from_csr(
            self.to_csr(),
            chunk=chunk if chunk is not None else DEFAULT_CHUNK,
            sigma=sigma,
        )

    def to_scipy(self):
        """Convert to a scipy CSR matrix (test/diagnostic use)."""
        return self.to_csr().to_scipy()

    def to_dense(self) -> np.ndarray:
        """Dense copy (small problems / tests only)."""
        out = np.zeros((self.nrows, self.ncols), dtype=self.vals.dtype)
        mask = self.vals != 0
        rows = np.nonzero(mask)[0]
        np.add.at(out, (rows, self.cols[mask]), self.vals[mask])
        return out

    @classmethod
    def from_csr(cls, csr: "CSRMatrix") -> "ELLMatrix":
        """Build ELL from CSR (pads to the max row length)."""
        nnz_per_row = np.diff(csr.indptr)
        width = int(nnz_per_row.max(initial=0))
        n = csr.nrows
        cols = np.zeros((n, width), dtype=np.int32)
        vals = np.zeros((n, width), dtype=csr.data.dtype)
        # Vectorized scatter: position of each nnz within its row.
        within = np.arange(len(csr.indices)) - np.repeat(csr.indptr[:-1], nnz_per_row)
        rows = np.repeat(np.arange(n), nnz_per_row)
        cols[rows, within] = csr.indices
        vals[rows, within] = csr.data
        return cls(cols=cols, vals=vals, ncols=csr.ncols)

    def memory_bytes(self, index_bytes: int = 4) -> int:
        """Storage footprint: values + column indices (no row pointers)."""
        return self.vals.size * self.vals.itemsize + self.cols.size * index_bytes
