"""HPG-MxP reproduction — mixed-precision GMRES-IR benchmark library.

Reproduces Kashi et al., "Scaling the memory wall using mixed-precision:
HPG-MxP on an exascale machine" (SC'25): the benchmark itself (problem
generator, multigrid-preconditioned GMRES-IR, validation and metric
pipeline), the optimizations the paper contributes (multicolor
Gauss-Seidel, ELL storage, fused SpMV-restriction, overlap), an
MPI-like SPMD runtime for real distributed numerics, and a calibrated
performance model of Frontier that regenerates the paper's scaling
figures.

Quickstart::

    from repro import BenchmarkConfig, run_benchmark, format_report
    result = run_benchmark(BenchmarkConfig(local_nx=16, nranks=1))
    print(format_report(result))
"""

from repro.version import __version__, PAPER
from repro.fp import (
    Precision,
    PrecisionPolicy,
    EscalationConfig,
    DOUBLE_POLICY,
    HALF_LADDER_POLICY,
    MIXED_DS_POLICY,
)
from repro.core import (
    BenchmarkConfig,
    BenchmarkResult,
    HPGMxPBenchmark,
    run_benchmark,
    HPCGConfig,
    run_hpcg,
    format_report,
)
from repro.solvers import GMRESIRSolver, PCGSolver, gmres_solve, pcg_solve
from repro.stencil import generate_problem, ProblemSpec
from repro.geometry import Subdomain, ProcessGrid, BoxGrid
from repro.parallel import SerialComm, run_spmd
from repro.mg import MGConfig, MultigridPreconditioner

__all__ = [
    "__version__",
    "PAPER",
    "Precision",
    "PrecisionPolicy",
    "EscalationConfig",
    "DOUBLE_POLICY",
    "HALF_LADDER_POLICY",
    "MIXED_DS_POLICY",
    "BenchmarkConfig",
    "BenchmarkResult",
    "HPGMxPBenchmark",
    "run_benchmark",
    "HPCGConfig",
    "run_hpcg",
    "format_report",
    "GMRESIRSolver",
    "PCGSolver",
    "gmres_solve",
    "pcg_solve",
    "generate_problem",
    "ProblemSpec",
    "Subdomain",
    "ProcessGrid",
    "BoxGrid",
    "SerialComm",
    "run_spmd",
    "MGConfig",
    "MultigridPreconditioner",
]
