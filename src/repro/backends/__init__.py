"""Pluggable kernel-backend layer.

Every hot operation of the benchmark — SpMV, SymGS sweeps, CGS2's
GEMV/GEMVT, WAXPBY, dots, grid transfers — is dispatched through a
process-wide :class:`~repro.backends.registry.KernelRegistry` on a
``(op, format, precision, backend)`` key.  The ``numpy`` reference
backend is always present; an optional Numba backend registers itself
when the package is importable (auto-detected here at import time) and
wins the priority-based auto-selection.  ``REPRO_BACKEND=<name>``
forces a backend explicitly.

The companion :class:`~repro.backends.workspace.Workspace` arena gives
solvers preallocated, precision-keyed scratch so the inner
Arnoldi/V-cycle loop runs with zero per-iteration array allocations.

Registering a new backend::

    from repro.backends import register, registry

    registry.register_backend("mygpu", priority=20)

    @register("spmv", fmt="ell", backend="mygpu")
    def spmv_ell_mygpu(A, x, out=None, ws=None):
        ...

See README section "Kernel backends" for the full contract.
"""

from repro.backends.registry import (
    KernelNotFoundError,
    KernelRegistry,
    active_backend,
    available_backends,
    lookup,
    register,
    registered_formats,
    registry,
    set_backend,
)
from repro.backends.workspace import (
    Workspace,
    WorkspacePool,
    default_workspace,
)

# Importing the backend modules populates the registry; numpy first
# (the guaranteed fallback), then optional accelerated backends.
from repro.backends import numpy_backend  # noqa: E402,F401
from repro.backends import partitioned_ops  # noqa: E402,F401
from repro.backends import numba_backend  # noqa: E402,F401

registry.autoselect_backend()

from repro.backends.dispatch import (  # noqa: E402
    dot,
    dot_multi,
    fused_restrict,
    gemv,
    gemvT,
    matrix_format,
    prolong,
    spmv,
    spmv_boundary,
    spmv_interior,
    spmv_multi,
    spmv_rows,
    symgs_sweep,
    symgs_sweep_multi,
    waxpby,
    waxpby_multi,
)

__all__ = [
    "KernelNotFoundError",
    "KernelRegistry",
    "Workspace",
    "WorkspacePool",
    "active_backend",
    "available_backends",
    "default_workspace",
    "dot",
    "dot_multi",
    "fused_restrict",
    "gemv",
    "gemvT",
    "lookup",
    "matrix_format",
    "prolong",
    "register",
    "registered_formats",
    "registry",
    "set_backend",
    "spmv",
    "spmv_boundary",
    "spmv_interior",
    "spmv_multi",
    "spmv_rows",
    "symgs_sweep",
    "symgs_sweep_multi",
    "waxpby",
    "waxpby_multi",
]
