"""Optional Numba backend: threaded JIT kernels, auto-detected at import.

When Numba is importable, this module registers ``prange``-parallel
row-wise kernels for the two streaming-heavy sparse ops and lets the
registry's fallback chain cover everything else with the NumPy
reference kernels.  When Numba is absent (the common CI container),
importing this module is a silent no-op — the registry simply never
sees a ``"numba"`` backend, and ``REPRO_BACKEND=numba`` raises a clear
error instead of an ImportError at call time.

The kernels are deliberately row-parallel rather than vectorized:
NumPy's ELL SpMV streams the padded block through a (rows × width)
temporary, while the JIT version keeps one row's accumulator in
registers — the same restructuring a GPU/OpenMP port would do, which
is exactly the seam the registry exists to demonstrate.
"""

from __future__ import annotations

import numpy as np

from repro.backends.registry import register, registry

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the offline container path
    numba = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    registry.register_backend(
        "numba",
        priority=10,
        description="numba prange-parallel JIT kernels",
    )

    def _make_csr_spmv(zero):
        """JIT CSR SpMV accumulating in the matrix precision.

        The accumulator is seeded from a typed closure constant so
        fp32 rows sum in fp32 — matching the NumPy backend's
        reduction dtype.  Auto-selecting this backend must not change
        mixed-precision numerics relative to a numba-less install.
        """

        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(indptr, indices, data, x, y):
            for i in numba.prange(len(indptr) - 1):
                acc = zero
                for j in range(indptr[i], indptr[i + 1]):
                    acc += data[j] * x[indices[j]]
                y[i] = acc

        return kernel

    def _make_ell_spmv(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, x, y):
            nrows, width = cols.shape
            for i in numba.prange(nrows):
                acc = zero
                for j in range(width):
                    acc += vals[i, j] * x[cols[i, j]]
                y[i] = acc

        return kernel

    def _make_ell_spmv_fp16():
        """JIT ELL SpMV streaming fp16 values with an fp32 accumulator.

        Matches the NumPy backend's fp16 contract: products and sums in
        fp32, result written to a float32 output buffer (the wrapper
        applies row equilibration and the final cast).
        """

        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, x, y):
            nrows, width = cols.shape
            for i in numba.prange(nrows):
                acc = np.float32(0.0)
                for j in range(width):
                    acc += np.float32(vals[i, j]) * np.float32(x[cols[i, j]])
                y[i] = acc

        return kernel

    def _make_csr_spmv_fp16():
        """JIT CSR SpMV streaming fp16 values with an fp32 accumulator.

        Same contract as the NumPy backend's fp16 CSR kernel: products
        and sums in fp32 so per-ingredient fp16 schedules hitting the
        CSR format don't silently fall back off the JIT leg.
        """

        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(indptr, indices, data, x, y):
            for i in numba.prange(len(indptr) - 1):
                acc = np.float32(0.0)
                for j in range(indptr[i], indptr[i + 1]):
                    acc += np.float32(data[j]) * np.float32(x[indices[j]])
                y[i] = acc

        return kernel

    def _probe_fp16(make_kernel, args):
        """Compile-and-run probe: CPU float16 support varies by numba
        version, so each fp16 kernel registers only where it works."""
        try:  # pragma: no cover - depends on the installed numba
            kernel = make_kernel()
            kernel(*args)
            return kernel
        except Exception:  # pragma: no cover
            return None

    # Precision-specific registrations: each kernel accumulates in its
    # own format, exercising the registry's precision axis.
    _KERNELS = {
        "fp32": (_make_csr_spmv(np.float32(0.0)), _make_ell_spmv(np.float32(0.0))),
        "fp64": (_make_csr_spmv(np.float64(0.0)), _make_ell_spmv(np.float64(0.0))),
    }

    def _register_numba(prec: str) -> None:
        csr_kernel, ell_kernel = _KERNELS[prec]

        @register("spmv", fmt="csr", precision=prec, backend="numba")
        def spmv_csr_numba(A, x, out=None, ws=None):
            if x.shape[0] != A.ncols:
                raise ValueError(
                    f"x has {x.shape[0]} entries, matrix has {A.ncols} columns"
                )
            y = out if out is not None else np.empty(A.nrows, dtype=A.data.dtype)
            csr_kernel(A.indptr, A.indices, A.data, x, y)
            return y

        @register("spmv", fmt="ell", precision=prec, backend="numba")
        def spmv_ell_numba(A, x, out=None, ws=None):
            if x.shape[0] != A.ncols:
                raise ValueError(
                    f"x has {x.shape[0]} entries, matrix has {A.ncols} columns"
                )
            y = out if out is not None else np.empty(A.nrows, dtype=A.vals.dtype)
            ell_kernel(A.cols, A.vals, x, y)
            return y

    for _prec in ("fp32", "fp64"):
        _register_numba(_prec)

    _ELL_FP16 = _probe_fp16(
        _make_ell_spmv_fp16,
        (
            np.zeros((1, 1), dtype=np.int32),
            np.ones((1, 1), dtype=np.float16),
            np.ones(1, dtype=np.float16),
            np.zeros(1, dtype=np.float32),
        ),
    )
    _CSR_FP16 = _probe_fp16(
        _make_csr_spmv_fp16,
        (
            np.zeros(2, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
            np.zeros(0, dtype=np.float16),
            np.ones(1, dtype=np.float16),
            np.zeros(1, dtype=np.float32),
        ),
    )

    def _finish_fp16(A, y, out):
        """Shared epilogue: fold the row scale back, cast to storage."""
        scale = getattr(A, "row_scale", None)
        if scale is not None:
            np.multiply(y, scale, out=y)
        if out is None:
            return y.astype(np.float16)
        out[:] = y
        return out

    if _ELL_FP16 is not None:  # pragma: no cover - numba-with-fp16 only

        @register("spmv", fmt="ell", precision="fp16", backend="numba")
        def spmv_ell_numba_fp16(A, x, out=None, ws=None):
            if x.shape[0] != A.ncols:
                raise ValueError(
                    f"x has {x.shape[0]} entries, matrix has {A.ncols} columns"
                )
            y = (
                ws.get("numba.ell.spmv16", (A.nrows,), np.float32)
                if ws is not None
                else np.empty(A.nrows, dtype=np.float32)
            )
            _ELL_FP16(A.cols, A.vals, x, y)
            return _finish_fp16(A, y, out)

    if _CSR_FP16 is not None:  # pragma: no cover - numba-with-fp16 only

        @register("spmv", fmt="csr", precision="fp16", backend="numba")
        def spmv_csr_numba_fp16(A, x, out=None, ws=None):
            if x.shape[0] != A.ncols:
                raise ValueError(
                    f"x has {x.shape[0]} entries, matrix has {A.ncols} columns"
                )
            y = (
                ws.get("numba.csr.spmv16", (A.nrows,), np.float32)
                if ws is not None
                else np.empty(A.nrows, dtype=np.float32)
            )
            _CSR_FP16(A.indptr, A.indices, A.data, x, y)
            return _finish_fp16(A, y, out)

    # ------------------------------------------------------------------
    # SymGS sweep: the dominant motif, row-parallel per color pass
    # ------------------------------------------------------------------
    # One jitted relaxation pass per color: rows of a color are
    # mutually independent, so the in-place update is race-free under
    # prange (no thread reads another's row).  Accumulation follows
    # the backend's convention: the matrix precision for fp32/fp64,
    # fp32 for fp16 storage (with the row-equilibration scale folded
    # before the near-cancelling update) — the same split the NumPy
    # fp16 kernels implement, so an fp16 rung's dominant motif is now
    # JIT-covered end to end.

    def _make_ell_gs_pass(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, x, r, rows, diag):
            width = cols.shape[1]
            for k in numba.prange(len(rows)):
                i = rows[k]
                acc = zero
                for j in range(width):
                    acc += vals[i, j] * x[cols[i, j]]
                x[i] = x[i] + (r[i] - acc) / diag[k]

        return kernel

    def _make_ell_gs_pass_fp16():
        """fp16-storage color pass: fp32 products, scale-aware, and
        only the final store back into the fp16 iterate rounds."""

        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, x, r, rows, diag, scale):
            width = cols.shape[1]
            for k in numba.prange(len(rows)):
                i = rows[k]
                acc = np.float32(0.0)
                for j in range(width):
                    acc += np.float32(vals[i, j]) * np.float32(x[cols[i, j]])
                acc *= scale[i]
                upd = (np.float32(r[i]) - acc) / diag[k]
                x[i] = np.float32(x[i]) + upd

        return kernel

    _GS_PASS = {
        "fp32": _make_ell_gs_pass(np.float32(0.0)),
        "fp64": _make_ell_gs_pass(np.float64(0.0)),
    }

    def _register_numba_gs(prec: str) -> None:
        pass_kernel = _GS_PASS[prec]

        @register("symgs_sweep", fmt="ell", precision=prec, backend="numba")
        def symgs_sweep_ell_numba(
            A, r, xfull, sets, diag_sets, direction="forward", ws=None
        ):
            order = range(len(sets))
            if direction == "backward":
                order = reversed(order)
            elif direction != "forward":
                raise ValueError(f"unknown sweep direction {direction!r}")
            for i in order:
                if len(sets[i]):
                    pass_kernel(A.cols, A.vals, xfull, r, sets[i], diag_sets[i])

    for _prec in ("fp32", "fp64"):
        _register_numba_gs(_prec)

    _GS_PASS_FP16 = _probe_fp16(
        _make_ell_gs_pass_fp16,
        (
            np.zeros((1, 1), dtype=np.int32),
            np.ones((1, 1), dtype=np.float16),
            np.ones(2, dtype=np.float16),
            np.ones(1, dtype=np.float16),
            np.zeros(1, dtype=np.int64),
            np.ones(1, dtype=np.float32),
            np.ones(1, dtype=np.float32),
        ),
    )

    if _GS_PASS_FP16 is not None:  # pragma: no cover - numba-with-fp16 only

        @register("symgs_sweep", fmt="ell", precision="fp16", backend="numba")
        def symgs_sweep_ell_numba_fp16(
            A, r, xfull, sets, diag_sets, direction="forward", ws=None
        ):
            scale = getattr(A, "row_scale", None)
            if scale is None:
                # Plain (unequilibrated) fp16 ELL storage: defer to the
                # reference kernel rather than carry a second variant.
                fn = registry.lookup("symgs_sweep", "ell", "fp16", backend="numpy")
                return fn(A, r, xfull, sets, diag_sets, direction=direction, ws=ws)
            order = range(len(sets))
            if direction == "backward":
                order = reversed(order)
            elif direction != "forward":
                raise ValueError(f"unknown sweep direction {direction!r}")
            for i in order:
                if len(sets[i]):
                    # Row-equilibrated matrices report their diagonal in
                    # float32 already, so this is a no-op view on the
                    # hot path (no per-sweep allocation); the cast only
                    # fires for an unconventional caller-built diag.
                    diag = diag_sets[i]
                    if diag.dtype != np.float32:
                        diag = diag.astype(np.float32)
                    _GS_PASS_FP16(A.cols, A.vals, xfull, r, sets[i], diag, scale)

    # ------------------------------------------------------------------
    # Panel SymGS sweep: one matrix stream per color pass for N columns
    # ------------------------------------------------------------------
    # The panel smoother's dominant motif as a genuinely single-pass
    # kernel: each color row's indices and values are read *once* and
    # the relaxation runs per column from registers, so the sweep's
    # matrix traffic is amortized N× (the NumPy reference composes N
    # single-RHS sweeps).  Per column the accumulation order matches
    # the single-RHS color pass exactly (sequential over the row's
    # nonzeros), keeping panel-vs-looped parity bitwise within this
    # backend.  Rows of a color are mutually independent, so the
    # in-place panel update is race-free under prange.

    def _make_ell_gs_pass_multi(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, X, R, rows, diag):
            width = cols.shape[1]
            ncol = X.shape[1]
            for k in numba.prange(len(rows)):
                i = rows[k]
                for c in range(ncol):
                    acc = zero
                    for j in range(width):
                        acc += vals[i, j] * X[cols[i, j], c]
                    X[i, c] = X[i, c] + (R[i, c] - acc) / diag[k]

        return kernel

    def _make_ell_gs_pass_multi_fp16():
        """fp16-storage panel color pass: fp32 products, scale-aware,
        only the final store back into the fp16 panel rounds."""

        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, X, R, rows, diag, scale):
            width = cols.shape[1]
            ncol = X.shape[1]
            for k in numba.prange(len(rows)):
                i = rows[k]
                for c in range(ncol):
                    acc = np.float32(0.0)
                    for j in range(width):
                        acc += np.float32(vals[i, j]) * np.float32(
                            X[cols[i, j], c]
                        )
                    acc *= scale[i]
                    upd = (np.float32(R[i, c]) - acc) / diag[k]
                    X[i, c] = np.float32(X[i, c]) + upd

        return kernel

    _GS_PASS_MULTI = {
        "fp32": _make_ell_gs_pass_multi(np.float32(0.0)),
        "fp64": _make_ell_gs_pass_multi(np.float64(0.0)),
    }

    def _register_numba_gs_multi(prec: str) -> None:
        pass_kernel = _GS_PASS_MULTI[prec]

        @register("symgs_sweep_multi", fmt="ell", precision=prec, backend="numba")
        def symgs_sweep_multi_ell_numba(
            A, R, Xfull, sets, diag_sets, direction="forward", ws=None
        ):
            order = range(len(sets))
            if direction == "backward":
                order = reversed(order)
            elif direction != "forward":
                raise ValueError(f"unknown sweep direction {direction!r}")
            for i in order:
                if len(sets[i]):
                    pass_kernel(A.cols, A.vals, Xfull, R, sets[i], diag_sets[i])

    for _prec in ("fp32", "fp64"):
        _register_numba_gs_multi(_prec)

    _GS_PASS_MULTI_FP16 = _probe_fp16(
        _make_ell_gs_pass_multi_fp16,
        (
            np.zeros((1, 1), dtype=np.int32),
            np.ones((1, 1), dtype=np.float16),
            np.ones((2, 1), dtype=np.float16),
            np.ones((1, 1), dtype=np.float16),
            np.zeros(1, dtype=np.int64),
            np.ones(1, dtype=np.float32),
            np.ones(1, dtype=np.float32),
        ),
    )

    if _GS_PASS_MULTI_FP16 is not None:  # pragma: no cover - numba-with-fp16

        @register(
            "symgs_sweep_multi", fmt="ell", precision="fp16", backend="numba"
        )
        def symgs_sweep_multi_ell_numba_fp16(
            A, R, Xfull, sets, diag_sets, direction="forward", ws=None
        ):
            scale = getattr(A, "row_scale", None)
            if scale is None:
                # Plain (unequilibrated) fp16 ELL storage: defer to the
                # reference composition rather than carry a variant.
                fn = registry.lookup(
                    "symgs_sweep_multi", "ell", "fp16", backend="numpy"
                )
                return fn(
                    A, R, Xfull, sets, diag_sets, direction=direction, ws=ws
                )
            order = range(len(sets))
            if direction == "backward":
                order = reversed(order)
            elif direction != "forward":
                raise ValueError(f"unknown sweep direction {direction!r}")
            for i in order:
                if len(sets[i]):
                    diag = diag_sets[i]
                    if diag.dtype != np.float32:
                        diag = diag.astype(np.float32)
                    _GS_PASS_MULTI_FP16(
                        A.cols, A.vals, Xfull, R, sets[i], diag, scale
                    )

    # ------------------------------------------------------------------
    # Fused restriction: residual at coarse-mapped rows only (eq. 6)
    # ------------------------------------------------------------------
    def _make_ell_fused_restrict(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, x, r, f_c, out):
            width = cols.shape[1]
            for k in numba.prange(len(f_c)):
                i = f_c[k]
                acc = zero
                for j in range(width):
                    acc += vals[i, j] * x[cols[i, j]]
                out[k] = r[i] - acc

        return kernel

    _FUSED_RESTRICT = {
        "fp32": _make_ell_fused_restrict(np.float32(0.0)),
        "fp64": _make_ell_fused_restrict(np.float64(0.0)),
    }

    def _register_numba_restrict(prec: str) -> None:
        kernel = _FUSED_RESTRICT[prec]

        @register("fused_restrict", fmt="ell", precision=prec, backend="numba")
        def fused_restrict_ell_numba(A, r, xfull, f_c, out=None, ws=None):
            if out is None:
                out = np.empty(len(f_c), dtype=xfull.dtype)
            # The store casts per element, so a cross-precision coarse
            # buffer (ladder schedules) is written directly.
            kernel(A.cols, A.vals, xfull, r, f_c, out)
            return out

    for _prec in ("fp32", "fp64"):
        _register_numba_restrict(_prec)

    # ------------------------------------------------------------------
    # Fused motifs: residual + dot, waxpby + dot
    # ------------------------------------------------------------------
    # The jitted kernels fuse the *streaming* passes (the residual
    # subtraction rides the SpMV's matrix pass; the update's store
    # feeds no extra read), while the scalar reduction stays a
    # deterministic np.dot over the result: a prange-reduced scalar
    # would make run-to-run bit reproducibility hostage to the thread
    # schedule, which the solver's bitwise tests forbid.

    def _make_ell_residual(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, x, b, r):
            width = cols.shape[1]
            for i in numba.prange(len(r)):
                acc = zero
                for j in range(width):
                    acc += vals[i, j] * x[cols[i, j]]
                r[i] = b[i] - acc

        return kernel

    def _make_csr_residual(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(indptr, indices, data, x, b, r):
            for i in numba.prange(len(indptr) - 1):
                acc = zero
                for j in range(indptr[i], indptr[i + 1]):
                    acc += data[j] * x[indices[j]]
                r[i] = b[i] - acc

        return kernel

    _ELL_RESIDUAL = _make_ell_residual(np.float64(0.0))
    _CSR_RESIDUAL = _make_csr_residual(np.float64(0.0))

    @register("spmv_dot", fmt="ell", precision="fp64", backend="numba")
    def spmv_dot_ell_numba(A, x, b, out=None, ws=None):
        r = out if out is not None else np.empty(A.nrows, dtype=b.dtype)
        _ELL_RESIDUAL(A.cols, A.vals, x, b, r)
        return r, float(np.dot(r, r))

    @register("spmv_dot", fmt="csr", precision="fp64", backend="numba")
    def spmv_dot_csr_numba(A, x, b, out=None, ws=None):
        r = out if out is not None else np.empty(A.nrows, dtype=b.dtype)
        _CSR_RESIDUAL(A.indptr, A.indices, A.data, x, b, r)
        return r, float(np.dot(r, r))

    @numba.njit(parallel=True, fastmath=False, cache=True)
    def _waxpby_kernel(alpha, x, beta, y, w):  # pragma: no cover
        for i in numba.prange(len(w)):
            w[i] = alpha * x[i] + beta * y[i]

    @register("waxpby_dot", precision="fp64", backend="numba")
    def waxpby_dot_numba(alpha, x, beta, y, out=None, ws=None):
        w = out if out is not None else np.empty(len(y), dtype=y.dtype)
        _waxpby_kernel(np.float64(alpha), x, np.float64(beta), y, w)
        return w, float(np.dot(w, w))

    # ------------------------------------------------------------------
    # Panel (multi-RHS) SpMV: one matrix stream serving all N columns
    # ------------------------------------------------------------------
    # These are the genuinely single-pass kernels the panel pipeline
    # exists for: each row's indices and values are read *once* and the
    # accumulation loop runs per column from registers, so matrix
    # traffic is amortized N× while vector traffic scales with the
    # panel.  Per column the accumulation order is identical to the
    # single-RHS numba kernel above (sequential over the row's
    # nonzeros), so panel-vs-looped parity is bitwise within this
    # backend — the same contract the NumPy reference keeps by
    # composition.

    def _make_csr_spmv_multi(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(indptr, indices, data, X, Y):
            ncol = X.shape[1]
            for i in numba.prange(len(indptr) - 1):
                for c in range(ncol):
                    acc = zero
                    for j in range(indptr[i], indptr[i + 1]):
                        acc += data[j] * X[indices[j], c]
                    Y[i, c] = acc

        return kernel

    def _make_ell_spmv_multi(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, X, Y):
            nrows, width = cols.shape
            ncol = X.shape[1]
            for i in numba.prange(nrows):
                for c in range(ncol):
                    acc = zero
                    for j in range(width):
                        acc += vals[i, j] * X[cols[i, j], c]
                    Y[i, c] = acc

        return kernel

    _MULTI_KERNELS = {
        "fp32": (
            _make_csr_spmv_multi(np.float32(0.0)),
            _make_ell_spmv_multi(np.float32(0.0)),
        ),
        "fp64": (
            _make_csr_spmv_multi(np.float64(0.0)),
            _make_ell_spmv_multi(np.float64(0.0)),
        ),
    }

    def _register_numba_multi(prec: str) -> None:
        csr_kernel, ell_kernel = _MULTI_KERNELS[prec]

        @register("spmv_multi", fmt="csr", precision=prec, backend="numba")
        def spmv_multi_csr_numba(A, X, out=None, ws=None):
            if X.shape[0] != A.ncols:
                raise ValueError(
                    f"X has {X.shape[0]} rows, matrix has {A.ncols} columns"
                )
            Y = (
                out
                if out is not None
                else np.empty((A.nrows, X.shape[1]), dtype=A.data.dtype, order="F")
            )
            csr_kernel(A.indptr, A.indices, A.data, X, Y)
            return Y

        @register("spmv_multi", fmt="ell", precision=prec, backend="numba")
        def spmv_multi_ell_numba(A, X, out=None, ws=None):
            if X.shape[0] != A.ncols:
                raise ValueError(
                    f"X has {X.shape[0]} rows, matrix has {A.ncols} columns"
                )
            Y = (
                out
                if out is not None
                else np.empty((A.nrows, X.shape[1]), dtype=A.vals.dtype, order="F")
            )
            ell_kernel(A.cols, A.vals, X, Y)
            return Y

    for _prec in ("fp32", "fp64"):
        _register_numba_multi(_prec)

    # ------------------------------------------------------------------
    # Panel halves on the ghost-aware partitioned format
    # ------------------------------------------------------------------
    # The ROADMAP's PR 7 seam: the reference ``spmv_interior_multi`` /
    # ``spmv_boundary_multi`` registrations loop the panel's columns
    # through the single-RHS region kernels, streaming each region
    # block N times per panel.  These kernels stream the block *once* —
    # each block row's indices and values are read one time and the
    # accumulation runs per column from registers, with the scatter to
    # the owned row folded into the same pass.  Per column the
    # accumulation order matches the single-RHS block SpMV exactly
    # (sequential over the row's nonzeros), so the overlapped panel
    # schedule stays bitwise-per-column equal to the looped schedule
    # within this backend.

    def _make_ell_region_spmv_multi(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, X, Y, rows):
            width = cols.shape[1]
            ncol = X.shape[1]
            for k in numba.prange(len(rows)):
                i = rows[k]
                for c in range(ncol):
                    acc = zero
                    for j in range(width):
                        acc += vals[k, j] * X[cols[k, j], c]
                    Y[i, c] = acc

        return kernel

    def _make_csr_region_spmv_multi(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(indptr, indices, data, X, Y, rows):
            ncol = X.shape[1]
            for k in numba.prange(len(rows)):
                i = rows[k]
                for c in range(ncol):
                    acc = zero
                    for j in range(indptr[k], indptr[k + 1]):
                        acc += data[j] * X[indices[j], c]
                    Y[i, c] = acc

        return kernel

    _REGION_MULTI = {
        "fp32": (
            _make_csr_region_spmv_multi(np.float32(0.0)),
            _make_ell_region_spmv_multi(np.float32(0.0)),
        ),
        "fp64": (
            _make_csr_region_spmv_multi(np.float64(0.0)),
            _make_ell_region_spmv_multi(np.float64(0.0)),
        ),
    }

    def _region_spmv_multi_numba(P, region, X, Y, ws, csr_kernel, ell_kernel):
        """One region's single-pass panel SpMV; defers to the reference
        column loop for block storage the jitted kernels don't cover."""
        from repro.backends.partitioned_ops import _block_spmv_into

        blk = P.interior if region == "interior" else P.boundary
        rows = P.interior_rows if region == "interior" else P.boundary_rows
        if len(rows) == 0:
            return
        fmt = getattr(type(blk), "format_name", None)
        if fmt == "ell":
            ell_kernel(blk.cols, blk.vals, X, Y, rows)
        elif fmt == "csr":
            csr_kernel(blk.indptr, blk.indices, blk.data, X, Y, rows)
        else:
            for j in range(X.shape[1]):
                _block_spmv_into(P, region, X[:, j], Y[:, j], ws)

    def _register_numba_part_multi(prec: str) -> None:
        csr_kernel, ell_kernel = _REGION_MULTI[prec]

        @register(
            "spmv_interior_multi", fmt="partitioned", precision=prec, backend="numba"
        )
        def spmv_interior_multi_part_numba(P, X, out=None, ws=None):
            from repro.backends.partitioned_ops import _panel_result_buffer

            Y = _panel_result_buffer(P, out, ws, X.shape[1])
            _region_spmv_multi_numba(P, "interior", X, Y, ws, csr_kernel, ell_kernel)
            return Y

        @register(
            "spmv_boundary_multi", fmt="partitioned", precision=prec, backend="numba"
        )
        def spmv_boundary_multi_part_numba(P, X, out=None, ws=None):
            from repro.backends.partitioned_ops import _panel_result_buffer

            Y = _panel_result_buffer(P, out, ws, X.shape[1])
            _region_spmv_multi_numba(P, "boundary", X, Y, ws, csr_kernel, ell_kernel)
            return Y

    for _prec in ("fp32", "fp64"):
        _register_numba_part_multi(_prec)

    # ------------------------------------------------------------------
    # Native overlapped-SymGS halves on the color-partitioned format
    # ------------------------------------------------------------------
    # The generic color_partitioned registrations serve each block
    # relaxation through a block-``spmv`` re-dispatch plus NumPy
    # gather/scatter glue; here the whole relaxation — block SpMV, the
    # near-cancelling update and the scatter — is one jitted pass over
    # the block's ELL rows.  Rows within a block share a color, hence
    # are mutually independent and race-free under prange.  The
    # accumulation order per row matches the generic path's inner
    # kernels, keeping the two backends parity-testable.

    def _make_ell_block_relax(zero):
        @numba.njit(parallel=True, fastmath=False, cache=True)
        def kernel(cols, vals, xfull, r, rows, diag):
            width = cols.shape[1]
            for k in numba.prange(len(rows)):
                i = rows[k]
                acc = zero
                for j in range(width):
                    acc += vals[k, j] * xfull[cols[k, j]]
                xfull[i] = xfull[i] + (r[i] - acc) / diag[k]

        return kernel

    _BLOCK_RELAX = {
        "fp32": _make_ell_block_relax(np.float32(0.0)),
        "fp64": _make_ell_block_relax(np.float64(0.0)),
    }

    def _relax_block_numba(blk, r, xfull, ws, key, relax_kernel):
        """Jitted block relaxation; defers to the generic path for
        non-ELL block storage (the partitioner's default is ELL)."""
        from repro.backends.partitioned_ops import _relax_block

        A_blk = blk.A
        if len(blk.rows) == 0:
            return
        if getattr(type(A_blk), "format_name", None) != "ell":
            _relax_block(blk, r, xfull, ws, key)
            return
        relax_kernel(A_blk.cols, A_blk.vals, xfull, r, blk.rows, blk.diag)

    def _register_numba_cp(prec: str) -> None:
        relax_kernel = _BLOCK_RELAX[prec]

        def _relax(blk, r, xfull, ws, key):
            _relax_block_numba(blk, r, xfull, ws, key, relax_kernel)

        @register(
            "symgs_interior",
            fmt="color_partitioned",
            precision=prec,
            backend="numba",
        )
        def symgs_interior_cp_numba(P, r, xfull, direction="forward", ws=None):
            from repro.backends.partitioned_ops import _sweep_region

            _sweep_region(P, r, xfull, direction, "interior", ws, _relax)

        @register(
            "symgs_boundary",
            fmt="color_partitioned",
            precision=prec,
            backend="numba",
        )
        def symgs_boundary_cp_numba(P, r, xfull, direction="forward", ws=None):
            from repro.backends.partitioned_ops import _sweep_region

            _sweep_region(P, r, xfull, direction, "boundary", ws, _relax)

        @register(
            "symgs_sweep",
            fmt="color_partitioned",
            precision=prec,
            backend="numba",
        )
        def symgs_sweep_cp_numba(
            P, r, xfull, sets=None, diag_sets=None, direction="forward", ws=None
        ):
            from repro.backends.partitioned_ops import _symgs_sweep_cp

            _symgs_sweep_cp(P, r, xfull, direction, ws, _relax)

        # Panel halves: per-column loop over the SAME jitted block
        # relaxation as the single-RHS halves above, so the panel
        # schedule stays bitwise-per-column equal to the looped
        # schedule when this backend is active.
        @register(
            "symgs_interior_multi",
            fmt="color_partitioned",
            precision=prec,
            backend="numba",
        )
        def symgs_interior_multi_cp_numba(P, R, Xfull, direction="forward", ws=None):
            from repro.backends.partitioned_ops import _sweep_region

            for j in range(Xfull.shape[1]):
                _sweep_region(
                    P, R[:, j], Xfull[:, j], direction, "interior", ws, _relax
                )

        @register(
            "symgs_boundary_multi",
            fmt="color_partitioned",
            precision=prec,
            backend="numba",
        )
        def symgs_boundary_multi_cp_numba(P, R, Xfull, direction="forward", ws=None):
            from repro.backends.partitioned_ops import _sweep_region

            for j in range(Xfull.shape[1]):
                _sweep_region(
                    P, R[:, j], Xfull[:, j], direction, "boundary", ws, _relax
                )

    for _prec in ("fp32", "fp64"):
        _register_numba_cp(_prec)
