"""Typed dispatch facade over the kernel registry.

These are the functions the solver and multigrid layers call: each one
derives the ``(format, precision)`` key from its matrix/vector
arguments, resolves the kernel through the (cached) registry lookup,
and forwards the ``out=`` / ``ws=`` contracts unchanged.  Swapping the
active backend (:func:`repro.backends.set_backend`) retargets every
call site at once.
"""

from __future__ import annotations

import numpy as np

from repro.backends.registry import registry
from repro.fp.precision import Precision

#: dtype -> Precision memo (Precision.from_any scans; this is hot-path).
_PREC: dict = {}


def _prec(dtype) -> Precision:
    p = _PREC.get(dtype)
    if p is None:
        p = Precision.from_any(dtype)
        _PREC[dtype] = p
    return p


def matrix_format(A) -> str:
    """Storage-format name of a matrix (its class's ``format_name``)."""
    fmt = getattr(type(A), "format_name", None)
    if fmt is None:
        raise TypeError(
            f"{type(A).__name__} does not declare a storage format; "
            f"registered formats: {registry.formats()}"
        )
    return fmt


def matrix_format_params(A) -> tuple:
    """The format parameters a tuned plan choice is keyed by —
    SELL-C-σ's sorted ``(chunk, sigma)`` pairs; ``()`` for
    parameter-free formats.  Passed to lookups so an installed plan
    only steers the exact parameter combination it parity-verified."""
    if getattr(type(A), "format_name", None) == "sellcs":
        return (("chunk", int(A.C)), ("sigma", int(A.sigma)))
    return ()


# ----------------------------------------------------------------------
# Sparse motifs
# ----------------------------------------------------------------------
def spmv(A, x: np.ndarray, out: np.ndarray | None = None, ws=None):
    """``y = A @ x`` through the registered kernel for A's format."""
    fn = registry.lookup(
        "spmv", matrix_format(A), _prec(A.dtype),
        fmt_params=matrix_format_params(A),
    )
    return fn(A, x, out=out, ws=ws)


def spmv_rows(A, rows: np.ndarray, x: np.ndarray, out=None, ws=None):
    """``(A @ x)`` restricted to a row subset."""
    fn = registry.lookup("spmv_rows", matrix_format(A), _prec(A.dtype))
    return fn(A, rows, x, out=out, ws=ws)


def spmv_interior(P, x: np.ndarray, out=None, ws=None):
    """Interior-rows half of a partitioned SpMV (overlap schedule)."""
    fn = registry.lookup("spmv_interior", matrix_format(P), _prec(P.dtype))
    return fn(P, x, out=out, ws=ws)


def spmv_boundary(P, x: np.ndarray, out=None, ws=None):
    """Boundary-rows half of a partitioned SpMV (after the halo lands)."""
    fn = registry.lookup("spmv_boundary", matrix_format(P), _prec(P.dtype))
    return fn(P, x, out=out, ws=ws)


def symgs_sweep(
    A,
    r: np.ndarray,
    xfull: np.ndarray,
    sets,
    diag_sets,
    direction: str = "forward",
    ws=None,
) -> None:
    """One multicolor Gauss-Seidel sweep (all color passes)."""
    fn = registry.lookup(
        "symgs_sweep", matrix_format(A), _prec(A.dtype),
        fmt_params=matrix_format_params(A),
    )
    return fn(A, r, xfull, sets, diag_sets, direction=direction, ws=ws)


def symgs_interior(
    P, r: np.ndarray, xfull: np.ndarray, direction: str = "forward", ws=None
) -> None:
    """Interior half of the overlapped multicolor GS sweep.

    ``P`` is a color-partitioned matrix; every color's dependency-closed
    interior block runs (in sweep order) while the halo is in flight.
    """
    fn = registry.lookup("symgs_interior", matrix_format(P), _prec(P.dtype))
    return fn(P, r, xfull, direction=direction, ws=ws)


def symgs_boundary(
    P, r: np.ndarray, xfull: np.ndarray, direction: str = "forward", ws=None
) -> None:
    """Boundary half of the overlapped sweep (after the ghosts land)."""
    fn = registry.lookup("symgs_boundary", matrix_format(P), _prec(P.dtype))
    return fn(P, r, xfull, direction=direction, ws=ws)


def fused_restrict(A, r, xfull, f_c, out=None, ws=None):
    """Fused residual + injection restriction (eq. 6)."""
    fn = registry.lookup("fused_restrict", matrix_format(A), _prec(A.dtype))
    return fn(A, r, xfull, f_c, out=out, ws=ws)


def prolong(xfull: np.ndarray, z_c: np.ndarray, f_c: np.ndarray, ws=None):
    """Transpose-injection prolongation ``x[f_c] += z_c``."""
    fn = registry.lookup("prolong", None, _prec(xfull.dtype))
    return fn(xfull, z_c, f_c, ws=ws)


# ----------------------------------------------------------------------
# Fused motifs (one memory pass where the backend registers one)
# ----------------------------------------------------------------------
def spmv_dot(A, x: np.ndarray, b: np.ndarray, out=None, ws=None):
    """``r = b - A x`` plus the *local* ``r . r``, fused.

    Returns ``(r, local_sq)``.  Backends that register a fused kernel
    (Numba) evaluate the residual in the SpMV's matrix pass; every
    other (format, precision) resolves to the NumPy wildcard
    registration, which composes the registry's ``spmv``/``dot``
    kernels operation-for-operation — bitwise-identical to the
    unfused call sequence.
    """
    fn = registry.lookup(
        "spmv_dot", matrix_format(A), _prec(A.dtype),
        fmt_params=matrix_format_params(A),
    )
    return fn(A, x, b, out=out, ws=ws)


def waxpby_dot(alpha, x, beta, y, out=None, ws=None):
    """``w = alpha x + beta y`` plus the *local* ``w . w``, fused.

    Returns ``(w, local_sq)``; same wildcard-fallback contract as
    :func:`spmv_dot` (the composition is bitwise-identical to the
    separate ``waxpby`` + ``dot`` calls).
    """
    fn = registry.lookup("waxpby_dot", None, _prec(y.dtype))
    return fn(alpha, x, beta, y, out=out, ws=ws)


def gemv_sub_dot(Q, k: int, coef, w, ws=None) -> float:
    """``w -= Q[:, :k] @ coef`` plus the *local* ``w . w``, fused.

    The tail of a CGS2 step (second projection + the norm's local
    reduction) as one registry motif; returns the local squared sum.
    Same wildcard-fallback contract as the other fused motifs.
    """
    fn = registry.lookup("gemv_sub_dot", None, _prec(Q.dtype))
    return fn(Q, k, coef, w, ws=ws)


# ----------------------------------------------------------------------
# Panel (multi-RHS) motifs
# ----------------------------------------------------------------------
# A *panel* is a column-major (order='F') 2-D array of shape (n, N):
# one RHS per column, every column contiguous.  The panel ops apply
# their single-vector counterpart to each column with the matrix
# traffic amortized over the panel — the reference backend composes
# the single-RHS kernels per column (bitwise-equal per column to the
# looped calls), while JIT/GPU backends register genuinely single-pass
# kernels that stream the matrix block once for the whole panel.


def spmv_multi(A, X: np.ndarray, out: np.ndarray | None = None, ws=None):
    """``Y = A @ X`` for a column-major RHS panel ``X``.

    Column ``j`` of the result is bitwise-equal to ``spmv(A, X[:, j])``
    under every backend (the panel kernels keep each column's
    reduction order identical to the single-RHS kernel's).
    """
    fn = registry.lookup(
        "spmv_multi", matrix_format(A), _prec(A.dtype),
        fmt_params=matrix_format_params(A),
    )
    return fn(A, X, out=out, ws=ws)


def spmv_interior_multi(P, X: np.ndarray, out=None, ws=None):
    """Interior-rows half of a partitioned panel SpMV.

    The whole panel's interior compute runs while one *wide* halo
    exchange is in flight — the panel-native §3.2.3 schedule.
    """
    fn = registry.lookup("spmv_interior_multi", matrix_format(P), _prec(P.dtype))
    return fn(P, X, out=out, ws=ws)


def spmv_boundary_multi(P, X: np.ndarray, out=None, ws=None):
    """Boundary-rows half of a partitioned panel SpMV (ghosts landed)."""
    fn = registry.lookup("spmv_boundary_multi", matrix_format(P), _prec(P.dtype))
    return fn(P, X, out=out, ws=ws)


def symgs_interior_multi(
    P, R: np.ndarray, Xfull: np.ndarray, direction: str = "forward", ws=None
) -> None:
    """Interior half of the overlapped panel GS sweep (all columns)."""
    fn = registry.lookup(
        "symgs_interior_multi", matrix_format(P), _prec(P.dtype)
    )
    return fn(P, R, Xfull, direction=direction, ws=ws)


def symgs_boundary_multi(
    P, R: np.ndarray, Xfull: np.ndarray, direction: str = "forward", ws=None
) -> None:
    """Boundary half of the overlapped panel GS sweep (ghosts landed)."""
    fn = registry.lookup(
        "symgs_boundary_multi", matrix_format(P), _prec(P.dtype)
    )
    return fn(P, R, Xfull, direction=direction, ws=ws)


def symgs_sweep_multi(
    A,
    R: np.ndarray,
    Xfull: np.ndarray,
    sets,
    diag_sets,
    direction: str = "forward",
    ws=None,
) -> None:
    """One multicolor GS sweep over every column of a panel.

    Columns are mutually independent (each column's relaxation reads
    only its own vectors), so any column/color interleaving yields the
    same per-column result — which is what lets single-pass backends
    stream each color's matrix rows once across the panel while
    staying bitwise-equal per column to the looped sweep.
    """
    fn = registry.lookup(
        "symgs_sweep_multi", matrix_format(A), _prec(A.dtype),
        fmt_params=matrix_format_params(A),
    )
    return fn(A, R, Xfull, sets, diag_sets, direction=direction, ws=ws)


def waxpby_multi(alpha, X, beta, Y, out=None, ws=None):
    """``W[:, j] = alpha X[:, j] + beta Y[:, j]`` per panel column."""
    fn = registry.lookup("waxpby_multi", None, _prec(Y.dtype))
    return fn(alpha, X, beta, Y, out=out, ws=ws)


def dot_multi(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Per-column local dots ``[X[:, j] . Y[:, j]]`` (float64 array)."""
    return registry.lookup("dot_multi", None, _prec(X.dtype))(X, Y)


def spmv_dot_multi(A, X, B, out=None, ws=None):
    """Panel variant of :func:`spmv_dot`.

    Returns ``(R, locals)``: ``R[:, j] = B[:, j] - A X[:, j]`` and
    ``locals[j]`` the local ``R[:, j] . R[:, j]`` — each column
    bitwise-equal to the single-RHS fused motif.
    """
    fn = registry.lookup(
        "spmv_dot_multi", matrix_format(A), _prec(A.dtype),
        fmt_params=matrix_format_params(A),
    )
    return fn(A, X, B, out=out, ws=ws)


def waxpby_dot_multi(alpha, X, beta, Y, out=None, ws=None):
    """Panel variant of :func:`waxpby_dot` → ``(W, locals)``."""
    fn = registry.lookup("waxpby_dot_multi", None, _prec(Y.dtype))
    return fn(alpha, X, beta, Y, out=out, ws=ws)


# ----------------------------------------------------------------------
# Dense motifs
# ----------------------------------------------------------------------
def dot(a: np.ndarray, b: np.ndarray) -> float:
    """Local dot product."""
    return registry.lookup("dot", None, _prec(a.dtype))(a, b)


def waxpby(alpha, x, beta, y, out=None, ws=None):
    """``w = alpha x + beta y`` (aliasing with ``out`` allowed)."""
    fn = registry.lookup("waxpby", None, _prec(y.dtype))
    return fn(alpha, x, beta, y, out=out, ws=ws)


def gemv(Q: np.ndarray, k: int, coef: np.ndarray, out=None):
    """``Q[:, :k] @ coef`` (basis combination)."""
    return registry.lookup("gemv", None, _prec(Q.dtype))(Q, k, coef, out=out)


def gemvT(Q: np.ndarray, k: int, w: np.ndarray, out=None):
    """``Q[:, :k]^T w`` (CGS2 projection coefficients)."""
    return registry.lookup("gemvT", None, _prec(Q.dtype))(Q, k, w, out=out)
