"""Zero-allocation workspace arenas.

Every hot kernel in the benchmark is bandwidth-bound, so a fresh
temporary per inner iteration costs twice: the allocator's latency and
a cold write of pages that evicts useful cache lines.  The official
implementation preallocates every device buffer at setup; this module
gives the Python hot path the same discipline.

A :class:`Workspace` is a pool of named, shape/dtype-keyed buffers.
The first request for a ``(tag, shape, dtype)`` triple allocates; every
later request returns the *same* array, so a solver loop that always
asks for the same buffers performs zero array allocations after its
first (warmup) pass — the property the allocation regression test
asserts with ``tracemalloc``.

Buffers are handed out as raw (uninitialized on first use) arrays;
callers own the contents between ``get`` calls and must not assume
zeros.  A workspace is not thread-safe: each SPMD rank (and each
solver) owns its own arena, mirroring per-rank device memory.
"""

from __future__ import annotations

import threading

import numpy as np


class Workspace:
    """Preallocated, precision-keyed buffer pool.

    Parameters
    ----------
    name:
        Cosmetic label used in ``repr`` and error messages (e.g.
        ``"gmres-ir"``); useful when several arenas coexist.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._buffers: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(
        self,
        tag: str | tuple,
        shape: int | tuple[int, ...],
        dtype,
    ) -> np.ndarray:
        """Return the pooled buffer for ``(tag, shape, dtype)``.

        Allocates on first request (a *miss*), returns the cached array
        afterwards (a *hit*).  Contents are unspecified on every call —
        treat the result as scratch.
        """
        if isinstance(shape, int):
            shape = (shape,)
        key = (tag, shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=key[2])
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def zeros(
        self,
        tag: str | tuple,
        shape: int | tuple[int, ...],
        dtype,
    ) -> np.ndarray:
        """Like :meth:`get` but zero-filled on every call."""
        buf = self.get(tag, shape, dtype)
        buf[:] = 0
        return buf

    def get_panel(
        self,
        tag: str | tuple,
        nrows: int,
        ncols: int,
        dtype,
    ) -> np.ndarray:
        """Pooled column-major ``(nrows, ncols)`` panel buffer.

        Panels (one RHS per column) are stored column-contiguous so
        each column is a contiguous vector the single-RHS kernels
        consume without copying.  The backing buffer is the pooled
        ``(ncols, nrows)`` C-order array; the returned transpose view
        is Fortran-ordered and costs no allocation beyond the view.
        """
        return self.get(tag, (ncols, nrows), dtype).T

    # ------------------------------------------------------------------
    @property
    def nbuffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes resident in the arena."""
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        """Drop every buffer (and the hit/miss counters)."""
        self._buffers.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Workspace{label}: {self.nbuffers} buffers, "
            f"{self.nbytes / 1e6:.2f} MB, {self.hits} hits / "
            f"{self.misses} misses>"
        )


class WorkspacePool:
    """Bounded pool of leased :class:`Workspace` arenas.

    Batched and concurrent solves each need their own arena (a
    ``Workspace`` is not thread-safe and its buffers are keyed by
    shape, so two panel solves of different widths sharing one arena
    would evict each other's warm buffers).  The pool hands out whole
    arenas on ``acquire`` and takes them back on ``release``: a
    released arena keeps its buffers, so the *next* lease starts warm
    — repeated batched solves re-warm nothing, extending the
    zero-allocation property across solver instances.

    The pool is bounded: at most ``max_arenas`` arenas exist at once.
    Exhaustion (every arena leased out) raises a :class:`RuntimeError`
    naming the pool and its limit — the admission-control signal a
    service front end turns into backpressure, rather than silently
    allocating unbounded memory.  :meth:`try_acquire` is the
    non-raising variant for callers that reject work instead of
    propagating the error.

    Lease accounting rides along for service telemetry: ``acquires``
    (successful leases), ``reuses`` (the warm subset), ``exhaustions``
    (refused leases) and ``peak_leased`` (high-water concurrency).
    All bookkeeping happens under an internal lock, so concurrent
    batch launchers may share one pool; the *arenas* themselves remain
    single-owner (a lease confers exclusive use until release).
    """

    def __init__(self, name: str = "", max_arenas: int = 4) -> None:
        if max_arenas < 1:
            raise ValueError("max_arenas must be >= 1")
        self.name = name
        self.max_arenas = max_arenas
        self._free: list[Workspace] = []
        self._created = 0
        self._leased = 0
        self._lock = threading.Lock()
        #: Leases served by an already-warm (previously released) arena.
        self.reuses = 0
        #: Successful leases (warm + fresh).
        self.acquires = 0
        #: Refused leases (every arena out) — the admission-control
        #: rejections a service converts into retry-after responses.
        self.exhaustions = 0
        #: High-water mark of concurrently leased arenas.
        self.peak_leased = 0

    # ------------------------------------------------------------------
    def try_acquire(self) -> Workspace | None:
        """Lease an arena, or return ``None`` on exhaustion.

        Warm (previously released) arenas are preferred over fresh
        ones.  The admission-control entry point: a ``None`` means the
        pool is at capacity and the caller should shed load rather
        than queue unboundedly.
        """
        with self._lock:
            if self._free:
                ws = self._free.pop()
                self.reuses += 1
            elif self._created < self.max_arenas:
                self._created += 1
                ws = Workspace(f"{self.name or 'pool'}-{self._created}")
            else:
                self.exhaustions += 1
                return None
            self._leased += 1
            self.acquires += 1
            self.peak_leased = max(self.peak_leased, self._leased)
            return ws

    def acquire(self) -> Workspace:
        """Lease an arena; raises on exhaustion (see :meth:`try_acquire`)."""
        ws = self.try_acquire()
        if ws is None:
            raise RuntimeError(
                f"workspace pool {self.name!r} exhausted: all "
                f"{self.max_arenas} arenas are leased; release one or "
                f"raise max_arenas"
            )
        return ws

    def release(self, ws: Workspace) -> None:
        """Return a leased arena (buffers kept warm for the next lease)."""
        with self._lock:
            if self._leased == 0:
                raise RuntimeError(
                    f"workspace pool {self.name!r}: release without a "
                    f"matching acquire"
                )
            self._leased -= 1
            self._free.append(ws)

    # ------------------------------------------------------------------
    @property
    def leased(self) -> int:
        """Arenas currently out on lease."""
        return self._leased

    @property
    def available(self) -> int:
        """Leases that would succeed right now without exhausting."""
        return len(self._free) + (self.max_arenas - self._created)

    @property
    def nbytes(self) -> int:
        """Bytes resident in the *free* (returned) arenas."""
        return sum(ws.nbytes for ws in self._free)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<WorkspacePool{label}: {self._leased} leased / "
            f"{self.max_arenas} max (peak {self.peak_leased}), "
            f"{len(self._free)} warm, {self.reuses} reuses, "
            f"{self.exhaustions} exhaustions>"
        )


#: Process-wide fallback arena for call sites with no solver-owned
#: workspace in scope (diagnostics, one-shot helpers).  Hot paths pass
#: their own arena explicitly.
_DEFAULT = Workspace("default")


def default_workspace() -> Workspace:
    """The shared fallback arena."""
    return _DEFAULT
