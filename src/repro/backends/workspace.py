"""Zero-allocation workspace arenas.

Every hot kernel in the benchmark is bandwidth-bound, so a fresh
temporary per inner iteration costs twice: the allocator's latency and
a cold write of pages that evicts useful cache lines.  The official
implementation preallocates every device buffer at setup; this module
gives the Python hot path the same discipline.

A :class:`Workspace` is a pool of named, shape/dtype-keyed buffers.
The first request for a ``(tag, shape, dtype)`` triple allocates; every
later request returns the *same* array, so a solver loop that always
asks for the same buffers performs zero array allocations after its
first (warmup) pass — the property the allocation regression test
asserts with ``tracemalloc``.

Buffers are handed out as raw (uninitialized on first use) arrays;
callers own the contents between ``get`` calls and must not assume
zeros.  A workspace is not thread-safe: each SPMD rank (and each
solver) owns its own arena, mirroring per-rank device memory.
"""

from __future__ import annotations

import numpy as np


class Workspace:
    """Preallocated, precision-keyed buffer pool.

    Parameters
    ----------
    name:
        Cosmetic label used in ``repr`` and error messages (e.g.
        ``"gmres-ir"``); useful when several arenas coexist.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._buffers: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(
        self,
        tag: str | tuple,
        shape: int | tuple[int, ...],
        dtype,
    ) -> np.ndarray:
        """Return the pooled buffer for ``(tag, shape, dtype)``.

        Allocates on first request (a *miss*), returns the cached array
        afterwards (a *hit*).  Contents are unspecified on every call —
        treat the result as scratch.
        """
        if isinstance(shape, int):
            shape = (shape,)
        key = (tag, shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=key[2])
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def zeros(
        self,
        tag: str | tuple,
        shape: int | tuple[int, ...],
        dtype,
    ) -> np.ndarray:
        """Like :meth:`get` but zero-filled on every call."""
        buf = self.get(tag, shape, dtype)
        buf[:] = 0
        return buf

    # ------------------------------------------------------------------
    @property
    def nbuffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes resident in the arena."""
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        """Drop every buffer (and the hit/miss counters)."""
        self._buffers.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Workspace{label}: {self.nbuffers} buffers, "
            f"{self.nbytes / 1e6:.2f} MB, {self.hits} hits / "
            f"{self.misses} misses>"
        )


#: Process-wide fallback arena for call sites with no solver-owned
#: workspace in scope (diagnostics, one-shot helpers).  Hot paths pass
#: their own arena explicitly.
_DEFAULT = Workspace("default")


def default_workspace() -> Workspace:
    """The shared fallback arena."""
    return _DEFAULT
