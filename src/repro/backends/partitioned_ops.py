"""Registry ops for the ghost-aware partitioned format.

``spmv_interior`` / ``spmv_boundary`` are the two halves of the
distributed overlap schedule (§3.2.3): interior rows touch no ghost
column and compute while the halo is in flight; boundary rows run
after the ghosts land in the vector tail.  Each half is one
*full-matrix* kernel on the corresponding row block — the inner
``spmv`` lookup re-dispatches on the block's own (format, precision)
key, so every storage layout and every ladder rung (including the
row-equilibrated fp16 kernels) is served by these three registrations
without further per-format code.

The non-overlapped ``spmv`` on a partitioned matrix is, by
construction, the same two block kernels run back to back: the
overlapped and sequential schedules execute identical arithmetic in
identical order and are therefore bitwise-equal — the property the
overlap-correctness tests assert.

Contract: ``out`` (when given) is the full owned-length result vector;
each half scatters only its own rows.  With ``ws`` the block results
land in pooled buffers keyed by region, so the distributed SpMV is
allocation-free after warmup.
"""

from __future__ import annotations

import numpy as np

from repro.backends.registry import register


def _block_spmv_into(P, region: str, xfull, y, ws) -> None:
    """Run one region's block SpMV and scatter into the full result."""
    from repro.backends.dispatch import spmv

    blk = P.interior if region == "interior" else P.boundary
    rows = P.interior_rows if region == "interior" else P.boundary_rows
    m = len(rows)
    if m == 0:
        return
    if ws is None:
        y[rows] = spmv(blk, xfull)
        return
    s = ws.get(("part.spmv", region), (m,), blk.dtype)
    spmv(blk, xfull, out=s, ws=ws)
    y[rows] = s


def _result_buffer(P, out, ws):
    if out is not None:
        return out
    if ws is not None:
        return ws.get("part.spmv.y", (P.nlocal,), P.dtype)
    return np.empty(P.nlocal, dtype=P.dtype)


@register("spmv_interior", fmt="partitioned")
def spmv_interior_partitioned(P, xfull, out=None, ws=None):
    """Interior-rows half of the product (no ghost columns touched)."""
    y = _result_buffer(P, out, ws)
    _block_spmv_into(P, "interior", xfull, y, ws)
    return y


@register("spmv_boundary", fmt="partitioned")
def spmv_boundary_partitioned(P, xfull, out=None, ws=None):
    """Boundary-rows half of the product (requires landed ghosts)."""
    y = _result_buffer(P, out, ws)
    _block_spmv_into(P, "boundary", xfull, y, ws)
    return y


@register("spmv", fmt="partitioned")
def spmv_partitioned(P, xfull, out=None, ws=None):
    """Full product: the two region kernels back to back."""
    if xfull.shape[0] != P.ncols:
        raise ValueError(
            f"x has {xfull.shape[0]} entries, matrix has {P.ncols} columns"
        )
    y = _result_buffer(P, out, ws)
    _block_spmv_into(P, "interior", xfull, y, ws)
    _block_spmv_into(P, "boundary", xfull, y, ws)
    return y
