"""Registry ops for the ghost-aware partitioned format.

``spmv_interior`` / ``spmv_boundary`` are the two halves of the
distributed overlap schedule (§3.2.3): interior rows touch no ghost
column and compute while the halo is in flight; boundary rows run
after the ghosts land in the vector tail.  Each half is one
*full-matrix* kernel on the corresponding row block — the inner
``spmv`` lookup re-dispatches on the block's own (format, precision)
key, so every storage layout and every ladder rung (including the
row-equilibrated fp16 kernels) is served by these three registrations
without further per-format code.

The non-overlapped ``spmv`` on a partitioned matrix is, by
construction, the same two block kernels run back to back: the
overlapped and sequential schedules execute identical arithmetic in
identical order and are therefore bitwise-equal — the property the
overlap-correctness tests assert.

Contract: ``out`` (when given) is the full owned-length result vector;
each half scatters only its own rows.  With ``ws`` the block results
land in pooled buffers keyed by region, so the distributed SpMV is
allocation-free after warmup.
"""

from __future__ import annotations

import numpy as np

from repro.backends.registry import register


def _block_spmv_into(P, region: str, xfull, y, ws) -> None:
    """Run one region's block SpMV and scatter into the full result."""
    from repro.backends.dispatch import spmv

    blk = P.interior if region == "interior" else P.boundary
    rows = P.interior_rows if region == "interior" else P.boundary_rows
    m = len(rows)
    if m == 0:
        return
    if ws is None:
        y[rows] = spmv(blk, xfull)
        return
    s = ws.get(("part.spmv", region), (m,), blk.dtype)
    spmv(blk, xfull, out=s, ws=ws)
    y[rows] = s


def _result_buffer(P, out, ws):
    if out is not None:
        return out
    if ws is not None:
        return ws.get("part.spmv.y", (P.nlocal,), P.dtype)
    return np.empty(P.nlocal, dtype=P.dtype)


@register("spmv_interior", fmt="partitioned")
def spmv_interior_partitioned(P, xfull, out=None, ws=None):
    """Interior-rows half of the product (no ghost columns touched)."""
    y = _result_buffer(P, out, ws)
    _block_spmv_into(P, "interior", xfull, y, ws)
    return y


@register("spmv_boundary", fmt="partitioned")
def spmv_boundary_partitioned(P, xfull, out=None, ws=None):
    """Boundary-rows half of the product (requires landed ghosts)."""
    y = _result_buffer(P, out, ws)
    _block_spmv_into(P, "boundary", xfull, y, ws)
    return y


# ----------------------------------------------------------------------
# Panel halves: whole-panel interior/boundary compute for the wide
# halo exchange.  The reference registrations loop the panel's columns
# through the single-RHS region kernels above — bitwise-per-column
# equal to the looped PR 6 schedule (identical block kernels in
# identical order per column), with the pooled region scratch shared
# across columns so an N-wide panel warms exactly the buffers one RHS
# does.  Single-pass backends (JIT/GPU) re-register these keys with one
# matrix stream per region serving all N columns.


def _panel_result_buffer(P, out, ws, ncol):
    if out is not None:
        return out
    if ws is not None:
        return ws.get_panel("part.spmv.Y", P.nlocal, ncol, P.dtype)
    return np.empty((P.nlocal, ncol), dtype=P.dtype, order="F")


@register("spmv_interior_multi", fmt="partitioned")
def spmv_interior_multi_partitioned(P, X, out=None, ws=None):
    """Interior-rows half of the panel product (no ghost columns)."""
    ncol = X.shape[1]
    Y = _panel_result_buffer(P, out, ws, ncol)
    for j in range(ncol):
        _block_spmv_into(P, "interior", X[:, j], Y[:, j], ws)
    return Y


@register("spmv_boundary_multi", fmt="partitioned")
def spmv_boundary_multi_partitioned(P, X, out=None, ws=None):
    """Boundary-rows half of the panel product (requires landed ghosts)."""
    ncol = X.shape[1]
    Y = _panel_result_buffer(P, out, ws, ncol)
    for j in range(ncol):
        _block_spmv_into(P, "boundary", X[:, j], Y[:, j], ws)
    return Y


@register("spmv", fmt="partitioned")
def spmv_partitioned(P, xfull, out=None, ws=None):
    """Full product: the two region kernels back to back."""
    if xfull.shape[0] != P.ncols:
        raise ValueError(
            f"x has {xfull.shape[0]} entries, matrix has {P.ncols} columns"
        )
    y = _result_buffer(P, out, ws)
    _block_spmv_into(P, "interior", xfull, y, ws)
    _block_spmv_into(P, "boundary", xfull, y, ws)
    return y


# ----------------------------------------------------------------------
# Color-partitioned SymGS: the overlapped smoother's two halves
# ----------------------------------------------------------------------
# ``symgs_interior`` sweeps every color's dependency-closed interior
# block (in sweep order) while the halo is in flight; ``symgs_boundary``
# finishes every color's boundary block after the ghosts land.  Each
# block relaxation is ``x[rows] += (r[rows] - (A_blk x)) / diag_blk``
# through a *full-matrix* block kernel, so the inner ``spmv`` lookup
# re-dispatches on the block's own (format, precision) key — every
# storage layout, every ladder rung and every backend (NumPy, Numba)
# is served by these registrations without per-format code.
#
# The interleaved ``symgs_sweep`` (interior block, then boundary block,
# per color) and the overlapped split (all interiors, then all
# boundaries) execute identical reads and writes thanks to the
# dependency closure (see ``repro.sparse.partitioned``), and both are
# bitwise-equal at fp64 to the historical index-set sweep.


def _relax_block(blk, r, xfull, ws, key) -> None:
    """One block's relaxation pass, fp32/fp64 arithmetic."""
    from repro.backends.dispatch import spmv

    rows = blk.rows
    m = len(rows)
    if m == 0:
        return
    if ws is None:
        ax = spmv(blk.A, xfull)
        xfull[rows] += (r[rows] - ax) / blk.diag
        return
    ax = ws.get(("cgs.ax", key), (m,), blk.A.dtype)
    spmv(blk.A, xfull, out=ax, ws=ws)
    rb = ws.get(("cgs.rhs", key), (m,), r.dtype)
    np.take(r, rows, out=rb, mode="clip")
    np.subtract(rb, ax, out=rb)
    np.divide(rb, blk.diag, out=rb)
    xb = ws.get(("cgs.x", key), (m,), xfull.dtype)
    np.take(xfull, rows, out=xb, mode="clip")
    np.add(xb, rb, out=xb)
    xfull[rows] = xb


def _relax_block_fp16(blk, r, xfull, ws, key) -> None:
    """One block's relaxation pass at fp16 storage, fp32 arithmetic.

    Mirrors the fp16 ``symgs_sweep`` kernel: the block SpMV already
    accumulates in fp32 (and folds the row-equilibration scale), the
    near-cancelling update runs in fp32, and only the scatter back
    into the fp16 iterate rounds.
    """
    from repro.backends.dispatch import spmv

    rows = blk.rows
    m = len(rows)
    if m == 0:
        return
    if ws is None:
        ax = np.empty(m, dtype=np.float32)
        spmv(blk.A, xfull, out=ax)
        upd = (r[rows] - ax) / np.asarray(blk.diag, dtype=np.float32)
        xfull[rows] = xfull[rows] + upd.astype(np.float32)
        return
    ax = ws.get(("cgs16.ax", key), (m,), np.float32)
    spmv(blk.A, xfull, out=ax, ws=ws)
    rb = ws.get(("cgs16.r", key), (m,), r.dtype)
    np.take(r, rows, out=rb, mode="clip")
    acc = ws.get(("cgs16.acc", key), (m,), np.float32)
    np.subtract(rb, ax, out=acc)
    np.divide(acc, blk.diag, out=acc)
    xb = ws.get(("cgs16.x", key), (m,), xfull.dtype)
    np.take(xfull, rows, out=xb, mode="clip")
    np.add(acc, xb, out=acc)
    xfull[rows] = acc


def _sweep_region(P, r, xfull, direction, region, ws, relax) -> None:
    sched = P.schedule(direction)
    idx = 0 if region == "interior" else 1
    for p, blocks in enumerate(sched.passes):
        relax(blocks[idx], r, xfull, ws, (direction, region, p))


@register("symgs_interior", fmt="color_partitioned")
def symgs_interior_cp(P, r, xfull, direction="forward", ws=None):
    """Interior half of the overlapped sweep (no ghost columns read)."""
    _sweep_region(P, r, xfull, direction, "interior", ws, _relax_block)


@register("symgs_boundary", fmt="color_partitioned")
def symgs_boundary_cp(P, r, xfull, direction="forward", ws=None):
    """Boundary half of the overlapped sweep (requires landed ghosts)."""
    _sweep_region(P, r, xfull, direction, "boundary", ws, _relax_block)


@register("symgs_interior", fmt="color_partitioned", precision="fp16")
def symgs_interior_cp_fp16(P, r, xfull, direction="forward", ws=None):
    """fp16 interior half: fp32 relaxation arithmetic per block."""
    _sweep_region(P, r, xfull, direction, "interior", ws, _relax_block_fp16)


@register("symgs_boundary", fmt="color_partitioned", precision="fp16")
def symgs_boundary_cp_fp16(P, r, xfull, direction="forward", ws=None):
    """fp16 boundary half: fp32 relaxation arithmetic per block."""
    _sweep_region(P, r, xfull, direction, "boundary", ws, _relax_block_fp16)


# Panel halves of the overlapped sweep: every column's interior blocks
# relax while one wide exchange is in flight, every column's boundary
# blocks after the ghosts land.  Columns are mutually independent, so
# the column loop composes the single-RHS region kernels bitwise-per-
# column; the fp16 registrations swap in the fp32-relaxation block
# pass, mirroring the single-RHS precision split.


@register("symgs_interior_multi", fmt="color_partitioned")
def symgs_interior_multi_cp(P, R, Xfull, direction="forward", ws=None):
    """Interior half of the overlapped panel sweep (all columns)."""
    for j in range(R.shape[1]):
        _sweep_region(
            P, R[:, j], Xfull[:, j], direction, "interior", ws, _relax_block
        )


@register("symgs_boundary_multi", fmt="color_partitioned")
def symgs_boundary_multi_cp(P, R, Xfull, direction="forward", ws=None):
    """Boundary half of the overlapped panel sweep (all columns)."""
    for j in range(R.shape[1]):
        _sweep_region(
            P, R[:, j], Xfull[:, j], direction, "boundary", ws, _relax_block
        )


@register("symgs_interior_multi", fmt="color_partitioned", precision="fp16")
def symgs_interior_multi_cp_fp16(P, R, Xfull, direction="forward", ws=None):
    """fp16 interior panel half: fp32 relaxation arithmetic per block."""
    for j in range(R.shape[1]):
        _sweep_region(
            P,
            R[:, j],
            Xfull[:, j],
            direction,
            "interior",
            ws,
            _relax_block_fp16,
        )


@register("symgs_boundary_multi", fmt="color_partitioned", precision="fp16")
def symgs_boundary_multi_cp_fp16(P, R, Xfull, direction="forward", ws=None):
    """fp16 boundary panel half: fp32 relaxation arithmetic per block."""
    for j in range(R.shape[1]):
        _sweep_region(
            P,
            R[:, j],
            Xfull[:, j],
            direction,
            "boundary",
            ws,
            _relax_block_fp16,
        )


def _symgs_sweep_cp(P, r, xfull, direction, ws, relax) -> None:
    """Interleaved non-overlapped schedule on the same blocks."""
    sched = P.schedule(direction)
    for p, (interior, boundary) in enumerate(sched.passes):
        relax(interior, r, xfull, ws, (direction, "interior", p))
        relax(boundary, r, xfull, ws, (direction, "boundary", p))


@register("symgs_sweep", fmt="color_partitioned")
def symgs_sweep_cp(
    P, r, xfull, sets=None, diag_sets=None, direction="forward", ws=None
):
    """Sequential reference on the partitioned layout (block order)."""
    _symgs_sweep_cp(P, r, xfull, direction, ws, _relax_block)


@register("symgs_sweep", fmt="color_partitioned", precision="fp16")
def symgs_sweep_cp_fp16(
    P, r, xfull, sets=None, diag_sets=None, direction="forward", ws=None
):
    """fp16 sequential reference on the partitioned layout."""
    _symgs_sweep_cp(P, r, xfull, direction, ws, _relax_block_fp16)
