"""Reference backend: vectorized NumPy kernels for every hot operation.

These are the canonical implementations the registry falls back to for
any ``(op, format, precision)`` no other backend claims.  Every kernel
honors two contracts the solver hot path depends on:

- ``out=`` — results land in a caller-provided buffer end-to-end (no
  hidden allocate-then-copy, including CSR's empty-row fixup path);
- ``ws=`` — an optional :class:`~repro.backends.workspace.Workspace`
  supplies pooled scratch.  Full-matrix kernels and the ELL row-subset
  kernel are allocation-free after their first (warmup) call; the
  CSR/SELL-C-σ row-subset kernels pool all floating-point traffic but
  still build O(rows) integer index scratch per call (the price of
  their indirected layouts).

Without ``ws`` the kernels fall back to plain allocating NumPy, which
keeps them usable from tests and one-shot diagnostics.

The kernels are duck-typed on the matrix attributes (``indptr`` /
``cols`` / ``blocks`` ...), not the classes, so this module has no
import edge back into :mod:`repro.sparse`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.registry import register, registry

registry.register_backend(
    "numpy", priority=0, description="vectorized NumPy (always available)"
)


def _check_cols(A, x) -> None:
    if x.shape[0] != A.ncols:
        raise ValueError(
            f"x has {x.shape[0]} entries, matrix has {A.ncols} columns"
        )


# ----------------------------------------------------------------------
# CSR
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _CSRPlan:
    """Precomputed segmented-reduction structure of one CSR matrix.

    ``reduceat`` boundaries are taken at *nonempty* rows only: an
    empty row's (clamped) boundary would both emit a bogus value and
    truncate the preceding row's segment, so empty rows are excluded
    from the reduction and zeroed by scatter instead.
    """

    nonempty_starts: np.ndarray  # strictly increasing, all < nnz
    nonempty_rows: np.ndarray | None  # None when every row has an entry


def _csr_plan(A) -> _CSRPlan:
    plan = getattr(A, "_spmv_plan", None)
    if plan is None:
        nonempty = A.indptr[:-1] < A.indptr[1:]
        if bool(nonempty.all()):
            plan = _CSRPlan(A.indptr[:-1], None)
        else:
            rows = np.nonzero(nonempty)[0]
            plan = _CSRPlan(A.indptr[:-1][rows], rows)
        A._spmv_plan = plan
    return plan


@register("spmv", fmt="csr")
def spmv_csr(A, x, out=None, ws=None):
    """y = A @ x via ``np.add.reduceat`` over row-pointer boundaries."""
    _check_cols(A, x)
    n = A.nrows
    y = out if out is not None else np.empty(n, dtype=A.data.dtype)
    if A.nnz == 0:
        y[:] = 0
        return y
    plan = _csr_plan(A)
    if ws is not None and A.data.dtype == x.dtype == y.dtype:
        g = ws.get("csr.spmv.gather", (A.nnz,), x.dtype)
        np.take(x, A.indices, out=g, mode="clip")
        np.multiply(A.data, g, out=g)
        if plan.nonempty_rows is None:
            np.add.reduceat(g, plan.nonempty_starts, out=y)
        else:
            s = ws.get("csr.spmv.sums", plan.nonempty_starts.shape, y.dtype)
            np.add.reduceat(g, plan.nonempty_starts, out=s)
            y[:] = 0
            y[plan.nonempty_rows] = s
        return y
    products = A.data * x[A.indices]
    sums = np.add.reduceat(products, plan.nonempty_starts)
    if plan.nonempty_rows is None:
        y[:] = sums
    else:
        y[:] = 0
        y[plan.nonempty_rows] = sums
    return y


@register("spmv_rows", fmt="csr")
def spmv_rows_csr(A, rows, x, out=None, ws=None):
    """(A @ x) restricted to a subset of rows (overlap split).

    The concatenated-range index construction allocates integer
    scratch; with ``ws`` all floating-point gathers/products are
    pooled.
    """
    m = len(rows)
    y = out if out is not None else np.zeros(m, dtype=A.data.dtype)
    if m == 0:
        return y
    lens = (A.indptr[rows + 1] - A.indptr[rows]).astype(np.int64)
    total = int(lens.sum())
    y[:] = 0
    if total:
        # Gather the concatenated nnz ranges of the selected rows.
        flat = np.repeat(A.indptr[rows], lens) + (
            np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        )
        if ws is not None and A.data.dtype == x.dtype:
            db = ws.get("csr.rows.data", (total,), A.data.dtype)
            np.take(A.data, flat, out=db, mode="clip")
            ib = ws.get("csr.rows.idx", (total,), A.indices.dtype)
            np.take(A.indices, flat, out=ib, mode="clip")
            products = ws.get("csr.rows.prod", (total,), x.dtype)
            np.take(x, ib, out=products, mode="clip")
            np.multiply(db, products, out=products)
        else:
            products = A.data[flat] * x[A.indices[flat]]
        starts = np.cumsum(lens) - lens
        nonempty = lens > 0
        # Boundaries at nonempty segments only (see _CSRPlan).
        sums = np.add.reduceat(products, starts[nonempty])
        y[nonempty] = sums
    return y


# ----------------------------------------------------------------------
# ELL
# ----------------------------------------------------------------------
@register("spmv", fmt="ell")
def spmv_ell(A, x, out=None, ws=None):
    """y = A @ x: one gather of ``x`` through the padded column block,
    elementwise multiply, and a row reduction."""
    _check_cols(A, x)
    if ws is not None and A.vals.dtype == x.dtype:
        g = ws.get("ell.spmv.gather", A.cols.shape, x.dtype)
        np.take(x, A.cols, out=g, mode="clip")
        np.multiply(A.vals, g, out=g)
        y = out if out is not None else np.empty(A.nrows, dtype=A.vals.dtype)
        g.sum(axis=1, dtype=A.vals.dtype, out=y)
        return y
    acc = A.vals * x[A.cols]
    y = acc.sum(axis=1, dtype=A.vals.dtype)
    if out is not None:
        out[:] = y
        return out
    return y


@register("spmv_rows", fmt="ell")
def spmv_rows_ell(A, rows, x, out=None, ws=None):
    """(A @ x) on a row subset — the building block for the fused
    SpMV-restriction (§3.2.4), the interior/boundary overlap split
    (§3.2.3) and the multicolor GS color passes (§3.2.1)."""
    m = len(rows)
    w = A.width
    if ws is not None and A.vals.dtype == x.dtype and m:
        vb = ws.get("ell.rows.vals", (m, w), A.vals.dtype)
        cb = ws.get("ell.rows.cols", (m, w), A.cols.dtype)
        np.take(A.vals, rows, axis=0, out=vb, mode="clip")
        np.take(A.cols, rows, axis=0, out=cb, mode="clip")
        g = ws.get("ell.rows.gather", (m, w), x.dtype)
        np.take(x, cb, out=g, mode="clip")
        np.multiply(vb, g, out=g)
        y = out if out is not None else np.empty(m, dtype=A.vals.dtype)
        g.sum(axis=1, dtype=A.vals.dtype, out=y)
        return y
    acc = A.vals[rows] * x[A.cols[rows]]
    y = acc.sum(axis=1, dtype=A.vals.dtype)
    if out is not None:
        out[:] = y
        return out
    return y


# ----------------------------------------------------------------------
# SELL-C-σ
# ----------------------------------------------------------------------
@register("spmv", fmt="sellcs")
def spmv_sellcs(A, x, out=None, ws=None):
    """y = A @ x: one ELL-style gather-multiply-reduce per width slab.

    Every row belongs to exactly one slab, so the output needs no
    global zero pass; zero-width slabs (all-empty chunks) scatter 0.
    """
    _check_cols(A, x)
    dtype = A.dtype
    y = out if out is not None else np.empty(A.nrows, dtype=dtype)
    for bid, blk in enumerate(A.blocks):
        if blk.width == 0:
            y[blk.rows] = 0
            continue
        if ws is not None and blk.vals.dtype == x.dtype:
            g = ws.get(("sellcs.spmv.gather", bid), blk.cols.shape, x.dtype)
            np.take(x, blk.cols, out=g, mode="clip")
            np.multiply(blk.vals, g, out=g)
            s = ws.get(("sellcs.spmv.sum", bid), (len(blk.rows),), dtype)
            g.sum(axis=1, dtype=dtype, out=s)
            y[blk.rows] = s
        else:
            y[blk.rows] = (blk.vals * x[blk.cols]).sum(axis=1, dtype=dtype)
    return y


@register("spmv_rows", fmt="sellcs")
def spmv_rows_sellcs(A, rows, x, out=None, ws=None):
    """(A @ x) on a row subset, resolved through the per-row slab map.

    With ``ws`` the O(rows × width) slab gathers are pooled; the
    per-slab selection index vectors (O(rows)) still allocate — the
    price of the permuted layout's indirection.
    """
    m = len(rows)
    dtype = A.dtype
    y = out if out is not None else np.empty(m, dtype=dtype)
    if m == 0:
        return y
    owner = A.row_block[rows]
    for bid, blk in enumerate(A.blocks):
        sel = np.nonzero(owner == bid)[0]
        n_sel = len(sel)
        if n_sel == 0:
            continue
        if blk.width == 0:
            y[sel] = 0
            continue
        slots = A.row_slot[rows[sel]]
        if ws is not None and blk.vals.dtype == x.dtype:
            shape = (n_sel, blk.width)
            vb = ws.get(("sellcs.rows.vals", bid), shape, blk.vals.dtype)
            cb = ws.get(("sellcs.rows.cols", bid), shape, blk.cols.dtype)
            np.take(blk.vals, slots, axis=0, out=vb, mode="clip")
            np.take(blk.cols, slots, axis=0, out=cb, mode="clip")
            g = ws.get(("sellcs.rows.gather", bid), shape, x.dtype)
            np.take(x, cb, out=g, mode="clip")
            np.multiply(vb, g, out=g)
            s = ws.get(("sellcs.rows.sum", bid), (n_sel,), dtype)
            g.sum(axis=1, dtype=dtype, out=s)
            y[sel] = s
        else:
            acc = blk.vals[slots] * x[blk.cols[slots]]
            y[sel] = acc.sum(axis=1, dtype=dtype)
    return y


# ----------------------------------------------------------------------
# Symmetric / multicolor Gauss-Seidel sweep (format-generic)
# ----------------------------------------------------------------------
@register("symgs_sweep")
def symgs_sweep(A, r, xfull, sets, diag_sets, direction="forward", ws=None):
    """One multicolor Gauss-Seidel sweep over all color sets.

    Rows of a color are mutually independent, so each pass is one
    vectorized relaxation ``x[c] += (r[c] - (A x)[c]) / diag[c]``;
    colors run sequentially (later colors see earlier updates).
    ``diag_sets[i]`` is the diagonal restricted to ``sets[i]``,
    precomputed once by the smoother.
    """
    from repro.backends.dispatch import spmv_rows

    order = range(len(sets))
    if direction == "backward":
        order = reversed(order)
    elif direction != "forward":
        raise ValueError(f"unknown sweep direction {direction!r}")
    for i in order:
        rows = sets[i]
        m = len(rows)
        if m == 0:
            continue
        if ws is None:
            ax = spmv_rows(A, rows, xfull)
            xfull[rows] += (r[rows] - ax) / diag_sets[i]
            continue
        ax = ws.get(("gs.ax", i), (m,), A.dtype)
        spmv_rows(A, rows, xfull, out=ax, ws=ws)
        rb = ws.get(("gs.rhs", i), (m,), r.dtype)
        np.take(r, rows, out=rb, mode="clip")
        np.subtract(rb, ax, out=rb)
        np.divide(rb, diag_sets[i], out=rb)
        xb = ws.get(("gs.x", i), (m,), xfull.dtype)
        np.take(xfull, rows, out=xb, mode="clip")
        np.add(xb, rb, out=xb)
        xfull[rows] = xb


# ----------------------------------------------------------------------
# Fused motifs
# ----------------------------------------------------------------------
# NumPy cannot truly fuse two passes into one loop, so these reference
# registrations compose the registry's own kernels operation for
# operation — bitwise-identical to the historical unfused call
# sequences (the property the solver's golden tests pin), with every
# temporary pooled.  Their value is the *seam*: the byte model charges
# the fused pass once, and a JIT backend (Numba here, a GPU later)
# registers a genuinely single-pass kernel against the same key.


@register("spmv_dot")
def spmv_dot(A, x, b, out=None, ws=None):
    """``r = b - A x`` and local ``r . r`` (GMRES-IR's residual check).

    The inner ``spmv``/``dot`` lookups re-dispatch on (format,
    precision), so every storage layout and ladder rung — including
    the partitioned distributed format — is served by this one
    registration.
    """
    from repro.backends import dispatch

    r = out if out is not None else np.empty(A.nrows, dtype=b.dtype)
    ax = (
        ws.get("spmv_dot.ax", (A.nrows,), A.dtype)
        if ws is not None
        else np.empty(A.nrows, dtype=A.dtype)
    )
    dispatch.spmv(A, x, out=ax, ws=ws)
    np.subtract(b, ax, out=r)
    return r, dispatch.dot(r, r)


@register("waxpby_dot")
def waxpby_dot(alpha, x, beta, y, out=None, ws=None):
    """``w = alpha x + beta y`` and local ``w . w`` in one seam."""
    from repro.backends import dispatch

    w = dispatch.waxpby(alpha, x, beta, y, out=out, ws=ws)
    return w, dispatch.dot(w, w)


# ----------------------------------------------------------------------
# Panel (multi-RHS) motifs
# ----------------------------------------------------------------------
# A panel is a column-major (n, N) array: one RHS per contiguous
# column.  The reference registrations apply the single-RHS kernel to
# each column — NumPy's axis reductions use pairwise summation only on
# the contiguous fast axis, so a "vectorized" 3-D panel reduction would
# silently change each column's rounding; composing per column keeps
# every column bitwise-equal to the looped single-RHS calls, which is
# the contract the panel solver's parity tests pin.  All pooled
# scratch is *shared across the panel's columns* (same workspace keys),
# so an N-wide panel warms exactly the buffers one RHS does.  The
# single-pass layouts — one matrix stream serving all N columns —
# belong to the JIT/GPU backends (the Numba backend registers CSR/ELL
# ``spmv_multi`` against this same key).


def _check_panel(X, out):
    if X.ndim != 2:
        raise ValueError(f"panel must be 2-D (n, N), got shape {X.shape}")
    if out is not None and out.shape[1] != X.shape[1]:
        raise ValueError(
            f"panel out has {out.shape[1]} columns, X has {X.shape[1]}"
        )


def _register_spmv_multi(fmt):
    @register("spmv_multi", fmt=fmt)
    def spmv_multi_fmt(A, X, out=None, ws=None):
        from repro.backends import dispatch

        _check_panel(X, out)
        ncol = X.shape[1]
        fn = registry.lookup(
            "spmv", fmt, dispatch._prec(A.dtype),
            fmt_params=dispatch.matrix_format_params(A),
        )
        Y = (
            out
            if out is not None
            else np.empty((A.nrows, ncol), dtype=A.dtype, order="F")
        )
        for j in range(ncol):
            fn(A, X[:, j], out=Y[:, j], ws=ws)
        return Y

    return spmv_multi_fmt


# One registration per storage format (fp16 included: the inner lookup
# resolves the precision-specific single-RHS kernel, fp32 accumulation
# and row-equilibration scales intact).
for _fmt in ("csr", "ell", "sellcs"):
    _register_spmv_multi(_fmt)
del _fmt


@register("spmv_multi")
def spmv_multi_generic(A, X, out=None, ws=None):
    """Wildcard panel SpMV: covers the partitioned distributed format
    (and any future layout) through the full ``spmv`` re-dispatch."""
    from repro.backends import dispatch

    _check_panel(X, out)
    ncol = X.shape[1]
    Y = (
        out
        if out is not None
        else np.empty((A.nrows, ncol), dtype=A.dtype, order="F")
    )
    for j in range(ncol):
        dispatch.spmv(A, X[:, j], out=Y[:, j], ws=ws)
    return Y


@register("symgs_sweep_multi")
def symgs_sweep_multi(
    A, R, Xfull, sets, diag_sets, direction="forward", ws=None
):
    """Multicolor GS sweep over every panel column.

    Columns are mutually independent, so the per-column composition is
    bitwise-equal to looped single-RHS sweeps under any column/color
    interleaving; the inner ``symgs_sweep`` lookup re-dispatches per
    (format, precision), covering the color-partitioned layout and the
    fp16 fp32-relaxation kernels with this one registration.
    """
    from repro.backends import dispatch

    _check_panel(Xfull, None)
    for j in range(R.shape[1]):
        dispatch.symgs_sweep(
            A, R[:, j], Xfull[:, j], sets, diag_sets, direction=direction, ws=ws
        )


@register("waxpby_multi")
def waxpby_multi(alpha, X, beta, Y, out=None, ws=None):
    """Per-column ``alpha X[:, j] + beta Y[:, j]`` (aliasing-safe)."""
    from repro.backends import dispatch

    _check_panel(Y, out)
    W = (
        out
        if out is not None
        else np.empty(Y.shape, dtype=Y.dtype, order="F")
    )
    for j in range(Y.shape[1]):
        dispatch.waxpby(alpha, X[:, j], beta, Y[:, j], out=W[:, j], ws=ws)
    return W


@register("dot_multi")
def dot_multi(X, Y) -> np.ndarray:
    """Per-column local dots, each through the precision's own kernel."""
    from repro.backends import dispatch

    return np.array(
        [dispatch.dot(X[:, j], Y[:, j]) for j in range(X.shape[1])],
        dtype=np.float64,
    )


@register("spmv_dot_multi")
def spmv_dot_multi(A, X, B, out=None, ws=None):
    """Panel residual + per-column local dots (fused motif, per column)."""
    from repro.backends import dispatch

    _check_panel(X, out)
    ncol = X.shape[1]
    R = (
        out
        if out is not None
        else np.empty((A.nrows, ncol), dtype=B.dtype, order="F")
    )
    locals_sq = np.empty(ncol, dtype=np.float64)
    for j in range(ncol):
        _, locals_sq[j] = dispatch.spmv_dot(
            A, X[:, j], B[:, j], out=R[:, j], ws=ws
        )
    return R, locals_sq


@register("waxpby_dot_multi")
def waxpby_dot_multi(alpha, X, beta, Y, out=None, ws=None):
    """Panel waxpby + per-column local dots (fused motif, per column)."""
    from repro.backends import dispatch

    _check_panel(Y, out)
    ncol = Y.shape[1]
    W = (
        out
        if out is not None
        else np.empty(Y.shape, dtype=Y.dtype, order="F")
    )
    locals_sq = np.empty(ncol, dtype=np.float64)
    for j in range(ncol):
        _, locals_sq[j] = dispatch.waxpby_dot(
            alpha, X[:, j], beta, Y[:, j], out=W[:, j], ws=ws
        )
    return W, locals_sq


# ----------------------------------------------------------------------
# Fused CGS2 projection + norm
# ----------------------------------------------------------------------
@register("gemv_sub_dot")
def gemv_sub_dot(Q, k, coef, w, ws=None) -> float:
    """``w -= Q[:, :k] @ coef`` plus the *local* ``w . w``, fused.

    The tail of a CGS2 step: the second projection's GEMV, the
    subtraction, and the norm's local reduction share one pass over
    ``w`` in a fused backend.  This reference composes the registry's
    ``gemv``/``dot`` kernels operation-for-operation — bitwise-equal
    to the unfused ``_project_out`` + ``dot`` sequence — and the inner
    lookups resolve the precision axis (fp16 basis included).
    """
    from repro.backends import dispatch

    if ws is None:
        w -= dispatch.gemv(Q, k, coef)
    else:
        t = ws.get("ortho.gemv", w.shape, w.dtype)
        dispatch.gemv(Q, k, coef, out=t)
        np.subtract(w, t, out=w)
    return dispatch.dot(w, w)


# ----------------------------------------------------------------------
# Dense / vector motifs
# ----------------------------------------------------------------------
@register("dot")
def dot(a, b) -> float:
    """Local dot product (the all-reduce lives in ``parallel``)."""
    return float(np.dot(a, b))


@register("waxpby")
def waxpby(alpha, x, beta, y, out=None, ws=None):
    """``w = alpha x + beta y`` with aliasing-safe in-place updates."""
    if out is None:
        return alpha * x + beta * y
    if out is y:
        if beta != 1.0:
            np.multiply(y, beta, out=out)
        if alpha == 1.0:
            np.add(out, x, out=out)
        elif alpha != 0.0:
            if ws is None:
                np.add(out, alpha * x, out=out)
            else:
                t = ws.get("waxpby.t", x.shape, out.dtype)
                np.multiply(x, alpha, out=t)
                np.add(out, t, out=out)
        return out
    np.multiply(x, alpha, out=out)
    if beta == 1.0:
        np.add(out, y, out=out)
    elif beta != 0.0:
        if ws is None:
            np.add(out, beta * y, out=out)
        else:
            t = ws.get("waxpby.t", y.shape, out.dtype)
            np.multiply(y, beta, out=t)
            np.add(out, t, out=out)
    return out


@register("gemv")
def gemv(Q, k, coef, out=None):
    """``y = Q[:, :k] @ coef`` — the basis-combination GEMV.

    ``Q[:, :k]`` is a leading-dimension view (rows contiguous), which
    BLAS consumes without copying; with ``out`` the call is
    allocation-free.
    """
    if out is None:
        return Q[:, :k] @ coef
    np.dot(Q[:, :k], coef, out=out)
    return out


@register("gemvT")
def gemvT(Q, k, w, out=None):
    """``h = Q[:, :k]^T w`` — CGS2's batched projection (GEMVT)."""
    if out is None:
        return Q[:, :k].T @ w
    np.dot(w, Q[:, :k], out=out)
    return out


# ----------------------------------------------------------------------
# Grid transfers
# ----------------------------------------------------------------------
@register("fused_restrict")
def fused_restrict(A, r, xfull, f_c, out=None, ws=None):
    """Coarse defect without the full residual (eq. 6):
    ``r_c[i] = r[f_c(i)] - (A x)[f_c(i)]`` at coarse-mapped rows only.

    ``out`` may be the next level's buffer in a *different* precision
    (ladder schedules): the subtraction then runs in the fine level's
    precision and only the final store casts.
    """
    from repro.backends.dispatch import spmv_rows

    if out is None:
        ax = spmv_rows(A, f_c, xfull, ws=ws)
        return (r[f_c] - ax).astype(xfull.dtype)
    m = len(f_c)
    if ws is None:
        ax = spmv_rows(A, f_c, xfull)
    else:
        ax = ws.get("restrict.ax", (m,), A.dtype)
        spmv_rows(A, f_c, xfull, out=ax, ws=ws)
    if out.dtype == r.dtype:
        np.take(r, f_c, out=out, mode="clip")
        np.subtract(out, ax, out=out)
        return out
    if ws is None:
        out[:] = r[f_c] - ax
        return out
    rb = ws.get("restrict.rfine", (m,), r.dtype)
    np.take(r, f_c, out=rb, mode="clip")
    np.subtract(rb, ax, out=rb)
    out[:] = rb
    return out


@register("prolong")
def prolong(xfull, z_c, f_c, ws=None):
    """Transpose-injection prolongation ``x[f_c(i)] += z_c[i]``."""
    if ws is None:
        xfull[f_c] += z_c
        return
    b = ws.get("prolong.buf", (len(f_c),), xfull.dtype)
    np.take(xfull, f_c, out=b, mode="clip")
    np.add(b, z_c, out=b)
    xfull[f_c] = b


# ----------------------------------------------------------------------
# fp16 kernels: fp32 accumulation + row-equilibration support
# ----------------------------------------------------------------------
# Half precision has ~3 decimal digits and a max of 65504, so summing a
# 27-wide stencil row (let alone a 10^5-length dot product) natively in
# fp16 is numerically unusable.  Every kernel below therefore streams
# fp16 *storage* but accumulates in fp32 (fp64 for global reductions),
# the same split a GPU's half-precision FMA pipelines implement — and
# the reason fp16 buys bandwidth without collapsing the solver.
#
# Matrices may carry a ``row_scale`` attribute (row-equilibrated
# storage, :mod:`repro.sparse.scaled` holds ``D^{-1}A`` + ``D``); the
# SpMV kernels fold the scale back into their output so callers always
# see the original operator.  ``out=`` buffers of any float dtype are
# accepted — the cast happens on the final store, which is what lets
# ladder schedules restrict an fp16 level's defect straight into an
# fp32 coarse buffer.


def _store(acc: np.ndarray, out, dtype) -> np.ndarray:
    """Write an fp32 accumulator to ``out`` (casting) or materialize."""
    if out is None:
        return acc.astype(dtype)
    out[:] = acc
    return out


@register("spmv", fmt="ell", precision="fp16")
def spmv_ell_fp16(A, x, out=None, ws=None):
    """ELL SpMV: fp16 streaming, fp32 accumulation, optional row scale."""
    _check_cols(A, x)
    scale = getattr(A, "row_scale", None)
    if ws is not None:
        g = ws.get("ell.spmv16.gather", A.cols.shape, x.dtype)
        np.take(x, A.cols, out=g, mode="clip")
        acc = ws.get("ell.spmv16.acc", A.cols.shape, np.float32)
        np.multiply(A.vals, g, out=acc, dtype=np.float32)
        y = ws.get("ell.spmv16.sum", (A.nrows,), np.float32)
        acc.sum(axis=1, dtype=np.float32, out=y)
    else:
        acc = np.multiply(A.vals, x[A.cols], dtype=np.float32)
        y = acc.sum(axis=1, dtype=np.float32)
    if scale is not None:
        np.multiply(y, scale, out=y)
    return _store(y, out, A.vals.dtype)


@register("spmv_rows", fmt="ell", precision="fp16")
def spmv_rows_ell_fp16(A, rows, x, out=None, ws=None):
    """ELL row-subset SpMV with fp32 accumulation (GS / fused restrict)."""
    m = len(rows)
    w = A.width
    scale = getattr(A, "row_scale", None)
    if m == 0:
        return out if out is not None else np.zeros(0, dtype=A.vals.dtype)
    if ws is not None:
        vb = ws.get("ell.rows16.vals", (m, w), A.vals.dtype)
        cb = ws.get("ell.rows16.cols", (m, w), A.cols.dtype)
        np.take(A.vals, rows, axis=0, out=vb, mode="clip")
        np.take(A.cols, rows, axis=0, out=cb, mode="clip")
        g = ws.get("ell.rows16.gather", (m, w), x.dtype)
        np.take(x, cb, out=g, mode="clip")
        acc = ws.get("ell.rows16.acc", (m, w), np.float32)
        np.multiply(vb, g, out=acc, dtype=np.float32)
        y = ws.get("ell.rows16.sum", (m,), np.float32)
        acc.sum(axis=1, dtype=np.float32, out=y)
        if scale is not None:
            sb = ws.get("ell.rows16.scale", (m,), np.float32)
            np.take(scale, rows, out=sb, mode="clip")
            np.multiply(y, sb, out=y)
    else:
        acc = np.multiply(A.vals[rows], x[A.cols[rows]], dtype=np.float32)
        y = acc.sum(axis=1, dtype=np.float32)
        if scale is not None:
            y *= scale[rows]
    return _store(y, out, A.vals.dtype)


@register("spmv", fmt="csr", precision="fp16")
def spmv_csr_fp16(A, x, out=None, ws=None):
    """CSR SpMV with fp32 products and segmented fp32 reduction.

    With ``ws`` all floating-point traffic (gather, products, row sums)
    is pooled, matching the generic CSR kernel's contract.
    """
    _check_cols(A, x)
    n = A.nrows
    scale = getattr(A, "row_scale", None)
    if A.nnz == 0:
        y = out if out is not None else np.zeros(n, dtype=A.data.dtype)
        y[:] = 0
        return y
    plan = _csr_plan(A)
    if ws is not None:
        g = ws.get("csr.spmv16.gather", (A.nnz,), x.dtype)
        np.take(x, A.indices, out=g, mode="clip")
        products = ws.get("csr.spmv16.prod", (A.nnz,), np.float32)
        np.multiply(A.data, g, out=products, dtype=np.float32)
        y = ws.get("csr.spmv16.sum", (n,), np.float32)
        if plan.nonempty_rows is None:
            np.add.reduceat(products, plan.nonempty_starts, out=y)
        else:
            s = ws.get(
                "csr.spmv16.seg", plan.nonempty_starts.shape, np.float32
            )
            np.add.reduceat(products, plan.nonempty_starts, out=s)
            y[:] = 0
            y[plan.nonempty_rows] = s
    else:
        products = np.multiply(A.data, x[A.indices], dtype=np.float32)
        sums = np.add.reduceat(products, plan.nonempty_starts)
        y = np.zeros(n, dtype=np.float32)
        if plan.nonempty_rows is None:
            y[:] = sums
        else:
            y[plan.nonempty_rows] = sums
    if scale is not None:
        np.multiply(y, scale, out=y)
    return _store(y, out, A.data.dtype)


@register("spmv_rows", fmt="csr", precision="fp16")
def spmv_rows_csr_fp16(A, rows, x, out=None, ws=None):
    """CSR row-subset SpMV, fp32 accumulation.

    As with the generic CSR kernel, the concatenated-range index
    construction is O(rows) integer scratch per call (the layout's
    indirection price); with ``ws`` the fp32 result vector is pooled.
    """
    m = len(rows)
    scale = getattr(A, "row_scale", None)
    y = (
        ws.zeros("csr.rows16.sum", (m,), np.float32)
        if ws is not None
        else np.zeros(m, dtype=np.float32)
    )
    if m:
        lens = (A.indptr[rows + 1] - A.indptr[rows]).astype(np.int64)
        total = int(lens.sum())
        if total:
            flat = np.repeat(A.indptr[rows], lens) + (
                np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
            )
            products = np.multiply(
                A.data[flat], x[A.indices[flat]], dtype=np.float32
            )
            starts = np.cumsum(lens) - lens
            nonempty = lens > 0
            y[nonempty] = np.add.reduceat(products, starts[nonempty])
        if scale is not None:
            y *= scale[rows]
    return _store(y, out, A.data.dtype)


@register("spmv", fmt="sellcs", precision="fp16")
def spmv_sellcs_fp16(A, x, out=None, ws=None):
    """SELL-C-σ SpMV: per-slab fp16 streaming, fp32 reduction.

    With ``ws`` the per-slab gathers, fp32 accumulators and the result
    vector are all pooled (keyed per slab, like the generic kernel).
    """
    _check_cols(A, x)
    scale = getattr(A, "row_scale", None)
    y = (
        ws.get("sellcs.spmv16.y", (A.nrows,), np.float32)
        if ws is not None
        else np.empty(A.nrows, dtype=np.float32)
    )
    for bid, blk in enumerate(A.blocks):
        if blk.width == 0:
            y[blk.rows] = 0.0
            continue
        if ws is not None:
            g = ws.get(("sellcs.spmv16.gather", bid), blk.cols.shape, x.dtype)
            np.take(x, blk.cols, out=g, mode="clip")
            acc = ws.get(("sellcs.spmv16.acc", bid), blk.cols.shape, np.float32)
            np.multiply(blk.vals, g, out=acc, dtype=np.float32)
            s = ws.get(("sellcs.spmv16.sum", bid), (len(blk.rows),), np.float32)
            acc.sum(axis=1, dtype=np.float32, out=s)
            y[blk.rows] = s
        else:
            acc = np.multiply(blk.vals, x[blk.cols], dtype=np.float32)
            y[blk.rows] = acc.sum(axis=1, dtype=np.float32)
    if scale is not None:
        np.multiply(y, scale, out=y)
    return _store(y, out, A.dtype)


@register("spmv_rows", fmt="sellcs", precision="fp16")
def spmv_rows_sellcs_fp16(A, rows, x, out=None, ws=None):
    """SELL-C-σ row-subset SpMV through the slab map, fp32 accumulation.

    The per-slab selection indices allocate O(rows) per call (the
    permuted layout's indirection price, as in the generic kernel);
    with ``ws`` the fp32 result vector is pooled.
    """
    m = len(rows)
    scale = getattr(A, "row_scale", None)
    y = (
        ws.zeros("sellcs.rows16.sum", (m,), np.float32)
        if ws is not None
        else np.zeros(m, dtype=np.float32)
    )
    if m:
        owner = A.row_block[rows]
        for bid, blk in enumerate(A.blocks):
            sel = np.nonzero(owner == bid)[0]
            if len(sel) == 0 or blk.width == 0:
                continue
            slots = A.row_slot[rows[sel]]
            acc = np.multiply(
                blk.vals[slots], x[blk.cols[slots]], dtype=np.float32
            )
            y[sel] = acc.sum(axis=1, dtype=np.float32)
        if scale is not None:
            y *= scale[rows]
    return _store(y, out, A.dtype)


@register("symgs_sweep", precision="fp16")
def symgs_sweep_fp16(A, r, xfull, sets, diag_sets, direction="forward", ws=None):
    """Multicolor GS sweep at fp16 with fp32 relaxation arithmetic.

    The update ``x[c] += (r[c] - (A x)[c]) / diag[c]`` subtracts two
    nearly-equal quantities; doing that in fp16 loses every significant
    digit once the residual is small, so the whole color pass computes
    in fp32 and only the scatter back into the fp16 iterate rounds.
    ``diag_sets`` may be fp32 (row-equilibrated matrices report their
    unscaled diagonal in fp32) or the matrix precision.
    """
    from repro.backends.dispatch import spmv_rows

    order = range(len(sets))
    if direction == "backward":
        order = reversed(order)
    elif direction != "forward":
        raise ValueError(f"unknown sweep direction {direction!r}")
    for i in order:
        rows = sets[i]
        m = len(rows)
        if m == 0:
            continue
        if ws is None:
            ax = np.empty(m, dtype=np.float32)
            spmv_rows(A, rows, xfull, out=ax)
            upd = (r[rows] - ax) / np.asarray(diag_sets[i], dtype=np.float32)
            xfull[rows] = xfull[rows] + upd.astype(np.float32)
            continue
        ax = ws.get(("gs16.ax", i), (m,), np.float32)
        spmv_rows(A, rows, xfull, out=ax, ws=ws)
        rb = ws.get(("gs16.r", i), (m,), r.dtype)
        np.take(r, rows, out=rb, mode="clip")
        acc = ws.get(("gs16.acc", i), (m,), np.float32)
        np.subtract(rb, ax, out=acc)
        np.divide(acc, diag_sets[i], out=acc)
        xb = ws.get(("gs16.x", i), (m,), xfull.dtype)
        np.take(xfull, rows, out=xb, mode="clip")
        np.add(acc, xb, out=acc)
        xfull[rows] = acc


@register("dot", precision="fp16")
def dot_fp16(a, b) -> float:
    """fp16 dot with fp64 accumulation (an fp16 norm² would overflow)."""
    return float(np.einsum("i,i->", a, b, dtype=np.float64))


@register("waxpby", precision="fp16")
def waxpby_fp16(alpha, x, beta, y, out=None, ws=None):
    """``w = alpha x + beta y`` accumulated in fp32 (aliasing-safe)."""
    if ws is None:
        acc = np.float32(alpha) * x.astype(np.float32)
        acc += np.float32(beta) * y.astype(np.float32)
        return _store(acc, out, y.dtype)
    t = ws.get("waxpby16.ax", y.shape, np.float32)
    np.multiply(x, np.float32(alpha), out=t, dtype=np.float32)
    u = ws.get("waxpby16.by", y.shape, np.float32)
    np.multiply(y, np.float32(beta), out=u, dtype=np.float32)
    np.add(t, u, out=t)
    return _store(t, out, y.dtype)


@register("gemv", precision="fp16")
def gemv_fp16(Q, k, coef, out=None):
    """Basis-combination GEMV with fp32 accumulation."""
    y = np.einsum("ij,j->i", Q[:, :k], coef, dtype=np.float32)
    return _store(y, out, Q.dtype)


@register("gemvT", precision="fp16")
def gemvT_fp16(Q, k, w, out=None):
    """CGS2 projection GEMVT with fp32 accumulation.

    Without ``out`` the length-``k`` coefficients stay fp32 — they land
    in the (double) Hessenberg column, so rounding them back to fp16
    would only destroy information.
    """
    h = np.einsum("ij,i->j", Q[:, :k], w, dtype=np.float32)
    if out is None:
        return h
    out[:] = h
    return out


@register("fused_restrict", precision="fp16")
def fused_restrict_fp16(A, r, xfull, f_c, out=None, ws=None):
    """Coarse defect at fp16 levels, accumulated in fp32.

    ``out`` may be the next level's buffer in *any* precision — ladder
    schedules hand an fp32 coarse buffer to an fp16 fine level, and the
    cast happens on the store (after the fp32 subtraction).
    """
    from repro.backends.dispatch import spmv_rows

    m = len(f_c)
    if ws is None:
        ax = np.empty(m, dtype=np.float32)
        spmv_rows(A, f_c, xfull, out=ax)
        res = r[f_c] - ax
    else:
        ax = ws.get("restrict16.ax", (m,), np.float32)
        spmv_rows(A, f_c, xfull, out=ax, ws=ws)
        rb = ws.get("restrict16.r", (m,), r.dtype)
        np.take(r, f_c, out=rb, mode="clip")
        res = ws.get("restrict16.res", (m,), np.float32)
        np.subtract(rb, ax, out=res)
    return _store(res, out, xfull.dtype)


@register("prolong", precision="fp16")
def prolong_fp16(xfull, z_c, f_c, ws=None):
    """Prolongation into an fp16 iterate, correction added in fp32."""
    if ws is None:
        xfull[f_c] = np.add(xfull[f_c], z_c, dtype=np.float32)
        return
    b = ws.get("prolong16.buf", (len(f_c),), xfull.dtype)
    np.take(xfull, f_c, out=b, mode="clip")
    acc = ws.get("prolong16.acc", (len(f_c),), np.float32)
    np.add(b, z_c, out=acc, dtype=np.float32)
    xfull[f_c] = acc
