"""Kernel registry: dispatch on ``(op, format, precision, backend)``.

The paper's central architectural lesson (shared with HPL-MxP) is that
a benchmark survives hardware generations only if the hot operations —
SpMV, SymGS sweeps, CGS2's fused BLAS-2, WAXPBY, dots, grid transfers —
are *dispatched*, not hard-wired into container classes.  This registry
is that seam: every hot call in ``solvers/`` and ``mg/`` resolves a
kernel through it, so a new storage layout (SELL-C-σ), a new precision
(fp16), or a new execution engine (Numba, GPU, MPI) plugs in by
registering functions, without touching any caller.

Resolution order for ``lookup(op, fmt, prec)``:

1. the requested (or active) backend, then the ``"numpy"`` reference
   backend as fallback;
2. within a backend, most-specific key first:
   ``(fmt, prec)`` → ``(fmt, None)`` → ``(None, prec)`` → ``(None, None)``
   (``None`` registrations are wildcards).

Lookups are cached; the cache is invalidated when registrations change
or the active backend is switched.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.fp.precision import Precision

#: The reference backend every installation has.
NUMPY_BACKEND = "numpy"


class KernelNotFoundError(LookupError):
    """No kernel registered for the requested key."""


@dataclass
class BackendInfo:
    """Metadata for one registered compute backend."""

    name: str
    priority: int = 0  # higher wins the auto-selection
    description: str = ""
    available: bool = True


@dataclass
class KernelRegistry:
    """The dispatch table; one process-wide instance lives in
    :data:`registry`."""

    _kernels: dict[tuple, Callable] = field(default_factory=dict)
    _backends: dict[str, BackendInfo] = field(default_factory=dict)
    _cache: dict[tuple, Callable] = field(default_factory=dict)
    _active: str = NUMPY_BACKEND
    _plan: object | None = None
    _wrapper: Callable | None = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_backend(
        self,
        name: str,
        priority: int = 0,
        description: str = "",
    ) -> None:
        """Declare a backend (idempotent)."""
        self._backends[name] = BackendInfo(name, priority, description)
        self._cache.clear()

    def register(
        self,
        op: str,
        fmt: str | None = None,
        precision: "Precision | str | None" = None,
        backend: str = NUMPY_BACKEND,
    ) -> Callable[[Callable], Callable]:
        """Decorator: register a kernel for ``(op, fmt, precision)``.

        ``fmt``/``precision`` of ``None`` are wildcards (the kernel
        serves every format / precision not claimed by a more specific
        registration).
        """
        if backend not in self._backends:
            self.register_backend(backend)
        prec = None if precision is None else Precision.from_any(precision)

        def deco(fn: Callable) -> Callable:
            self._kernels[(op, fmt, prec, backend)] = fn
            self._cache.clear()
            return fn

        return deco

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------
    @property
    def active_backend(self) -> str:
        return self._active

    def set_backend(self, name: str) -> None:
        """Select the backend future lookups prefer."""
        if name not in self._backends:
            raise KernelNotFoundError(
                f"unknown backend {name!r}; registered: {self.backends()}"
            )
        self._active = name
        self._cache.clear()

    def backends(self) -> list[str]:
        """Registered backend names, highest priority first."""
        return sorted(
            self._backends, key=lambda n: -self._backends[n].priority
        )

    def autoselect_backend(self) -> str:
        """Pick the highest-priority backend, honoring ``REPRO_BACKEND``."""
        forced = os.environ.get("REPRO_BACKEND")
        if forced:
            self.set_backend(forced)
            return forced
        if self._backends:
            self._active = self.backends()[0]
            self._cache.clear()
        return self._active

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def formats(self) -> list[str]:
        """Every concrete storage format any kernel is registered for."""
        return sorted(
            {k[1] for k in self._kernels if k[1] is not None}
        )

    def ops(self) -> list[str]:
        """Every registered operation name."""
        return sorted({k[0] for k in self._kernels})

    def available_variants(
        self, op: str
    ) -> list[tuple[str | None, str | None, str]]:
        """Every concrete ``(format, precision, backend)`` registration
        for ``op`` (``None`` entries are wildcards)."""
        out = []
        for key_op, fmt, prec, backend in self._kernels:
            if key_op == op:
                out.append(
                    (fmt, prec.short_name if prec else None, backend)
                )
        return sorted(out, key=lambda v: tuple(x or "" for x in v))

    # ------------------------------------------------------------------
    # Dispatch plans (repro.tune)
    # ------------------------------------------------------------------
    @property
    def plan(self):
        """The installed :class:`repro.tune.DispatchPlan`, if any."""
        return self._plan

    def set_plan(self, plan) -> None:
        """Install (or clear, with ``None``) a tuned dispatch plan.

        While installed, lookups with no explicit ``backend`` consult
        the plan's per-``(op, precision)`` backend choice before falling
        back to the active backend.  The lookup's format context
        (``fmt``, ``fmt_params``) is handed to the plan so it only ever
        steers the exact ``(op, format, params)`` combination whose
        bitwise parity the probe verified; any other combination falls
        back to the active backend.  Installing a plan therefore never
        changes numerics — only which bitwise-identical kernel runs.
        """
        self._plan = plan
        self._cache.clear()

    # ------------------------------------------------------------------
    # Dispatch wrappers (repro.resilience)
    # ------------------------------------------------------------------
    @property
    def wrapper(self) -> Callable | None:
        """The installed dispatch wrapper, if any."""
        return self._wrapper

    def set_wrapper(self, wrapper: Callable | None) -> None:
        """Install (or clear, with ``None``) a dispatch wrapper.

        ``wrapper(op, fn) -> fn2`` sees every kernel as it resolves and
        may return a substitute (the fault injector corrupts selected
        outputs this way; returning ``fn`` unchanged opts an op out).
        Wrapped callables are cached like plain ones, and clearing the
        wrapper drops them — with no wrapper installed, lookup takes
        exactly the pre-existing path, so the disabled case costs
        nothing and dispatch stays bitwise identical.
        """
        self._wrapper = wrapper
        self._cache.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(
        self,
        op: str,
        fmt: str | None = None,
        precision: "Precision | str | None" = None,
        backend: str | None = None,
        fmt_params: tuple | None = None,
    ) -> Callable:
        """Resolve the kernel for an operation (cached).

        ``fmt_params`` (e.g. SELL-C-σ ``(("chunk", C), ("sigma", σ))``)
        only scopes an installed plan's backend preference to the
        parity-verified format parameters; resolution itself keys on
        ``fmt`` alone.
        """
        prec = None if precision is None else Precision.from_any(precision)
        want = backend
        if want is None and self._plan is not None:
            want = self._plan.backend_for(op, prec, fmt, fmt_params)
        want = want or self._active
        cache_key = (op, fmt, prec, want)
        fn = self._cache.get(cache_key)
        if fn is not None:
            return fn

        chain = (want,) if want == NUMPY_BACKEND else (want, NUMPY_BACKEND)
        for b in chain:
            for f in (fmt, None):
                for p in (prec, None):
                    fn = self._kernels.get((op, f, p, b))
                    if fn is not None:
                        if self._wrapper is not None:
                            fn = self._wrapper(op, fn)
                        self._cache[cache_key] = fn
                        return fn
        raise KernelNotFoundError(
            f"no kernel for op={op!r} format={fmt!r} "
            f"precision={prec and prec.short_name!r} "
            f"backend={want!r}; registered ops: {self.ops()}, "
            f"formats: {self.formats()}, backends: {self.backends()}"
        )


#: The process-wide registry (populated by the backend modules at
#: package import).
registry = KernelRegistry()

register = registry.register
lookup = registry.lookup


def registered_formats() -> list[str]:
    """Storage formats with at least one registered kernel."""
    return registry.formats()


def available_backends() -> list[str]:
    """Backend names, highest priority first."""
    return registry.backends()


def set_backend(name: str) -> None:
    """Select the active compute backend."""
    registry.set_backend(name)


def active_backend() -> str:
    """The backend lookups currently prefer."""
    return registry.active_backend
