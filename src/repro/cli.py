"""Command-line interface: ``python -m repro <command>``.

Mirrors how the official benchmark binary is driven, plus analysis
commands for the performance model:

- ``run``        — the full HPG-MxP benchmark (three phases, report)
- ``hpcg``       — the HPCG cross-benchmark
- ``validate``   — validation phase only (standard or fullscale)
- ``project``    — exascale weak-scaling / speedup projections
- ``roofline``   — hot-kernel roofline placement
- ``trace``      — overlap timeline for one level (ASCII + JSON export)
- ``ablation``   — per-optimization model ablation
- ``memory``     — solver memory footprints and mesh equalization (§5)
- ``energy``     — mixed-precision energy saving estimate
- ``fit``        — iteration-scaling power-law fit from real solves
"""

from __future__ import annotations

import argparse
import json
import sys


def _format_choices() -> list[str]:
    """Storage formats registered with the kernel backend layer."""
    from repro.sparse.formats import known_formats

    return ["auto", *known_formats()]


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--local-nx", type=int, default=32, help="local box edge")
    p.add_argument("--nranks", type=int, default=1, help="SPMD ranks (GCDs)")
    p.add_argument("--impl", choices=["optimized", "reference"], default="optimized")
    p.add_argument(
        "--format",
        dest="matrix_format",
        choices=_format_choices(),
        default="auto",
        help="sparse storage layout (auto follows --impl)",
    )
    p.add_argument(
        "--sell-chunk",
        type=int,
        default=32,
        metavar="C",
        help="SELL-C-sigma chunk height (rows per chunk)",
    )
    p.add_argument(
        "--sell-sigma",
        type=int,
        default=128,
        metavar="S",
        help="SELL-C-sigma sort window (rows sorted by length per window)",
    )
    p.add_argument(
        "--autotune",
        choices=["off", "on", "force"],
        default="off",
        help="microbenchmark registered kernel variants on a slice of "
        "the actual operator and adopt the fastest bitwise-identical "
        "dispatch plan ('force' re-probes even on a tuning-cache hit)",
    )
    p.add_argument(
        "--tune-cache",
        type=str,
        default=None,
        metavar="PATH",
        help="persistent tuning-cache file (default "
        "~/.cache/repro/tune_cache.json, or $REPRO_TUNE_CACHE)",
    )
    p.add_argument(
        "--validation-mode", choices=["standard", "fullscale"], default="standard"
    )
    p.add_argument(
        "--precision-ladder",
        type=str,
        default=None,
        metavar="SPEC",
        help="per-MG-level precision ladder for the mxp phase, finest "
        "level first (e.g. fp16:fp32:fp64); the first rung also sets "
        "the inner matrix/basis precision",
    )
    p.add_argument(
        "--no-escalation",
        action="store_true",
        help="pin the ladder policy (disable adaptive rung promotion)",
    )
    p.add_argument(
        "--precision-control",
        choices=["auto", "per-ingredient", "policy", "off"],
        default="auto",
        help="precision control plane granularity: 'policy' promotes "
        "the whole policy on stagnation (historical behaviour), "
        "'per-ingredient' gives each (ingredient, MG level) its own "
        "controller with de-escalation; 'auto' follows "
        "REPRO_PRECISION_CONTROL, defaulting to 'policy'",
    )
    p.add_argument(
        "--precision-budget",
        type=float,
        default=None,
        metavar="EPS",
        help="Carson-style per-cycle roundoff budget (e.g. 1e-4): "
        "derive the initial per-ingredient rungs from the matrix's "
        "norm/condition estimates instead of the flat ladder "
        "(per-ingredient control only)",
    )
    p.add_argument("--max-iters", type=int, default=40, help="iterations per solve")
    p.add_argument("--num-solves", type=int, default=1)
    p.add_argument("--validation-max-iters", type=int, default=500)
    p.add_argument(
        "--no-overlap",
        action="store_true",
        help="disable the interior/boundary halo-compute overlap",
    )
    p.add_argument(
        "--no-overlap-symgs",
        action="store_true",
        help="disable the smoother's color-partitioned halo-compute "
        "overlap (SymGS keeps the blocking exchange; SpMV overlap "
        "is unaffected)",
    )
    p.add_argument(
        "--no-fusion",
        action="store_true",
        help="disable the fused-motif kernels (spmv_dot / waxpby_dot); "
        "the residual check runs as separate SpMV, waxpby and dot "
        "passes",
    )
    p.add_argument(
        "--distributed",
        type=str,
        default=None,
        metavar="PXxPYxPZ",
        help="also run the distributed phase on this SPMD process grid "
        "(weak-scaling-shaped: the same local box per rank) under a "
        "wall-clock budget",
    )
    p.add_argument(
        "--distributed-budget",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="wall-clock budget for the distributed phase",
    )
    p.add_argument(
        "--rhs-panel",
        type=int,
        default=1,
        metavar="N",
        help="RHS panel width for the batched solve phase: with N > 1 "
        "the distributed phase also runs one solve_panel over an "
        "N-column panel (matrix traffic amortized across columns, "
        "setup served by the operator-keyed cache and a leased "
        "workspace arena)",
    )
    p.add_argument(
        "--service",
        type=int,
        default=0,
        metavar="N",
        help="also run the solver-service load phase with N concurrent "
        "synthetic clients: each round's burst coalesces into one "
        "solve_panel batch on the shared setup cache and bounded "
        "arena pool (deterministic coalesce-width / cache-hit-rate / "
        "matrix-reuse metrics, CI-gated)",
    )
    p.add_argument(
        "--service-rounds",
        type=int,
        default=2,
        metavar="R",
        help="rounds of the service phase (round 1 builds the setup "
        "cache, later rounds hit it)",
    )
    p.add_argument(
        "--service-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the service-phase metrics (JSON) here (the CI "
        "artifact next to --bench-out)",
    )
    p.add_argument(
        "--fault-inject",
        type=str,
        default=None,
        metavar="SPEC",
        help="also run the deterministic fault-injection phase: "
        "';'-separated clauses 'site:mode[:count]' plus 'seed=N' "
        "(sites: spmv bitflip|nan, halo drop|delay|corrupt|straggle, "
        "service transient).  Asserts clean-run bitwise parity, 1.0 "
        "ABFT detection on covered sites, and replayed convergence "
        "(CI-gated)",
    )
    p.add_argument(
        "--bench-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the distributed-phase benchmark record (JSON) here "
        "for benchmarks/check_regression.py",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument("--save", type=str, default=None,
                   help="write the official-style results document here")


def cmd_run(args) -> int:
    from repro.core import (
        BenchmarkConfig,
        check_official_compliance,
        format_report,
        result_to_dict,
        run_benchmark,
        save_results_document,
    )

    if args.bench_out and not args.distributed:
        print("--bench-out requires --distributed", file=sys.stderr)
        return 2
    if args.service_out and not args.service:
        print("--service-out requires --service", file=sys.stderr)
        return 2
    config = BenchmarkConfig(
        local_nx=args.local_nx,
        nranks=args.nranks,
        impl=args.impl,
        matrix_format=args.matrix_format,
        sell_chunk=args.sell_chunk,
        sell_sigma=args.sell_sigma,
        autotune=args.autotune,
        tune_cache=args.tune_cache,
        validation_mode=args.validation_mode,
        precision_ladder=args.precision_ladder,
        escalation=not args.no_escalation,
        precision_control=args.precision_control,
        precision_budget=args.precision_budget,
        max_iters_per_solve=args.max_iters,
        num_solves=args.num_solves,
        validation_max_iters=args.validation_max_iters,
        overlap=False if args.no_overlap else "auto",
        overlap_symgs=False if args.no_overlap_symgs else "auto",
        fusion=not args.no_fusion,
        distributed_grid=args.distributed,
        distributed_budget_seconds=args.distributed_budget,
        rhs_panel=args.rhs_panel,
        service_clients=args.service,
        service_rounds=args.service_rounds,
        fault_inject=args.fault_inject,
    )
    result = run_benchmark(config)
    if args.json:
        print(json.dumps(result_to_dict(result), indent=1))
    else:
        print(format_report(result))
        print(str(check_official_compliance(config)))
    if args.save:
        save_results_document(result, args.save)
        print(f"\nwrote results document to {args.save}")
    if args.bench_out:
        record = {
            "config": {
                "local_dims": list(config.local_dims),
                "grid": args.distributed,
                "impl": config.impl,
                "matrix_format": config.matrix_format,
                "precision_ladder": config.precision_ladder,
                "restart": config.restart,
                "max_iters_per_solve": config.max_iters_per_solve,
                "overlap_symgs": config.overlap_symgs,
                "fusion": config.fusion,
                "rhs_panel": config.rhs_panel,
                "autotune": config.autotune,
            },
            **result.distributed.to_dict(),
        }
        # A machine-fingerprint block (STREAM-style triad/copy bandwidth
        # plus dispatch latency) so a recorded run names the hardware it
        # measured and the network fit gets a measured-bandwidth prior.
        from repro.perf.machine import probe_machine

        machine = probe_machine()
        record["machine"] = machine.to_dict()
        if result.service is not None:
            record["config"]["service_clients"] = config.service_clients
            record["config"]["service_rounds"] = config.service_rounds
            record["service"] = result.service.to_dict()
        if result.resilience is not None:
            record["config"]["fault_inject"] = config.fault_inject
            record["resilience"] = result.resilience.to_dict()
        # Fold the measured halo counters into the alpha-beta network
        # fit: the recorded per-byte cost (and, with multiple samples,
        # per-message latency) this machine's transport actually
        # showed, next to the model's prediction.
        from repro.perf.calibrate import fit_alpha_beta, halo_samples_from_records

        samples = halo_samples_from_records([record])
        if samples:
            fit = fit_alpha_beta(samples, bandwidth_prior=machine.copy_bandwidth)
            record["network_fit"] = {
                "alpha_seconds_per_message": fit.alpha,
                "beta_seconds_per_byte": fit.beta,
                "effective_bandwidth": fit.bandwidth,
                "nsamples": fit.nsamples,
            }
            print(
                f"measured halo transport: "
                f"{fit.bandwidth / 1e6:.1f} MB/s effective "
                f"({record['halo_model_ratio']:.2f}x of modeled bytes)"
            )
        with open(args.bench_out, "w") as f:
            json.dump(record, f, indent=1)
        print(f"wrote benchmark record to {args.bench_out}")
    if args.service_out and result.service is not None:
        with open(args.service_out, "w") as f:
            json.dump(result.service.to_dict(), f, indent=1)
        print(f"wrote service-phase metrics to {args.service_out}")
    return 0


def cmd_tune(args) -> int:
    from repro.backends import registry
    from repro.core import BenchmarkConfig
    from repro.tune import PlanCache, apply_plan_to_config, tune_for_config

    config = BenchmarkConfig(
        local_nx=args.local_nx,
        impl=args.impl,
        matrix_format=args.matrix_format,
        sell_chunk=args.sell_chunk,
        sell_sigma=args.sell_sigma,
        precision_ladder=args.precision_ladder,
        fusion=not args.no_fusion,
        autotune="force" if args.force else "on",
        tune_cache=args.cache,
    )
    cache = PlanCache(config.tune_cache)
    plan, cache_hit = tune_for_config(config, cache=cache, force=args.force)
    tuned = apply_plan_to_config(config, plan)

    if args.json:
        out = plan.to_dict(probes=args.report)
        out["cache_hit"] = cache_hit
        out["cache"] = cache.stats()
        print(json.dumps(out, indent=1))
        return 0

    print(f"operator {plan.operator_fingerprint}  "
          f"machine {plan.machine_fingerprint}")
    src = "tuning cache" if cache_hit else "fresh probe"
    print(f"plan source: {src}  ({cache.path})")
    print(f"probe speedup over baseline dispatch: {plan.speedup():.3f}x")
    print(
        "solver-wide consensus: format="
        f"{tuned.matrix_format} fusion={tuned.fusion}"
        + (
            f" chunk={tuned.sell_chunk} sigma={tuned.sell_sigma}"
            if tuned.matrix_format == "sellcs"
            else ""
        )
    )
    print("\nchosen plan (per op x precision rung):")
    for (op, rung), choice in sorted(plan.entries.items()):
        print(
            f"  {op + '@' + rung:<22} -> {choice.fmt}"
            + (
                "[" + ",".join(f"{k}={v}" for k, v in choice.fmt_params) + "]"
                if choice.fmt_params
                else ""
            )
            + f"/{choice.backend}/"
            + ("fused" if choice.fused else "unfused")
            + f"  {choice.speedup:.3f}x"
        )
    if args.report:
        print("\nprobe report (all measured variants):")
        print(plan.table())
        print("\nregistered variants per op:")
        for op in sorted({r.op for r in plan.probes}):
            variants = registry.available_variants(op)
            rendered = ", ".join(
                "/".join(str(part) for part in v if part is not None)
                for v in variants
            )
            print(f"  {op:<18} {rendered}")
        stats = cache.stats()
        print(
            "\ntuning cache: "
            + "  ".join(f"{k}={v}" for k, v in sorted(stats.items()))
        )
    return 0


def cmd_compliance(args) -> int:
    from repro.core import BenchmarkConfig, check_official_compliance

    config = BenchmarkConfig(
        local_nx=args.local_nx,
        nranks=args.nranks,
        max_iters_per_solve=args.max_iters,
    )
    report = check_official_compliance(config)
    print(str(report))
    return 0 if report.compliant else 1


def cmd_hpcg(args) -> int:
    from repro.core import HPCGConfig, run_hpcg

    res = run_hpcg(
        HPCGConfig(local_nx=args.local_nx, nranks=args.nranks, maxiter=args.max_iters)
    )
    print(f"HPCG: {res.iterations} iterations, relres {res.final_relres:.3e}")
    print(f"GFLOP/s: {res.gflops:.3f}  (wall {res.metrics.total_seconds:.3f} s)")
    return 0


def cmd_validate(args) -> int:
    from repro.core import BenchmarkConfig, run_validation

    config = BenchmarkConfig(
        local_nx=args.local_nx,
        nranks=args.nranks,
        validation_mode=args.validation_mode,
        validation_max_iters=args.validation_max_iters,
    )
    val = run_validation(config)
    print(f"mode: {val.mode} on {val.ranks} rank(s)")
    print(f"n_d = {val.n_d}, n_ir = {val.n_ir}, ratio = {val.ratio:.4f}")
    print(f"penalty applied to mxp GFLOP/s: {val.penalty:.4f}")
    print(f"double relres {val.double_relres:.3e}, mxp relres {val.ir_relres:.3e}")
    return 0


def cmd_project(args) -> int:
    from repro.perf import MACHINES
    from repro.perf.scaling import ScalingModel, paper_node_counts

    machine = MACHINES[args.machine]
    model = ScalingModel(machine=machine, impl=args.impl)
    nodes = args.nodes or paper_node_counts()
    print(f"machine: {machine.name}   impl: {args.impl}")
    print(f"{'nodes':>6} {'GF/s/GCD':>10} {'total PF':>9} {'eff':>6}")
    for row in model.weak_scaling_series(nodes):
        print(
            f"{row['nodes']:>6} {row['gflops_per_gcd']:>10.1f} "
            f"{row['total_pflops']:>9.3f} {row['efficiency']:>6.3f}"
        )
    s = model.motif_speedups(nodes[-1] * machine.gcds_per_node)
    print("\nspeedups at the largest scale:")
    for k, v in sorted(s.items()):
        print(f"  {k:<9} {v:.3f}x")
    h = model.half_precision_projection(machine.gcds_per_node)
    print(f"\nfp16 future-work projection (1 node): total {h['total']:.2f}x")
    return 0


def cmd_roofline(args) -> int:
    from repro.perf import MACHINES, roofline_points

    machine = MACHINES[args.machine]
    print(f"machine: {machine.name}, effective BW "
          f"{machine.effective_bw / 1e12:.2f} TB/s")
    for p in roofline_points(machine=machine):
        print(f"  {p}")
    return 0


def cmd_trace(args) -> int:
    from repro.perf import gs_operation_timeline
    from repro.trace import Timeline, to_ascii, to_chrome_json

    tl = gs_operation_timeline(local_dims=(args.size,) * 3)
    verdict = (
        "fully overlapped"
        if tl.fully_overlapped
        else f"exposed {tl.exposed_comm * 1e6:.1f} us"
    )
    print(f"GS at {args.size}^3 local: {verdict}, makespan "
          f"{tl.makespan * 1e6:.1f} us")
    print(to_ascii(Timeline(tl.events)))
    if args.out:
        with open(args.out, "w") as f:
            f.write(to_chrome_json(Timeline(tl.events)))
        print(f"\nwrote Chrome trace to {args.out}")
    return 0


def cmd_ablation(args) -> int:
    from repro.perf.scaling import ABLATION_CONFIGS as ablations
    from repro.perf.scaling import ScalingModel

    nranks = args.nodes * 8
    print(f"ablation at {args.nodes} node(s), 320^3/GCD, mxp:")
    base = None
    for name, kwargs in ablations:
        g = ScalingModel(**kwargs).gflops_per_gcd("mxp", nranks)
        base = base or g
        print(f"  {name:<22} {g:8.1f} GF/GCD  ({g / base:5.1%} of optimized)")
    return 0


def cmd_memory(args) -> int:
    from repro.core.memory import (
        equalized_double_mesh,
        memory_overhead_ratio,
        solver_footprint,
    )
    from repro.fp import DOUBLE_POLICY, MIXED_DS_POLICY

    dims = (args.local_nx,) * 3
    for label, policy in (("double", DOUBLE_POLICY), ("mxp", MIXED_DS_POLICY)):
        fp = solver_footprint(dims, policy)
        print(f"{label}: total {fp.total / 1e6:.1f} MB  "
              + "  ".join(f"{k}={v / 1e6:.1f}MB" for k, v in fp.breakdown().items()))
    ratio = memory_overhead_ratio(dims, MIXED_DS_POLICY, DOUBLE_POLICY)
    print(f"mxp/double memory ratio: {ratio:.3f} (paper: 'more than' 1)")
    eq = equalized_double_mesh(dims, MIXED_DS_POLICY, DOUBLE_POLICY)
    print(f"double-precision mesh affordable in the mxp budget: "
          f"{eq[0]}x{eq[1]}x{eq[2]} (vs {dims[0]}^3)")
    mf = memory_overhead_ratio(
        dims, MIXED_DS_POLICY, DOUBLE_POLICY, matrix_free_inner=True
    )
    print(f"with matrix-free inner operator (§5): ratio {mf:.3f}")
    return 0


def cmd_energy(args) -> int:
    from repro.perf.energy import EnergyModel

    model = EnergyModel()
    nranks = args.nodes * 8
    for mode in ("double", "mxp"):
        prof = model.cycle_energy(mode, nranks)
        print(f"{mode:>6}: {prof.total_j:8.2f} J/cycle/GCD  "
              + "  ".join(f"{k}={v:.2f}J" for k, v in prof.breakdown().items()))
        print(f"        {model.energy_per_gflop(mode, nranks):.3f} J/GFLOP")
    print(f"mixed-precision energy saving: "
          f"{model.mixed_precision_saving(nranks):.2f}x")
    return 0


def cmd_fit(args) -> int:
    from repro.core.convergence import measure_iteration_scaling

    fit = measure_iteration_scaling(box_sizes=args.sizes, mixed=args.mixed)
    print(f"measured: {list(zip(fit.sizes, fit.iterations))}")
    print(fit.describe())
    pred = fit.predict_paper_validation()
    print(f"extrapolated to the paper's validation size (8 x 320^3): "
          f"{pred:.0f} iterations (paper measured 2305)")
    return 0


def cmd_figures(args) -> int:
    import os

    from repro.analysis import all_figures

    os.makedirs(args.outdir, exist_ok=True)
    for name, series in all_figures().items():
        path = os.path.join(args.outdir, f"{name}.csv")
        series.save(path)
        print(f"wrote {path} ({len(series.rows)} rows)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPG-MxP benchmark reproduction (SC'25, Kashi et al.)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run the full benchmark")
    _add_run_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("hpcg", help="run the HPCG cross-benchmark")
    p.add_argument("--local-nx", type=int, default=32)
    p.add_argument("--nranks", type=int, default=1)
    p.add_argument("--max-iters", type=int, default=30)
    p.set_defaults(fn=cmd_hpcg)

    p = sub.add_parser("validate", help="run the validation phase only")
    p.add_argument("--local-nx", type=int, default=32)
    p.add_argument("--nranks", type=int, default=1)
    p.add_argument(
        "--validation-mode", choices=["standard", "fullscale"], default="standard"
    )
    p.add_argument("--validation-max-iters", type=int, default=2000)
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("project", help="exascale performance projections")
    p.add_argument("--machine", choices=["frontier", "k80"], default="frontier")
    p.add_argument("--impl", choices=["optimized", "reference"], default="optimized")
    p.add_argument("--nodes", type=int, nargs="*", default=None)
    p.set_defaults(fn=cmd_project)

    p = sub.add_parser("roofline", help="hot-kernel roofline (Fig. 8)")
    p.add_argument("--machine", choices=["frontier", "k80"], default="frontier")
    p.set_defaults(fn=cmd_roofline)

    p = sub.add_parser("trace", help="overlap timeline (Fig. 9)")
    p.add_argument("--size", type=int, default=40, help="local box edge")
    p.add_argument("--out", type=str, default=None, help="Chrome-trace JSON path")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("ablation", help="per-optimization model ablation")
    p.add_argument("--nodes", type=int, default=1)
    p.set_defaults(fn=cmd_ablation)

    p = sub.add_parser("memory", help="solver memory footprints (§5)")
    p.add_argument("--local-nx", type=int, default=32)
    p.set_defaults(fn=cmd_memory)

    p = sub.add_parser("energy", help="mixed-precision energy estimate")
    p.add_argument("--nodes", type=int, default=1)
    p.set_defaults(fn=cmd_energy)

    p = sub.add_parser("fit", help="iteration-scaling fit from real solves")
    p.add_argument("--sizes", type=int, nargs="*", default=None)
    p.add_argument("--mixed", action="store_true")
    p.set_defaults(fn=cmd_fit)

    p = sub.add_parser(
        "tune", help="probe kernel variants and print the dispatch plan"
    )
    p.add_argument("--local-nx", type=int, default=32, help="local box edge")
    p.add_argument("--impl", choices=["optimized", "reference"], default="optimized")
    p.add_argument(
        "--format",
        dest="matrix_format",
        choices=_format_choices(),
        default="auto",
        help="baseline sparse storage layout (auto follows --impl)",
    )
    p.add_argument("--sell-chunk", type=int, default=32, metavar="C")
    p.add_argument("--sell-sigma", type=int, default=128, metavar="S")
    p.add_argument("--precision-ladder", type=str, default=None, metavar="SPEC")
    p.add_argument("--no-fusion", action="store_true")
    p.add_argument(
        "--force",
        action="store_true",
        help="re-probe even when the tuning cache already has a plan",
    )
    p.add_argument(
        "--cache",
        type=str,
        default=None,
        metavar="PATH",
        help="tuning-cache file (default ~/.cache/repro/tune_cache.json)",
    )
    p.add_argument(
        "--report",
        action="store_true",
        help="also dump every measured variant (timings, parity, "
        "selection), the registry's registered variants per op, and "
        "tuning-cache hit counters",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser(
        "compliance", help="check a configuration against the official rules"
    )
    p.add_argument("--local-nx", type=int, default=32)
    p.add_argument("--nranks", type=int, default=1)
    p.add_argument("--max-iters", type=int, default=40)
    p.set_defaults(fn=cmd_compliance)

    p = sub.add_parser(
        "figures", help="export every model-generated figure as CSV"
    )
    p.add_argument("--outdir", type=str, default=".")
    p.set_defaults(fn=cmd_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
