"""Microbenchmark harness: measure kernel variants on the real operator.

The prober takes a **representative slice** of the actual operator (a
principal submatrix, so the nonzero structure and row widths are the
workload's own, not a synthetic stencil's), converts it into every
candidate storage format — including a SELL-C-σ (chunk, sigma)
parameter grid, the tuner's real search axis — and times every
registered kernel variant of each hot motif at each requested
precision rung.

Every candidate's output is compared **bitwise** against the untuned
default (the baseline format under the active backend with fusion on).
Variants that differ are still recorded (the report shows them with
``parity=no``) but are never selectable — a plan choice must not
change numerics.  The baseline variant always competes, so the
selected time is never worse than the baseline time.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable

import numpy as np

from repro.backends.registry import KernelNotFoundError, registry
from repro.fp.precision import Precision
from repro.sparse.coloring import color_sets, greedy_coloring
from repro.sparse.csr import CSRMatrix
from repro.sparse.formats import to_format
from repro.sparse.scaled import to_precision
from repro.tune.plan import FUSED_OPS, PlanChoice, ProbeRecord

#: Default SELL-C-σ (chunk, sigma) search grid.
SELL_GRID: tuple[tuple[int, int], ...] = ((16, 64), (32, 128), (64, 256))

#: Panel width used for the ``_multi`` motif probes.
PROBE_PANEL = 4

#: Ops the tuner probes: the solver's hot motifs.
MATRIX_PROBE_OPS = (
    "spmv",
    "symgs_sweep",
    "spmv_dot",
    "spmv_multi",
    "symgs_sweep_multi",
    "spmv_dot_multi",
)
VECTOR_PROBE_OPS = ("waxpby_dot", "waxpby_dot_multi")


def representative_slice(A, max_rows: int = 4096) -> CSRMatrix:
    """A principal ``m x m`` CSR submatrix of the operator.

    Keeps the operator's own row-width distribution (what SELL-C-σ
    packing efficiency and CSR reduceat cost actually depend on);
    entries whose column falls outside the slice are dropped, which
    preserves symmetry of the kept block.
    """
    csr = to_format(A, "csr")
    m = min(csr.nrows, max_rows)
    keep_rows = np.arange(m)
    indptr = np.zeros(m + 1, dtype=np.int64)
    cols, vals = [], []
    for i in keep_rows:
        lo, hi = csr.indptr[i], csr.indptr[i + 1]
        c = csr.indices[lo:hi]
        mask = c < m
        cols.append(c[mask])
        vals.append(csr.data[lo:hi][mask])
        indptr[i + 1] = indptr[i] + int(mask.sum())
    return CSRMatrix(
        indptr=indptr,
        indices=np.concatenate(cols) if cols else np.zeros(0, np.int32),
        data=np.concatenate(vals) if vals else np.zeros(0, csr.dtype),
        ncols=m,
    )


def _time(call: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - t0)
    return best


def _bitwise_equal(a, b) -> bool:
    if isinstance(a, tuple) or isinstance(b, tuple):
        if not (isinstance(a, tuple) and isinstance(b, tuple)):
            return False
        return len(a) == len(b) and all(
            _bitwise_equal(x, y) for x, y in zip(a, b)
        )
    return np.array_equal(np.asarray(a), np.asarray(b))


def _params_tuple(fmt: str, params: dict | None) -> tuple:
    if fmt != "sellcs" or not params:
        return ()
    return tuple(sorted((str(k), int(v)) for k, v in params.items()))


class OperatorProber:
    """Probe every hot motif's kernel variants on one operator slice."""

    def __init__(
        self,
        A,
        *,
        baseline_format: str = "ell",
        baseline_params: dict | None = None,
        fusion: bool = True,
        rungs: tuple = ("fp64", "fp32"),
        formats: tuple = ("csr", "ell", "sellcs"),
        sell_grid: tuple = SELL_GRID,
        max_rows: int = 4096,
        panel: int = PROBE_PANEL,
        repeats: int = 3,
        seed: int = 0,
    ) -> None:
        self.slice = representative_slice(A, max_rows)
        self.baseline_format = baseline_format
        self.baseline_params = dict(baseline_params or {})
        self.fusion = bool(fusion)
        self.rungs = tuple(Precision.from_any(r) for r in rungs)
        self.panel = panel
        self.repeats = repeats
        self.rng = np.random.default_rng(seed)
        self.baseline_backend = registry.active_backend

        # Format variants: every plain format plus the SELL-C-σ grid
        # (the baseline's own parameters always included).
        variants: list[tuple[str, dict]] = []
        for fmt in formats:
            if fmt == "sellcs":
                grid = {tuple(p) for p in sell_grid}
                if baseline_format == "sellcs" and self.baseline_params:
                    grid.add(
                        (
                            int(self.baseline_params.get("chunk", 32)),
                            int(self.baseline_params.get("sigma", 128)),
                        )
                    )
                for chunk, sigma in sorted(grid):
                    variants.append((fmt, {"chunk": chunk, "sigma": sigma}))
            else:
                variants.append((fmt, {}))
        self.format_variants = variants

        self._vec_cache: dict[Precision, tuple] = {}

        # One coloring shared by every candidate: the color ordering
        # *is* part of the SymGS numerics, so it must not vary with the
        # storage format being probed.
        ell = to_format(self.slice, "ell")
        self.sets = color_sets(greedy_coloring(ell))

        # Materialize each (format, params, rung) matrix once.
        self._mats: dict[tuple, object] = {}
        for fmt, params in variants:
            base = to_format(self.slice, fmt, **params)
            for prec in self.rungs:
                self._mats[(fmt, _params_tuple(fmt, params), prec)] = (
                    to_precision(base, prec)
                )

    # ------------------------------------------------------------------
    def _vectors(self, prec: Precision):
        """Probe inputs for one rung — memoized, because every variant
        of an (op, rung) must see the *same* inputs for the bitwise
        parity comparison to mean anything."""
        cached = self._vec_cache.get(prec)
        if cached is not None:
            return cached
        n = self.slice.nrows
        dtype = prec.dtype
        x = self.rng.standard_normal(n).astype(dtype)
        b = self.rng.standard_normal(n).astype(dtype)
        X = np.asfortranarray(
            self.rng.standard_normal((n, self.panel)).astype(dtype)
        )
        B = np.asfortranarray(
            self.rng.standard_normal((n, self.panel)).astype(dtype)
        )
        self._vec_cache[prec] = (x, b, X, B)
        return x, b, X, B

    def _runner(self, op: str, M, prec: Precision, fused: bool):
        """A zero-arg callable executing one probe iteration, returning
        the output to parity-check.  ``fused=False`` composes the
        motif from its unfused kernels exactly as the solver's
        ``fusion=False`` path does."""
        x, b, X, B = self._vectors(prec)
        sets = self.sets
        fmt = M.format_name

        def k(name):
            return registry.lookup(name, fmt, prec, backend=self._backend)

        if op == "spmv":
            fn = k("spmv")
            return lambda: fn(M, x)
        if op == "spmv_multi":
            fn = k("spmv_multi")
            return lambda: fn(M, X)
        if op == "symgs_sweep":
            fn = k("symgs_sweep")
            diag = M.diagonal()
            diag_sets = [diag[rows] for rows in sets]

            def run_symgs():
                xw = x.copy()
                fn(M, b, xw, sets, diag_sets, direction="forward")
                return xw

            return run_symgs
        if op == "symgs_sweep_multi":
            fn = k("symgs_sweep_multi")
            diag = M.diagonal()
            diag_sets = [diag[rows] for rows in sets]

            def run_symgs_multi():
                Xw = X.copy(order="F")
                fn(M, B, Xw, sets, diag_sets, direction="forward")
                return Xw

            return run_symgs_multi
        if op == "spmv_dot":
            if fused:
                fn = k("spmv_dot")
                return lambda: fn(M, x, b)
            spmv = k("spmv")
            dot = k("dot")

            def run_unfused():
                r = np.subtract(b, spmv(M, x))
                return r, dot(r, r)

            return run_unfused
        if op == "spmv_dot_multi":
            if fused:
                fn = k("spmv_dot_multi")
                return lambda: fn(M, X, B)
            spmv_multi = k("spmv_multi")
            dot = k("dot")

            def run_unfused_multi():
                R = np.subtract(B, spmv_multi(M, X), order="F")
                return R, np.array(
                    [dot(R[:, j], R[:, j]) for j in range(R.shape[1])]
                )

            return run_unfused_multi
        if op == "waxpby_dot":
            if fused:
                fn = registry.lookup(
                    op, None, prec, backend=self._backend
                )
                return lambda: fn(1.0, x, -0.5, b)
            waxpby = registry.lookup(
                "waxpby", None, prec, backend=self._backend
            )
            dot = registry.lookup("dot", None, prec, backend=self._backend)

            def run_wd_unfused():
                w = waxpby(1.0, x, -0.5, b)
                return w, dot(w, w)

            return run_wd_unfused
        if op == "waxpby_dot_multi":
            if fused:
                fn = registry.lookup(
                    op, None, prec, backend=self._backend
                )
                return lambda: fn(1.0, X, -0.5, B)
            waxpby_multi = registry.lookup(
                "waxpby_multi", None, prec, backend=self._backend
            )
            dot = registry.lookup("dot", None, prec, backend=self._backend)

            def run_wdm_unfused():
                W = waxpby_multi(1.0, X, -0.5, B)
                return W, np.array(
                    [dot(W[:, j], W[:, j]) for j in range(W.shape[1])]
                )

            return run_wdm_unfused
        raise ValueError(f"unknown probe op {op!r}")

    # ------------------------------------------------------------------
    def _candidates(self, op: str):
        """Yield ``(fmt, params_tuple, backend, fused)`` candidates."""
        is_matrix = op in MATRIX_PROBE_OPS
        fused_axis = (
            (True, False) if op in FUSED_OPS else (self.fusion,)
        )
        backends = registry.backends()
        if is_matrix:
            for fmt, params in self.format_variants:
                pt = _params_tuple(fmt, params)
                for backend in backends:
                    for fused in fused_axis:
                        yield fmt, pt, backend, fused
        else:
            for backend in backends:
                for fused in fused_axis:
                    yield self.baseline_format, _params_tuple(
                        self.baseline_format, self.baseline_params
                    ), backend, fused

    def _baseline_key(self, op: str):
        return (
            self.baseline_format,
            _params_tuple(self.baseline_format, self.baseline_params),
            self.baseline_backend,
            self.fusion,
        )

    def _primary_kernel(self, op: str, fmt: str, prec, fused: bool):
        """The registration a candidate's numerics hinge on — used to
        dedupe backends that merely fall back to the same kernel."""
        if op in FUSED_OPS and not fused:
            name = {
                "spmv_dot": "spmv",
                "spmv_dot_multi": "spmv_multi",
                "waxpby_dot": "waxpby",
                "waxpby_dot_multi": "waxpby_multi",
            }[op]
        else:
            name = op
        lookup_fmt = fmt if op in MATRIX_PROBE_OPS else None
        return registry.lookup(name, lookup_fmt, prec, backend=self._backend)

    # ------------------------------------------------------------------
    def probe_op(self, op: str, prec: Precision):
        """Measure every variant of ``op`` at rung ``prec``.

        Returns ``(choice, records)`` — the parity-constrained winner
        and the full probe evidence — or ``(None, [])`` when the op has
        no resolvable kernels at this rung.
        """
        records: list[ProbeRecord] = []
        measured: dict[tuple, tuple[float, object]] = {}
        baseline_key = self._baseline_key(op)
        seen_fns: dict[tuple, tuple] = {}

        for fmt, pt, backend, fused in self._candidates(op):
            key = (fmt, pt, backend, fused)
            M = None
            if op in MATRIX_PROBE_OPS:
                M = self._mats.get((fmt, pt, prec))
                if M is None:
                    continue
            self._backend = backend
            try:
                primary = self._primary_kernel(op, fmt, prec, fused)
                # Dedupe: a backend with no registration of its own
                # resolves to the same kernel as the fallback —
                # measuring it twice only adds noise (the baseline key
                # is never deduped away).
                fn_id = (fmt, pt, fused, id(primary))
                if key != baseline_key and fn_id in seen_fns:
                    continue
                seen_fns[fn_id] = key
                run = self._runner(
                    op, M if M is not None else self.slice, prec, fused
                )
            except KernelNotFoundError:
                continue
            out = run()
            seconds = _time(run, self.repeats)
            measured[key] = (seconds, out)

        if baseline_key not in measured:
            return None, []

        base_seconds, base_out = measured[baseline_key]
        best_key, best_seconds = baseline_key, base_seconds
        for key, (seconds, out) in measured.items():
            parity = key == baseline_key or _bitwise_equal(out, base_out)
            records.append(
                ProbeRecord(
                    op=op,
                    rung=prec.short_name,
                    fmt=key[0],
                    fmt_params=key[1],
                    backend=key[2],
                    fused=key[3],
                    seconds=seconds,
                    parity=parity,
                )
            )
            if parity and seconds < best_seconds:
                best_key, best_seconds = key, seconds

        choice = PlanChoice(
            fmt=best_key[0],
            fmt_params=best_key[1],
            backend=best_key[2],
            fused=best_key[3],
            seconds=best_seconds,
            baseline_seconds=base_seconds,
            parity=True,
        )
        records = [
            replace(
                r,
                selected=(r.fmt, r.fmt_params, r.backend, r.fused)
                == best_key,
            )
            for r in records
        ]
        return choice, records

    def probe_all(self):
        """Probe every hot motif at every rung.

        Returns ``(entries, records)`` in :class:`DispatchPlan` shape.
        """
        entries: dict[tuple, PlanChoice] = {}
        records: list[ProbeRecord] = []
        for op in MATRIX_PROBE_OPS + VECTOR_PROBE_OPS:
            for prec in self.rungs:
                choice, recs = self.probe_op(op, prec)
                if choice is not None:
                    entries[(op, prec.short_name)] = choice
                    records.extend(recs)
        return entries, records
