"""On-disk persistence for dispatch plans.

One JSON file maps ``operator-fingerprint:machine-fingerprint`` keys to
serialized :class:`~repro.tune.plan.DispatchPlan` dicts, so a warm
process (same operator content, same machine) pays zero tuning cost.

Failure policy: the cache must never take the solver down.  A missing
file is a miss; a corrupted file is a logged warning plus a miss (the
caller falls back to untuned dispatch or re-tunes); an entry recorded
under a different machine fingerprint is stale and ignored.  Writes
are atomic (temp file + ``os.replace``) so a crash mid-store can't
corrupt an existing cache, and the store's read-merge-write runs under
an advisory ``flock`` so concurrent runs sharing one cache file don't
silently drop each other's entries.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile

try:
    import fcntl
except ImportError:  # non-POSIX: degrade to unlocked stores
    fcntl = None

from repro.tune.plan import PLAN_VERSION, DispatchPlan

logger = logging.getLogger(__name__)

#: Cache-file schema version.
CACHE_VERSION = 1

#: Environment override for the default cache location.
CACHE_ENV = "REPRO_TUNE_CACHE"

#: Default on-disk location (under the user cache dir).
DEFAULT_CACHE_PATH = os.path.join(
    os.path.expanduser("~"), ".cache", "repro", "tune_cache.json"
)


def default_cache_path() -> str:
    """The plan-cache path: ``REPRO_TUNE_CACHE`` or the user cache dir."""
    return os.environ.get(CACHE_ENV) or DEFAULT_CACHE_PATH


class PlanCache:
    """A JSON-file plan cache keyed by (operator x machine) fingerprint."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path or default_cache_path()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(operator_fingerprint: str, machine_fingerprint: str) -> str:
        return f"{operator_fingerprint}:{machine_fingerprint}"

    def _read_file(self) -> dict:
        """The raw plans mapping; {} (with a warning) on any damage."""
        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
            if (
                not isinstance(data, dict)
                or data.get("version") != CACHE_VERSION
                or not isinstance(data.get("plans"), dict)
            ):
                raise ValueError(f"unrecognized cache layout in {self.path}")
            return data["plans"]
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            self.corrupt += 1
            logger.warning(
                "tuning-plan cache %s is unreadable (%s); "
                "falling back to untuned dispatch",
                self.path,
                exc,
            )
            return {}

    # ------------------------------------------------------------------
    def load(
        self, operator_fingerprint: str, machine_fingerprint: str
    ) -> DispatchPlan | None:
        """The cached plan for this operator on this machine, or None.

        Misses on absent/corrupt files and on entries whose recorded
        machine fingerprint does not match the requested one (a cache
        copied from, or shared with, another machine is stale there).
        """
        plans = self._read_file()
        raw = plans.get(self._key(operator_fingerprint, machine_fingerprint))
        if raw is None:
            self.misses += 1
            return None
        try:
            plan = DispatchPlan.from_dict(raw)
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            # AttributeError covers entry *values* fuzzed into
            # non-dicts (``from_dict`` calls ``.get`` on them); the
            # never-raise policy holds for damage below the layout
            # check too.
            self.corrupt += 1
            self.misses += 1
            logger.warning(
                "tuning-plan cache entry for %s is malformed (%s); ignoring",
                operator_fingerprint,
                exc,
            )
            return None
        if (
            plan.machine_fingerprint != machine_fingerprint
            or plan.operator_fingerprint != operator_fingerprint
        ):
            self.stale += 1
            self.misses += 1
            logger.warning(
                "tuning-plan cache entry fingerprint mismatch "
                "(stored machine %s, current %s); re-tuning",
                plan.machine_fingerprint,
                machine_fingerprint,
            )
            return None
        self.hits += 1
        return plan

    @contextlib.contextmanager
    def _write_lock(self):
        """Advisory inter-process lock for read-merge-write stores.

        Serializes concurrent tuned runs sharing one cache file so
        neither silently discards the other's freshly-added entry.
        Degrades to unlocked (best-effort) where flock is unavailable
        or the sidecar lock file cannot be opened — the atomic replace
        still prevents corruption in that case.
        """
        fh = None
        if fcntl is not None:
            try:
                fh = open(self.path + ".lock", "a")
                fcntl.flock(fh, fcntl.LOCK_EX)
            except OSError:
                if fh is not None:
                    fh.close()
                fh = None
        try:
            yield
        finally:
            if fh is not None:
                try:
                    fcntl.flock(fh, fcntl.LOCK_UN)
                finally:
                    fh.close()

    def store(self, plan: DispatchPlan) -> None:
        """Persist a plan (atomic write; existing entries preserved).

        The read-merge-write runs under an advisory file lock so two
        processes storing into one cache file can't lose each other's
        entries.  Entries recorded under the *same* key whose payload
        disagrees with its key are dropped on the way through — the
        cache self-heals instead of accumulating unloadable entries.
        """
        dirname = os.path.dirname(self.path) or "."
        try:
            os.makedirs(dirname, exist_ok=True)
        except OSError as exc:
            logger.warning(
                "could not persist tuning plan to %s (%s)", self.path, exc
            )
            return
        with self._write_lock():
            plans = self._read_file()
            cleaned = {}
            for key, raw in plans.items():
                try:
                    mach = raw["machine_fingerprint"]
                    op_fp = raw["operator_fingerprint"]
                except (TypeError, KeyError):
                    self.corrupt += 1
                    continue
                if key != self._key(op_fp, mach):
                    self.stale += 1
                    continue
                cleaned[key] = raw
            cleaned[
                self._key(plan.operator_fingerprint, plan.machine_fingerprint)
            ] = plan.to_dict()
            payload = {"version": CACHE_VERSION, "plans": cleaned}
            fd, tmp = tempfile.mkstemp(
                dir=dirname, prefix=".tune_cache.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=1, sort_keys=True)
                os.replace(tmp, self.path)
            except OSError as exc:
                logger.warning(
                    "could not persist tuning plan to %s (%s)", self.path, exc
                )
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "path": self.path,
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "corrupt": self.corrupt,
        }

    def entries(self) -> dict:
        """Raw key -> plan-dict mapping (report/introspection)."""
        return self._read_file()


__all__ = [
    "CACHE_ENV",
    "CACHE_VERSION",
    "PLAN_VERSION",
    "PlanCache",
    "default_cache_path",
]
