"""The autotuner front end: probe, select, persist, install.

:func:`autotune_operator` turns one operator into a
:class:`~repro.tune.plan.DispatchPlan` — consulting the persistent
:class:`~repro.tune.cache.PlanCache` first (keyed operator-content x
machine fingerprint), probing only on a miss or under ``force`` — and
re-asserts the bitwise-parity invariant before returning.

:func:`tune_for_config` is the benchmark's entry: it builds the
representative rank-local operator a :class:`BenchmarkConfig` implies
and derives the precision rungs from the config's ladder, and
:func:`apply_plan_to_config` folds the plan's solver-wide consensus
choices (format, SELL-C-σ parameters, fusion) back into the config the
workers run with.
"""

from __future__ import annotations

import logging

from repro.perf.machine import machine_fingerprint, probe_machine
from repro.solvers.setup_cache import operator_fingerprint
from repro.tune.cache import PlanCache
from repro.tune.plan import DispatchPlan
from repro.tune.probe import SELL_GRID, OperatorProber

logger = logging.getLogger(__name__)


def autotune_operator(
    A,
    *,
    baseline_format: str = "ell",
    baseline_params: dict | None = None,
    fusion: bool = True,
    rungs: tuple = ("fp64", "fp32"),
    formats: tuple = ("csr", "ell", "sellcs"),
    sell_grid: tuple = SELL_GRID,
    max_rows: int = 4096,
    repeats: int = 3,
    cache: PlanCache | None = None,
    force: bool = False,
) -> tuple[DispatchPlan, bool]:
    """Tune dispatch for one operator; returns ``(plan, cache_hit)``.

    With a ``cache``, a plan recorded for this exact operator content
    on this machine is returned without probing (unless ``force``);
    fresh plans are stored back.  Either way the returned plan has its
    per-(op, rung) parity invariant re-asserted.
    """
    op_fp = operator_fingerprint(A)
    mach_fp = machine_fingerprint()
    if cache is not None and not force:
        plan = cache.load(op_fp, mach_fp)
        if plan is not None:
            plan.assert_parity()
            return plan, True

    probe = probe_machine()
    prober = OperatorProber(
        A,
        baseline_format=baseline_format,
        baseline_params=baseline_params,
        fusion=fusion,
        rungs=rungs,
        formats=formats,
        sell_grid=sell_grid,
        max_rows=max_rows,
        repeats=repeats,
    )
    entries, records = prober.probe_all()
    plan = DispatchPlan(
        operator_fingerprint=op_fp,
        machine_fingerprint=mach_fp,
        baseline_format=baseline_format,
        baseline_params=tuple(
            sorted((str(k), int(v)) for k, v in (baseline_params or {}).items())
        )
        if baseline_format == "sellcs"
        else (),
        baseline_fusion=bool(fusion),
        baseline_backend=prober.baseline_backend,
        entries=entries,
        probes=tuple(records),
        machine=probe.to_dict(),
    )
    plan.assert_parity()
    if cache is not None:
        cache.store(plan)
    logger.info(
        "autotuned %d (op, rung) entries on %s: probe speedup %.3fx",
        len(entries),
        mach_fp,
        plan.speedup(),
    )
    return plan, False


def config_rungs(config) -> tuple[str, ...]:
    """The precision rungs a config's ladder exercises (fp64 always —
    the outer iterative-refinement loop runs there)."""
    rungs = ["fp64"]
    ladder = getattr(config, "precision_ladder", None)
    if ladder:
        for rung in str(ladder).replace(",", ":").split(":"):
            rung = rung.strip()
            if rung and rung not in rungs and rung != "fp16":
                rungs.append(rung)
    elif getattr(config, "impl", "optimized") == "optimized":
        rungs.append("fp32")
    return tuple(rungs)


def representative_problem(config):
    """The rank-local operator the tuner probes: the serial subdomain
    at the config's local dims (deterministic for a given config, so
    its content fingerprint keys warm cache hits across runs)."""
    from repro.geometry.partition import Subdomain
    from repro.stencil.poisson27 import ProblemSpec, generate_problem

    nx, ny, nz = config.local_dims
    sub = Subdomain.serial(nx, ny, nz)
    return generate_problem(sub, spec=ProblemSpec(kind=config.matrix_kind))


def tune_for_config(
    config, cache: PlanCache | None = None, force: bool = False
) -> tuple[DispatchPlan, bool]:
    """Autotune for a benchmark config; returns ``(plan, cache_hit)``."""
    problem = representative_problem(config)
    params = dict(config.format_params)
    return autotune_operator(
        problem.A,
        baseline_format=config.matrix_format,
        baseline_params=params,
        fusion=config.fusion,
        rungs=config_rungs(config),
        cache=cache,
        force=force,
    )


def apply_plan_to_config(config, plan: DispatchPlan):
    """The config with the plan's solver-wide consensus folded in.

    Only parity-asserted unanimous choices move the knobs (format,
    SELL-C-σ chunk/sigma, fusion); everything else is untouched, so a
    plan that found nothing better leaves the config bitwise-identical
    in behaviour.
    """
    updates = {}
    fmt = plan.solver_format()
    if fmt != config.matrix_format:
        updates["matrix_format"] = fmt
    fmt_params = dict(plan.solver_format_params())
    if fmt == "sellcs" and fmt_params:
        if fmt_params.get("chunk", config.sell_chunk) != config.sell_chunk:
            updates["sell_chunk"] = int(fmt_params["chunk"])
        if fmt_params.get("sigma", config.sell_sigma) != config.sell_sigma:
            updates["sell_sigma"] = int(fmt_params["sigma"])
    if plan.solver_fusion() != config.fusion:
        updates["fusion"] = plan.solver_fusion()
    return config.with_updates(**updates) if updates else config
