"""Measured kernel autotuning: machine-probed dispatch plans.

The registry (``repro.backends``) can serve every hot motif under
multiple storage formats, backends, and fusion variants; this package
decides *which* — by measurement, not configuration.  The prober times
the registered variants on a representative slice of the actual
operator, the resulting :class:`DispatchPlan` records the winning
(format, backend, fusion) per (op, rung), a persistent
:class:`PlanCache` keyed by (operator content x machine fingerprint)
makes warm runs free, and the registry consults the installed plan at
dispatch time.  A plan can only ever select variants whose probe
output was bitwise-identical to the untuned default — tuning changes
speed, never numerics.
"""

from repro.tune.autotune import (
    apply_plan_to_config,
    autotune_operator,
    config_rungs,
    tune_for_config,
)
from repro.tune.cache import PlanCache, default_cache_path
from repro.tune.plan import DispatchPlan, PlanChoice, PlanParityError, ProbeRecord
from repro.tune.probe import SELL_GRID, OperatorProber, representative_slice

__all__ = [
    "SELL_GRID",
    "DispatchPlan",
    "OperatorProber",
    "PlanCache",
    "PlanChoice",
    "PlanParityError",
    "ProbeRecord",
    "apply_plan_to_config",
    "autotune_operator",
    "config_rungs",
    "default_cache_path",
    "representative_slice",
    "tune_for_config",
]
