"""Dispatch plans: the autotuner's output, the registry's input.

A :class:`DispatchPlan` records, per ``(op, rung)``, the winning
``(format, format-params, backend, fused)`` choice among the
registered kernel variants the prober measured on a representative
slice of the *actual* operator — together with the probe evidence
(every variant's timing and whether its output was bitwise-equal to
the untuned default).

The central invariant: **a plan never changes numerics**.  Only
variants whose probe output was bitwise-identical to the untuned
default are selectable (``parity=True``), the default itself is always
in the candidate set, and :meth:`DispatchPlan.assert_parity` re-checks
the invariant for every entry before a plan is installed.  Because the
default always competes, the chosen time is never slower than the
baseline time measured in the same probe session, so
:meth:`DispatchPlan.speedup` is ``>= 1.0`` by construction — and it
is reported unclamped, so a plan that violates the selection
invariant shows up below 1.0 instead of being masked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fp.precision import Precision

#: Plan-dict schema version (bump on incompatible layout changes; the
#: cache treats unknown versions as misses).
PLAN_VERSION = 1


class PlanParityError(AssertionError):
    """A plan entry selects a variant that failed bitwise parity."""


@dataclass(frozen=True)
class ProbeRecord:
    """One measured variant: the evidence behind a plan entry."""

    op: str
    rung: str  # precision short name ("fp64", ...)
    fmt: str
    fmt_params: tuple  # sorted (key, value) pairs, e.g. (("chunk", 32),)
    backend: str
    fused: bool
    seconds: float
    parity: bool  # bitwise-equal to the untuned default's output
    selected: bool = False

    @property
    def variant(self) -> str:
        """Human-readable variant label for report tables."""
        params = ",".join(f"{k}={v}" for k, v in self.fmt_params)
        fmt = f"{self.fmt}[{params}]" if params else self.fmt
        fused = "fused" if self.fused else "unfused"
        return f"{fmt}/{self.backend}/{fused}"

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "rung": self.rung,
            "fmt": self.fmt,
            "fmt_params": [list(p) for p in self.fmt_params],
            "backend": self.backend,
            "fused": self.fused,
            "seconds": self.seconds,
            "parity": self.parity,
            "selected": self.selected,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ProbeRecord":
        return cls(
            op=d["op"],
            rung=d["rung"],
            fmt=d["fmt"],
            fmt_params=tuple(
                (str(k), int(v)) for k, v in d.get("fmt_params", [])
            ),
            backend=d["backend"],
            fused=bool(d["fused"]),
            seconds=float(d["seconds"]),
            parity=bool(d["parity"]),
            selected=bool(d.get("selected", False)),
        )


@dataclass(frozen=True)
class PlanChoice:
    """The winning variant for one ``(op, rung)``."""

    fmt: str
    fmt_params: tuple
    backend: str
    fused: bool
    seconds: float
    baseline_seconds: float
    parity: bool = True

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.seconds if self.seconds > 0 else 1.0

    def to_dict(self) -> dict:
        return {
            "fmt": self.fmt,
            "fmt_params": [list(p) for p in self.fmt_params],
            "backend": self.backend,
            "fused": self.fused,
            "seconds": self.seconds,
            "baseline_seconds": self.baseline_seconds,
            "parity": self.parity,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PlanChoice":
        return cls(
            fmt=d["fmt"],
            fmt_params=tuple(
                (str(k), int(v)) for k, v in d.get("fmt_params", [])
            ),
            backend=d["backend"],
            fused=bool(d["fused"]),
            seconds=float(d["seconds"]),
            baseline_seconds=float(d["baseline_seconds"]),
            parity=bool(d.get("parity", True)),
        )


#: Ops whose plan entries carry a fused/unfused axis (the solver's
#: fusion knob); format-only ops leave ``fused`` at the baseline value.
FUSED_OPS = frozenset({"spmv_dot", "waxpby_dot", "spmv_dot_multi", "waxpby_dot_multi"})

#: Ops whose format choice follows the operator's storage format (the
#: solver-wide ``matrix_format`` consensus below).
MATRIX_OPS = frozenset(
    {
        "spmv",
        "symgs_sweep",
        "spmv_dot",
        "spmv_multi",
        "symgs_sweep_multi",
        "spmv_dot_multi",
    }
)


@dataclass(frozen=True)
class DispatchPlan:
    """Per-(op, rung) tuned dispatch choices for one operator on one
    machine."""

    operator_fingerprint: str
    machine_fingerprint: str
    baseline_format: str
    baseline_params: tuple
    baseline_fusion: bool
    baseline_backend: str
    entries: dict = field(default_factory=dict)  # (op, rung) -> PlanChoice
    probes: tuple = ()  # ProbeRecord evidence (report / debugging)
    machine: dict = field(default_factory=dict)  # probe_machine().to_dict()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def choice(self, op: str, rung) -> "PlanChoice | None":
        """The tuned choice for ``(op, rung)``; None if not tuned."""
        if rung is None:
            return None
        short = rung.short_name if isinstance(rung, Precision) else str(rung)
        return self.entries.get((op, short))

    def backend_for(
        self,
        op: str,
        rung,
        fmt: str | None = None,
        fmt_params: tuple | None = None,
    ) -> str | None:
        """Backend preference the registry consults at dispatch time.

        Parity was probe-verified only for the chosen variant's own
        format context, so the preference applies only to lookups that
        match it: matrix ops must request the choice's format (and its
        SELL-C-σ parameters, when the choice has any), and ops probed
        format-agnostically must look up with ``fmt=None`` exactly as
        the probe did.  Any other combination — e.g. the
        level-scheduled smoother forcing ELL while the plan chose CSR —
        returns ``None`` so the registry falls back to the active
        backend, i.e. untuned dispatch, rather than routing a
        combination whose parity was never verified.
        """
        c = self.choice(op, rung)
        if c is None:
            return None
        if op in MATRIX_OPS:
            if fmt != c.fmt:
                return None
            if c.fmt_params and tuple(fmt_params or ()) != tuple(
                c.fmt_params
            ):
                return None
        elif fmt is not None:
            return None
        return c.backend

    def fused_for(self, op: str, rung, default: bool) -> bool:
        c = self.choice(op, rung)
        return c.fused if c is not None else default

    # ------------------------------------------------------------------
    # Solver-wide consensus
    # ------------------------------------------------------------------
    def solver_format(self) -> str:
        """The storage format the solver should build its operator in.

        The operator is one object shared by every matrix op, so a
        format switch must be unanimous: adopted only when every tuned
        matrix-op entry chose the same format, else the baseline wins.
        """
        fmts = {
            (c.fmt, c.fmt_params)
            for (op, _), c in self.entries.items()
            if op in MATRIX_OPS
        }
        if len(fmts) == 1:
            return next(iter(fmts))[0]
        return self.baseline_format

    def solver_format_params(self) -> tuple:
        fmts = {
            (c.fmt, c.fmt_params)
            for (op, _), c in self.entries.items()
            if op in MATRIX_OPS
        }
        if len(fmts) == 1:
            return next(iter(fmts))[1]
        return self.baseline_params

    def solver_fusion(self) -> bool:
        """Whether the solver should keep fused motifs enabled —
        unanimous across the fused-op entries, else the baseline."""
        fused = {
            c.fused for (op, _), c in self.entries.items() if op in FUSED_OPS
        }
        if len(fused) == 1:
            return next(iter(fused))
        return self.baseline_fusion

    def applies_to(self, fmt: str, fmt_params: tuple, fusion: bool) -> bool:
        """Whether a solver configured with ``(fmt, params, fusion)``
        may adopt this plan (it was tuned from that same baseline, or
        already matches the tuned consensus)."""
        requested = (fmt, tuple(fmt_params), bool(fusion))
        baseline = (
            self.baseline_format,
            tuple(self.baseline_params),
            bool(self.baseline_fusion),
        )
        tuned = (
            self.solver_format(),
            tuple(self.solver_format_params()),
            bool(self.solver_fusion()),
        )
        return requested in (baseline, tuned)

    # ------------------------------------------------------------------
    # Invariants / metrics
    # ------------------------------------------------------------------
    def assert_parity(self) -> None:
        """Re-assert the no-numerics-change invariant per op x rung."""
        for (op, rung), c in self.entries.items():
            if not c.parity:
                raise PlanParityError(
                    f"plan entry ({op}, {rung}) selects "
                    f"{c.fmt}/{c.backend} which failed bitwise parity "
                    f"against the untuned default"
                )

    def speedup(self) -> float:
        """Aggregate probe-time speedup of tuned vs untuned dispatch.

        Ratio of summed baseline probe times to summed chosen probe
        times.  >= 1.0 for any honestly-constructed plan because the
        untuned default competes in (and can win) every entry — but the
        ratio is returned *unclamped*, so a violated selection
        invariant (a chosen variant slower than baseline, corrupted
        entries) surfaces as a value below 1.0 that the CI floor gate
        in ``check_regression.py`` can actually catch.
        """
        base = sum(c.baseline_seconds for c in self.entries.values())
        chosen = sum(c.seconds for c in self.entries.values())
        if chosen <= 0 or base <= 0:
            return 1.0
        return base / chosen

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self, *, probes: bool = True) -> dict:
        d = {
            "version": PLAN_VERSION,
            "operator_fingerprint": self.operator_fingerprint,
            "machine_fingerprint": self.machine_fingerprint,
            "baseline": {
                "format": self.baseline_format,
                "params": [list(p) for p in self.baseline_params],
                "fusion": self.baseline_fusion,
                "backend": self.baseline_backend,
            },
            "entries": {
                f"{op}@{rung}": c.to_dict()
                for (op, rung), c in sorted(self.entries.items())
            },
            "machine": dict(self.machine),
            "speedup": self.speedup(),
        }
        if probes:
            d["probes"] = [p.to_dict() for p in self.probes]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "DispatchPlan":
        if d.get("version") != PLAN_VERSION:
            raise ValueError(
                f"unsupported plan version {d.get('version')!r}"
            )
        base = d["baseline"]
        entries = {}
        for key, cd in d.get("entries", {}).items():
            op, _, rung = key.rpartition("@")
            entries[(op, rung)] = PlanChoice.from_dict(cd)
        return cls(
            operator_fingerprint=d["operator_fingerprint"],
            machine_fingerprint=d["machine_fingerprint"],
            baseline_format=base["format"],
            baseline_params=tuple(
                (str(k), int(v)) for k, v in base.get("params", [])
            ),
            baseline_fusion=bool(base["fusion"]),
            baseline_backend=base["backend"],
            entries=entries,
            probes=tuple(
                ProbeRecord.from_dict(p) for p in d.get("probes", [])
            ),
            machine=dict(d.get("machine", {})),
        )

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def table(self) -> str:
        """Per-variant probe timings as an aligned text table."""
        headers = ("op", "rung", "variant", "seconds", "parity", "chosen")
        rows = [headers]
        for p in sorted(self.probes, key=lambda p: (p.op, p.rung, p.seconds)):
            rows.append(
                (
                    p.op,
                    p.rung,
                    p.variant,
                    f"{p.seconds:.3e}",
                    "yes" if p.parity else "no",
                    "*" if p.selected else "",
                )
            )
        widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
        lines = []
        for i, row in enumerate(rows):
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)
