"""Operator-keyed setup cache for repeated and batched solves.

Solver construction is the benchmark's setup phase: format conversion
(``to_format``), the low-precision matrix copy with its
row-equilibration scales (``to_precision``), the multigrid hierarchy
(with its colorings and color-partitioned smoother layouts), and the
interior/boundary partition of the overlap schedule.  A service that
keeps solving against the *same* operator — the batched/many-RHS
pipeline — pays all of that once per solver instance unless the
pieces are cached.

This module keys every derived setup product by a cheap **content
fingerprint** of the source operator plus the derivation parameters:

- fingerprint: blake2b over the matrix's content arrays
  (:func:`repro.sparse.formats.content_arrays`) and its dims/dtype —
  content-addressed, so mutating a matrix entry *invalidates* every
  product derived from it (a fresh fingerprint simply misses).
- products: whatever ``get_or_build`` is asked for — the solvers use
  it for the format-converted fp64 matrix, the low-precision copies,
  the MG hierarchy and the partitioned layouts.

The cache is per process (each SPMD rank holds its own, mirroring
per-rank device memory) and bounded: beyond ``max_entries`` the oldest
entry is evicted FIFO.  Hit/miss counters are exported into
:class:`~repro.solvers.gmres_ir.SolverStats` by the solvers.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable

from repro.sparse.formats import content_arrays


def operator_fingerprint(A) -> str:
    """Content hash of a local matrix (hex digest).

    blake2b over the matrix's ndarray attributes (values, column
    indices, row pointers, equilibration scales, permutations) plus
    its type, dims and dtype.  Two matrices with identical content
    collide on purpose — that is what lets a rebuilt-but-equal
    operator reuse the cached hierarchy — while any in-place mutation
    of matrix entries changes the digest.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(type(A).__name__.encode())
    h.update(f"{getattr(A, 'nrows', 0)}x{getattr(A, 'ncols', 0)}".encode())
    h.update(str(getattr(A, "dtype", "")).encode())
    for name, arr in content_arrays(A):
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        c = arr if arr.flags["C_CONTIGUOUS"] else arr.copy()
        h.update(c)
    return h.hexdigest()


class SetupCache:
    """Bounded cache of setup products keyed by operator content.

    ``get_or_build(fingerprint, kind, params, builder)`` returns the
    cached product for ``(fingerprint, kind, params)`` or runs
    ``builder()`` and stores the result.  ``params`` must be hashable
    (tuples of primitives / frozen dataclasses).

    The cache is thread-safe: a service front end runs solves on
    worker threads, and two solvers constructed concurrently against
    the same operator must not both build (and race to store) the same
    product.  ``builder()`` runs *under* the cache lock — construction
    for one key serializes, which is exactly the single-build
    guarantee concurrent solver construction needs (setup products are
    shared, so a duplicate build is wasted work *and* a consistency
    hazard).  Builders must therefore not re-enter a different cache
    from another thread; solver builders are self-contained.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: dict[tuple, Any] = {}
        # RLock: a builder may consult the same cache for a nested
        # product (e.g. a hierarchy builder reusing a cached partition).
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get_or_build(
        self,
        fingerprint: str,
        kind: str,
        params: tuple,
        builder: Callable[[], Any],
    ) -> Any:
        key = (fingerprint, kind, params)
        with self._lock:
            if key in self._entries:
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            value = builder()
            while len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = value
            return value

    # ------------------------------------------------------------------
    # Dispatch plans (repro.tune)
    # ------------------------------------------------------------------
    def store_plan(self, fingerprint: str, plan) -> None:
        """Attach a tuned :class:`~repro.tune.plan.DispatchPlan` to an
        operator fingerprint.

        Solvers constructed against this operator through this cache
        adopt the plan's parity-asserted choices automatically — which
        is how ``solve_panel`` and the ``SolverService`` inherit tuned
        dispatch without any API change.
        """
        with self._lock:
            self._entries[(fingerprint, "__plan__", ())] = plan

    def plan_for(self, fingerprint: str):
        """The stored plan for an operator, or None."""
        with self._lock:
            return self._entries.get((fingerprint, "__plan__", ()))

    def invalidate(self, fingerprint: str | None = None) -> int:
        """Drop entries for one fingerprint (or all); returns the count.

        Content addressing already handles *mutated* operators (their
        fingerprint changes); explicit invalidation frees the products
        of an operator known to be gone.
        """
        with self._lock:
            if fingerprint is None:
                n = len(self._entries)
                self._entries.clear()
                return n
            stale = [k for k in self._entries if k[0] == fingerprint]
            for k in stale:
                self._entries.pop(k)
            return len(stale)

    # ------------------------------------------------------------------
    @property
    def entries(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SetupCache: {self.entries}/{self.max_entries} entries, "
            f"{self.hits} hits / {self.misses} misses>"
        )


#: Process-wide default cache (one per SPMD rank): the benchmark's
#: repeated phase solves against the same operator share it.
_DEFAULT = SetupCache()


def default_setup_cache() -> SetupCache:
    """The shared per-process cache."""
    return _DEFAULT
