"""Arnoldi orthogonalization kernels.

Three Gram-Schmidt variants with different stability/latency
trade-offs (paper §3):

- :func:`cgs` — classical Gram-Schmidt: one batched projection; fast
  (one all-reduce) but loses orthogonality quickly, especially in low
  precision.
- :func:`cgs2` — classical Gram-Schmidt with reorthogonalization: two
  batched projections; the benchmark's prescription, restoring near
  machine-level orthogonality at twice the BLAS-2 cost.
- :func:`mgs` — modified Gram-Schmidt: stable, but one all-reduce per
  basis vector (k latencies per step), which is why the benchmark
  avoids it at scale.

All variants operate on the leading ``k`` columns of the basis ``Q``
(local rows), modify ``w`` in place, and return the global projection
coefficients in float64.  The BLAS-2 passes route through the kernel
registry (``gemv``/``gemvT``); with a workspace the only per-call
allocations are the length-``k`` coefficient vectors.
"""

from __future__ import annotations

import numpy as np

from repro.backends.dispatch import gemv, gemv_sub_dot
from repro.parallel.comm import Communicator
from repro.parallel.distributed import ddot, dmatvec_block


def _project_out(Q: np.ndarray, k: int, w: np.ndarray, h: np.ndarray, ws) -> None:
    """``w -= Q[:, :k] @ h`` (one GEMV), allocation-free with ``ws``."""
    coef = h.astype(w.dtype)  # length-k host vector
    if ws is None:
        w -= Q[:, :k] @ coef
        return
    t = ws.get("ortho.gemv", w.shape, w.dtype)
    gemv(Q, k, coef, out=t)
    np.subtract(w, t, out=w)


def cgs(
    comm: Communicator, Q: np.ndarray, k: int, w: np.ndarray, ws=None
) -> np.ndarray:
    """Classical Gram-Schmidt: single projection pass (GEMVT + GEMV)."""
    h = dmatvec_block(comm, Q[:, :k], w)
    _project_out(Q, k, w, h, ws)
    return np.asarray(h, dtype=np.float64)


def cgs2(
    comm: Communicator, Q: np.ndarray, k: int, w: np.ndarray, ws=None
) -> np.ndarray:
    """CGS with reorthogonalization (Algorithm 3 lines 20-27).

    Two GEMVT/GEMV pairs; the returned coefficients are the sum of both
    passes, which is what lands in the Hessenberg column.
    """
    h1 = dmatvec_block(comm, Q[:, :k], w)
    _project_out(Q, k, w, h1, ws)
    h2 = dmatvec_block(comm, Q[:, :k], w)
    _project_out(Q, k, w, h2, ws)
    return np.asarray(h1, dtype=np.float64) + np.asarray(h2, dtype=np.float64)


def cgs2_fused(
    comm: Communicator, Q: np.ndarray, k: int, w: np.ndarray, ws=None
) -> tuple[np.ndarray, float]:
    """CGS2 with the trailing norm fused into the second projection.

    Identical to :func:`cgs2` followed by a local ``w . w``, except the
    second projection's GEMV, the subtraction and the norm's local
    reduction go through one registry motif (``gemv_sub_dot``) — one
    pass over ``w`` in a fused backend.  Returns ``(h, local_sq)``;
    the caller finishes the norm with ``dnorm2_from_local``.  The
    reference registration composes the same kernels the unfused
    sequence calls, so the result is bitwise-identical — the contract
    the fusion tests assert.
    """
    h1 = dmatvec_block(comm, Q[:, :k], w)
    _project_out(Q, k, w, h1, ws)
    h2 = dmatvec_block(comm, Q[:, :k], w)
    coef = h2.astype(w.dtype)
    local = gemv_sub_dot(Q, k, coef, w, ws=ws)
    h = np.asarray(h1, dtype=np.float64) + np.asarray(h2, dtype=np.float64)
    return h, local


def mgs(
    comm: Communicator, Q: np.ndarray, k: int, w: np.ndarray, ws=None
) -> np.ndarray:
    """Modified Gram-Schmidt: k sequential projections (k all-reduces)."""
    h = np.zeros(k, dtype=np.float64)
    for i in range(k):
        qi = Q[:, i]
        hi = ddot(comm, qi, w)
        h[i] = hi
        w -= np.asarray(hi, dtype=w.dtype) * qi
    return h


ORTHO_METHODS = {"cgs": cgs, "cgs2": cgs2, "mgs": mgs}


def orthogonality_loss(Q: np.ndarray, k: int) -> float:
    """``||I - Q_k^T Q_k||_max`` — the loss-of-orthogonality measure.

    Computed in float64 regardless of basis precision; used by tests to
    verify the CGS < MGS < CGS2 stability ordering the benchmark's
    design relies on.
    """
    Qk = Q[:, :k].astype(np.float64)
    G = Qk.T @ Qk
    return float(np.abs(G - np.eye(k)).max())
