"""Distributed sparse operator: SpMV with halo exchange.

Wraps a local matrix (ELL or CSR) with its halo-exchange plan and a
persistent full-vector workspace, so every matvec is: copy owned part,
exchange ghosts, local SpMV.  ``matvec_split`` mirrors the optimized
implementation's interior/boundary decomposition (§3.2.3) — identical
numerics, exercised by tests, and the shape the performance model's
overlap timeline assumes.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.halo import HaloPattern
from repro.parallel.comm import Communicator
from repro.parallel.halo_exchange import HaloExchange


class DistributedOperator:
    """``y = A x`` across ranks, for one matrix in one precision."""

    def __init__(self, A, halo_pattern: HaloPattern, comm: Communicator) -> None:
        self.A = A
        self.comm = comm
        self.halo_ex = HaloExchange(halo_pattern, comm)
        self.nlocal = halo_pattern.nlocal
        self._xfull = np.zeros(
            self.nlocal + halo_pattern.n_ghost, dtype=A.vals.dtype
            if hasattr(A, "vals")
            else A.data.dtype,
        )

    @property
    def dtype(self) -> np.dtype:
        return self._xfull.dtype

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Exchange ghosts and apply the local matrix."""
        xf = self._xfull
        xf[: self.nlocal] = x
        self.halo_ex.exchange(xf)
        return self.A.spmv(xf, out=out)

    def matvec_split(self, x: np.ndarray) -> np.ndarray:
        """Overlapped SpMV: halo in flight while interior rows compute.

        Receives and sends are posted first (nonblocking), the interior
        kernel — which touches no ghost value — runs while messages are
        in transit, and the boundary rows run after the ghosts land:
        exactly the two-stream schedule of §3.2.3.  Bitwise-comparable
        to :meth:`matvec`, which tests assert.
        """
        xf = self._xfull
        xf[: self.nlocal] = x
        interior = self.halo_ex.interior_rows
        boundary = self.halo_ex.boundary_rows
        y = np.empty(self.nlocal, dtype=self.dtype)
        pending = self.halo_ex.exchange_begin(xf)
        # Interior compute while the halo is in flight ...
        y[interior] = self.A.spmv_rows(interior, xf)
        # ... land the ghosts, then the boundary rows.
        self.halo_ex.exchange_finish(pending, xf)
        y[boundary] = self.A.spmv_rows(boundary, xf)
        return y

    def residual(self, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        """``b - A x`` in this operator's precision."""
        return b - self.matvec(x)
