"""Distributed sparse operator: SpMV with halo exchange.

Wraps a local matrix (any registered format) with its halo-exchange
plan and a persistent full-vector workspace, so every matvec is: copy
owned part, exchange ghosts, local SpMV through the kernel registry.

With ``overlap=True`` the operator partitions the matrix into
interior/boundary row blocks (:mod:`repro.sparse.partitioned`) and
every ``matvec`` runs the paper's two-stream schedule (§3.2.3): halo
in flight while the interior block computes, boundary block after the
ghosts land in the vector tail.  The overlapped and sequential
schedules execute identical block kernels in identical order, so they
are bitwise-equal — only the communication timing differs.
``matvec_split`` remains as the row-subset-kernel variant of the same
decomposition (identical numerics through a different kernel path).

The operator owns (or shares) a :class:`~repro.backends.workspace.Workspace`
arena; with ``out=`` buffers supplied by the caller, ``matvec`` and
``residual`` are allocation-free after warmup — including the halo
path, whose pack buffers and transport messages are pooled.
"""

from __future__ import annotations

import numpy as np

from repro.backends.dispatch import (
    spmv,
    spmv_boundary,
    spmv_boundary_multi,
    spmv_dot,
    spmv_dot_multi,
    spmv_interior,
    spmv_interior_multi,
    spmv_multi,
    spmv_rows,
    waxpby_dot,
)
from repro.backends.workspace import Workspace
from repro.geometry.halo import HaloPattern
from repro.parallel.comm import Communicator
from repro.parallel.halo_exchange import HaloExchange
from repro.resilience.faults import abft_scope
from repro.sparse.partitioned import partition_matrix


class DistributedOperator:
    """``y = A x`` across ranks, for one matrix in one precision."""

    def __init__(
        self,
        A,
        halo_pattern: HaloPattern,
        comm: Communicator,
        workspace: Workspace | None = None,
        overlap: bool = False,
        partition=None,
    ) -> None:
        self.A = A
        self.comm = comm
        self.ws = workspace if workspace is not None else Workspace("operator")
        self.halo_ex = HaloExchange(halo_pattern, comm, workspace=self.ws)
        self.nlocal = halo_pattern.nlocal
        self.overlap = overlap
        # Ghost-aware partitioned layout for the overlap schedule; the
        # partition is built once at setup (HPCG's SetupHalo moment),
        # not on the hot path.  ``partition`` lets a setup cache inject
        # an already-built layout for this (A, halo) pair.
        if overlap:
            self.P = (
                partition
                if partition is not None
                else partition_matrix(A, halo_pattern)
            )
        else:
            self.P = None
        self._xfull = np.zeros(
            self.nlocal + halo_pattern.n_ghost, dtype=A.dtype
        )
        # Matrix-reuse accounting for the batched pipeline: each full
        # application increments ``matrix_passes`` by the number of
        # times the matrix block is streamed and ``rhs_columns`` by the
        # number of RHS columns served.  A panel matvec charges one
        # pass for N columns, so ``rhs_columns / matrix_passes`` is the
        # measured matrix-traffic amortization (1.0 for sequential
        # single-RHS solves, → panel width for batched ones).
        self.matrix_passes = 0
        self.rhs_columns = 0
        #: Optional :class:`~repro.resilience.abft.ABFTCheck` verifying
        #: every single-vector matvec output against the cached
        #: column-sum checksum.  ``None`` (the default) adds nothing to
        #: the hot path; the check itself is read-only, so attaching
        #: one never changes results on fault-free runs.
        self.abft = None

    def attach_abft(self, check) -> None:
        """Install (or clear, with ``None``) the ABFT verifier."""
        self.abft = check

    @property
    def dtype(self) -> np.dtype:
        return self._xfull.dtype

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Apply the operator; overlapped when the layout allows it."""
        if self.P is not None:
            return self.matvec_overlapped(x, out=out)
        xf = self._xfull
        xf[: self.nlocal] = x
        self.halo_ex.exchange(xf)
        self.matrix_passes += 1
        self.rhs_columns += 1
        if self.abft is None:
            return spmv(self.A, xf, out=out, ws=self.ws)
        # The scope marker tells a covered-site fault injector this
        # dispatch's output is checksum-verified; it reads state only,
        # so the fault-free path stays bitwise identical.
        with abft_scope():
            y = spmv(self.A, xf, out=out, ws=self.ws)
        self.abft.verify(xf, y)
        return y

    def matvec_overlapped(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Two-stream schedule: interior block SpMV hides the halo.

        Requires ``overlap=True`` construction.  Bitwise-equal to
        :meth:`matvec_sequential` (same block kernels, same order).
        """
        self.matrix_passes += 1
        self.rhs_columns += 1
        y = out if out is not None else np.empty(self.nlocal, dtype=self.dtype)
        self._apply_overlapped(x, y)
        return y

    def _apply_overlapped(self, x: np.ndarray, y: np.ndarray) -> None:
        """The overlap schedule proper (no reuse accounting)."""
        P = self._require_partition()
        xf = self._xfull
        xf[: self.nlocal] = x
        pending = self.halo_ex.exchange_begin(xf)
        # Interior block computes while messages are in transit ...
        spmv_interior(P, xf, out=y, ws=self.ws)
        # ... land the ghosts in the vector tail, then the boundary block.
        self.halo_ex.exchange_finish(pending, xf)
        if self.abft is None:
            spmv_boundary(P, xf, out=y, ws=self.ws)
            return
        with abft_scope():
            spmv_boundary(P, xf, out=y, ws=self.ws)
        self.abft.verify(xf, y)

    def matvec_panel(
        self, X: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Panel matvec: one operator application serving every column.

        ``X`` is a column-major ``(nlocal, N)`` panel; column ``j`` of
        the result is bitwise-equal to ``matvec(X[:, j])``.  The halo
        is panel-native: **one wide exchange** per application ships
        every column's boundary values in one message per neighbor
        (message count is O(1) in the panel width; bytes scale with
        it).  On the overlapped schedule the whole panel's interior
        compute hides that single wide exchange
        (``spmv_interior_multi`` / ``spmv_boundary_multi``); on the
        sequential schedule the wide exchange precedes one
        ``spmv_multi`` — the registry seam a single-pass backend serves
        with one matrix stream for the whole panel.  Either way the
        panel is booked as **one** matrix pass serving N columns, which
        is what the measured ``rhs_columns / matrix_passes``
        amortization records.
        """
        ncol = X.shape[1]
        Y = (
            out
            if out is not None
            else np.empty((self.nlocal, ncol), dtype=self.dtype, order="F")
        )
        self.matrix_passes += 1
        self.rhs_columns += ncol
        nfull = self._xfull.shape[0]
        XF = self.ws.get_panel("op.panel.xfull", nfull, ncol, self.dtype)
        XF[: self.nlocal, :] = X
        if self.P is not None:
            pending = self.halo_ex.exchange_begin_panel(XF)
            # Every column's interior rows compute while the single
            # wide exchange is in flight ...
            spmv_interior_multi(self.P, XF, out=Y, ws=self.ws)
            # ... land all ghosts at once, then the boundary rows.
            self.halo_ex.exchange_finish_panel(pending, XF)
            spmv_boundary_multi(self.P, XF, out=Y, ws=self.ws)
            return Y
        self.halo_ex.exchange_panel(XF)
        spmv_multi(self.A, XF, out=Y, ws=self.ws)
        return Y

    def matvec_sequential(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Non-overlapped reference: full exchange, then both blocks."""
        P = self._require_partition()
        xf = self._xfull
        xf[: self.nlocal] = x
        self.halo_ex.exchange(xf)
        self.matrix_passes += 1
        self.rhs_columns += 1
        if self.abft is None:
            return spmv(P, xf, out=out, ws=self.ws)
        with abft_scope():
            y = spmv(P, xf, out=out, ws=self.ws)
        self.abft.verify(xf, y)
        return y

    def _require_partition(self):
        if self.P is None:
            raise RuntimeError(
                "operator was built without overlap=True; no partitioned "
                "layout available"
            )
        return self.P

    def matvec_split(self, x: np.ndarray) -> np.ndarray:
        """Overlapped SpMV through the row-subset kernels.

        The original (pre-partitioned-format) overlap path: receives
        and sends are posted first, ``spmv_rows`` computes the interior
        subset while messages are in transit, and the boundary subset
        runs after the ghosts land.  Kept as an independent
        implementation of the same schedule — tests cross-check it
        against :meth:`matvec`.
        """
        xf = self._xfull
        xf[: self.nlocal] = x
        interior = self.halo_ex.interior_rows
        boundary = self.halo_ex.boundary_rows
        y = np.empty(self.nlocal, dtype=self.dtype)
        pending = self.halo_ex.exchange_begin(xf)
        # Interior compute while the halo is in flight ...
        y[interior] = spmv_rows(self.A, interior, xf, ws=self.ws)
        # ... land the ghosts, then the boundary rows.
        self.halo_ex.exchange_finish(pending, xf)
        y[boundary] = spmv_rows(self.A, boundary, xf, ws=self.ws)
        return y

    def residual(
        self, b: np.ndarray, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``b - A x`` in this operator's precision."""
        ax = self.ws.get("op.residual.ax", (self.nlocal,), self.dtype)
        self.matvec(x, out=ax)
        if out is None:
            return b - ax
        np.subtract(b, ax, out=out)
        return out

    def residual_norm2_local(
        self, b: np.ndarray, x: np.ndarray, out: np.ndarray
    ) -> float:
        """``out = b - A x`` plus the *local* ``out . out``, fused.

        GMRES-IR's residual check through the fused-motif pipeline: on
        the sequential schedule the whole evaluation is one
        ``spmv_dot`` matrix pass; on the overlapped schedule the SpMV
        keeps its two-stream halo overlap and the subtraction + dot
        fuse into one vector pass (``waxpby_dot``).  Both compose the
        registry's kernels operation-for-operation under the reference
        backend, so the result is bitwise-identical to the unfused
        ``residual`` + ``dot`` sequence; the caller still owns the
        cross-rank reduction.
        """
        if self.P is not None:
            ax = self.ws.get("op.residual.ax", (self.nlocal,), self.dtype)
            self.matvec_overlapped(x, out=ax)
            _, local = waxpby_dot(1.0, b, -1.0, ax, out=out, ws=self.ws)
            return local
        xf = self._xfull
        xf[: self.nlocal] = x
        self.halo_ex.exchange(xf)
        self.matrix_passes += 1
        self.rhs_columns += 1
        _, local = spmv_dot(self.A, xf, b, out=out, ws=self.ws)
        return local

    def residual_panel_norm2_local(
        self, B: np.ndarray, X: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Panel residual + per-column local ``r . r``, fused.

        ``out[:, j] = B[:, j] - A X[:, j]``; returns the float64 array
        of local squared norms.  Column ``j`` is bitwise-equal to the
        single-RHS :meth:`residual_norm2_local` (the panel matvec and
        the fused per-column waxpby+dot compose the same kernels
        operation-for-operation); the matrix pass is charged once for
        the whole panel.
        """
        from repro.backends.dispatch import waxpby_dot_multi

        ncol = X.shape[1]
        AX = self.ws.get_panel("op.panel.ax", self.nlocal, ncol, self.dtype)
        self.matvec_panel(X, out=AX)
        _, locals_sq = waxpby_dot_multi(1.0, B, -1.0, AX, out=out, ws=self.ws)
        return locals_sq
