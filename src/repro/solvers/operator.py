"""Distributed sparse operator: SpMV with halo exchange.

Wraps a local matrix (any registered format) with its halo-exchange
plan and a persistent full-vector workspace, so every matvec is: copy
owned part, exchange ghosts, local SpMV through the kernel registry.
``matvec_split`` mirrors the optimized implementation's
interior/boundary decomposition (§3.2.3) — identical numerics,
exercised by tests, and the shape the performance model's overlap
timeline assumes.

The operator owns (or shares) a :class:`~repro.backends.workspace.Workspace`
arena; with ``out=`` buffers supplied by the caller, ``matvec`` and
``residual`` are allocation-free after warmup.
"""

from __future__ import annotations

import numpy as np

from repro.backends.dispatch import spmv, spmv_rows
from repro.backends.workspace import Workspace
from repro.geometry.halo import HaloPattern
from repro.parallel.comm import Communicator
from repro.parallel.halo_exchange import HaloExchange


class DistributedOperator:
    """``y = A x`` across ranks, for one matrix in one precision."""

    def __init__(
        self,
        A,
        halo_pattern: HaloPattern,
        comm: Communicator,
        workspace: Workspace | None = None,
    ) -> None:
        self.A = A
        self.comm = comm
        self.ws = workspace if workspace is not None else Workspace("operator")
        self.halo_ex = HaloExchange(halo_pattern, comm, workspace=self.ws)
        self.nlocal = halo_pattern.nlocal
        self._xfull = np.zeros(
            self.nlocal + halo_pattern.n_ghost, dtype=A.dtype
        )

    @property
    def dtype(self) -> np.dtype:
        return self._xfull.dtype

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Exchange ghosts and apply the local matrix."""
        xf = self._xfull
        xf[: self.nlocal] = x
        self.halo_ex.exchange(xf)
        return spmv(self.A, xf, out=out, ws=self.ws)

    def matvec_split(self, x: np.ndarray) -> np.ndarray:
        """Overlapped SpMV: halo in flight while interior rows compute.

        Receives and sends are posted first (nonblocking), the interior
        kernel — which touches no ghost value — runs while messages are
        in transit, and the boundary rows run after the ghosts land:
        exactly the two-stream schedule of §3.2.3.  Bitwise-comparable
        to :meth:`matvec`, which tests assert.
        """
        xf = self._xfull
        xf[: self.nlocal] = x
        interior = self.halo_ex.interior_rows
        boundary = self.halo_ex.boundary_rows
        y = np.empty(self.nlocal, dtype=self.dtype)
        pending = self.halo_ex.exchange_begin(xf)
        # Interior compute while the halo is in flight ...
        y[interior] = spmv_rows(self.A, interior, xf, ws=self.ws)
        # ... land the ghosts, then the boundary rows.
        self.halo_ex.exchange_finish(pending, xf)
        y[boundary] = spmv_rows(self.A, boundary, xf, ws=self.ws)
        return y

    def residual(
        self, b: np.ndarray, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``b - A x`` in this operator's precision."""
        ax = self.ws.get("op.residual.ax", (self.nlocal,), self.dtype)
        self.matvec(x, out=ax)
        if out is None:
            return b - ax
        np.subtract(b, ax, out=out)
        return out
