"""Krylov solvers: preconditioned CG, GMRES, and mixed-precision GMRES-IR.

The benchmark's two timed phases run the same code path with different
precision policies: ``MIXED_DS_POLICY`` gives Algorithm 3 (GMRES-IR
with CGS2 reorthogonalization, low-precision inner steps, double outer
updates) and ``DOUBLE_POLICY`` reduces it to plain restarted GMRES —
mathematically Algorithm 2 with iterative-refinement restarts.  Ladder
policies (``PrecisionPolicy.from_ladder("fp16:fp32:fp64")``) start the
inner stage as low as fp16; the precision control plane
(:mod:`repro.fp.controller`) adapts the rungs at run time — whole
policy in ``"policy"`` mode, one controller per (ingredient, MG level)
with de-escalation in ``"per-ingredient"`` mode — recording each
promotion/demotion as a :class:`Promotion`
(:class:`~repro.fp.controller.PrecisionEvent`).
"""

from repro.solvers.givens import GivensQR, givens_coefficients
from repro.solvers.ortho import cgs, cgs2, mgs
from repro.solvers.operator import DistributedOperator
from repro.solvers.gmres_ir import (
    GMRESIRSolver,
    Promotion,
    SolverStats,
    gmres_solve,
)
from repro.solvers.cg import PCGSolver, pcg_solve
from repro.solvers.switched import SwitchedGMRESSolver, SwitchedStats
from repro.solvers.uniform import UniformStats, uniform_precision_gmres

__all__ = [
    "GivensQR",
    "givens_coefficients",
    "cgs",
    "cgs2",
    "mgs",
    "DistributedOperator",
    "GMRESIRSolver",
    "Promotion",
    "SolverStats",
    "gmres_solve",
    "PCGSolver",
    "pcg_solve",
    "SwitchedGMRESSolver",
    "SwitchedStats",
    "UniformStats",
    "uniform_precision_gmres",
]
