"""Switched-precision GMRES (the Loe et al. strategy, paper §2).

Background: before GMRES-IR, Loe et al. evaluated two multiprecision
strategies — iterative refinement, and "starting a single-precision
solver and then switching to double after some iterations".  HPG-MxP
prescribes the former; this module implements the latter so the design
space the paper situates itself in is fully represented and the two
strategies can be compared head-to-head on the same problem.

The switch triggers when the low-precision stage reaches a relative
residual threshold (near its precision floor) or stalls; the accumulated
iterate then warm-starts a double-precision GMRES.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.policy import DOUBLE_POLICY, PrecisionPolicy
from repro.mg.multigrid import MGConfig
from repro.parallel.comm import Communicator
from repro.solvers.gmres_ir import GMRESIRSolver, SolverStats
from repro.stencil.poisson27 import Problem


@dataclass
class SwitchedStats:
    """Combined statistics of the two stages."""

    low_stage: SolverStats
    high_stage: SolverStats
    switch_relres: float

    @property
    def iterations(self) -> int:
        """Total inner iterations across both stages."""
        return self.low_stage.iterations + self.high_stage.iterations

    @property
    def converged(self) -> bool:
        return self.high_stage.converged

    @property
    def final_relres(self) -> float:
        return self.high_stage.final_relres


class SwitchedGMRESSolver:
    """Two-stage solver: low-precision GMRES, then double GMRES.

    Parameters
    ----------
    switch_tol:
        Relative-residual threshold at which to hand over to double.
        Defaults to ~100x the low precision's unit roundoff — roughly
        where a uniformly low-precision solver begins to stall.
    """

    def __init__(
        self,
        problem: Problem,
        comm: Communicator,
        low_policy: PrecisionPolicy | None = None,
        mg_config: MGConfig | None = None,
        restart: int = 30,
        switch_tol: float | None = None,
    ) -> None:
        self.problem = problem
        self.comm = comm
        low_policy = low_policy or DOUBLE_POLICY.with_low("fp32")
        self.low_policy = low_policy
        self.switch_tol = (
            switch_tol
            if switch_tol is not None
            else 100.0 * low_policy.low.eps
        )
        # Escalation stays off: switching (not in-solver promotion) is
        # this strategy's whole design point — the low stage runs to its
        # threshold and hands over.
        self.low_solver = GMRESIRSolver(
            problem,
            comm,
            policy=low_policy,
            mg_config=mg_config,
            restart=restart,
            escalation=False,
        )
        self.high_solver = GMRESIRSolver(
            problem, comm, policy=DOUBLE_POLICY, mg_config=mg_config, restart=restart
        )

    def solve(
        self,
        b: np.ndarray,
        tol: float = 1e-9,
        maxiter: int = 1000,
    ) -> tuple[np.ndarray, SwitchedStats]:
        """Solve to ``tol``: low stage to the switch point, then double."""
        # Stage 1: low precision down to the switch threshold.
        x1, s1 = self.low_solver.solve(
            b, tol=max(self.switch_tol, tol), maxiter=maxiter
        )
        # Stage 2: double precision warm-started from the stage-1 iterate.
        remaining = max(maxiter - s1.iterations, 1)
        x2, s2 = self.high_solver.solve(b, x0=x1, tol=tol, maxiter=remaining)
        return x2, SwitchedStats(
            low_stage=s1, high_stage=s2, switch_relres=s1.final_relres
        )
