"""Incremental Hessenberg QR via Givens rotations (Algorithm 3, §31-43).

GMRES reduces the least-squares problem ``min ||beta e_1 - H y||`` by
applying one new Givens rotation per Arnoldi step.  The benchmark
performs this update redundantly on every process on the CPU in double
precision; it is O(restart²) work on a tiny matrix, negligible next to
the device kernels, but the rotation state also yields the *implicit*
residual norm ``|t_{k+1}|`` that drives the convergence checks without
a global reduction.
"""

from __future__ import annotations

import numpy as np


def givens_coefficients(a: float, b: float) -> tuple[float, float, float]:
    """Rotation (c, s) annihilating ``b`` against ``a``.

    Returns ``(c, s, r)`` with ``c*a + s*b = r`` and ``-s*a + c*b = 0``,
    using the hypot form for overflow safety.
    """
    if b == 0.0:
        return (1.0, 0.0, a)
    if a == 0.0:
        return (0.0, 1.0, b)
    # Scale by the larger magnitude before forming the hypotenuse so the
    # rotation stays orthogonal even in the subnormal range, where
    # dividing by an unscaled hypot loses all precision.
    scale = max(abs(a), abs(b))
    an, bn = a / scale, b / scale
    h = float(np.hypot(an, bn))
    return (an / h, bn / h, scale * h)


class GivensQR:
    """QR factorization of the GMRES Hessenberg matrix, one column at a time."""

    def __init__(self, m: int) -> None:
        """Prepare for a restart cycle of length up to ``m``."""
        self.m = m
        self.R = np.zeros((m + 1, m), dtype=np.float64)
        self.c = np.zeros(m, dtype=np.float64)
        self.s = np.zeros(m, dtype=np.float64)
        self.t = np.zeros(m + 1, dtype=np.float64)
        self.k = 0

    def start(self, beta: float) -> None:
        """Begin a cycle with initial residual norm ``beta`` (= t_0)."""
        self.t[:] = 0.0
        self.t[0] = beta
        self.k = 0

    def add_column(self, h: np.ndarray) -> float:
        """Process Hessenberg column ``k``: entries ``H[0:k+2, k]``.

        Applies the accumulated rotations, computes and stores the new
        one, updates the transformed rhs ``t``, and returns the implicit
        residual norm ``|t_{k+1}|``.
        """
        k = self.k
        if k >= self.m:
            raise RuntimeError("GivensQR cycle is full")
        if len(h) != k + 2:
            raise ValueError(f"expected column of length {k + 2}, got {len(h)}")
        col = np.array(h, dtype=np.float64)
        # Apply previous rotations to the new column.
        for j in range(k):
            a, b = col[j], col[j + 1]
            col[j] = self.c[j] * a + self.s[j] * b
            col[j + 1] = -self.s[j] * a + self.c[j] * b
        # New rotation annihilating the subdiagonal entry.
        cj, sj, r = givens_coefficients(col[k], col[k + 1])
        self.c[k], self.s[k] = cj, sj
        col[k] = r
        col[k + 1] = 0.0
        self.R[: k + 2, k] = col
        # Update the rhs.
        tk = self.t[k]
        self.t[k] = cj * tk
        self.t[k + 1] = -sj * tk
        self.k = k + 1
        return abs(float(self.t[k + 1]))

    @property
    def implicit_residual(self) -> float:
        """Current least-squares residual norm ``|t_k|``."""
        return abs(float(self.t[self.k]))

    def solve(self, k: int | None = None) -> np.ndarray:
        """Back-substitute ``R[0:k, 0:k] y = t[0:k]`` (Algorithm 3 line 45)."""
        k = self.k if k is None else k
        if k == 0:
            return np.zeros(0, dtype=np.float64)
        y = np.zeros(k, dtype=np.float64)
        for i in range(k - 1, -1, -1):
            acc = self.t[i] - self.R[i, i + 1 : k] @ y[i + 1 : k]
            rii = self.R[i, i]
            if rii == 0.0:
                raise ZeroDivisionError("singular R in GMRES least-squares solve")
            y[i] = acc / rii
        return y
