"""Uniformly low-precision GMRES — the counter-example solver.

HPG-MxP *requires* the outer residual and solution updates in double
(Algorithm 3's non-blue lines); :class:`~repro.fp.policy.PrecisionPolicy`
enforces that.  This module deliberately implements what the benchmark
forbids — restarted GMRES with *every* operation, including the outer
residual, in one low precision — to demonstrate the stall that the
iterative-refinement structure exists to prevent: the true residual of
a uniform fp32 solve flattens near the precision floor (around
``eps_fp32 * kappa``-ish levels) and nine orders of reduction are
unreachable, while GMRES-IR sails through.

Tests and the strategy-comparison example use it as the negative
control; it is not part of the benchmark configuration space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fp.precision import Precision
from repro.mg.multigrid import MGConfig, MultigridPreconditioner
from repro.parallel.comm import Communicator
from repro.parallel.distributed import dnorm2
from repro.solvers.givens import GivensQR
from repro.solvers.operator import DistributedOperator
from repro.solvers.ortho import cgs2
from repro.stencil.poisson27 import Problem


@dataclass
class UniformStats:
    """Outcome of a uniform-precision solve."""

    iterations: int = 0
    restarts: int = 0
    converged: bool = False
    final_relres: float = np.inf
    residual_floor: float = np.inf  # best true relres ever reached
    history: list[float] = field(default_factory=list)


def uniform_precision_gmres(
    problem: Problem,
    comm: Communicator,
    precision: "Precision | str" = Precision.SINGLE,
    restart: int = 30,
    tol: float = 1e-9,
    maxiter: int = 300,
    mg_config: MGConfig | None = None,
) -> tuple[np.ndarray, UniformStats]:
    """Restarted GMRES entirely in one precision (outer loop included)."""
    prec = Precision.from_any(precision)
    dtype = prec.dtype
    A = problem.A.astype(prec)
    op = DistributedOperator(A, problem.halo, comm)
    M = MultigridPreconditioner.build(
        problem, comm, mg_config or MGConfig(), precision=prec
    )
    n = problem.nlocal
    b = np.asarray(problem.b, dtype=dtype)
    x = np.zeros(n, dtype=dtype)
    Q = np.zeros((n, restart + 1), dtype=dtype)
    stats = UniformStats()

    rho0 = dnorm2(comm, b)
    if rho0 == 0.0:
        stats.converged = True
        stats.final_relres = 0.0
        return x, stats

    while stats.iterations < maxiter:
        r = (b - op.matvec(x)).astype(dtype)  # low-precision outer residual
        rho = dnorm2(comm, r)
        relres = rho / rho0
        stats.final_relres = relres
        stats.residual_floor = min(stats.residual_floor, relres)
        if relres < tol:
            stats.converged = True
            return x, stats
        qr = GivensQR(restart)
        qr.start(rho)
        Q[:, 0] = (r / np.asarray(rho, dtype=dtype)).astype(dtype)
        stats.restarts += 1
        k = 0
        while k < restart and stats.iterations < maxiter:
            z = M.apply(Q[:, k])
            w = op.matvec(np.asarray(z, dtype=dtype)).astype(dtype)
            h = cgs2(comm, Q, k + 1, w)
            beta = dnorm2(comm, w)
            stats.iterations += 1
            if beta <= 4.0 * prec.eps * max(float(np.sqrt(h @ h + beta**2)), 1e-30):
                break
            Q[:, k + 1] = (w / np.asarray(beta, dtype=dtype)).astype(dtype)
            rho_imp = qr.add_column(np.append(h, beta))
            k += 1
            stats.history.append(rho_imp / rho0)
            if rho_imp <= tol * rho0:
                break
        if k > 0:
            y = qr.solve(k)
            u = Q[:, :k] @ y.astype(dtype)
            # Low-precision solution update — the step the benchmark
            # mandates in double; this is where the floor forms.
            x = (x + np.asarray(M.apply(u), dtype=dtype)).astype(dtype)

    r = b - op.matvec(x)
    rho = dnorm2(comm, r)
    stats.final_relres = rho / rho0
    stats.residual_floor = min(stats.residual_floor, stats.final_relres)
    stats.converged = stats.final_relres < tol
    return x, stats
