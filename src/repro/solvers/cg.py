"""Preconditioned conjugate gradient (paper Algorithm 1 — HPCG's solver).

Included because the paper benchmarks HPCG on the same machine for
context (10.4 PF vs HPG-MxP's 17.23 PF at 9408 nodes) and because CG's
short recurrence vs GMRES's growing orthogonalization is exactly the
memory-utilization contrast the paper argues HPG-MxP explores.

Standard PCG with the multigrid preconditioner; double precision only,
as HPCG requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.dispatch import waxpby, waxpby_dot
from repro.backends.workspace import Workspace
from repro.mg.multigrid import MGConfig, MultigridPreconditioner
from repro.parallel.comm import Communicator
from repro.parallel.distributed import ddot, dnorm2, dnorm2_from_local
from repro.solvers.operator import DistributedOperator
from repro.solvers.setup_cache import SetupCache, operator_fingerprint
from repro.stencil.poisson27 import Problem
from repro.util.timers import NullTimers


@dataclass
class CGStats:
    """Outcome of one PCG solve."""

    iterations: int = 0
    converged: bool = False
    final_relres: float = np.inf
    residual_history: list[float] = field(default_factory=list)
    #: Setup-cache counters (cumulative; zero without a cache).
    setup_cache_hits: int = 0
    setup_cache_misses: int = 0


class PCGSolver:
    """Reusable preconditioned CG solver (HPCG configuration)."""

    def __init__(
        self,
        problem: Problem,
        comm: Communicator,
        mg_config: MGConfig | None = None,
        timers=None,
        setup_cache: SetupCache | None = None,
    ) -> None:
        self.problem = problem
        self.comm = comm
        self.timers = timers if timers is not None else NullTimers()
        self.ws = Workspace("pcg")
        # HPCG's preconditioner: symmetric Gauss-Seidel smoothing, which
        # keeps M symmetric (required for CG convergence theory).
        self.mg_config = mg_config or MGConfig(sweep="symmetric")
        # The MG hierarchy (colorings included) is the dominant setup
        # cost; an operator-keyed cache shares it across solver
        # instances bound to content-identical problems.
        self.setup_cache = setup_cache
        self.op = DistributedOperator(
            problem.A, problem.halo, comm, workspace=self.ws
        )

        def _build_mg():
            return MultigridPreconditioner.build(
                problem,
                comm,
                self.mg_config,
                precision="fp64",
                timers=self.timers,
                workspace=self.ws,
            )

        if setup_cache is None:
            self.M = _build_mg()
        else:
            self.M = setup_cache.get_or_build(
                operator_fingerprint(problem.A),
                "mg-pcg",
                (self.mg_config, comm.size, comm.rank),
                _build_mg,
            )
            self.M.timers = self.timers
        n = problem.nlocal
        self._Ap = np.zeros(n, dtype=np.float64)
        self._z = np.zeros(n, dtype=np.float64)

    def solve(
        self,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        tol: float = 1e-9,
        maxiter: int = 500,
    ) -> tuple[np.ndarray, CGStats]:
        """Standard PCG iteration (Algorithm 1)."""
        comm, timers = self.comm, self.timers
        n = self.problem.nlocal
        x = np.zeros(n, dtype=np.float64) if x0 is None else x0.astype(np.float64)
        stats = CGStats()

        with timers.section("spmv"):
            r = b - self.op.matvec(x)
        with timers.section("dot"):
            rho0 = dnorm2(comm, b)
            normr = dnorm2(comm, r)
        if rho0 == 0.0:
            stats.converged = True
            stats.final_relres = 0.0
            self._export_setup_stats(stats)
            return x, stats

        z, Ap = self._z, self._Ap
        self.M.apply(r, out=z)
        p = z.copy()
        with timers.section("dot"):
            rz_old = ddot(comm, r, z)

        for it in range(1, maxiter + 1):
            with timers.section("spmv"):
                self.op.matvec(p, out=Ap)
            with timers.section("dot"):
                pAp = ddot(comm, p, Ap)
            if pAp <= 0:
                # Not SPD (or breakdown); report and stop.
                break
            alpha = rz_old / pAp
            with timers.section("waxpby"):
                waxpby(alpha, p, 1.0, x, out=x, ws=self.ws)
                # Fused motif: the residual update's store feeds the
                # norm's local sum in the same pass (waxpby_dot) —
                # bitwise-identical to the separate waxpby + dot.
                _, local = waxpby_dot(-alpha, Ap, 1.0, r, out=r, ws=self.ws)
            with timers.section("dot"):
                normr = dnorm2_from_local(comm, local)
            stats.iterations = it
            stats.residual_history.append(normr / rho0)
            if normr / rho0 <= tol:
                stats.converged = True
                break
            self.M.apply(r, out=z)
            with timers.section("dot"):
                rz_new = ddot(comm, r, z)
            beta = rz_new / rz_old
            with timers.section("waxpby"):
                waxpby(1.0, z, beta, p, out=p, ws=self.ws)
            rz_old = rz_new

        stats.final_relres = normr / rho0
        self._export_setup_stats(stats)
        return x, stats

    def _export_setup_stats(self, stats: CGStats) -> None:
        """Snapshot the setup cache's counters into the stats record."""
        if self.setup_cache is not None:
            stats.setup_cache_hits = self.setup_cache.hits
            stats.setup_cache_misses = self.setup_cache.misses


def pcg_solve(
    problem: Problem,
    comm: Communicator,
    b: np.ndarray | None = None,
    tol: float = 1e-9,
    maxiter: int = 500,
    mg_config: MGConfig | None = None,
) -> tuple[np.ndarray, CGStats]:
    """One-shot convenience wrapper around :class:`PCGSolver`."""
    solver = PCGSolver(problem, comm, mg_config=mg_config)
    rhs = problem.b if b is None else b
    return solver.solve(rhs, tol=tol, maxiter=maxiter)
