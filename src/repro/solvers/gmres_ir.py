"""Right-preconditioned mixed-precision GMRES-IR (paper Algorithm 3).

One implementation serves both benchmark phases:

- with :data:`~repro.fp.policy.MIXED_DS_POLICY` it is the "mxp" solver:
  the multigrid preconditioner, SpMV, Krylov basis and CGS2 run in
  single precision, while the outer residual (line 7) and solution
  update (line 47) stay in double — the iterative-refinement structure
  that recovers double-precision accuracy;
- with :data:`~repro.fp.policy.DOUBLE_POLICY` every step is double and
  the algorithm reduces to restarted GMRES (Algorithm 2 with restarts),
  the benchmark's "double" reference phase;
- with a ladder policy (:meth:`PrecisionPolicy.from_ladder`, e.g.
  ``"fp16:fp32:fp64"``) the inner stage starts as low as fp16 and the
  **precision control plane** (:mod:`repro.fp.controller`) adapts the
  rungs at run time.  In ``"policy"`` mode (the default, bit-identical
  to the PR 2 escalator) a stalling restart cycle promotes the whole
  policy one rung; in ``"per-ingredient"`` mode each (ingredient, MG
  level) pair — smoother per level, SpMV, grid transfers,
  orthogonalization — owns its rung: only the controllers on the
  binding (lowest) rung promote, and sustained recovery of the outer
  residual demotes promoted controllers back down after a hysteresis
  window.  Every rung change rebuilds the affected low-precision
  state and is recorded in :class:`SolverStats` (with its ingredient
  and level) and exportable as timeline events (:mod:`repro.trace`).

Convergence checking follows the benchmark: the implicit residual from
the Givens-transformed rhs (``|t_{k+1}|``) is monitored every inner
step; the true double-precision residual is recomputed at every outer
(restart) boundary and has final say.  Iteration counts — the quantity
the validation phase penalizes — count inner Arnoldi steps.

Every hot operation dispatches through :mod:`repro.backends`, and all
O(n) temporaries live in a solver-owned workspace arena: after the
first (warmup) restart cycle the inner Arnoldi loop performs zero
array allocations, which the allocation regression test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.dispatch import gemv
from repro.backends.workspace import Workspace
from repro.fp.controller import (
    ControlConfig,
    PrecisionControlPlane,
    PrecisionEvent,
)
from repro.fp.ladder import EscalationConfig
from repro.fp.policy import DOUBLE_POLICY, PrecisionPolicy
from repro.fp.precision import Precision
from repro.mg.multigrid import MGConfig, MultigridPreconditioner
from repro.parallel.comm import Communicator
from repro.parallel.distributed import dnorm2, dnorm2_from_local
from repro.solvers.givens import GivensQR
from repro.solvers.operator import DistributedOperator
from repro.solvers.ortho import ORTHO_METHODS
from repro.sparse.formats import known_formats, to_format
from repro.sparse.scaled import to_precision
from repro.stencil.poisson27 import Problem
from repro.util.timers import NullTimers


#: Backward-compatible alias: a "promotion" record is now one
#: :class:`~repro.fp.controller.PrecisionEvent` (a superset — it also
#: covers demotions and carries the ingredient + MG level).
Promotion = PrecisionEvent


@dataclass
class SolverStats:
    """Outcome of one GMRES / GMRES-IR solve."""

    iterations: int = 0
    restarts: int = 0
    converged: bool = False
    final_relres: float = np.inf
    rho0: float = 0.0
    implicit_history: list[float] = field(default_factory=list)
    cycle_lengths: list[int] = field(default_factory=list)
    breakdown: bool = False  # "happy breakdown" (exact solution in span)
    #: Per-ingredient precision event log: every promotion *and*
    #: demotion, in firing order, with its ingredient and MG level
    #: (whole-policy events carry ``ingredient="policy"``).
    promotions: list[PrecisionEvent] = field(default_factory=list)

    @property
    def demotions(self) -> list[PrecisionEvent]:
        """The de-escalation subset of the event log."""
        return [p for p in self.promotions if p.direction == "demote"]

    def summary(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        n_demote = len(self.demotions)
        n_promote = len(self.promotions) - n_demote
        promo = f", {n_promote} promotion(s)" if n_promote else ""
        if n_demote:
            promo += f", {n_demote} demotion(s)"
        return (
            f"{state} in {self.iterations} iterations "
            f"({self.restarts} restarts{promo}), "
            f"relres={self.final_relres:.3e}"
        )


class GMRESIRSolver:
    """Reusable GMRES-IR solver bound to one problem and one policy.

    Construction performs the benchmark's setup work: the double
    operator, the low-precision matrix copy (when the policy needs
    one), the multigrid hierarchy on the policy's per-level precision
    schedule, and the preallocated workspace buffers the hot loop runs
    in.  ``solve`` may then be called repeatedly (the timed benchmark
    phase re-solves from a zero guess until its time budget is spent).

    ``escalation`` configures the stall/floor detector; pass ``False``
    (or :data:`repro.fp.ladder.NO_ESCALATION`) to pin the policy for
    the whole solve.  ``control`` selects the precision control plane's
    granularity: ``"policy"`` (default — the whole-policy escalator,
    bit-identical to PR 2), ``"per-ingredient"`` (independent
    controllers per ingredient and MG level, with de-escalation), or
    ``"off"``; a full :class:`~repro.fp.controller.ControlConfig` may
    be passed instead, optionally carrying a roundoff ``budget`` that
    derives the *initial* per-ingredient rungs from the matrix
    (:mod:`repro.fp.budget`) rather than the flat policy.  After a
    rung change the solver *stays* on the new schedule for subsequent
    ``solve`` calls — rebuilding per solve would repay the setup cost
    the change already bought.
    """

    def __init__(
        self,
        problem: Problem,
        comm: Communicator,
        policy: PrecisionPolicy = DOUBLE_POLICY,
        mg_config: MGConfig | None = None,
        restart: int = 30,
        ortho: str = "cgs2",
        timers=None,
        precond: MultigridPreconditioner | None = None,
        matrix_format: str = "ell",
        escalation: "EscalationConfig | bool | None" = None,
        overlap: "bool | str" = "auto",
        control: "ControlConfig | str | None" = None,
        overlap_symgs: "bool | str" = "auto",
        fusion: bool = True,
    ) -> None:
        if ortho not in ORTHO_METHODS:
            raise ValueError(f"unknown orthogonalization {ortho!r}")
        if matrix_format not in known_formats():
            raise ValueError(
                f"unknown matrix format {matrix_format!r}; registered "
                f"formats: {known_formats()}"
            )
        self.problem = problem
        self.comm = comm
        self.restart = restart
        self.ortho_name = ortho
        self.matrix_format = matrix_format
        # Overlap interior SpMV with the halo exchange through the
        # ghost-aware partitioned layout.  "auto": on whenever there
        # are neighbor ranks to exchange with (the partition is pure
        # overhead on a serial communicator, but remains selectable
        # for tests and single-rank validation of the schedule).
        if overlap == "auto":
            self.overlap = comm.size > 1
        else:
            self.overlap = bool(overlap)
        # Overlap the *smoother's* halo exchanges with its interior
        # color blocks (the PR 5 schedule).  "auto" follows the SpMV
        # overlap decision; an explicit bool decouples the two for
        # ablation (--no-overlap-symgs).
        if overlap_symgs == "auto":
            self.overlap_symgs = self.overlap
        else:
            self.overlap_symgs = bool(overlap_symgs)
        # Fused-motif kernels (spmv_dot / waxpby_dot): the residual
        # check's subtraction and dot ride the SpMV's memory pass.
        # Numerically identical to the unfused sequence (bitwise under
        # the reference backend); off for ablation (--no-fusion).
        self.fusion = bool(fusion)
        self._orthogonalize = ORTHO_METHODS[ortho]
        self.timers = timers if timers is not None else NullTimers()
        self.ws = Workspace("gmres-ir")
        if escalation is None:
            # fp16 rungs cannot reach double tolerances without climbing,
            # so the controller defaults on for them; fp32/fp64 policies
            # keep the paper's fixed-policy behaviour unless the caller
            # opts in explicitly.
            escalation = EscalationConfig(
                enabled=(policy.low is Precision.HALF)
            )
        elif escalation is True:
            escalation = EscalationConfig()
        elif escalation is False:
            escalation = EscalationConfig(enabled=False)
        # The control plane: a ControlConfig wins outright (it carries
        # its own detector settings); a bare mode string combines with
        # the escalation resolution above; None is the historical
        # whole-policy escalator.
        if isinstance(control, ControlConfig):
            escalation = control.escalation
        elif isinstance(control, str):
            control = ControlConfig(mode=control, escalation=escalation)
        elif control is None:
            control = ControlConfig(mode="policy", escalation=escalation)
        else:
            raise TypeError(
                f"control must be a ControlConfig, a mode string or "
                f"None, got {control!r}"
            )
        self.escalation = escalation
        self.control = control

        # Krylov-loop matrix in the requested storage format (the
        # reference implementation uses CSR, the optimized one ELL;
        # SELL-C-σ is the GPU-general layout).
        self.A64 = to_format(problem.A, matrix_format)

        # Double-precision operator for outer residuals, and the outer
        # residual buffer — both policy-independent (always fp64), so
        # they survive ladder promotions unchanged.
        self.op64 = DistributedOperator(
            self.A64, problem.halo, comm, workspace=self.ws, overlap=self.overlap
        )
        self._r64 = np.zeros(problem.nlocal, dtype=np.float64)

        self.mg_config = mg_config or MGConfig()
        self._shared_precond = precond
        nlevels = self.mg_config.nlevels
        if control.mode == "per-ingredient" and control.budget is not None:
            # Carson-style chooser: the initial per-ingredient rungs
            # come from the matrix's norm/condition estimates, not the
            # flat policy spec.
            self.plane = PrecisionControlPlane.from_budget(
                control, policy, nlevels, self.A64, restart=restart
            )
        else:
            self.plane = PrecisionControlPlane(control, policy, nlevels)
        self._bind_policy(self.plane.live_policy())

    # ------------------------------------------------------------------
    def _bind_policy(self, policy: PrecisionPolicy) -> None:
        """(Re)build every precision-dependent piece for ``policy``.

        Called at construction and again by the escalation controller
        after each promotion: the inner operator, the multigrid
        hierarchy (on the policy's per-level schedule), the Krylov
        basis and the hot-loop buffers all change dtype with the rung.
        """
        self.policy = policy

        # Inner operator in the policy's matrix precision.  GMRES-IR
        # stores this *second* copy of A (the memory overhead §5 notes);
        # the uniform-double policy reuses the double operator.  fp16
        # rungs get row-equilibrated storage (repro.sparse.scaled).
        if policy.matrix is Precision.DOUBLE:
            self.op_inner = self.op64
            self.A_low = self.A64
        else:
            self.A_low = to_precision(self.A64, policy.matrix)
            self.op_inner = DistributedOperator(
                self.A_low,
                self.problem.halo,
                self.comm,
                workspace=self.ws,
                overlap=self.overlap,
            )

        # Multigrid preconditioner on the policy's per-level schedule.
        # When the fine level runs in the inner-operator precision (and
        # the hierarchy's format), share it (no second low copy).
        if self._shared_precond is not None:
            self.M = self._shared_precond
        else:
            shared = (
                self.A_low
                if policy.preconditioner is policy.matrix
                else None
            )
            self.M = MultigridPreconditioner.build(
                self.problem,
                self.comm,
                self.mg_config,
                precision=policy.mg_schedule(self.mg_config.nlevels),
                timers=self.timers,
                fine_matrix=shared,
                matrix_format=self.matrix_format,
                workspace=self.ws,
                # Per-ingredient mode schedules the grid transfers
                # apart from the levels; None preserves the historical
                # coarse-rung coupling (the "policy"-mode bitwise
                # guarantee).
                transfer_precision=self.plane.transfer_schedule(),
                overlap=self.overlap_symgs,
            )

        # Krylov basis and hot-loop vector buffers, preallocated once
        # per rung.
        n = self.problem.nlocal
        restart = self.restart
        basis_dtype = policy.krylov_basis.dtype
        self.Q = np.zeros((n, restart + 1), dtype=basis_dtype)
        self._w_op = np.zeros(n, dtype=self.op_inner.dtype)
        self._u = np.zeros(n, dtype=basis_dtype)
        if self.op_inner.dtype != basis_dtype:
            self._w_basis = np.zeros(n, dtype=basis_dtype)
        else:
            self._w_basis = self._w_op
        prec_dtype = self.M.precision.dtype
        self._z_prec = np.zeros(n, dtype=prec_dtype)
        if prec_dtype != self.op_inner.dtype:
            self._z_op = np.zeros(n, dtype=self.op_inner.dtype)
        else:
            self._z_op = None  # preconditioner output feeds SpMV directly

    # ------------------------------------------------------------------
    def _halo_exchanges(self) -> list:
        """Every distinct halo-exchange plan the solver drives."""
        plans = [self.op64.halo_ex]
        if self.op_inner is not self.op64:
            plans.append(self.op_inner.halo_ex)
        for lv in self.M.levels:
            if all(lv.halo_ex is not p for p in plans):
                plans.append(lv.halo_ex)
        return plans

    def halo_seconds(self) -> float:
        """Measured wall-clock seconds inside halo exchanges.

        Summed over the outer/inner operators and every MG level;
        counters restart on :meth:`reset_halo_counters` (a rung-change
        rebuild also restarts the rebuilt components' counters).
        """
        return sum(ex.seconds for ex in self._halo_exchanges())

    def halo_exchange_count(self) -> int:
        """Measured number of halo exchanges (same scope as above)."""
        return sum(ex.exchanges for ex in self._halo_exchanges())

    def halo_exposed_seconds(self) -> float:
        """Measured wall clock in *exposed* halo communication.

        The subset of :meth:`halo_seconds` no compute hid: blocking
        full exchanges plus the landing waits of overlapped exchanges.
        The exposed/total ratio is the benchmark's Fig. 9b health
        metric — overlap schedules (SpMV and SymGS) drive it down.
        """
        return sum(ex.exposed_seconds for ex in self._halo_exchanges())

    def exposed_comm_seconds_by_level(self) -> list[float]:
        """Exposed halo seconds per MG level (finest first).

        The per-level view of :meth:`halo_exposed_seconds` the
        distributed benchmark phase reports: coarse levels' tiny
        interior windows are where exposure concentrates (Fig. 9b).
        """
        return [lv.halo_ex.exposed_seconds for lv in self.M.levels]

    def reset_halo_counters(self) -> None:
        for ex in self._halo_exchanges():
            ex.reset_counters()

    # ------------------------------------------------------------------
    def _relres(self, rho: float) -> float:
        return rho / self._rho0 if self._rho0 else np.inf

    def _apply_events(self, stats: SolverStats, events: list[PrecisionEvent]) -> None:
        """Record the plane's rung changes and rebuild the inner stage.

        A caller-supplied preconditioner is abandoned here: it sits on
        the old schedule — often containing the very component whose
        roundoff floor triggered the change — so the rebuild constructs
        a fresh hierarchy on the plane's live schedule instead.
        """
        stats.promotions.extend(events)
        self._shared_precond = None
        self._bind_policy(self.plane.live_policy())

    # ------------------------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        tol: float = 1e-9,
        maxiter: int = 300,
        target_residual: float | None = None,
    ) -> tuple[np.ndarray, SolverStats]:
        """Solve ``A x = b``.

        Parameters
        ----------
        tol:
            Relative-residual convergence tolerance (vs ``||b||``).
        maxiter:
            Cap on total inner iterations.
        target_residual:
            Optional *absolute* residual-norm target overriding ``tol``
            (the full-scale validation mode converges GMRES-IR to the
            residual the double solver achieved).
        """
        comm, timers = self.comm, self.timers
        n = self.problem.nlocal
        m = self.restart

        x = np.zeros(n, dtype=np.float64) if x0 is None else x0.astype(np.float64)
        stats = SolverStats()
        self.plane.reset_observation()

        with timers.section("dot"):
            rho0 = dnorm2(comm, b)
        stats.rho0 = rho0
        self._rho0 = rho0
        if rho0 == 0.0:
            stats.converged = True
            stats.final_relres = 0.0
            return x, stats
        abs_tol = target_residual if target_residual is not None else tol * rho0

        r64 = self._r64
        qr = GivensQR(m)

        while stats.iterations < maxiter:
            # --- outer (iterative-refinement) step: double precision ---
            # Fused: the residual subtraction and its local dot ride
            # the SpMV's memory pass (spmv_dot / waxpby_dot); only the
            # scalar reduction crosses ranks.  Bitwise-identical to
            # the unfused sequence under the reference backend.
            if self.fusion:
                with timers.section("spmv"):
                    local = self.op64.residual_norm2_local(b, x, out=r64)
                with timers.section("dot"):
                    rho = dnorm2_from_local(comm, local)
            else:
                with timers.section("spmv"):
                    self.op64.residual(b, x, out=r64)  # line 7, fp64
                with timers.section("dot"):
                    rho = dnorm2(comm, r64)
            stats.final_relres = rho / rho0
            if rho <= abs_tol:
                stats.converged = True
                return x, stats

            # --- precision control plane: judge the restart boundary ---
            # Stagnation promotes the binding rung (whole policy in
            # "policy" mode, the lowest-rung controllers otherwise);
            # sustained recovery demotes per-ingredient controllers
            # after the hysteresis window.
            events = self.plane.observe_restart(
                rho, self._relres(rho), stats.iterations, stats.restarts
            )
            if events:
                self._apply_events(stats, events)

            # Per-rung bindings (a promotion above replaces these).
            Q = self.Q
            basis_dtype = self.policy.krylov_basis.dtype

            # Start a restart cycle (lines 11-13).
            qr.start(rho)
            np.divide(r64, rho, out=Q[:, 0])  # casts to the basis dtype
            stats.restarts += 1

            k = 0
            rho_implicit = rho
            while k < m and stats.iterations < maxiter:
                # --- inner Arnoldi step, low precision allowed ---
                qk = Q[:, k]
                z = self.M.apply(qk, out=self._z_prec)  # line 18: MG precond
                if self._z_op is not None:
                    np.copyto(self._z_op, z)  # precision cast, no alloc
                    z = self._z_op
                with timers.section("spmv"):
                    self.op_inner.matvec(z, out=self._w_op)  # line 19
                w = self._w_basis
                if w is not self._w_op:
                    np.copyto(w, self._w_op)

                with timers.section("ortho"):
                    h = self._orthogonalize(
                        comm, Q, k + 1, w, ws=self.ws
                    )  # lines 20-27
                    beta = dnorm2(comm, w)

                stats.iterations += 1
                # (Near-)breakdown: the new direction is numerically
                # dependent on the basis at this precision.  End the
                # cycle without the degenerate column; the IR outer loop
                # restarts from a fresh double-precision residual.
                pre_ortho_norm = float(np.sqrt(h @ h + beta * beta))
                if beta <= 4.0 * np.finfo(basis_dtype).eps * max(
                    pre_ortho_norm, 1e-300
                ):
                    stats.breakdown = True
                    break

                np.divide(
                    w, np.asarray(beta, dtype=basis_dtype), out=Q[:, k + 1]
                )  # lines 28-30
                with timers.section("qr_host"):
                    rho_implicit = qr.add_column(np.append(h, beta))  # lines 31-43
                k += 1
                stats.implicit_history.append(rho_implicit / rho0)
                if rho_implicit <= abs_tol:
                    break  # lines 15-17: implicit convergence
            self.plane.cycle_completed()

            stats.cycle_lengths.append(k)
            if k > 0:
                # --- solution update (lines 45-47) ---
                with timers.section("qr_host"):
                    y = qr.solve(k)  # t <- H^{-1} t
                with timers.section("ortho"):
                    gemv(Q, k, y.astype(basis_dtype), out=self._u)  # r <- Q t
                z = self.M.apply(self._u, out=self._z_prec)  # M^{-1} r
                with timers.section("waxpby"):
                    np.add(x, z, out=x)  # fp64 update mandated
            elif stats.breakdown:
                # Breakdown with an empty cycle: this precision cannot
                # extend the basis at all.  With rungs left on the
                # ladder, promote and retry; otherwise further restarts
                # would spin.
                events = self.plane.observe_breakdown(
                    rho, self._relres(rho), stats.iterations, stats.restarts
                )
                if events:
                    self._apply_events(stats, events)
                    stats.breakdown = False
                    continue
                break

        # Final true residual (covers the maxiter and breakdown exits).
        if self.fusion:
            with timers.section("spmv"):
                local = self.op64.residual_norm2_local(b, x, out=r64)
            with timers.section("dot"):
                rho = dnorm2_from_local(comm, local)
        else:
            with timers.section("spmv"):
                self.op64.residual(b, x, out=r64)
            with timers.section("dot"):
                rho = dnorm2(comm, r64)
        stats.final_relres = rho / rho0
        stats.converged = rho <= abs_tol
        return x, stats


def gmres_solve(
    problem: Problem,
    comm: Communicator,
    b: np.ndarray | None = None,
    policy: PrecisionPolicy = DOUBLE_POLICY,
    mg_config: MGConfig | None = None,
    restart: int = 30,
    tol: float = 1e-9,
    maxiter: int = 300,
    ortho: str = "cgs2",
    escalation: "EscalationConfig | bool | None" = None,
    control: "ControlConfig | str | None" = None,
) -> tuple[np.ndarray, SolverStats]:
    """One-shot convenience wrapper around :class:`GMRESIRSolver`."""
    solver = GMRESIRSolver(
        problem,
        comm,
        policy=policy,
        mg_config=mg_config,
        restart=restart,
        ortho=ortho,
        escalation=escalation,
        control=control,
    )
    rhs = problem.b if b is None else b
    return solver.solve(rhs, tol=tol, maxiter=maxiter)
