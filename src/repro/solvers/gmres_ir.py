"""Right-preconditioned mixed-precision GMRES-IR (paper Algorithm 3).

One implementation serves both benchmark phases:

- with :data:`~repro.fp.policy.MIXED_DS_POLICY` it is the "mxp" solver:
  the multigrid preconditioner, SpMV, Krylov basis and CGS2 run in
  single precision, while the outer residual (line 7) and solution
  update (line 47) stay in double — the iterative-refinement structure
  that recovers double-precision accuracy;
- with :data:`~repro.fp.policy.DOUBLE_POLICY` every step is double and
  the algorithm reduces to restarted GMRES (Algorithm 2 with restarts),
  the benchmark's "double" reference phase.

Convergence checking follows the benchmark: the implicit residual from
the Givens-transformed rhs (``|t_{k+1}|``) is monitored every inner
step; the true double-precision residual is recomputed at every outer
(restart) boundary and has final say.  Iteration counts — the quantity
the validation phase penalizes — count inner Arnoldi steps.

Every hot operation dispatches through :mod:`repro.backends`, and all
O(n) temporaries live in a solver-owned workspace arena: after the
first (warmup) restart cycle the inner Arnoldi loop performs zero
array allocations, which the allocation regression test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.dispatch import gemv
from repro.backends.workspace import Workspace
from repro.fp.policy import DOUBLE_POLICY, PrecisionPolicy
from repro.fp.precision import Precision
from repro.mg.multigrid import MGConfig, MultigridPreconditioner
from repro.parallel.comm import Communicator
from repro.parallel.distributed import dnorm2
from repro.solvers.givens import GivensQR
from repro.solvers.operator import DistributedOperator
from repro.solvers.ortho import ORTHO_METHODS
from repro.sparse.formats import known_formats, to_format
from repro.stencil.poisson27 import Problem
from repro.util.timers import NullTimers


@dataclass
class SolverStats:
    """Outcome of one GMRES / GMRES-IR solve."""

    iterations: int = 0
    restarts: int = 0
    converged: bool = False
    final_relres: float = np.inf
    rho0: float = 0.0
    implicit_history: list[float] = field(default_factory=list)
    cycle_lengths: list[int] = field(default_factory=list)
    breakdown: bool = False  # "happy breakdown" (exact solution in span)

    def summary(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        return (
            f"{state} in {self.iterations} iterations "
            f"({self.restarts} restarts), relres={self.final_relres:.3e}"
        )


class GMRESIRSolver:
    """Reusable GMRES-IR solver bound to one problem and one policy.

    Construction performs the benchmark's setup work: the double
    operator, the low-precision matrix copy (when the policy needs
    one), the multigrid hierarchy in the preconditioner precision, and
    the preallocated workspace buffers the hot loop runs in.  ``solve``
    may then be called repeatedly (the timed benchmark phase re-solves
    from a zero guess until its time budget is spent).
    """

    def __init__(
        self,
        problem: Problem,
        comm: Communicator,
        policy: PrecisionPolicy = DOUBLE_POLICY,
        mg_config: MGConfig | None = None,
        restart: int = 30,
        ortho: str = "cgs2",
        timers=None,
        precond: MultigridPreconditioner | None = None,
        matrix_format: str = "ell",
    ) -> None:
        if ortho not in ORTHO_METHODS:
            raise ValueError(f"unknown orthogonalization {ortho!r}")
        if matrix_format not in known_formats():
            raise ValueError(
                f"unknown matrix format {matrix_format!r}; registered "
                f"formats: {known_formats()}"
            )
        self.problem = problem
        self.comm = comm
        self.policy = policy
        self.restart = restart
        self.ortho_name = ortho
        self.matrix_format = matrix_format
        self._orthogonalize = ORTHO_METHODS[ortho]
        self.timers = timers if timers is not None else NullTimers()
        self.ws = Workspace("gmres-ir")

        # Krylov-loop matrix in the requested storage format (the
        # reference implementation uses CSR, the optimized one ELL;
        # SELL-C-σ is the GPU-general layout).
        A64 = to_format(problem.A, matrix_format)

        # Double-precision operator for outer residuals.
        self.op64 = DistributedOperator(
            A64, problem.halo, comm, workspace=self.ws
        )

        # Inner operator in the policy's matrix precision.  GMRES-IR
        # stores this *second* copy of A (the memory overhead §5 notes);
        # the uniform-double policy reuses the double operator.
        if policy.matrix is Precision.DOUBLE:
            self.op_inner = self.op64
            self.A_low = A64
        else:
            self.A_low = A64.astype(policy.matrix)
            self.op_inner = DistributedOperator(
                self.A_low, problem.halo, comm, workspace=self.ws
            )

        # Multigrid preconditioner in the policy's precision.  When the
        # inner operator is in the same precision (and the hierarchy's
        # format), share it as the fine level (no second low copy).
        self.mg_config = mg_config or MGConfig()
        if precond is not None:
            self.M = precond
        else:
            shared = (
                self.A_low
                if policy.preconditioner is policy.matrix
                else None
            )
            self.M = MultigridPreconditioner.build(
                problem,
                comm,
                self.mg_config,
                precision=policy.preconditioner,
                timers=self.timers,
                fine_matrix=shared,
                matrix_format=matrix_format,
                workspace=self.ws,
            )

        # Krylov basis and hot-loop vector buffers, preallocated once.
        n = problem.nlocal
        basis_dtype = policy.krylov_basis.dtype
        self.Q = np.zeros((n, restart + 1), dtype=basis_dtype)
        self._r64 = np.zeros(n, dtype=np.float64)
        self._w_op = np.zeros(n, dtype=self.op_inner.dtype)
        self._u = np.zeros(n, dtype=basis_dtype)
        if self.op_inner.dtype != basis_dtype:
            self._w_basis = np.zeros(n, dtype=basis_dtype)
        else:
            self._w_basis = self._w_op
        prec_dtype = self.M.precision.dtype
        self._z_prec = np.zeros(n, dtype=prec_dtype)
        if prec_dtype != self.op_inner.dtype:
            self._z_op = np.zeros(n, dtype=self.op_inner.dtype)
        else:
            self._z_op = None  # preconditioner output feeds SpMV directly

    # ------------------------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        tol: float = 1e-9,
        maxiter: int = 300,
        target_residual: float | None = None,
    ) -> tuple[np.ndarray, SolverStats]:
        """Solve ``A x = b``.

        Parameters
        ----------
        tol:
            Relative-residual convergence tolerance (vs ``||b||``).
        maxiter:
            Cap on total inner iterations.
        target_residual:
            Optional *absolute* residual-norm target overriding ``tol``
            (the full-scale validation mode converges GMRES-IR to the
            residual the double solver achieved).
        """
        comm, timers = self.comm, self.timers
        n = self.problem.nlocal
        m = self.restart
        basis_dtype = self.policy.krylov_basis.dtype

        x = np.zeros(n, dtype=np.float64) if x0 is None else x0.astype(np.float64)
        stats = SolverStats()

        with timers.section("dot"):
            rho0 = dnorm2(comm, b)
        stats.rho0 = rho0
        if rho0 == 0.0:
            stats.converged = True
            stats.final_relres = 0.0
            return x, stats
        abs_tol = target_residual if target_residual is not None else tol * rho0

        Q = self.Q
        r64 = self._r64
        qr = GivensQR(m)

        while stats.iterations < maxiter:
            # --- outer (iterative-refinement) step: double precision ---
            with timers.section("spmv"):
                self.op64.residual(b, x, out=r64)  # line 7, fp64 mandated
            with timers.section("dot"):
                rho = dnorm2(comm, r64)
            stats.final_relres = rho / rho0
            if rho <= abs_tol:
                stats.converged = True
                return x, stats

            # Start a restart cycle (lines 11-13).
            qr.start(rho)
            np.divide(r64, rho, out=Q[:, 0])  # casts to the basis dtype
            stats.restarts += 1

            k = 0
            rho_implicit = rho
            while k < m and stats.iterations < maxiter:
                # --- inner Arnoldi step, low precision allowed ---
                qk = Q[:, k]
                z = self.M.apply(qk, out=self._z_prec)  # line 18: MG precond
                if self._z_op is not None:
                    np.copyto(self._z_op, z)  # precision cast, no alloc
                    z = self._z_op
                with timers.section("spmv"):
                    self.op_inner.matvec(z, out=self._w_op)  # line 19
                w = self._w_basis
                if w is not self._w_op:
                    np.copyto(w, self._w_op)

                with timers.section("ortho"):
                    h = self._orthogonalize(
                        comm, Q, k + 1, w, ws=self.ws
                    )  # lines 20-27
                    beta = dnorm2(comm, w)

                stats.iterations += 1
                # (Near-)breakdown: the new direction is numerically
                # dependent on the basis at this precision.  End the
                # cycle without the degenerate column; the IR outer loop
                # restarts from a fresh double-precision residual.
                pre_ortho_norm = float(np.sqrt(h @ h + beta * beta))
                if beta <= 4.0 * np.finfo(basis_dtype).eps * max(
                    pre_ortho_norm, 1e-300
                ):
                    stats.breakdown = True
                    break

                np.divide(
                    w, np.asarray(beta, dtype=basis_dtype), out=Q[:, k + 1]
                )  # lines 28-30
                with timers.section("qr_host"):
                    rho_implicit = qr.add_column(np.append(h, beta))  # lines 31-43
                k += 1
                stats.implicit_history.append(rho_implicit / rho0)
                if rho_implicit <= abs_tol:
                    break  # lines 15-17: implicit convergence

            stats.cycle_lengths.append(k)
            if k > 0:
                # --- solution update (lines 45-47) ---
                with timers.section("qr_host"):
                    y = qr.solve(k)  # t <- H^{-1} t
                with timers.section("ortho"):
                    gemv(Q, k, y.astype(basis_dtype), out=self._u)  # r <- Q t
                z = self.M.apply(self._u, out=self._z_prec)  # M^{-1} r
                with timers.section("waxpby"):
                    np.add(x, z, out=x)  # fp64 update mandated
            elif stats.breakdown:
                # Breakdown with an empty cycle: low precision cannot
                # extend the basis at all; further restarts would spin.
                break

        # Final true residual (covers the maxiter and breakdown exits).
        with timers.section("spmv"):
            self.op64.residual(b, x, out=r64)
        with timers.section("dot"):
            rho = dnorm2(comm, r64)
        stats.final_relres = rho / rho0
        stats.converged = rho <= abs_tol
        return x, stats


def gmres_solve(
    problem: Problem,
    comm: Communicator,
    b: np.ndarray | None = None,
    policy: PrecisionPolicy = DOUBLE_POLICY,
    mg_config: MGConfig | None = None,
    restart: int = 30,
    tol: float = 1e-9,
    maxiter: int = 300,
    ortho: str = "cgs2",
) -> tuple[np.ndarray, SolverStats]:
    """One-shot convenience wrapper around :class:`GMRESIRSolver`."""
    solver = GMRESIRSolver(
        problem, comm, policy=policy, mg_config=mg_config, restart=restart, ortho=ortho
    )
    rhs = problem.b if b is None else b
    return solver.solve(rhs, tol=tol, maxiter=maxiter)
